//! Allocation regression: the closed-loop MESI hot path must not touch
//! the heap.
//!
//! `CoherenceSystem` allocates its per-agent cache planes once at
//! construction; every steady-state operation — classifying a miss,
//! applying the MESI transition on grant completion, broadcasting
//! invalidations, and drawing the gap to the next miss — works in place
//! on those planes. This test pins the property with a counting global
//! allocator, the same harness `busarb-core` uses for the arbiters;
//! `cargo xtask lint` pins it structurally by scanning the hot function
//! bodies for allocating constructs.
//!
//! All checks live in ONE `#[test]` function: the test harness runs
//! tests on separate threads, and a concurrently running test would
//! perturb the process-wide allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use busarb_mem::{CoherenceConfig, CoherenceSystem};
use busarb_types::AgentId;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Minimum allocation count of `f` over a few repetitions. The counter
/// is process-wide, so a test-harness thread allocating concurrently can
/// leak a spurious count into one window; a genuine steady-state
/// allocation in `f` shows up in **every** window, so the minimum
/// isolates it.
fn steady_allocations_in(mut f: impl FnMut()) -> usize {
    (0..3)
        .map(|_| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            f();
            ALLOCATIONS.load(Ordering::Relaxed) - before
        })
        .min()
        .expect("non-empty repetition count")
}

/// Runs `rounds` full miss → complete cycles across every agent, using a
/// tiny in-place xorshift for the reference-stream draws (the production
/// path hands in the workload engine's closure, equally allocation-free).
fn drive(mem: &mut CoherenceSystem, agents: u32, rounds: u32, state: &mut u64) {
    for _ in 0..rounds {
        for a in 1..=agents {
            let agent = AgentId::new(a).expect("valid id");
            let _gap = mem.next_miss(agent, |_| {
                *state ^= *state << 13;
                *state ^= *state >> 7;
                *state ^= *state << 17;
                (*state >> 11) as f64 / (1u64 << 53) as f64
            });
            let done = mem.complete(agent, |_victim| {});
            let _ = done.op;
        }
    }
    assert!(mem.invariants_hold(), "MESI invariants violated mid-drive");
}

#[test]
fn steady_state_coherence_does_not_allocate() {
    let agents = 8u32;
    let mut mem = CoherenceSystem::new(agents, CoherenceConfig::default_mix());
    let mut state = 0x5EED_B0A7_1234_ABCDu64;
    // Warm-up: fill every private cache and populate the shared region
    // so upgrades, invalidations, and evictions all occur in the
    // measured window.
    drive(&mut mem, agents, 64, &mut state);

    let steady = steady_allocations_in(|| drive(&mut mem, agents, 16, &mut state));
    assert_eq!(
        steady, 0,
        "closed-loop MESI hot path allocated {steady} time(s) in steady state"
    );
}
