//! Closed-loop MESI coherence workloads.
//!
//! Every workload in `busarb-workload` proper is *open-loop*: interrequest
//! times are drawn from a stochastic process that never observes
//! arbitration latency. This crate closes the loop the way a shared-bus
//! multiprocessor with private caches does (the setting of "Comparison of
//! the Performance of Two Service Disciplines for a Shared Bus
//! Multiprocessor with Private Caches", arXiv 1004.3560): each agent is a
//! private MESI cache executing a synthetic reference stream, and a bus
//! request exists *only because* a reference missed. While the miss is
//! waiting for its bus grant the agent is stalled — it executes no further
//! references — so arbitration latency directly shapes the subsequent
//! request process.
//!
//! The model has three parts:
//!
//! * **Reference stream** — a per-agent synthetic locality model: each
//!   reference picks the private or the shared region
//!   ([`CoherenceConfig::shared_fraction`]), a line within it, and a
//!   read/write direction ([`CoherenceConfig::write_fraction`]); lines
//!   already cached may be silently evicted first
//!   ([`CoherenceConfig::eviction_rate`]), modeling capacity misses.
//!   Every random choice is a plain uniform variate supplied by the
//!   caller, so both `busarb-workload` draw engines (reference and fast)
//!   drive the stream through their existing `uniform` seam and all
//!   determinism guarantees carry over unchanged.
//! * **MESI cache** — per-agent line states over a private working set
//!   plus one globally shared region. Hits (including the silent
//!   Exclusive→Modified write promotion) cost
//!   [`CoherenceConfig::reference_time`] each and never touch the bus.
//! * **Feedback path** — [`CoherenceSystem::next_miss`] executes
//!   references until one needs the bus and returns the compute time
//!   consumed; the simulator schedules the bus request that far in the
//!   future and stalls the agent. When the grant's transfer completes,
//!   [`CoherenceSystem::complete`] applies the MESI transition (fill,
//!   ownership claim, invalidations/downgrades of other holders) and
//!   classifies the transaction as a read miss, write miss, or upgrade
//!   ([`CoherenceOp`]).
//!
//! Both methods are allocation-free and panic-free after construction:
//! they sit on the simulator's hot event path (pinned by `cargo xtask
//! lint` and the crate's counting-allocator test).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use busarb_types::{AgentId, Error, Time};
pub use busarb_types::CoherenceOp;

/// Upper bound on consecutive hits executed per [`next_miss`] call.
///
/// With any plausible configuration the hit run ends orders of magnitude
/// sooner; the cap exists so a pathological configuration (eviction rate
/// zero, shared fraction zero, every line already Modified) cannot spin
/// the generator forever. When the cap is reached the referenced line is
/// treated as capacity-evicted, forcing a miss — still deterministic,
/// still bounded.
///
/// [`next_miss`]: CoherenceSystem::next_miss
pub const MAX_HIT_RUN: u32 = 4096;

/// One line's MESI coherence state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MesiState {
    /// Not cached (or invalidated by another agent's write).
    Invalid,
    /// Cached read-only; other caches may also hold the line.
    Shared,
    /// Cached clean with no other copies; writable without bus traffic.
    Exclusive,
    /// Cached dirty with no other copies (sole owner).
    Modified,
}

impl MesiState {
    fn to_u8(self) -> u8 {
        match self {
            MesiState::Invalid => 0,
            MesiState::Shared => 1,
            MesiState::Exclusive => 2,
            MesiState::Modified => 3,
        }
    }

    fn from_u8(raw: u8) -> MesiState {
        match raw {
            1 => MesiState::Shared,
            2 => MesiState::Exclusive,
            3 => MesiState::Modified,
            _ => MesiState::Invalid,
        }
    }
}

/// A cache line address in the two-region synthetic locality model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Line {
    /// A line in the agent's private working set (never shared, so
    /// private lines generate misses but no invalidation traffic).
    Private(u32),
    /// A line in the global shared region (the coherence battleground).
    Shared(u32),
}

/// Parameters of the synthetic reference stream and cache geometry.
///
/// All fields are validated once by [`CoherenceConfig::new`]; the model
/// itself then runs without panic branches.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CoherenceConfig {
    /// Private working-set size per agent, in cache lines (>= 1).
    pub private_lines: u32,
    /// Size of the global shared region, in cache lines (0 disables
    /// sharing entirely).
    pub shared_lines: u32,
    /// Probability a reference targets the shared region (in [0, 1]).
    pub shared_fraction: f64,
    /// Probability a reference is a write (in [0, 1]).
    pub write_fraction: f64,
    /// Probability a cached line was capacity-evicted since its last
    /// access (in [0, 1]); evictions are silent (write-backs are folded
    /// into the fixed bus transaction time, as in the paper's model).
    pub eviction_rate: f64,
    /// Compute time consumed per executed reference, in bus transaction
    /// units (positive and finite). The gap between a grant completing
    /// and the agent's next request is `hits_until_next_miss + 1` times
    /// this value.
    pub reference_time: f64,
}

impl CoherenceConfig {
    /// Validates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidScenario`] when a field is outside its
    /// documented range.
    pub fn new(
        private_lines: u32,
        shared_lines: u32,
        shared_fraction: f64,
        write_fraction: f64,
        eviction_rate: f64,
        reference_time: f64,
    ) -> Result<Self, Error> {
        let fraction = |name: &str, v: f64| -> Result<(), Error> {
            if !(0.0..=1.0).contains(&v) {
                return Err(Error::InvalidScenario {
                    reason: format!("{name} {v} outside [0, 1]"),
                });
            }
            Ok(())
        };
        if private_lines == 0 {
            return Err(Error::InvalidScenario {
                reason: "private working set needs at least one line".to_string(),
            });
        }
        fraction("shared fraction", shared_fraction)?;
        fraction("write fraction", write_fraction)?;
        fraction("eviction rate", eviction_rate)?;
        if !reference_time.is_finite() || reference_time <= 0.0 {
            return Err(Error::InvalidScenario {
                reason: format!("reference time {reference_time} must be positive and finite"),
            });
        }
        Ok(CoherenceConfig {
            private_lines,
            shared_lines,
            shared_fraction,
            write_fraction,
            eviction_rate,
            reference_time,
        })
    }

    /// The default workload used by the `coherence` experiment: a
    /// moderately contended mix (30% shared references over a small
    /// shared region, 30% writes, mild capacity pressure) that keeps
    /// every agent's cache warm while producing steady invalidation
    /// traffic.
    #[must_use]
    pub fn default_mix() -> Self {
        CoherenceConfig::new(64, 16, 0.3, 0.3, 0.05, 0.25)
            .expect("the default mix is statically valid")
    }
}

/// A pending bus request: the reference that missed, frozen until its
/// grant's transfer completes.
#[derive(Clone, Copy, Debug, Default)]
struct Pending {
    active: bool,
    shared: bool,
    line: u32,
    write: bool,
}

/// The outcome of one completed coherence transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Completion {
    /// How the transaction classified against the granted agent's cache.
    pub op: CoherenceOp,
    /// How many other caches lost their copy of the line.
    pub invalidated: u32,
}

/// All agents' private MESI caches plus the shared-region directory.
///
/// Construction ([`CoherenceSystem::new`]) performs the only
/// allocations; [`next_miss`] and [`complete`] — the two methods on the
/// simulator's hot path — are allocation-free and panic-free.
///
/// [`next_miss`]: CoherenceSystem::next_miss
/// [`complete`]: CoherenceSystem::complete
#[derive(Clone, Debug)]
pub struct CoherenceSystem {
    agents: u32,
    config: CoherenceConfig,
    /// Private-region states: `agents * private_lines` entries, agent-major.
    private: Vec<u8>,
    /// Shared-region states: `shared_lines * agents` entries, line-major
    /// so the invalidation scan over one line's copies is contiguous.
    shared: Vec<u8>,
    /// One frozen miss per agent (at most one outstanding request each).
    pending: Vec<Pending>,
}

impl CoherenceSystem {
    /// Builds the cold caches for `agents` agents. Every line starts
    /// Invalid, so the run begins with a compulsory-miss burst exactly
    /// like a real machine's warm-up.
    #[must_use]
    pub fn new(agents: u32, config: CoherenceConfig) -> Self {
        CoherenceSystem {
            agents,
            config,
            private: vec![0; (agents as usize) * (config.private_lines as usize)],
            shared: vec![0; (config.shared_lines as usize) * (agents as usize)],
            pending: vec![Pending::default(); agents as usize],
        }
    }

    /// The validated configuration this system runs.
    #[must_use]
    pub fn config(&self) -> &CoherenceConfig {
        &self.config
    }

    fn slot(&self, agent: AgentId, shared: bool, line: u32) -> usize {
        if shared {
            (line as usize) * (self.agents as usize) + agent.index()
        } else {
            agent.index() * (self.config.private_lines as usize) + line as usize
        }
    }

    /// The MESI state of one line in `agent`'s cache (observability and
    /// test hook; the hot path reads states through internal slots).
    #[must_use]
    pub fn state(&self, agent: AgentId, line: Line) -> MesiState {
        let (shared, idx) = match line {
            Line::Private(l) => (false, l),
            Line::Shared(l) => (true, l),
        };
        MesiState::from_u8(self.storage(shared)[self.slot(agent, shared, idx)])
    }

    fn storage(&self, shared: bool) -> &[u8] {
        if shared {
            &self.shared
        } else {
            &self.private
        }
    }

    /// Checks the MESI single-owner invariant over every shared line:
    /// a Modified or Exclusive copy excludes *all* other valid copies.
    /// Private lines are per-agent by construction and cannot conflict.
    #[must_use]
    pub fn invariants_hold(&self) -> bool {
        let n = self.agents as usize;
        for line in 0..self.config.shared_lines as usize {
            let copies = &self.shared[line * n..(line + 1) * n];
            let owners = copies.iter().filter(|&&s| s >= 2).count();
            let valid = copies.iter().filter(|&&s| s != 0).count();
            if owners > 1 || (owners == 1 && valid > 1) {
                return false;
            }
        }
        true
    }

    /// Executes `agent`'s reference stream until a reference needs the
    /// bus, and returns the compute time consumed (the delay between the
    /// agent becoming runnable and its bus-request assertion). The
    /// missing reference is frozen as the agent's pending request until
    /// [`complete`](CoherenceSystem::complete) resolves it.
    ///
    /// `draw` supplies uniform variates on `[0, 1)` on behalf of the
    /// agent — the simulator passes its `DrawEngine::uniform` seam, so
    /// reference/fast engine determinism carries over verbatim.
    pub fn next_miss(&mut self, agent: AgentId, mut draw: impl FnMut(AgentId) -> f64) -> Time {
        let cfg = self.config;
        let mut refs = 0u32;
        loop {
            refs += 1;
            let shared = cfg.shared_lines > 0 && draw(agent) < cfg.shared_fraction;
            let lines = if shared { cfg.shared_lines } else { cfg.private_lines };
            // `u < 1.0`, so the product floors below `lines`; the min is
            // belt-and-braces against u == 1.0 - eps rounding up.
            let line = ((draw(agent) * f64::from(lines)) as u32).min(lines - 1);
            let write = draw(agent) < cfg.write_fraction;
            let slot = self.slot(agent, shared, line);
            let mut state = MesiState::from_u8(self.storage(shared)[slot]);
            if state != MesiState::Invalid && draw(agent) < cfg.eviction_rate {
                // Silent capacity eviction between accesses.
                state = MesiState::Invalid;
                self.storage_mut(shared)[slot] = 0;
            }
            let needs_bus = state == MesiState::Invalid
                || (write && state == MesiState::Shared)
                || refs >= MAX_HIT_RUN;
            if needs_bus {
                if refs >= MAX_HIT_RUN && state != MesiState::Invalid {
                    // Forced capacity miss: bounds the hit run.
                    self.storage_mut(shared)[slot] = 0;
                }
                self.pending[agent.index()] = Pending {
                    active: true,
                    shared,
                    line,
                    write,
                };
                return Time::saturating(f64::from(refs) * cfg.reference_time);
            }
            // Hit. A write hit on an Exclusive line promotes silently.
            if write && state == MesiState::Exclusive {
                self.storage_mut(shared)[slot] = MesiState::Modified.to_u8();
            }
        }
    }

    fn storage_mut(&mut self, shared: bool) -> &mut [u8] {
        if shared {
            &mut self.shared
        } else {
            &mut self.private
        }
    }

    /// Resolves `agent`'s pending miss: the bus transfer completed, so
    /// the MESI transition is applied *now*, against the current state
    /// (another agent's write may have invalidated this agent's copy
    /// while the request waited, degrading an intended upgrade into a
    /// full write miss). Other holders of a shared line are invalidated
    /// (writes) or downgraded to Shared (reads); `on_invalidate` fires
    /// once per cache that lost its copy, so the caller can attribute
    /// per-victim counters without this crate depending on the
    /// observability layer.
    pub fn complete(
        &mut self,
        agent: AgentId,
        mut on_invalidate: impl FnMut(AgentId),
    ) -> Completion {
        let idx = agent.index();
        let p = self.pending[idx];
        debug_assert!(p.active, "complete() without a pending miss");
        self.pending[idx] = Pending::default();
        let slot = self.slot(agent, p.shared, p.line);
        let state = MesiState::from_u8(self.storage(p.shared)[slot]);
        let mut invalidated = 0u32;
        let op;
        if p.write {
            if p.shared {
                let n = self.agents as usize;
                let base = (p.line as usize) * n;
                for other in 0..n {
                    if other == idx {
                        continue;
                    }
                    let copy = &mut self.shared[base + other];
                    if *copy != 0 {
                        *copy = 0;
                        invalidated += 1;
                        on_invalidate(AgentId::from_index_saturating(other));
                    }
                }
            }
            // A pending write finds its line Invalid (full write miss)
            // or still Shared (upgrade); Exclusive/Modified writes are
            // hits and never reach the bus.
            op = if state == MesiState::Shared {
                CoherenceOp::Upgrade
            } else {
                debug_assert_eq!(state, MesiState::Invalid, "write reached the bus from {state:?}");
                CoherenceOp::WriteMiss
            };
            self.storage_mut(p.shared)[slot] = MesiState::Modified.to_u8();
        } else {
            debug_assert_eq!(state, MesiState::Invalid, "read reached the bus from {state:?}");
            let mut others_hold = false;
            if p.shared {
                let n = self.agents as usize;
                let base = (p.line as usize) * n;
                for other in 0..n {
                    if other == idx {
                        continue;
                    }
                    let copy = &mut self.shared[base + other];
                    if *copy != 0 {
                        // Modified/Exclusive owners are snooped down to
                        // Shared (the dirty copy is flushed as part of
                        // the fixed-time transaction).
                        *copy = MesiState::Shared.to_u8();
                        others_hold = true;
                    }
                }
            }
            self.storage_mut(p.shared)[slot] = if others_hold {
                MesiState::Shared.to_u8()
            } else {
                MesiState::Exclusive.to_u8()
            };
            op = CoherenceOp::ReadMiss;
        }
        Completion { op, invalidated }
    }
}

/// Index-to-identity helper mirroring `AgentId::index`, saturating the
/// (unreachable) overflow instead of carrying a panic branch onto the
/// invalidation scan. `index < agents <= 128`, so the cast is exact.
trait FromIndex {
    fn from_index_saturating(index: usize) -> AgentId;
}

impl FromIndex for AgentId {
    fn from_index_saturating(index: usize) -> AgentId {
        let raw = u32::try_from(index + 1).unwrap_or(u32::MAX);
        AgentId::new(raw).unwrap_or(AgentId::MIN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    fn cfg() -> CoherenceConfig {
        CoherenceConfig::default_mix()
    }

    #[test]
    fn config_rejects_out_of_range_parameters() {
        assert!(CoherenceConfig::new(0, 4, 0.5, 0.5, 0.1, 0.25).is_err());
        assert!(CoherenceConfig::new(8, 4, -0.1, 0.5, 0.1, 0.25).is_err());
        assert!(CoherenceConfig::new(8, 4, 0.5, 1.5, 0.1, 0.25).is_err());
        assert!(CoherenceConfig::new(8, 4, 0.5, 0.5, f64::NAN, 0.25).is_err());
        assert!(CoherenceConfig::new(8, 4, 0.5, 0.5, 0.1, 0.0).is_err());
        assert!(CoherenceConfig::new(8, 4, 0.5, 0.5, 0.1, f64::INFINITY).is_err());
        assert!(CoherenceConfig::new(8, 0, 0.0, 0.5, 0.1, 0.25).is_ok());
    }

    #[test]
    fn cold_cache_first_reference_is_a_compulsory_miss() {
        let mut sys = CoherenceSystem::new(2, cfg());
        let gap = sys.next_miss(id(1), |_| 0.0);
        // One reference executed: shared region (draw 0 < 0.3), line 0,
        // write (draw 0 < 0.3), Invalid -> miss immediately.
        assert_eq!(gap.as_f64(), cfg().reference_time);
        let done = sys.complete(id(1), |_| {});
        assert_eq!(done.op, CoherenceOp::WriteMiss);
        assert_eq!(done.invalidated, 0);
        assert_eq!(sys.state(id(1), Line::Shared(0)), MesiState::Modified);
    }

    /// Feeds `next_miss` a fixed per-reference draw triple
    /// (region, line, write); eviction is off in these tests so the
    /// fourth draw never happens.
    fn feed(seq: [f64; 3]) -> impl FnMut(AgentId) -> f64 {
        let mut i = 0;
        move |_| {
            let v = seq[i % 3];
            i += 1;
            v
        }
    }

    #[test]
    fn write_miss_invalidates_every_other_holder() {
        let c = CoherenceConfig::new(4, 2, 1.0, 0.5, 0.0, 1.0).unwrap();
        let mut m = CoherenceSystem::new(3, c);
        let read = [0.0, 0.0, 0.9]; // write draw 0.9 >= 0.5 -> read
        let write = [0.0, 0.0, 0.0]; // write draw 0.0 < 0.5 -> write
        // Agents 2 and 3 read shared line 0: first Exclusive, then both
        // downgrade to Shared.
        m.next_miss(id(2), feed(read));
        m.complete(id(2), |_| {});
        assert_eq!(m.state(id(2), Line::Shared(0)), MesiState::Exclusive);
        m.next_miss(id(3), feed(read));
        let done = m.complete(id(3), |_| {});
        assert_eq!(done.op, CoherenceOp::ReadMiss);
        assert_eq!(m.state(id(2), Line::Shared(0)), MesiState::Shared);
        assert_eq!(m.state(id(3), Line::Shared(0)), MesiState::Shared);
        // Agent 1 writes the line: a full write miss that invalidates
        // both sharers, attributed per victim through the callback.
        m.next_miss(id(1), feed(write));
        let mut victims = Vec::new();
        let done = m.complete(id(1), |v| victims.push(v.get()));
        assert_eq!(done.op, CoherenceOp::WriteMiss);
        assert_eq!(done.invalidated, 2);
        assert_eq!(victims, vec![2, 3]);
        assert_eq!(m.state(id(1), Line::Shared(0)), MesiState::Modified);
        assert_eq!(m.state(id(2), Line::Shared(0)), MesiState::Invalid);
        assert_eq!(m.state(id(3), Line::Shared(0)), MesiState::Invalid);
        assert!(m.invariants_hold());
    }

    #[test]
    fn shared_write_reaches_the_bus_as_an_upgrade() {
        let c = CoherenceConfig::new(4, 2, 1.0, 0.5, 0.0, 1.0).unwrap();
        let mut m = CoherenceSystem::new(2, c);
        // Both agents read shared line 0 -> both Shared.
        m.next_miss(id(1), feed([0.0, 0.0, 0.9]));
        m.complete(id(1), |_| {});
        m.next_miss(id(2), feed([0.0, 0.0, 0.9]));
        m.complete(id(2), |_| {});
        // Agent 1 writes it while still holding it Shared: BusUpgr.
        m.next_miss(id(1), feed([0.0, 0.0, 0.0]));
        let done = m.complete(id(1), |_| {});
        assert_eq!(done.op, CoherenceOp::Upgrade);
        assert_eq!(done.invalidated, 1);
        assert_eq!(m.state(id(1), Line::Shared(0)), MesiState::Modified);
        assert!(m.invariants_hold());
    }

    #[test]
    fn racing_writer_degrades_a_pending_upgrade_to_a_write_miss() {
        let c = CoherenceConfig::new(4, 2, 1.0, 0.5, 0.0, 1.0).unwrap();
        let mut m = CoherenceSystem::new(2, c);
        m.next_miss(id(1), feed([0.0, 0.0, 0.9]));
        m.complete(id(1), |_| {});
        m.next_miss(id(2), feed([0.0, 0.0, 0.9]));
        m.complete(id(2), |_| {});
        // Both agents now intend to write line 0; both misses are
        // pending (generated as upgrades, since both still hold Shared).
        m.next_miss(id(1), feed([0.0, 0.0, 0.0]));
        m.next_miss(id(2), feed([0.0, 0.0, 0.0]));
        // Agent 2 is granted first: its upgrade invalidates agent 1.
        assert_eq!(m.complete(id(2), |_| {}).op, CoherenceOp::Upgrade);
        // Agent 1's request resolves against its *current* (Invalid)
        // state: the intended upgrade degrades to a full write miss.
        let done = m.complete(id(1), |_| {});
        assert_eq!(done.op, CoherenceOp::WriteMiss);
        assert_eq!(done.invalidated, 1);
        assert_eq!(m.state(id(2), Line::Shared(0)), MesiState::Invalid);
        assert!(m.invariants_hold());
    }

    #[test]
    fn hit_run_is_bounded_by_the_cap() {
        // Shared fraction 0, write fraction 0, eviction 0: after the
        // compulsory miss on private line 0, every further reference to
        // it hits forever — the cap must force a miss.
        let c = CoherenceConfig::new(1, 0, 0.0, 0.0, 0.0, 1.0).unwrap();
        let mut sys = CoherenceSystem::new(1, c);
        sys.next_miss(id(1), |_| 0.0);
        sys.complete(id(1), |_| {});
        let gap = sys.next_miss(id(1), |_| 0.0);
        assert_eq!(gap.as_f64(), f64::from(MAX_HIT_RUN));
        let done = sys.complete(id(1), |_| {});
        assert_eq!(done.op, CoherenceOp::ReadMiss);
    }
}
