//! Scheduling-level implementations of the bus arbitration protocols from
//! Vernon & Manber, *"Distributed Round-Robin and First-Come First-Serve
//! Protocols and Their Application to Multiprocessor Bus Arbitration"*
//! (ISCA 1988) — plus the baselines they are compared against and the
//! hybrid/adaptive extensions sketched in the paper's Section 5.
//!
//! Every protocol implements the [`Arbiter`] trait: requests are injected
//! with [`Arbiter::on_request`] and one bus arbitration is resolved with
//! [`Arbiter::arbitrate`]. The protocols are *deterministic state
//! machines*; all randomness lives in the workload layer. Their decisions
//! are verified against the register-level models in [`busarb_bus::signal`]
//! by the workspace integration tests.
//!
//! # Protocol inventory
//!
//! | Type | Paper section | Scheduling policy |
//! |------|--------------|-------------------|
//! | [`FixedPriority`] | §2.1 | highest static identity wins (unfair baseline) |
//! | [`AssuredAccess`] (idle-batch) | §2.2 | Fastbus / NuBus / Multibus II batching |
//! | [`AssuredAccess`] (fairness-release) | §2.2 | Futurebus inhibit / release batching |
//! | [`DistributedRoundRobin`] | §3.1 | true round-robin via static identities (3 hardware implementations) |
//! | [`DistributedFcfs`] | §3.2 | FCFS via waiting-time counters (2 counter strategies) |
//! | [`CentralRoundRobin`] | §3.1 | reference central RR arbiter |
//! | [`CentralFcfs`] | §3.2 | reference central FCFS arbiter |
//! | [`HybridRrFcfs`] | §5 | FCFS across arrival windows, RR within a window |
//! | [`AdaptiveArbiter`] | §5 | switches RR/FCFS from observed request patterns |
//!
//! # Examples
//!
//! ```
//! use busarb_core::{Arbiter, DistributedRoundRobin};
//! use busarb_types::{AgentId, Priority, Time};
//!
//! # fn main() -> Result<(), busarb_types::Error> {
//! let mut rr = DistributedRoundRobin::new(4)?;
//! for i in 1..=4 {
//!     rr.on_request(Time::ZERO, AgentId::new(i)?, Priority::Ordinary);
//! }
//! let order: Vec<u32> = (0..4)
//!     .map(|_| rr.arbitrate(Time::ZERO).unwrap().agent.get())
//!     .collect();
//! assert_eq!(order, [4, 3, 2, 1]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod arbiter;
mod assured_access;
mod central;
mod fcfs;
mod fixed_priority;
mod hybrid;
mod rotating;
mod round_robin;
mod ticket;

pub use adaptive::{AdaptiveArbiter, AdaptiveConfig, AdaptiveMode};
pub use arbiter::{Arbiter, Grant, ProtocolKind};
pub use assured_access::{AssuredAccess, BatchingRule};
pub use central::{CentralFcfs, CentralRoundRobin};
pub use fcfs::{CounterStrategy, DistributedFcfs, FcfsConfig, PriorityCounterRule};
pub use fixed_priority::FixedPriority;
pub use hybrid::HybridRrFcfs;
pub use rotating::RotatingPriority;
pub use round_robin::{DistributedRoundRobin, RrImplementation};
pub use ticket::TicketFcfs;

// Re-export the counter-overflow policy shared with the signal level.
pub use busarb_bus::signal::CounterPolicy;
