//! Central reference arbiters.
//!
//! The paper's claim for the distributed RR protocol is that it is
//! "identical to the central round-robin arbiter", and the FCFS protocol
//! approximates a central FCFS queue. These reference implementations are
//! written *independently* of the distributed ones — the central RR holds a
//! hardware-style request register and rotates it so the scan is a single
//! leading-bit pick (where the distributed arbiter masks below a register
//! value); the central FCFS keeps an arrival-ordered queue — so that
//! equality of grant sequences is a meaningful cross-check (see the
//! `equivalence` property tests).

use std::collections::VecDeque;

use busarb_types::{AgentId, Error, Priority, Time};

use crate::arbiter::{check_agent, validate_agents, Arbiter, Grant};

/// A central round-robin arbiter: a pointer register plus a request
/// register, scanned by rotating the register and taking its leading bit.
///
/// # Examples
///
/// ```
/// use busarb_core::{Arbiter, CentralRoundRobin};
/// use busarb_types::{AgentId, Priority, Time};
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// let mut rr = CentralRoundRobin::new(3)?;
/// for i in 1..=3 {
///     rr.on_request(Time::ZERO, AgentId::new(i)?, Priority::Ordinary);
/// }
/// assert_eq!(rr.arbitrate(Time::ZERO).unwrap().agent.get(), 3);
/// assert_eq!(rr.arbitrate(Time::ZERO).unwrap().agent.get(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CentralRoundRobin {
    n: u32,
    /// Request register: bit `a-1` is set while agent `a` has an ordinary
    /// request pending.
    ordinary: u128,
    /// Request register for the urgent class.
    urgent: u128,
    /// Identity of the most recent winner; the next scan starts just below
    /// it and wraps.
    pointer: u32,
}

impl CentralRoundRobin {
    /// Creates a central round-robin arbiter for `n` agents.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] if `n` is 0 or exceeds 128.
    pub fn new(n: u32) -> Result<Self, Error> {
        validate_agents(n)?;
        Ok(CentralRoundRobin {
            n,
            ordinary: 0,
            urgent: 0,
            // Start as if agent N+1 had just been served, so the first
            // scan begins at the top identity N — matching the distributed
            // protocol's initial register value.
            pointer: n + 1,
        })
    }

    /// Appends a normalized fingerprint of the arbitration-relevant state
    /// (request registers and the scan pointer) to `out`.
    #[doc(hidden)]
    pub fn verify_signature(&self, out: &mut Vec<u64>) {
        for bits in [self.ordinary, self.urgent] {
            out.push(bits as u64);
            out.push((bits >> 64) as u64);
        }
        out.push(u64::from(self.pointer));
    }

    /// Scans `pointer-1, pointer-2, …, 1, N, N-1, …, pointer` and returns
    /// the first requesting agent in `register`.
    ///
    /// The scan is realized as a barrel rotation: aligning the register so
    /// the pointer agent sits at bit 0 places the scan's first candidate at
    /// the top bit, so the whole circular walk collapses to one
    /// leading-bit pick on the rotated word.
    fn scan(&self, register: u128) -> Option<AgentId> {
        if register == 0 {
            return None;
        }
        let n = self.n;
        // `pointer` is in 1..=n+1; both 1 and n+1 start the scan at N.
        let shift = (self.pointer - 1) % n;
        let rotated = if shift == 0 {
            register
        } else {
            let mask = if n == 128 { u128::MAX } else { (1 << n) - 1 };
            ((register >> shift) | (register << (n - shift))) & mask
        };
        let top = 127 - rotated.leading_zeros();
        let winner = (top + shift) % n + 1;
        // `winner >= 1` by construction; `.ok()` folds the (impossible)
        // zero into "no winner" instead of a hot-path panic.
        AgentId::new(winner).ok()
    }
}

impl Arbiter for CentralRoundRobin {
    fn name(&self) -> &'static str {
        "central-rr"
    }

    fn agents(&self) -> u32 {
        self.n
    }

    fn on_request(&mut self, _now: Time, agent: AgentId, priority: Priority) {
        check_agent(agent, self.n);
        let register = match priority {
            Priority::Urgent => &mut self.urgent,
            Priority::Ordinary => &mut self.ordinary,
        };
        let bit = 1u128 << agent.index();
        assert!(
            *register & bit == 0,
            "agent {agent} already has an outstanding request"
        );
        *register |= bit;
    }

    fn arbitrate(&mut self, _now: Time) -> Option<Grant> {
        if self.urgent != 0 {
            // Urgent requests ignore the fairness protocol: served in
            // identity order, matching the distributed default. The
            // identity is built before the register/pointer updates so
            // the (impossible) zero-winner path cannot tear state.
            let winner = 128 - self.urgent.leading_zeros();
            let agent = AgentId::new(winner).ok()?;
            self.urgent &= !(1u128 << (winner - 1));
            self.pointer = winner;
            return Some(Grant {
                agent,
                priority: Priority::Urgent,
                arbitrations: 1,
            });
        }
        let winner = self.scan(self.ordinary)?;
        self.ordinary &= !(1u128 << winner.index());
        self.pointer = winner.get();
        Some(Grant::ordinary(winner))
    }

    fn pending(&self) -> usize {
        (self.ordinary.count_ones() + self.urgent.count_ones()) as usize
    }
}

/// One queued request in the central FCFS arbiter.
#[derive(Clone, Copy, Debug)]
struct QueuedRequest {
    agent: AgentId,
    arrived: Time,
    priority: Priority,
    seq: u64,
}

/// A central first-come first-serve arbiter: a literal arrival-ordered
/// queue.
///
/// Requests arriving at exactly the same instant are served in descending
/// static-identity order, matching the distributed protocols' tie rule.
/// Urgent requests form a separate queue served first (FCFS within the
/// class).
///
/// Unlike the basic protocols, the central queue naturally supports
/// multiple outstanding requests per agent.
///
/// # Examples
///
/// ```
/// use busarb_core::{Arbiter, CentralFcfs};
/// use busarb_types::{AgentId, Priority, Time};
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// let mut fcfs = CentralFcfs::new(8)?;
/// fcfs.on_request(Time::from(1.0), AgentId::new(7)?, Priority::Ordinary);
/// fcfs.on_request(Time::from(0.5), AgentId::new(2)?, Priority::Ordinary);
/// // Earlier arrival wins regardless of identity.
/// assert_eq!(fcfs.arbitrate(Time::from(1.0)).unwrap().agent.get(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CentralFcfs {
    n: u32,
    queue: VecDeque<QueuedRequest>,
    next_seq: u64,
}

impl CentralFcfs {
    /// Creates a central FCFS arbiter for `n` agents.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] if `n` is 0 or exceeds 128.
    pub fn new(n: u32) -> Result<Self, Error> {
        validate_agents(n)?;
        Ok(CentralFcfs {
            n,
            queue: VecDeque::new(),
            next_seq: 0,
        })
    }

    /// Appends a normalized fingerprint of the arbitration-relevant state
    /// to `out`: queued requests in injection order with their class,
    /// identity, and arrival *rank* (absolute arrival times and sequence
    /// numbers grow without bound; only their relative order matters).
    #[doc(hidden)]
    pub fn verify_signature(&self, out: &mut Vec<u64>) {
        out.push(self.queue.len() as u64);
        for r in &self.queue {
            let rank = self.queue.iter().filter(|o| o.arrived < r.arrived).count();
            out.push(u64::from(r.agent.get()));
            out.push(u64::from(r.priority.bit()));
            out.push(rank as u64);
        }
    }

    /// Index of the next request to serve: earliest arrival in the highest
    /// pending priority class, ties by descending identity, then by
    /// injection order.
    fn next_index(&self) -> Option<usize> {
        let best = self
            .queue
            .iter()
            .enumerate()
            .max_by_key(|(_, r)| {
                (
                    r.priority,
                    core::cmp::Reverse(r.arrived),
                    r.agent,
                    core::cmp::Reverse(r.seq),
                )
            })?
            .0;
        Some(best)
    }
}

impl Arbiter for CentralFcfs {
    fn name(&self) -> &'static str {
        "central-fcfs"
    }

    fn agents(&self) -> u32 {
        self.n
    }

    fn on_request(&mut self, now: Time, agent: AgentId, priority: Priority) {
        check_agent(agent, self.n);
        self.queue.push_back(QueuedRequest {
            agent,
            arrived: now,
            priority,
            seq: self.next_seq,
        });
        self.next_seq += 1;
    }

    fn arbitrate(&mut self, _now: Time) -> Option<Grant> {
        let idx = self.next_index()?;
        // `next_index` returns an in-range index, so the remove succeeds.
        let r = self.queue.remove(idx)?;
        Some(Grant {
            agent: r.agent,
            priority: r.priority,
            arbitrations: 1,
        })
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    #[test]
    fn central_rr_cycles() {
        let mut a = CentralRoundRobin::new(4).unwrap();
        for i in 1..=4 {
            a.on_request(Time::ZERO, id(i), Priority::Ordinary);
        }
        let mut order = Vec::new();
        for _ in 0..8 {
            let g = a.arbitrate(Time::ZERO).unwrap();
            order.push(g.agent.get());
            a.on_request(Time::ZERO, g.agent, Priority::Ordinary);
        }
        assert_eq!(order, [4, 3, 2, 1, 4, 3, 2, 1]);
    }

    #[test]
    fn central_rr_scan_wraps() {
        let mut a = CentralRoundRobin::new(8).unwrap();
        a.on_request(Time::ZERO, id(4), Priority::Ordinary);
        assert_eq!(a.arbitrate(Time::ZERO).unwrap().agent, id(4));
        // Pointer at 4: agent 5 is at the *end* of the scan, agent 3 first.
        a.on_request(Time::ZERO, id(5), Priority::Ordinary);
        a.on_request(Time::ZERO, id(3), Priority::Ordinary);
        assert_eq!(a.arbitrate(Time::ZERO).unwrap().agent, id(3));
        assert_eq!(a.arbitrate(Time::ZERO).unwrap().agent, id(5));
    }

    #[test]
    fn central_fcfs_serves_in_arrival_order() {
        let mut a = CentralFcfs::new(8).unwrap();
        a.on_request(Time::from(3.0), id(8), Priority::Ordinary);
        a.on_request(Time::from(1.0), id(1), Priority::Ordinary);
        a.on_request(Time::from(2.0), id(5), Priority::Ordinary);
        let order: Vec<u32> = (0..3)
            .map(|_| a.arbitrate(Time::from(3.0)).unwrap().agent.get())
            .collect();
        assert_eq!(order, [1, 5, 8]);
    }

    #[test]
    fn central_fcfs_simultaneous_ties_by_identity() {
        let mut a = CentralFcfs::new(8).unwrap();
        a.on_request(Time::from(1.0), id(3), Priority::Ordinary);
        a.on_request(Time::from(1.0), id(6), Priority::Ordinary);
        assert_eq!(a.arbitrate(Time::from(1.0)).unwrap().agent, id(6));
        assert_eq!(a.arbitrate(Time::from(1.0)).unwrap().agent, id(3));
    }

    #[test]
    fn central_fcfs_supports_multiple_outstanding() {
        let mut a = CentralFcfs::new(4).unwrap();
        a.on_request(Time::from(1.0), id(2), Priority::Ordinary);
        a.on_request(Time::from(2.0), id(2), Priority::Ordinary);
        a.on_request(Time::from(1.5), id(3), Priority::Ordinary);
        let order: Vec<u32> = (0..3)
            .map(|_| a.arbitrate(Time::from(2.0)).unwrap().agent.get())
            .collect();
        assert_eq!(order, [2, 3, 2]);
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn central_fcfs_urgent_first_fcfs_within_class() {
        let mut a = CentralFcfs::new(8).unwrap();
        a.on_request(Time::from(0.0), id(8), Priority::Ordinary);
        a.on_request(Time::from(1.0), id(2), Priority::Urgent);
        a.on_request(Time::from(2.0), id(5), Priority::Urgent);
        let g1 = a.arbitrate(Time::from(2.0)).unwrap();
        assert_eq!((g1.agent, g1.priority), (id(2), Priority::Urgent));
        assert_eq!(a.arbitrate(Time::from(2.0)).unwrap().agent, id(5));
        assert_eq!(a.arbitrate(Time::from(2.0)).unwrap().agent, id(8));
    }

    #[test]
    fn central_rr_urgent_first() {
        let mut a = CentralRoundRobin::new(8).unwrap();
        a.on_request(Time::ZERO, id(8), Priority::Ordinary);
        a.on_request(Time::ZERO, id(2), Priority::Urgent);
        let g = a.arbitrate(Time::ZERO).unwrap();
        assert_eq!((g.agent, g.priority), (id(2), Priority::Urgent));
    }

    #[test]
    fn empty_arbiters_return_none() {
        assert!(CentralRoundRobin::new(4)
            .unwrap()
            .arbitrate(Time::ZERO)
            .is_none());
        assert!(CentralFcfs::new(4).unwrap().arbitrate(Time::ZERO).is_none());
    }

    #[test]
    #[should_panic(expected = "already has an outstanding request")]
    fn central_rr_rejects_duplicates() {
        let mut a = CentralRoundRobin::new(4).unwrap();
        a.on_request(Time::ZERO, id(2), Priority::Ordinary);
        a.on_request(Time::ZERO, id(2), Priority::Ordinary);
    }
}
