//! The arbitration protocol interface.

use core::fmt;

use busarb_bus::NumberLayout;
use busarb_types::{AgentId, Error, Priority, Time};

/// The outcome of one bus arbitration: who gets the bus next.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Grant {
    /// The agent granted bus mastership.
    pub agent: AgentId,
    /// The service class of the granted request.
    pub priority: Priority,
    /// Number of line arbitrations consumed producing this grant (2 when
    /// the RR-3 implementation wraps around via an empty arbitration, or
    /// when a Futurebus fairness-release cycle preceded the productive
    /// arbitration).
    pub arbitrations: u32,
}

impl Grant {
    pub(crate) fn ordinary(agent: AgentId) -> Self {
        Grant {
            agent,
            priority: Priority::Ordinary,
            arbitrations: 1,
        }
    }
}

impl fmt::Display for Grant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "grant(agent={}, {}, {} arbitration(s))",
            self.agent, self.priority, self.arbitrations
        )
    }
}

/// A bus arbitration protocol, modeled at the scheduling level.
///
/// The contract mirrors what the hardware sees:
///
/// * [`Arbiter::on_request`] — the agent asserts the shared bus-request
///   line at `now`. Calls must be non-decreasing in time. An agent may have
///   several outstanding requests only if the protocol supports it
///   (the FCFS extension); others panic.
/// * [`Arbiter::arbitrate`] — resolve one arbitration among the currently
///   eligible competitors. Requests injected *after* the previous
///   `arbitrate` call are visible (the simulator snapshots competitor sets
///   by calling `arbitrate` at the arbitration's start time).
///
/// Implementations are deterministic; identical call sequences produce
/// identical grant sequences.
pub trait Arbiter {
    /// Protocol name for reports, e.g. `"rr"` or `"fcfs-1"`.
    fn name(&self) -> &'static str;

    /// Number of agents on the bus.
    fn agents(&self) -> u32;

    /// The arbitration-number layout used on the bus lines, if the
    /// protocol is a distributed one with a defined line cost.
    fn layout(&self) -> Option<NumberLayout> {
        None
    }

    /// An agent asserts the bus-request line.
    ///
    /// # Panics
    ///
    /// Panics if `agent` exceeds the system size, or if the agent already
    /// has the maximum number of outstanding requests the protocol
    /// supports.
    fn on_request(&mut self, now: Time, agent: AgentId, priority: Priority);

    /// Resolves one arbitration at `now`, returning the granted agent, or
    /// `None` if no requests are pending.
    fn arbitrate(&mut self, now: Time) -> Option<Grant>;

    /// Number of requests currently pending (asserting the request line or
    /// deferred by the protocol's batching rules).
    fn pending(&self) -> usize;
}

/// Boxed arbiters delegate to their contents, so `Box<dyn Arbiter>` can be
/// handed to code that is generic over `A: Arbiter` (the simulator's
/// monomorphized runner) without a separate dynamic entry point.
impl<A: Arbiter + ?Sized> Arbiter for Box<A> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn agents(&self) -> u32 {
        (**self).agents()
    }

    fn layout(&self) -> Option<NumberLayout> {
        (**self).layout()
    }

    fn on_request(&mut self, now: Time, agent: AgentId, priority: Priority) {
        (**self).on_request(now, agent, priority);
    }

    fn arbitrate(&mut self, now: Time) -> Option<Grant> {
        (**self).arbitrate(now)
    }

    fn pending(&self) -> usize {
        (**self).pending()
    }
}

/// Enumeration of every protocol in the library, for building arbiters
/// from experiment configuration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[non_exhaustive]
pub enum ProtocolKind {
    /// Fixed priority by static identity (§2.1).
    FixedPriority,
    /// Assured access, idle-batch rule (Fastbus/NuBus/Multibus II, §2.2).
    AssuredAccessIdleBatch,
    /// Assured access, fairness-release rule (Futurebus, §2.2).
    AssuredAccessFairnessRelease,
    /// Assured access, modified fairness-release rule (closed batches).
    AssuredAccessClosedBatch,
    /// Distributed round-robin (§3.1), RR-1 implementation.
    RoundRobin,
    /// Distributed FCFS (§3.2), counter-per-lost-arbitration strategy.
    Fcfs1,
    /// Distributed FCFS (§3.2), a-incr counter strategy.
    Fcfs2,
    /// Central round-robin reference arbiter.
    CentralRoundRobin,
    /// Central FCFS reference arbiter.
    CentralFcfs,
    /// Hybrid RR-within-window / FCFS-across-windows (§5).
    Hybrid,
    /// Adaptive RR/FCFS switcher (§5).
    Adaptive,
    /// Rotating-priority round robin (the prior art of §2.2).
    RotatingRr,
    /// Ticket-based FCFS \[ShAh81\] (the prior FCFS proposal).
    TicketFcfs,
}

impl ProtocolKind {
    /// Builds a boxed arbiter of this kind for `n` agents with default
    /// parameters.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (e.g. invalid agent counts).
    pub fn build(self, n: u32) -> Result<Box<dyn Arbiter>, Error> {
        use crate::{
            AssuredAccess, BatchingRule, CentralFcfs, CentralRoundRobin, CounterStrategy,
            DistributedFcfs, DistributedRoundRobin, FixedPriority, HybridRrFcfs,
        };
        Ok(match self {
            ProtocolKind::FixedPriority => Box::new(FixedPriority::new(n)?),
            ProtocolKind::AssuredAccessIdleBatch => {
                Box::new(AssuredAccess::new(n, BatchingRule::IdleBatch)?)
            }
            ProtocolKind::AssuredAccessFairnessRelease => {
                Box::new(AssuredAccess::new(n, BatchingRule::FairnessRelease)?)
            }
            ProtocolKind::AssuredAccessClosedBatch => {
                Box::new(AssuredAccess::new(n, BatchingRule::ClosedBatch)?)
            }
            ProtocolKind::RoundRobin => Box::new(DistributedRoundRobin::new(n)?),
            ProtocolKind::Fcfs1 => Box::new(DistributedFcfs::new(
                n,
                CounterStrategy::PerLostArbitration,
            )?),
            ProtocolKind::Fcfs2 => Box::new(DistributedFcfs::new(n, CounterStrategy::PerArrival)?),
            ProtocolKind::CentralRoundRobin => Box::new(CentralRoundRobin::new(n)?),
            ProtocolKind::CentralFcfs => Box::new(CentralFcfs::new(n)?),
            ProtocolKind::Hybrid => Box::new(HybridRrFcfs::new(n)?),
            ProtocolKind::Adaptive => Box::new(crate::AdaptiveArbiter::new(n)?),
            ProtocolKind::RotatingRr => Box::new(crate::RotatingPriority::new(n)?),
            ProtocolKind::TicketFcfs => Box::new(crate::TicketFcfs::new(n)?),
        })
    }

    /// All kinds, for exhaustive comparisons.
    #[must_use]
    pub fn all() -> &'static [ProtocolKind] {
        &[
            ProtocolKind::FixedPriority,
            ProtocolKind::AssuredAccessIdleBatch,
            ProtocolKind::AssuredAccessFairnessRelease,
            ProtocolKind::AssuredAccessClosedBatch,
            ProtocolKind::RoundRobin,
            ProtocolKind::Fcfs1,
            ProtocolKind::Fcfs2,
            ProtocolKind::CentralRoundRobin,
            ProtocolKind::CentralFcfs,
            ProtocolKind::Hybrid,
            ProtocolKind::Adaptive,
            ProtocolKind::RotatingRr,
            ProtocolKind::TicketFcfs,
        ]
    }

    /// The protocols whose mean waiting times must agree by the
    /// conservation law for work-conserving, non-preemptive disciplines
    /// (paper footnote 4, citing Kleinrock). Every protocol in the library
    /// is work conserving — an arbitration always produces a grant while
    /// requests are pending — so this is the full set; it exists as a
    /// named concept for the conservation-law integration test.
    #[must_use]
    pub fn work_conserving() -> &'static [ProtocolKind] {
        Self::all()
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolKind::FixedPriority => "fixed-priority",
            ProtocolKind::AssuredAccessIdleBatch => "aap-1",
            ProtocolKind::AssuredAccessFairnessRelease => "aap-2",
            ProtocolKind::AssuredAccessClosedBatch => "aap-2m",
            ProtocolKind::RoundRobin => "rr",
            ProtocolKind::Fcfs1 => "fcfs-1",
            ProtocolKind::Fcfs2 => "fcfs-2",
            ProtocolKind::CentralRoundRobin => "central-rr",
            ProtocolKind::CentralFcfs => "central-fcfs",
            ProtocolKind::Hybrid => "hybrid",
            ProtocolKind::Adaptive => "adaptive",
            ProtocolKind::RotatingRr => "rotating-rr",
            ProtocolKind::TicketFcfs => "ticket-fcfs",
        };
        f.write_str(s)
    }
}

/// Shared validation for protocol constructors.
pub(crate) fn validate_agents(n: u32) -> Result<(), Error> {
    if n == 0 || n > 128 {
        Err(Error::InvalidAgentCount {
            requested: n,
            max: 128,
        })
    } else {
        Ok(())
    }
}

/// Shared request-injection sanity checks.
pub(crate) fn check_agent(agent: AgentId, n: u32) {
    assert!(agent.get() <= n, "agent {agent} exceeds system size {n}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_every_kind() {
        for &kind in ProtocolKind::all() {
            let arb = kind.build(10).unwrap();
            assert_eq!(arb.agents(), 10);
            assert_eq!(arb.pending(), 0);
            assert!(!arb.name().is_empty());
            assert!(!kind.to_string().is_empty());
        }
    }

    #[test]
    fn build_rejects_bad_sizes() {
        for &kind in ProtocolKind::all() {
            assert!(kind.build(0).is_err(), "{kind}");
            assert!(kind.build(200).is_err(), "{kind}");
        }
    }

    #[test]
    fn every_protocol_is_work_conserving() {
        let wc = ProtocolKind::work_conserving();
        assert_eq!(wc, ProtocolKind::all());
        assert!(wc.contains(&ProtocolKind::RoundRobin));
        assert!(wc.contains(&ProtocolKind::Fcfs1));
        assert!(wc.contains(&ProtocolKind::Fcfs2));
    }

    #[test]
    fn grant_display() {
        let g = Grant::ordinary(AgentId::new(3).unwrap());
        assert!(g.to_string().contains("agent=3"));
        assert_eq!(g.arbitrations, 1);
    }
}
