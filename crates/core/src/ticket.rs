//! Ticket-based FCFS — Sharma & Ahuja's bus allocation scheme
//! \[ShAh81\], the prior FCFS proposal the paper cites.
//!
//! *"A First-Come-First-Serve Bus Allocation Scheme Using Ticket
//! Assignments", Bell System Technical Journal 60(7), 1981.* The scheme
//! works like a deli counter: each arriving request draws a ticket from
//! a global modulo dispenser, a *service counter* on the bus displays
//! the ticket currently entitled to the bus, and an agent competes when
//! the displayed value matches its ticket. Service order is exact FCFS
//! in ticket-draw order as long as the window of outstanding tickets
//! never exceeds the ticket space.
//!
//! The scheme's practical weaknesses — the reason Vernon & Manber call
//! their counter-based protocol "the first **practical** proposal for a
//! FCFS arbiter" — are modeled explicitly:
//!
//! * **Serialized dispensing**: simultaneous arrivals must still draw
//!   *distinct* tickets, which requires an extra serializing interaction
//!   on the bus for every request; the model counts them
//!   ([`TicketFcfs::dispenser_grants`]). The Vernon–Manber counters need
//!   no dispenser at all — ties simply share a counter value.
//! * **Ticket collisions**: with a `w`-bit dispenser, more than `2^w`
//!   simultaneously outstanding requests alias tickets; two agents then
//!   hold the same number, the collision resolves by static identity,
//!   and FCFS order silently inverts.
//!   [`TicketFcfs::with_ticket_bits`] exposes the width so tests can
//!   demonstrate the hazard; the default width makes collisions
//!   impossible with one outstanding request per agent.

use busarb_bus::NumberLayout;
use busarb_types::{AgentId, AgentSet, Error, Priority, Time};

use crate::arbiter::{check_agent, validate_agents, Arbiter, Grant};

/// The \[ShAh81\] ticket arbiter.
///
/// Urgent requests bypass the ticket machinery entirely (priority bit,
/// identity order), leaving the ordinary-class ticket sequence dense.
///
/// # Examples
///
/// ```
/// use busarb_core::{Arbiter, TicketFcfs};
/// use busarb_types::{AgentId, Priority, Time};
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// let mut t = TicketFcfs::new(8)?;
/// t.on_request(Time::from(0.0), AgentId::new(5)?, Priority::Ordinary);
/// t.on_request(Time::from(1.0), AgentId::new(8)?, Priority::Ordinary);
/// // Exact FCFS by ticket order:
/// assert_eq!(t.arbitrate(Time::from(1.0)).unwrap().agent.get(), 5);
/// assert_eq!(t.arbitrate(Time::from(1.0)).unwrap().agent.get(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct TicketFcfs {
    n: u32,
    layout: NumberLayout,
    ticket_bits: u32,
    /// Next ticket the dispenser will hand out (already modulo-reduced).
    next_ticket: u64,
    /// The ticket value the service counter currently displays.
    serving: u64,
    /// Agents currently holding an ordinary-class ticket.
    holders: AgentSet,
    /// The ticket each holder drew, indexed by agent identity. Slots of
    /// agents outside `holders` are stale.
    tickets: Box<[u64]>,
    urgent: AgentSet,
    dispenser_grants: u64,
}

impl TicketFcfs {
    /// Creates a ticket arbiter with a dispenser wide enough that tickets
    /// can never collide while at most one request per agent is
    /// outstanding (`ceil(log2(N+1)) + 1` bits).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] if `n` is 0 or exceeds 128.
    pub fn new(n: u32) -> Result<Self, Error> {
        Self::with_ticket_bits(n, AgentId::lines_required(n) + 1)
    }

    /// Creates a ticket arbiter with an explicit dispenser width — narrow
    /// widths demonstrate the collision hazard.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] for a bad `n`,
    /// [`Error::ZeroCounterWidth`] for a zero width.
    pub fn with_ticket_bits(n: u32, ticket_bits: u32) -> Result<Self, Error> {
        validate_agents(n)?;
        if ticket_bits == 0 {
            return Err(Error::ZeroCounterWidth);
        }
        Ok(TicketFcfs {
            n,
            layout: NumberLayout::for_agents(n)?
                .with_counter_bits(ticket_bits)
                .with_priority_bit(),
            ticket_bits,
            next_ticket: 0,
            serving: 0,
            holders: AgentSet::new(),
            tickets: vec![0; n as usize].into_boxed_slice(),
            urgent: AgentSet::new(),
            dispenser_grants: 0,
        })
    }

    /// Size of the ticket space.
    fn ticket_space(&self) -> u64 {
        1u64 << self.ticket_bits.min(63)
    }

    /// Total dispenser interactions — each one is an extra serialized
    /// bus transaction in the \[ShAh81\] scheme.
    #[must_use]
    pub fn dispenser_grants(&self) -> u64 {
        self.dispenser_grants
    }

    /// The ticket value the service counter currently displays.
    #[must_use]
    pub fn serving(&self) -> u64 {
        self.serving
    }

    /// Appends a normalized fingerprint of the arbitration-relevant state
    /// to `out`. Ticket values are encoded relative to the service counter
    /// (the dispenser pair only ever compares modulo the ticket space) and
    /// holders are emitted sorted by `(relative ticket, identity)` via an
    /// allocation-free selection scan. The dispenser-grant statistic is
    /// excluded.
    #[doc(hidden)]
    pub fn verify_signature(&self, out: &mut Vec<u64>) {
        let space = self.ticket_space();
        let delta = |ticket: u64| (ticket + space - self.serving) % space;
        out.push(delta(self.next_ticket));
        out.push(self.holders.len() as u64);
        let mut last: Option<(u64, u32)> = None;
        for _ in 0..self.holders.len() {
            let (d, agent) = self
                .holders
                .iter()
                .map(|a| (delta(self.tickets[a.index()]), a.get()))
                .filter(|&key| last.is_none_or(|l| key > l))
                .min()
                .expect("selection scan visits each holder once");
            out.push(d);
            out.push(u64::from(agent));
            last = Some((d, agent));
        }
        busarb_types::fingerprint::push_set(out, self.urgent);
    }

    /// The ticket held by an agent's request, if it holds one.
    #[must_use]
    pub fn ticket_of(&self, agent: AgentId) -> Option<u64> {
        self.holders
            .contains(agent)
            .then(|| self.tickets[agent.index()])
    }
}

impl Arbiter for TicketFcfs {
    fn name(&self) -> &'static str {
        "ticket-fcfs"
    }

    fn agents(&self) -> u32 {
        self.n
    }

    fn layout(&self) -> Option<NumberLayout> {
        Some(self.layout)
    }

    fn on_request(&mut self, _now: Time, agent: AgentId, priority: Priority) {
        check_agent(agent, self.n);
        if priority.is_urgent() {
            assert!(
                self.urgent.insert(agent),
                "agent {agent} already has an outstanding urgent request"
            );
            return;
        }
        assert!(
            self.holders.insert(agent),
            "agent {agent} already has an outstanding request"
        );
        // Draw a ticket. Each draw is a serialized dispenser interaction.
        self.tickets[agent.index()] = self.next_ticket;
        self.next_ticket = (self.next_ticket + 1) % self.ticket_space();
        self.dispenser_grants += 1;
    }

    fn arbitrate(&mut self, _now: Time) -> Option<Grant> {
        if let Some(winner) = self.urgent.max() {
            self.urgent.remove(winner);
            return Some(Grant {
                agent: winner,
                priority: Priority::Urgent,
                arbitrations: 1,
            });
        }
        if self.holders.is_empty() {
            // An idle dispenser/counter pair resynchronizes.
            self.serving = self.next_ticket;
            return None;
        }
        // Agents whose ticket matches the displayed service counter
        // compete; a collision (ticket aliasing) resolves by the parallel
        // contention lines, i.e. by static identity. The ascending scan's
        // last match is exactly that highest identity.
        let mut winner = None;
        for agent in self.holders {
            if self.tickets[agent.index()] == self.serving {
                winner = Some(agent);
            }
        }
        // The oldest outstanding ordinary ticket always equals the
        // service counter, so the scan finds a winner.
        let winner = winner?;
        self.holders.remove(winner);
        self.serving = (self.serving + 1) % self.ticket_space();
        Some(Grant::ordinary(winner))
    }

    fn pending(&self) -> usize {
        self.holders.len() + self.urgent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CentralFcfs;

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    #[test]
    fn exact_fcfs_in_issue_order() {
        let mut t = TicketFcfs::new(10).unwrap();
        for (i, agent) in [7u32, 2, 9, 4].into_iter().enumerate() {
            t.on_request(Time::from(i as f64), id(agent), Priority::Ordinary);
        }
        let order: Vec<u32> = (0..4)
            .map(|_| t.arbitrate(Time::ZERO).unwrap().agent.get())
            .collect();
        assert_eq!(order, [7, 2, 9, 4]);
    }

    #[test]
    fn matches_central_fcfs_with_distinct_arrivals() {
        let mut ticket = TicketFcfs::new(8).unwrap();
        let mut central = CentralFcfs::new(8).unwrap();
        let schedule = [(0.0, 3u32), (0.5, 8), (1.0, 1), (1.5, 5), (2.0, 7)];
        for &(at, agent) in &schedule {
            ticket.on_request(Time::from(at), id(agent), Priority::Ordinary);
            central.on_request(Time::from(at), id(agent), Priority::Ordinary);
        }
        for _ in 0..schedule.len() {
            assert_eq!(
                ticket.arbitrate(Time::ZERO).map(|g| g.agent),
                central.arbitrate(Time::ZERO).map(|g| g.agent)
            );
        }
    }

    #[test]
    fn dispenser_serialization_is_counted() {
        let mut t = TicketFcfs::new(8).unwrap();
        for agent in 1..=5 {
            t.on_request(Time::ZERO, id(agent), Priority::Ordinary);
        }
        // Five simultaneous arrivals still require five serialized
        // dispenser interactions — the scheme's practicality problem.
        assert_eq!(t.dispenser_grants(), 5);
        // Simultaneous arrivals are ordered by draw order, not by
        // identity (unlike the Vernon-Manber counters, which tie).
        assert_eq!(t.arbitrate(Time::ZERO).unwrap().agent, id(1));
        assert_eq!(t.arbitrate(Time::ZERO).unwrap().agent, id(2));
    }

    #[test]
    fn ticket_collision_inverts_fcfs_order() {
        // 1-bit dispenser: three simultaneously outstanding requests must
        // alias. Agents 3 and 5 both hold ticket 0; when the counter
        // displays 0 the collision resolves by identity, so agent 5 —
        // which arrived LAST — is served FIRST.
        let mut t = TicketFcfs::with_ticket_bits(8, 1).unwrap();
        t.on_request(Time::ZERO, id(3), Priority::Ordinary); // ticket 0
        t.on_request(Time::ZERO, id(4), Priority::Ordinary); // ticket 1
        t.on_request(Time::ZERO, id(5), Priority::Ordinary); // ticket 0!
        assert_eq!(t.ticket_of(id(3)), Some(0));
        assert_eq!(t.ticket_of(id(5)), Some(0));
        assert_eq!(t.arbitrate(Time::ZERO).unwrap().agent, id(5));
        assert_eq!(t.arbitrate(Time::ZERO).unwrap().agent, id(4));
        assert_eq!(t.arbitrate(Time::ZERO).unwrap().agent, id(3));
    }

    #[test]
    fn default_width_is_exact_over_long_runs() {
        let n = 10u32;
        let mut t = TicketFcfs::new(n).unwrap();
        let mut central = CentralFcfs::new(n).unwrap();
        // Hundreds of wrap-arounds of the dispenser under saturation;
        // order must match a true FCFS queue throughout. Arrivals are
        // staggered because the ticket dispenser serializes same-instant
        // arrivals by draw order while the central queue ties by
        // identity.
        for agent in 1..=n {
            let at = Time::from(f64::from(agent) * 0.01);
            t.on_request(at, id(agent), Priority::Ordinary);
            central.on_request(at, id(agent), Priority::Ordinary);
        }
        for round in 0..1000u32 {
            let a = t.arbitrate(Time::ZERO).unwrap().agent;
            let b = central.arbitrate(Time::ZERO).unwrap().agent;
            assert_eq!(a, b, "round {round}");
            let at = Time::from(f64::from(round) + 1.0);
            t.on_request(at, a, Priority::Ordinary);
            central.on_request(at, a, Priority::Ordinary);
        }
    }

    #[test]
    fn idle_resynchronizes_the_counters() {
        let mut t = TicketFcfs::with_ticket_bits(4, 2).unwrap();
        t.on_request(Time::ZERO, id(1), Priority::Ordinary);
        t.arbitrate(Time::ZERO).unwrap();
        assert!(t.arbitrate(Time::ZERO).is_none());
        assert_eq!(t.serving(), 1);
        t.on_request(Time::ZERO, id(2), Priority::Ordinary);
        assert_eq!(t.arbitrate(Time::ZERO).unwrap().agent, id(2));
    }

    #[test]
    fn urgent_bypasses_the_dispenser() {
        let mut t = TicketFcfs::new(8).unwrap();
        t.on_request(Time::ZERO, id(6), Priority::Ordinary);
        t.on_request(Time::ZERO, id(2), Priority::Urgent);
        assert_eq!(t.dispenser_grants(), 1); // only the ordinary request drew
        let g = t.arbitrate(Time::ZERO).unwrap();
        assert_eq!((g.agent, g.priority), (id(2), Priority::Urgent));
        assert_eq!(t.arbitrate(Time::ZERO).unwrap().agent, id(6));
    }

    #[test]
    fn validation_and_metadata() {
        assert!(TicketFcfs::new(0).is_err());
        assert!(TicketFcfs::with_ticket_bits(8, 0).is_err());
        let t = TicketFcfs::new(30).unwrap();
        assert_eq!(t.name(), "ticket-fcfs");
        assert!(t.layout().unwrap().counter_bits() >= 6);
        assert_eq!(t.ticket_of(id(3)), None);
        assert_eq!(t.serving(), 0);
    }
}
