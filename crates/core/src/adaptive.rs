//! An adaptive arbiter that switches policy from observed request
//! patterns (paper §5).
//!
//! The paper closes by suggesting "an adaptive scheme that uses the
//! history of request patterns to optimize its behavior". The paper gives
//! no mechanism, so this module documents its own: the arbiter tracks the
//! fraction of recent arrivals that *tied* with another arrival in the
//! same sensing window. A high tie fraction means the FCFS counters are
//! doing little (ties are resolved by raw identity — unfair), so the
//! arbiter switches to round-robin selection; when ties become rare it
//! switches back to FCFS to enjoy the lower waiting-time variance. A 2:1
//! hysteresis between the two thresholds prevents oscillation.

use busarb_bus::NumberLayout;
use busarb_types::{AgentId, AgentSet, Error, Priority, Time};

use crate::arbiter::{check_agent, validate_agents, Arbiter, Grant};

/// The policy an [`AdaptiveArbiter`] is currently applying.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, Debug)]
pub enum AdaptiveMode {
    /// Order by waiting-time counters (FCFS-2 selection).
    #[default]
    Fcfs,
    /// Order by the round-robin scan (RR selection).
    RoundRobin,
}

impl core::fmt::Display for AdaptiveMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AdaptiveMode::Fcfs => f.write_str("fcfs"),
            AdaptiveMode::RoundRobin => f.write_str("round-robin"),
        }
    }
}

/// Tuning parameters for the [`AdaptiveArbiter`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AdaptiveConfig {
    /// Switch to round-robin when the recent tie fraction exceeds this.
    pub tie_threshold: f64,
    /// Number of recent arrivals considered.
    pub history: usize,
    /// Arrivals within this window of the previous one count as tied.
    pub tie_window: Time,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            tie_threshold: 0.5,
            history: 64,
            tie_window: Time::ZERO,
        }
    }
}

impl AdaptiveConfig {
    fn validate(&self) -> Result<(), Error> {
        if !(0.0..=1.0).contains(&self.tie_threshold) || self.history == 0 {
            return Err(Error::InvalidScenario {
                reason: format!(
                    "adaptive config needs tie_threshold in [0,1] and history > 0, got {} / {}",
                    self.tie_threshold, self.history
                ),
            });
        }
        if self.tie_window < Time::ZERO {
            return Err(Error::InvalidScenario {
                reason: "tie window must be non-negative".to_string(),
            });
        }
        Ok(())
    }
}

/// A fixed-capacity ring of booleans packed 64 to a word, tracking how
/// many are set.
///
/// Replaces a `VecDeque<bool>` (one byte per sample plus an O(history)
/// scan in `tie_fraction`) with a bit plane: push and the running tie
/// count are O(1), and the whole default 64-sample history lives in one
/// machine word.
#[derive(Clone, Debug)]
struct TieRing {
    words: Box<[u64]>,
    capacity: usize,
    /// Bit position of the oldest sample.
    start: usize,
    len: usize,
    /// Number of `true` samples currently in the ring.
    trues: usize,
}

impl TieRing {
    fn new(capacity: usize) -> Self {
        TieRing {
            words: vec![0; capacity.div_ceil(64)].into_boxed_slice(),
            capacity,
            start: 0,
            len: 0,
            trues: 0,
        }
    }

    /// The sample at logical index `i` (0 = oldest).
    fn bit(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mut pos = self.start + i;
        if pos >= self.capacity {
            pos -= self.capacity;
        }
        (self.words[pos / 64] >> (pos % 64)) & 1 == 1
    }

    /// Appends a sample, evicting the oldest once at capacity.
    fn push(&mut self, sample: bool) {
        if self.len == self.capacity {
            self.trues -= usize::from(self.bit(0));
            self.start += 1;
            if self.start == self.capacity {
                self.start = 0;
            }
            self.len -= 1;
        }
        let mut pos = self.start + self.len;
        if pos >= self.capacity {
            pos -= self.capacity;
        }
        let mask = 1u64 << (pos % 64);
        if sample {
            self.words[pos / 64] |= mask;
        } else {
            self.words[pos / 64] &= !mask;
        }
        self.len += 1;
        self.trues += usize::from(sample);
    }
}

/// An arbiter that adapts between FCFS and round-robin selection based on
/// the observed arrival pattern.
///
/// # Examples
///
/// ```
/// use busarb_core::{AdaptiveArbiter, AdaptiveMode, Arbiter};
/// use busarb_types::{AgentId, Priority, Time};
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// let mut a = AdaptiveArbiter::new(8)?;
/// assert_eq!(a.mode(), AdaptiveMode::Fcfs);
/// a.on_request(Time::ZERO, AgentId::new(3)?, Priority::Ordinary);
/// assert_eq!(a.arbitrate(Time::ZERO).unwrap().agent.get(), 3);
/// # Ok(())
/// # }
/// ```
/// As in the FCFS and hybrid arbiters, outstanding requests live in
/// identity-indexed planes: class membership is a pair of [`AgentSet`]
/// masks and each waiting-time counter is derived from a global pulse
/// epoch (the protocol admits one outstanding request per agent, which
/// makes the derived counter exact).
#[derive(Clone, Debug)]
pub struct AdaptiveArbiter {
    n: u32,
    config: AdaptiveConfig,
    layout: NumberLayout,
    /// Agents with an outstanding ordinary-class request.
    ordinary: AgentSet,
    /// Agents with an outstanding urgent-class request.
    urgent: AgentSet,
    /// Pulse epoch observed when each agent's request arrived.
    base: Box<[u64]>,
    /// Injection sequence number of each agent's request (diagnostics).
    seq: Box<[u64]>,
    /// Count of counter-increment pulses since construction.
    epoch: u64,
    next_seq: u64,
    last_pulse: Option<Time>,
    last_winner: u32,
    mode: AdaptiveMode,
    /// Ring of recent arrivals: `true` = tied with the previous arrival.
    recent_ties: TieRing,
    switches: u64,
}

impl AdaptiveArbiter {
    /// Creates an adaptive arbiter with [`AdaptiveConfig::default`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] if `n` is 0 or exceeds 128.
    pub fn new(n: u32) -> Result<Self, Error> {
        Self::with_config(n, AdaptiveConfig::default())
    }

    /// Creates an adaptive arbiter with explicit tuning.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] for a bad `n` and
    /// [`Error::InvalidScenario`] for bad tuning parameters.
    pub fn with_config(n: u32, config: AdaptiveConfig) -> Result<Self, Error> {
        validate_agents(n)?;
        config.validate()?;
        let layout = NumberLayout::for_agents(n)?
            .with_counter_bits(AgentId::lines_required(n).max(1))
            .with_rr_bit()
            .with_priority_bit();
        Ok(AdaptiveArbiter {
            n,
            config,
            layout,
            ordinary: AgentSet::new(),
            urgent: AgentSet::new(),
            base: vec![0; n as usize].into_boxed_slice(),
            seq: vec![0; n as usize].into_boxed_slice(),
            epoch: 0,
            next_seq: 0,
            last_pulse: None,
            last_winner: n + 1,
            mode: AdaptiveMode::Fcfs,
            recent_ties: TieRing::new(config.history),
            switches: 0,
        })
    }

    /// The derived waiting-time counter of an outstanding request: pulses
    /// since arrival, saturated at the counter-line capacity.
    #[inline]
    fn counter_of(&self, agent: AgentId) -> u64 {
        (self.epoch - self.base[agent.index()]).min(self.layout.counter_max())
    }

    /// The policy currently in force.
    #[must_use]
    pub fn mode(&self) -> AdaptiveMode {
        self.mode
    }

    /// Number of mode switches so far.
    #[must_use]
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Fraction of recent arrivals that tied with their predecessor.
    #[must_use]
    pub fn tie_fraction(&self) -> f64 {
        if self.recent_ties.len == 0 {
            0.0
        } else {
            self.recent_ties.trues as f64 / self.recent_ties.len as f64
        }
    }

    /// Appends a normalized fingerprint of the arbitration-relevant state
    /// to `out`: outstanding entries in arrival order (sequence numbers
    /// rank-normalized away), the winner register, the mode, and the
    /// tie-history ring (chunked into 64-bit words). The switch statistic
    /// and the `last_pulse` stamp are excluded — the bounded model checker
    /// drives the arbiter with strictly increasing times and a zero tie
    /// window, so a past pulse can never merge with a future arrival.
    #[doc(hidden)]
    pub fn verify_signature(&self, out: &mut Vec<u64>) {
        // Emit outstanding requests in injection order by selection scan
        // over the membership masks — quadratic in the (tiny) outstanding
        // count, but free of scratch allocations.
        let members = self.ordinary.union(self.urgent);
        out.push(members.len() as u64);
        let mut last: Option<u64> = None;
        for _ in 0..members.len() {
            let next = members
                .iter()
                .filter(|a| last.is_none_or(|l| self.seq[a.index()] > l))
                .min_by_key(|a| self.seq[a.index()])
                .expect("selection scan visits each member once");
            out.push(u64::from(next.get()));
            out.push(u64::from(self.urgent.contains(next) as u32));
            out.push(self.counter_of(next));
            last = Some(self.seq[next.index()]);
        }
        out.push(u64::from(self.last_winner));
        out.push(match self.mode {
            AdaptiveMode::Fcfs => 0,
            AdaptiveMode::RoundRobin => 1,
        });
        // Tie history oldest-first, re-packed into dense 64-bit chunks
        // (the ring's physical words rotate, so they are re-based here).
        out.push(self.recent_ties.len as u64);
        let mut word = 0u64;
        for i in 0..self.recent_ties.len {
            word |= u64::from(self.recent_ties.bit(i)) << (i % 64);
            if i % 64 == 63 || i + 1 == self.recent_ties.len {
                out.push(word);
                word = 0;
            }
        }
    }

    fn update_mode(&mut self) {
        if self.recent_ties.len < self.config.history {
            return; // not enough evidence yet
        }
        let f = self.tie_fraction();
        let next = match self.mode {
            AdaptiveMode::Fcfs if f > self.config.tie_threshold => AdaptiveMode::RoundRobin,
            // 2:1 hysteresis on the way back down.
            AdaptiveMode::RoundRobin if f < self.config.tie_threshold / 2.0 => AdaptiveMode::Fcfs,
            m => m,
        };
        if next != self.mode {
            self.mode = next;
            self.switches += 1;
        }
    }
}

impl Arbiter for AdaptiveArbiter {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn agents(&self) -> u32 {
        self.n
    }

    fn layout(&self) -> Option<NumberLayout> {
        Some(self.layout)
    }

    fn on_request(&mut self, now: Time, agent: AgentId, priority: Priority) {
        check_agent(agent, self.n);
        assert!(
            !self.ordinary.contains(agent) && !self.urgent.contains(agent),
            "agent {agent} already has an outstanding request"
        );
        let tied = self
            .last_pulse
            .is_some_and(|t| now - t <= self.config.tie_window);
        if !tied {
            // One epoch bump stands in for incrementing every outstanding
            // counter; saturation is applied when the counter is read.
            self.epoch += 1;
            self.last_pulse = Some(now);
        }
        self.recent_ties.push(tied);
        self.update_mode();
        match priority {
            Priority::Urgent => self.urgent.insert(agent),
            Priority::Ordinary => self.ordinary.insert(agent),
        };
        self.base[agent.index()] = self.epoch;
        self.seq[agent.index()] = self.next_seq;
        self.next_seq += 1;
    }

    fn arbitrate(&mut self, _now: Time) -> Option<Grant> {
        let (members, priority) = if !self.urgent.is_empty() {
            (self.urgent, Priority::Urgent)
        } else if !self.ordinary.is_empty() {
            (self.ordinary, Priority::Ordinary)
        } else {
            return None;
        };
        let winner = match self.mode {
            AdaptiveMode::Fcfs => {
                // Highest counter, ties to the highest identity: ascending
                // scan with a non-strict compare.
                let mut winner = None;
                let mut best = 0u64;
                for agent in members {
                    let counter = self.counter_of(agent);
                    if winner.is_none() || counter >= best {
                        winner = Some(agent);
                        best = counter;
                    }
                }
                winner
            }
            AdaptiveMode::RoundRobin => {
                // The RR scan is a pure mask operation: the highest
                // identity strictly below the winner register, wrapping to
                // the top when none is. The register always holds an
                // identity (>= 1); `.ok()` folds a zero register into the
                // wraparound branch instead of a hot-path panic.
                if self.last_winner <= self.n {
                    AgentId::new(self.last_winner)
                        .ok()
                        .and_then(|bound| members.max_below(bound))
                        .or_else(|| members.max())
                } else {
                    members.max()
                }
            }
        }?; // `members` is non-empty, so both scans find a winner.
        match priority {
            Priority::Urgent => self.urgent.remove(winner),
            Priority::Ordinary => self.ordinary.remove(winner),
        };
        self.last_winner = winner.get();
        Some(Grant {
            agent: winner,
            priority,
            arbitrations: 1,
        })
    }

    fn pending(&self) -> usize {
        self.ordinary.len() + self.urgent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    fn small_config() -> AdaptiveConfig {
        AdaptiveConfig {
            tie_threshold: 0.5,
            history: 4,
            tie_window: Time::ZERO,
        }
    }

    #[test]
    fn starts_in_fcfs_mode_and_orders_by_arrival() {
        let mut a = AdaptiveArbiter::new(8).unwrap();
        a.on_request(Time::from(0.0), id(2), Priority::Ordinary);
        a.on_request(Time::from(1.0), id(7), Priority::Ordinary);
        assert_eq!(a.mode(), AdaptiveMode::Fcfs);
        assert_eq!(a.arbitrate(Time::ZERO).unwrap().agent, id(2));
        assert_eq!(a.arbitrate(Time::ZERO).unwrap().agent, id(7));
    }

    #[test]
    fn switches_to_rr_under_heavy_ties() {
        let mut a = AdaptiveArbiter::with_config(8, small_config()).unwrap();
        // Four arrivals at the same instant: tie fraction 3/4 > 0.5.
        for agent in [1, 2, 3, 4] {
            a.on_request(Time::ZERO, id(agent), Priority::Ordinary);
        }
        assert_eq!(a.mode(), AdaptiveMode::RoundRobin);
        assert_eq!(a.switches(), 1);
        assert!(a.tie_fraction() > 0.5);
    }

    #[test]
    fn switches_back_with_hysteresis() {
        let mut a = AdaptiveArbiter::with_config(8, small_config()).unwrap();
        for agent in [1, 2, 3, 4] {
            a.on_request(Time::ZERO, id(agent), Priority::Ordinary);
        }
        assert_eq!(a.mode(), AdaptiveMode::RoundRobin);
        for _ in 0..4 {
            a.arbitrate(Time::ZERO);
        }
        // Spread-out arrivals: tie fraction falls to 0 < 0.25.
        for (i, agent) in [5, 6, 7, 8].into_iter().enumerate() {
            a.on_request(Time::from(1.0 + i as f64), id(agent), Priority::Ordinary);
        }
        assert_eq!(a.mode(), AdaptiveMode::Fcfs);
        assert_eq!(a.switches(), 2);
    }

    #[test]
    fn rr_mode_selects_round_robin_order() {
        let mut a = AdaptiveArbiter::with_config(8, small_config()).unwrap();
        // Seed register: serve 5 first.
        a.on_request(Time::ZERO, id(5), Priority::Ordinary);
        a.arbitrate(Time::ZERO);
        // Four same-instant arrivals push the tie fraction to 3/4 > 1/2.
        for agent in [2, 6, 7, 3] {
            a.on_request(Time::from(1.0), id(agent), Priority::Ordinary);
        }
        assert_eq!(a.mode(), AdaptiveMode::RoundRobin);
        // RR scan relative to register 5: 3, 2, then wrap to 7, 6.
        assert_eq!(a.arbitrate(Time::ZERO).unwrap().agent, id(3));
        assert_eq!(a.arbitrate(Time::ZERO).unwrap().agent, id(2));
        assert_eq!(a.arbitrate(Time::ZERO).unwrap().agent, id(7));
        assert_eq!(a.arbitrate(Time::ZERO).unwrap().agent, id(6));
    }

    #[test]
    fn urgent_requests_always_first() {
        let mut a = AdaptiveArbiter::new(8).unwrap();
        a.on_request(Time::from(0.0), id(3), Priority::Ordinary);
        a.on_request(Time::from(1.0), id(1), Priority::Urgent);
        let g = a.arbitrate(Time::ZERO).unwrap();
        assert_eq!((g.agent, g.priority), (id(1), Priority::Urgent));
    }

    #[test]
    fn config_validation() {
        assert!(AdaptiveArbiter::with_config(
            8,
            AdaptiveConfig {
                tie_threshold: 1.5,
                ..AdaptiveConfig::default()
            }
        )
        .is_err());
        assert!(AdaptiveArbiter::with_config(
            8,
            AdaptiveConfig {
                history: 0,
                ..AdaptiveConfig::default()
            }
        )
        .is_err());
        assert!(AdaptiveArbiter::new(0).is_err());
    }

    #[test]
    fn metadata() {
        let a = AdaptiveArbiter::new(16).unwrap();
        assert_eq!(a.name(), "adaptive");
        assert_eq!(a.agents(), 16);
        assert_eq!(a.tie_fraction(), 0.0);
        assert!(a.layout().is_some());
        assert_eq!(AdaptiveMode::Fcfs.to_string(), "fcfs");
        assert_eq!(AdaptiveMode::RoundRobin.to_string(), "round-robin");
    }
}
