//! The distributed round-robin protocol (paper §3.1).

use busarb_bus::NumberLayout;
use busarb_types::{AgentId, AgentSet, Error, Priority, Time};

use crate::arbiter::{check_agent, validate_agents, Arbiter, Grant};

/// Which of the three hardware implementations of the RR protocol is being
/// modeled.
///
/// All three produce the **same grant sequence**; they differ in bus-line
/// cost and in arbitration overhead:
///
/// * [`PriorityBit`](RrImplementation::PriorityBit) (RR-1) — one extra
///   line used as the MSB of the arbitration number.
/// * [`LowRequestLine`](RrImplementation::LowRequestLine) (RR-2) — one
///   extra line used to *inhibit* agents above the previous winner.
/// * [`NoExtraLine`](RrImplementation::NoExtraLine) (RR-3) — no extra
///   line; wrapping around the identity space costs one extra, empty
///   arbitration (reported via [`Grant::arbitrations`]).
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, Debug)]
pub enum RrImplementation {
    /// RR-1: round-robin priority bit (the paper's "probably simplest"
    /// implementation, and the only one that extends to round-robin
    /// scheduling *within* the urgent class).
    #[default]
    PriorityBit,
    /// RR-2: low-request inhibition line.
    LowRequestLine,
    /// RR-3: no extra line, empty-arbitration wraparound.
    NoExtraLine,
}

impl core::fmt::Display for RrImplementation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RrImplementation::PriorityBit => f.write_str("rr-1 (priority bit)"),
            RrImplementation::LowRequestLine => f.write_str("rr-2 (low-request line)"),
            RrImplementation::NoExtraLine => f.write_str("rr-3 (no extra line)"),
        }
    }
}

/// The distributed round-robin arbiter.
///
/// Implements **true round-robin scheduling** — identical to a central
/// round-robin arbiter — using only statically assigned identities plus
/// the winner identity published by the parallel contention lines: after a
/// win by agent *j*, the next arbitration scans *j−1 … 1, N … j*. The key
/// observation (paper §3.1) is that the maximum-finding hardware performs
/// this scan if agents below the previous winner are given priority over
/// agents at or above it.
///
/// Urgent requests ignore the protocol and win every arbitration; with
/// [`DistributedRoundRobin::with_rr_within_priority_class`] (RR-1 only)
/// the urgent class is itself scheduled round-robin.
///
/// # Examples
///
/// ```
/// use busarb_core::{Arbiter, DistributedRoundRobin};
/// use busarb_types::{AgentId, Priority, Time};
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// let mut rr = DistributedRoundRobin::new(8)?;
/// rr.on_request(Time::ZERO, AgentId::new(6)?, Priority::Ordinary);
/// assert_eq!(rr.arbitrate(Time::ZERO).unwrap().agent.get(), 6);
/// // 2 and 7 both request; 2 is "after" 6 in the scan 5..1,8..6.
/// rr.on_request(Time::ZERO, AgentId::new(2)?, Priority::Ordinary);
/// rr.on_request(Time::ZERO, AgentId::new(7)?, Priority::Ordinary);
/// assert_eq!(rr.arbitrate(Time::ZERO).unwrap().agent.get(), 2);
/// assert_eq!(rr.arbitrate(Time::ZERO).unwrap().agent.get(), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct DistributedRoundRobin {
    n: u32,
    implementation: RrImplementation,
    layout: NumberLayout,
    ordinary: AgentSet,
    urgent: AgentSet,
    /// Replicated winner register (identical in every agent).
    last_winner: u32,
    rr_within_priority: bool,
    empty_arbitrations: u64,
}

impl DistributedRoundRobin {
    /// Creates a round-robin arbiter using the RR-1 implementation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] if `n` is 0 or exceeds 128.
    pub fn new(n: u32) -> Result<Self, Error> {
        Self::with_implementation(n, RrImplementation::default())
    }

    /// Creates a round-robin arbiter modeling a specific hardware
    /// implementation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] if `n` is 0 or exceeds 128.
    pub fn with_implementation(n: u32, implementation: RrImplementation) -> Result<Self, Error> {
        validate_agents(n)?;
        let base = NumberLayout::for_agents(n)?.with_priority_bit();
        let layout = match implementation {
            RrImplementation::PriorityBit => base.with_rr_bit(),
            RrImplementation::LowRequestLine | RrImplementation::NoExtraLine => base,
        };
        Ok(DistributedRoundRobin {
            n,
            implementation,
            layout,
            ordinary: AgentSet::new(),
            urgent: AgentSet::new(),
            last_winner: n + 1,
            rr_within_priority: false,
            empty_arbitrations: 0,
        })
    }

    /// Enables round-robin scheduling *within* the urgent class (paper
    /// §3.1: straightforward in RR-1, where the rr bit sits just below the
    /// priority bit).
    ///
    /// # Panics
    ///
    /// Panics if the implementation is not [`RrImplementation::PriorityBit`].
    #[must_use]
    pub fn with_rr_within_priority_class(mut self) -> Self {
        assert!(
            self.implementation == RrImplementation::PriorityBit,
            "rr within the priority class requires the RR-1 implementation"
        );
        self.rr_within_priority = true;
        self
    }

    /// The modeled hardware implementation.
    #[must_use]
    pub fn implementation(&self) -> RrImplementation {
        self.implementation
    }

    /// Current contents of the replicated winner register.
    #[must_use]
    pub fn last_winner(&self) -> u32 {
        self.last_winner
    }

    /// Total empty (wraparound) arbitrations — nonzero only for RR-3.
    #[must_use]
    pub fn empty_arbitrations(&self) -> u64 {
        self.empty_arbitrations
    }

    /// Appends a normalized fingerprint of the arbitration-relevant state
    /// (request sets and the replicated winner register) to `out`.
    /// Statistics counters are excluded: they never influence a grant.
    #[doc(hidden)]
    pub fn verify_signature(&self, out: &mut Vec<u64>) {
        busarb_types::fingerprint::push_set(out, self.ordinary);
        busarb_types::fingerprint::push_set(out, self.urgent);
        out.push(u64::from(self.last_winner));
    }

    /// Round-robin selection from `set` given the winner register: the
    /// highest identity below the register, else the highest overall.
    /// Returns the winner and the number of line arbitrations consumed;
    /// `None` only for an empty `set`, which no caller passes.
    fn select(&mut self, set: AgentSet) -> Option<(AgentId, u32)> {
        let below = if self.last_winner > AgentSet::MAX_ID {
            // Register holds N+1 beyond the set capacity: every identity
            // is below it.
            set.max()
        } else {
            // The register is always >= 1; `.ok()` keeps the scan
            // panic-free regardless (a zero register wraps like an
            // empty below-set).
            AgentId::new(self.last_winner)
                .ok()
                .and_then(|bound| set.max_below(bound))
        };
        match below {
            Some(w) => Some((w, 1)),
            None => {
                let w = set.max()?;
                let cost = if self.implementation == RrImplementation::NoExtraLine {
                    // RR-3 discovers the wraparound via an empty
                    // arbitration (winning value 0), then re-arbitrates.
                    self.empty_arbitrations += 1;
                    2
                } else {
                    1
                };
                Some((w, cost))
            }
        }
    }
}

impl Arbiter for DistributedRoundRobin {
    fn name(&self) -> &'static str {
        "rr"
    }

    fn agents(&self) -> u32 {
        self.n
    }

    fn layout(&self) -> Option<NumberLayout> {
        Some(self.layout)
    }

    fn on_request(&mut self, _now: Time, agent: AgentId, priority: Priority) {
        check_agent(agent, self.n);
        let set = match priority {
            Priority::Urgent => &mut self.urgent,
            Priority::Ordinary => &mut self.ordinary,
        };
        assert!(
            set.insert(agent),
            "agent {agent} already has an outstanding request"
        );
    }

    fn arbitrate(&mut self, _now: Time) -> Option<Grant> {
        if !self.urgent.is_empty() {
            let (winner, arbitrations) = if self.rr_within_priority {
                self.select(self.urgent)?
            } else {
                // Urgent requests ignore the protocol: rr bit always set,
                // so selection degenerates to the identity maximum.
                (self.urgent.max()?, 1)
            };
            self.urgent.remove(winner);
            // Every agent records the winner of every arbitration.
            self.last_winner = winner.get();
            return Some(Grant {
                agent: winner,
                priority: Priority::Urgent,
                arbitrations,
            });
        }
        if self.ordinary.is_empty() {
            return None;
        }
        let (winner, arbitrations) = self.select(self.ordinary)?;
        self.ordinary.remove(winner);
        self.last_winner = winner.get();
        Some(Grant {
            agent: winner,
            priority: Priority::Ordinary,
            arbitrations,
        })
    }

    fn pending(&self) -> usize {
        self.ordinary.len() + self.urgent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    fn rr(n: u32) -> DistributedRoundRobin {
        DistributedRoundRobin::new(n).unwrap()
    }

    fn req(a: &mut DistributedRoundRobin, agent: u32) {
        a.on_request(Time::ZERO, id(agent), Priority::Ordinary);
    }

    fn grant(a: &mut DistributedRoundRobin) -> u32 {
        a.arbitrate(Time::ZERO).unwrap().agent.get()
    }

    #[test]
    fn saturated_service_is_cyclic() {
        for implementation in [
            RrImplementation::PriorityBit,
            RrImplementation::LowRequestLine,
            RrImplementation::NoExtraLine,
        ] {
            let mut a = DistributedRoundRobin::with_implementation(5, implementation).unwrap();
            for agent in 1..=5 {
                req(&mut a, agent);
            }
            let mut order = Vec::new();
            for _ in 0..10 {
                let w = grant(&mut a);
                order.push(w);
                req(&mut a, w);
            }
            assert_eq!(order, [5, 4, 3, 2, 1, 5, 4, 3, 2, 1], "{implementation}");
        }
    }

    #[test]
    fn scan_order_after_a_win() {
        // After agent 4 wins in an 8-agent system the scan order is
        // 3, 2, 1, 8, 7, 6, 5, 4.
        let mut a = rr(8);
        req(&mut a, 4);
        assert_eq!(grant(&mut a), 4);
        for agent in 1..=8 {
            req(&mut a, agent);
        }
        let order: Vec<u32> = (0..8).map(|_| grant(&mut a)).collect();
        assert_eq!(order, [3, 2, 1, 8, 7, 6, 5, 4]);
    }

    #[test]
    fn all_implementations_agree_on_grant_sequences() {
        let schedule: &[&[u32]] = &[
            &[3, 9],
            &[],
            &[1, 5, 7],
            &[2],
            &[],
            &[8, 4],
            &[6],
            &[9],
            &[],
            &[3],
        ];
        let mut arbs: Vec<DistributedRoundRobin> = [
            RrImplementation::PriorityBit,
            RrImplementation::LowRequestLine,
            RrImplementation::NoExtraLine,
        ]
        .into_iter()
        .map(|i| DistributedRoundRobin::with_implementation(9, i).unwrap())
        .collect();
        for batch in schedule {
            for a in &mut arbs {
                for &agent in *batch {
                    req(a, agent);
                }
            }
            let grants: Vec<Option<AgentId>> = arbs
                .iter_mut()
                .map(|a| a.arbitrate(Time::ZERO).map(|g| g.agent))
                .collect();
            assert!(grants.windows(2).all(|w| w[0] == w[1]), "{grants:?}");
        }
    }

    #[test]
    fn rr3_reports_wraparound_cost() {
        let mut a =
            DistributedRoundRobin::with_implementation(4, RrImplementation::NoExtraLine).unwrap();
        req(&mut a, 2);
        assert_eq!(a.arbitrate(Time::ZERO).unwrap().arbitrations, 1);
        // Register = 2, only agent 3 requests: wraparound.
        req(&mut a, 3);
        let g = a.arbitrate(Time::ZERO).unwrap();
        assert_eq!(g.agent, id(3));
        assert_eq!(g.arbitrations, 2);
        assert_eq!(a.empty_arbitrations(), 1);
        // RR-1 never reports extra arbitrations.
        let mut b = rr(4);
        req(&mut b, 2);
        b.arbitrate(Time::ZERO).unwrap();
        req(&mut b, 3);
        assert_eq!(b.arbitrate(Time::ZERO).unwrap().arbitrations, 1);
    }

    #[test]
    fn urgent_ignores_the_protocol_by_default() {
        let mut a = rr(8);
        req(&mut a, 8);
        assert_eq!(grant(&mut a), 8); // register = 8
        a.on_request(Time::ZERO, id(7), Priority::Urgent);
        a.on_request(Time::ZERO, id(2), Priority::Urgent);
        req(&mut a, 3);
        // Urgent class served first, identity order within it.
        assert_eq!(grant(&mut a), 7);
        assert_eq!(grant(&mut a), 2);
        assert_eq!(grant(&mut a), 3);
    }

    #[test]
    fn rr_within_priority_class() {
        let mut a = rr(8).with_rr_within_priority_class();
        a.on_request(Time::ZERO, id(6), Priority::Urgent);
        assert_eq!(grant(&mut a), 6); // register = 6
        a.on_request(Time::ZERO, id(2), Priority::Urgent);
        a.on_request(Time::ZERO, id(7), Priority::Urgent);
        // Round-robin within the urgent class: 2 (below 6) precedes 7.
        assert_eq!(grant(&mut a), 2);
        assert_eq!(grant(&mut a), 7);
    }

    #[test]
    #[should_panic(expected = "requires the RR-1 implementation")]
    fn rr_within_priority_requires_rr1() {
        let _ = DistributedRoundRobin::with_implementation(4, RrImplementation::NoExtraLine)
            .unwrap()
            .with_rr_within_priority_class();
    }

    #[test]
    fn urgent_win_updates_the_winner_register() {
        let mut a = rr(8);
        req(&mut a, 3);
        assert_eq!(grant(&mut a), 3); // register = 3
        a.on_request(Time::ZERO, id(5), Priority::Urgent);
        assert_eq!(grant(&mut a), 5); // register = 5 now
                                      // Ordinary requests 4 and 6: 4 is below 5, so it goes first.
        req(&mut a, 4);
        req(&mut a, 6);
        assert_eq!(grant(&mut a), 4);
        assert_eq!(grant(&mut a), 6);
    }

    #[test]
    fn line_costs_match_the_paper() {
        let k = AgentId::lines_required(30);
        let rr1 = rr(30);
        assert_eq!(rr1.layout().unwrap().width(), k + 2); // priority + rr bits
        let rr2 = DistributedRoundRobin::with_implementation(30, RrImplementation::LowRequestLine)
            .unwrap();
        assert_eq!(rr2.layout().unwrap().width(), k + 1); // priority bit only
        assert_eq!(rr2.name(), "rr");
        assert_eq!(rr2.implementation(), RrImplementation::LowRequestLine);
    }

    #[test]
    fn fairness_under_saturation_every_agent_served_once_per_cycle() {
        let n = 16;
        let mut a = rr(n);
        for agent in 1..=n {
            req(&mut a, agent);
        }
        let mut counts = vec![0u32; n as usize + 1];
        for _ in 0..(n * 10) {
            let w = grant(&mut a);
            counts[w as usize] += 1;
            req(&mut a, w);
        }
        // Perfect fairness: every agent exactly 10 grants.
        assert!(counts[1..].iter().all(|&c| c == 10), "{counts:?}");
    }

    #[test]
    fn empty_arbitrate_returns_none() {
        let mut a = rr(4);
        assert!(a.arbitrate(Time::ZERO).is_none());
        assert_eq!(a.pending(), 0);
        assert_eq!(a.last_winner(), 5);
    }
}
