//! The existing assured access protocols (the paper's baselines).

use busarb_bus::NumberLayout;
use busarb_types::{AgentId, AgentSet, Error, Priority, Time};

use crate::arbiter::{check_agent, validate_agents, Arbiter, Grant};

/// Which batching rule the assured access protocol follows (paper §2.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BatchingRule {
    /// Adopted by Fastbus, NuBus and Multibus II: requests arriving to an
    /// idle bus form a batch; a request generated while a batch is in
    /// progress waits for the batch to end (the request line dropping)
    /// before asserting. Within a batch, service is in static-identity
    /// order.
    IdleBatch,
    /// Adopted by Futurebus: an agent competes in successive arbitrations
    /// until served, then marks itself *inhibited* until a fairness-release
    /// cycle (an arbitration in which no agent asserts the request line).
    /// A request generated during a batch joins it if the agent has not
    /// yet been served in the batch.
    FairnessRelease,
    /// The "slightly modified" Futurebus variant the paper credits with a
    /// 10–15% maximum throughput spread. The exact mechanics are not given
    /// in the paper; we implement the natural strengthening — batch
    /// membership is **closed** at the fairness-release cycle, so requests
    /// generated mid-batch wait for the next batch even if their agent has
    /// not been served. Documented as an assumption in DESIGN.md.
    ClosedBatch,
}

impl core::fmt::Display for BatchingRule {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BatchingRule::IdleBatch => f.write_str("idle batch"),
            BatchingRule::FairnessRelease => f.write_str("fairness release"),
            BatchingRule::ClosedBatch => f.write_str("closed batch"),
        }
    }
}

/// An assured access protocol for the parallel contention arbiter.
///
/// These protocols are "widely regarded as being fair", but serve every
/// batch in descending static-identity order, so the highest-identity agent
/// is *always* served first in its batch — the source of the 10%–100%
/// throughput spread quantified in \[VeLe88\] and reproduced in the
/// Table 4.1 experiment.
///
/// Urgent requests ignore the batching rules entirely and compete in every
/// arbitration with the priority bit set (§2.4).
///
/// # Batch boundary model (idle batch)
///
/// The batch boundary is the shared request line: an agent with a new
/// request asserts it only if it currently reads low. The line drops at the
/// start of the *last* batch member's tenure, at which point every deferred
/// request asserts and forms the next batch; an arrival after that joins
/// the forming batch, an arrival before it waits one more batch. The model
/// promotes the deferred set eagerly at the final grant of a batch,
/// matching that hardware behavior. Requests passed at the same simulated
/// instant are processed in call order.
///
/// # Examples
///
/// ```
/// use busarb_core::{Arbiter, AssuredAccess, BatchingRule};
/// use busarb_types::{AgentId, Priority, Time};
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// let mut aap = AssuredAccess::new(4, BatchingRule::IdleBatch)?;
/// // Agent 1 arrives to an idle bus and forms a batch by itself.
/// aap.on_request(Time::ZERO, AgentId::new(1)?, Priority::Ordinary);
/// // Agents 3 and 4 arrive while that batch is in progress: they wait.
/// aap.on_request(Time::ZERO, AgentId::new(3)?, Priority::Ordinary);
/// aap.on_request(Time::ZERO, AgentId::new(4)?, Priority::Ordinary);
/// assert_eq!(aap.arbitrate(Time::ZERO).unwrap().agent.get(), 1);
/// // The next batch {3, 4} is served in identity order.
/// assert_eq!(aap.arbitrate(Time::ZERO).unwrap().agent.get(), 4);
/// assert_eq!(aap.arbitrate(Time::ZERO).unwrap().agent.get(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct AssuredAccess {
    n: u32,
    rule: BatchingRule,
    layout: NumberLayout,
    /// Agents asserting the request line as part of the current batch
    /// (IdleBatch), or all agents with outstanding ordinary requests
    /// (FairnessRelease/ClosedBatch).
    requesting: AgentSet,
    /// IdleBatch: requests deferred to the next batch.
    deferred: AgentSet,
    /// FairnessRelease/ClosedBatch: agents served in the current batch.
    inhibited: AgentSet,
    /// ClosedBatch: membership snapshot taken at the last release.
    batch_members: AgentSet,
    urgent: AgentSet,
    releases: u64,
}

impl AssuredAccess {
    /// Creates an assured access arbiter for `n` agents.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] if `n` is 0 or exceeds 128.
    pub fn new(n: u32, rule: BatchingRule) -> Result<Self, Error> {
        validate_agents(n)?;
        Ok(AssuredAccess {
            n,
            rule,
            layout: NumberLayout::for_agents(n)?.with_priority_bit(),
            requesting: AgentSet::new(),
            deferred: AgentSet::new(),
            inhibited: AgentSet::new(),
            batch_members: AgentSet::new(),
            urgent: AgentSet::new(),
            releases: 0,
        })
    }

    /// The batching rule in force.
    #[must_use]
    pub fn rule(&self) -> BatchingRule {
        self.rule
    }

    /// Number of fairness-release cycles (or batch turnovers) so far.
    #[must_use]
    pub fn releases(&self) -> u64 {
        self.releases
    }

    /// Appends a normalized fingerprint of the arbitration-relevant state
    /// (all five membership sets) to `out`. The release statistic is
    /// excluded.
    #[doc(hidden)]
    pub fn verify_signature(&self, out: &mut Vec<u64>) {
        use busarb_types::fingerprint::push_set;
        push_set(out, self.requesting);
        push_set(out, self.deferred);
        push_set(out, self.inhibited);
        push_set(out, self.batch_members);
        push_set(out, self.urgent);
    }

    /// Resolves an ordinary-class arbitration under the configured rule.
    fn arbitrate_ordinary(&mut self) -> Option<Grant> {
        match self.rule {
            BatchingRule::IdleBatch => {
                let winner = self.requesting.max()?;
                self.requesting.remove(winner);
                if self.requesting.is_empty() && !self.deferred.is_empty() {
                    // The last batch member releases the request line at
                    // the start of its tenure; deferred requests assert and
                    // form the next batch immediately.
                    self.requesting = self.deferred;
                    self.deferred = AgentSet::new();
                    self.releases += 1;
                }
                Some(Grant::ordinary(winner))
            }
            BatchingRule::FairnessRelease => {
                if self.requesting.is_empty() {
                    // No outstanding requests: inhibition clears for free
                    // on the idle bus.
                    self.inhibited.clear();
                    return None;
                }
                let eligible = self.requesting.difference(self.inhibited);
                let (winner, arbitrations) = match eligible.max() {
                    Some(w) => (w, 1),
                    None => {
                        // Fairness release: one arbitration cycle with no
                        // request line asserted, then a real arbitration.
                        self.inhibited.clear();
                        self.releases += 1;
                        (self.requesting.max()?, 2)
                    }
                };
                self.requesting.remove(winner);
                self.inhibited.insert(winner);
                Some(Grant {
                    agent: winner,
                    priority: Priority::Ordinary,
                    arbitrations,
                })
            }
            BatchingRule::ClosedBatch => {
                if self.requesting.is_empty() {
                    self.inhibited.clear();
                    self.batch_members.clear();
                    return None;
                }
                let eligible = self
                    .requesting
                    .intersection(self.batch_members)
                    .difference(self.inhibited);
                let (winner, arbitrations) = match eligible.max() {
                    Some(w) => (w, 1),
                    None => {
                        // Release: snapshot the new batch membership.
                        self.inhibited.clear();
                        self.batch_members = self.requesting;
                        self.releases += 1;
                        (self.requesting.max()?, 2)
                    }
                };
                self.requesting.remove(winner);
                self.inhibited.insert(winner);
                Some(Grant {
                    agent: winner,
                    priority: Priority::Ordinary,
                    arbitrations,
                })
            }
        }
    }
}

impl Arbiter for AssuredAccess {
    fn name(&self) -> &'static str {
        match self.rule {
            BatchingRule::IdleBatch => "aap-1",
            BatchingRule::FairnessRelease => "aap-2",
            BatchingRule::ClosedBatch => "aap-2m",
        }
    }

    fn agents(&self) -> u32 {
        self.n
    }

    fn layout(&self) -> Option<NumberLayout> {
        Some(self.layout)
    }

    fn on_request(&mut self, _now: Time, agent: AgentId, priority: Priority) {
        check_agent(agent, self.n);
        if priority.is_urgent() {
            assert!(
                self.urgent.insert(agent),
                "agent {agent} already has an outstanding urgent request"
            );
            return;
        }
        let fresh = match self.rule {
            BatchingRule::IdleBatch => {
                if self.requesting.is_empty() {
                    // Request line reads low: assert and form a new batch.
                    self.requesting.insert(agent)
                } else {
                    // A batch is asserting the line: wait for it to end.
                    !self.requesting.contains(agent) && self.deferred.insert(agent)
                }
            }
            BatchingRule::FairnessRelease | BatchingRule::ClosedBatch => {
                self.requesting.insert(agent)
            }
        };
        assert!(fresh, "agent {agent} already has an outstanding request");
    }

    fn arbitrate(&mut self, _now: Time) -> Option<Grant> {
        if let Some(winner) = self.urgent.max() {
            self.urgent.remove(winner);
            return Some(Grant {
                agent: winner,
                priority: Priority::Urgent,
                arbitrations: 1,
            });
        }
        self.arbitrate_ordinary()
    }

    fn pending(&self) -> usize {
        self.requesting.len() + self.deferred.len() + self.urgent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    fn req(a: &mut AssuredAccess, agent: u32) {
        a.on_request(Time::ZERO, id(agent), Priority::Ordinary);
    }

    fn grant(a: &mut AssuredAccess) -> u32 {
        a.arbitrate(Time::ZERO).unwrap().agent.get()
    }

    #[test]
    fn idle_batch_defers_midbatch_arrivals() {
        let mut a = AssuredAccess::new(8, BatchingRule::IdleBatch).unwrap();
        req(&mut a, 2); // forms batch {2}
        req(&mut a, 5); // defers: request line is high
        assert_eq!(grant(&mut a), 2);
        // Batch {5} is now asserting; 8 waits for it.
        req(&mut a, 8);
        assert_eq!(grant(&mut a), 5);
        assert_eq!(grant(&mut a), 8);
        assert!(a.arbitrate(Time::ZERO).is_none());
        assert_eq!(a.releases(), 2);
    }

    #[test]
    fn idle_batch_serves_identity_order_within_batch() {
        let mut a = AssuredAccess::new(8, BatchingRule::IdleBatch).unwrap();
        req(&mut a, 3); // singleton first batch
        for agent in [7, 1, 5] {
            req(&mut a, agent); // all defer into the second batch
        }
        let order: Vec<u32> = (0..4).map(|_| grant(&mut a)).collect();
        // Second batch {7, 1, 5} is served in descending identity order.
        assert_eq!(order, [3, 7, 5, 1]);
    }

    #[test]
    fn fairness_release_lets_latecomers_join() {
        let mut a = AssuredAccess::new(8, BatchingRule::FairnessRelease).unwrap();
        req(&mut a, 2);
        req(&mut a, 5);
        assert_eq!(grant(&mut a), 5);
        // 8 has not been served this batch: it may join and, having the
        // highest identity, is served before 2.
        req(&mut a, 8);
        assert_eq!(grant(&mut a), 8);
        assert_eq!(grant(&mut a), 2);
    }

    #[test]
    fn fairness_release_blocks_second_service_in_batch() {
        let mut a = AssuredAccess::new(4, BatchingRule::FairnessRelease).unwrap();
        req(&mut a, 4);
        req(&mut a, 1);
        assert_eq!(grant(&mut a), 4);
        // 4 requests again: inhibited until the release.
        req(&mut a, 4);
        assert_eq!(grant(&mut a), 1);
        // Now every requester (just 4) is inhibited -> release cycle.
        let g = a.arbitrate(Time::ZERO).unwrap();
        assert_eq!(g.agent, id(4));
        assert_eq!(g.arbitrations, 2); // release + arbitration
        assert_eq!(a.releases(), 1);
    }

    #[test]
    fn closed_batch_defers_latecomers_even_if_unserved() {
        let mut a = AssuredAccess::new(8, BatchingRule::ClosedBatch).unwrap();
        req(&mut a, 2);
        req(&mut a, 5);
        // First arbitration opens a batch {2, 5}.
        assert_eq!(grant(&mut a), 5);
        // 8 arrives mid-batch: under the modified rule it cannot join.
        req(&mut a, 8);
        assert_eq!(grant(&mut a), 2);
        assert_eq!(grant(&mut a), 8);
        assert_eq!(a.releases(), 2); // batch open + turnover
    }

    #[test]
    fn inhibition_clears_when_bus_goes_idle() {
        let mut a = AssuredAccess::new(4, BatchingRule::FairnessRelease).unwrap();
        req(&mut a, 3);
        assert_eq!(grant(&mut a), 3);
        assert!(a.arbitrate(Time::ZERO).is_none()); // idle: clears inhibition
        req(&mut a, 3);
        let g = a.arbitrate(Time::ZERO).unwrap();
        assert_eq!(g.arbitrations, 1); // no release cycle needed
    }

    #[test]
    fn urgent_requests_bypass_batching() {
        for rule in [
            BatchingRule::IdleBatch,
            BatchingRule::FairnessRelease,
            BatchingRule::ClosedBatch,
        ] {
            let mut a = AssuredAccess::new(8, rule).unwrap();
            req(&mut a, 6);
            assert_eq!(grant(&mut a), 6);
            req(&mut a, 2); // ordinary, possibly deferred
            a.on_request(Time::ZERO, id(4), Priority::Urgent);
            let g = a.arbitrate(Time::ZERO).unwrap();
            assert_eq!(g.agent, id(4), "{rule}");
            assert_eq!(g.priority, Priority::Urgent);
        }
    }

    #[test]
    fn favours_high_identities_across_batches() {
        // The structural unfairness: within every batch, higher identities
        // are always served first, so agent 3 precedes agents 1 and 2 in
        // every batch all three share.
        let mut a = AssuredAccess::new(3, BatchingRule::IdleBatch).unwrap();
        req(&mut a, 2); // batch {2}
        req(&mut a, 1); // defers
        req(&mut a, 3); // defers
        assert_eq!(grant(&mut a), 2);
        // Batch {1, 3} in progress; 2 re-requests and defers.
        req(&mut a, 2);
        assert_eq!(grant(&mut a), 3);
        req(&mut a, 3);
        assert_eq!(grant(&mut a), 1);
        req(&mut a, 1);
        // Batch {2, 3}: identity order again; 1 deferred once more.
        assert_eq!(grant(&mut a), 3);
        assert_eq!(grant(&mut a), 2);
        assert_eq!(grant(&mut a), 1);
        assert!(a.arbitrate(Time::ZERO).is_none());
    }

    #[test]
    fn display_and_names() {
        assert_eq!(
            AssuredAccess::new(4, BatchingRule::IdleBatch)
                .unwrap()
                .name(),
            "aap-1"
        );
        assert_eq!(
            AssuredAccess::new(4, BatchingRule::FairnessRelease)
                .unwrap()
                .name(),
            "aap-2"
        );
        assert_eq!(
            AssuredAccess::new(4, BatchingRule::ClosedBatch)
                .unwrap()
                .name(),
            "aap-2m"
        );
        assert_eq!(BatchingRule::IdleBatch.to_string(), "idle batch");
    }

    #[test]
    #[should_panic(expected = "already has an outstanding request")]
    fn duplicate_request_panics() {
        let mut a = AssuredAccess::new(4, BatchingRule::IdleBatch).unwrap();
        req(&mut a, 2);
        req(&mut a, 2);
    }
}
