//! The base parallel contention policy: fixed priority.

use busarb_bus::NumberLayout;
use busarb_types::{AgentId, AgentSet, Error, Priority, Time};

use crate::arbiter::{check_agent, validate_agents, Arbiter, Grant};

/// Fixed-priority arbitration — the raw parallel contention arbiter with
/// no fairness protocol layered on top (paper §2.1).
///
/// The winner of every arbitration is simply the requester with the
/// highest composite number `[priority bit | static identity]`. Low
/// identities can be starved indefinitely; this protocol exists as the
/// baseline the assured access protocols were invented to fix.
///
/// # Examples
///
/// ```
/// use busarb_core::{Arbiter, FixedPriority};
/// use busarb_types::{AgentId, Priority, Time};
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// let mut fp = FixedPriority::new(8)?;
/// fp.on_request(Time::ZERO, AgentId::new(2)?, Priority::Ordinary);
/// fp.on_request(Time::ZERO, AgentId::new(7)?, Priority::Ordinary);
/// assert_eq!(fp.arbitrate(Time::ZERO).unwrap().agent.get(), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct FixedPriority {
    n: u32,
    layout: NumberLayout,
    ordinary: AgentSet,
    urgent: AgentSet,
}

impl FixedPriority {
    /// Creates a fixed-priority arbiter for `n` agents.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] if `n` is 0 or exceeds 128.
    pub fn new(n: u32) -> Result<Self, Error> {
        validate_agents(n)?;
        Ok(FixedPriority {
            n,
            layout: NumberLayout::for_agents(n)?.with_priority_bit(),
            ordinary: AgentSet::new(),
            urgent: AgentSet::new(),
        })
    }

    /// Appends a normalized fingerprint of the arbitration-relevant state
    /// (the two request sets — fixed priority has no other state) to `out`.
    #[doc(hidden)]
    pub fn verify_signature(&self, out: &mut Vec<u64>) {
        busarb_types::fingerprint::push_set(out, self.ordinary);
        busarb_types::fingerprint::push_set(out, self.urgent);
    }
}

impl Arbiter for FixedPriority {
    fn name(&self) -> &'static str {
        "fixed-priority"
    }

    fn agents(&self) -> u32 {
        self.n
    }

    fn layout(&self) -> Option<NumberLayout> {
        Some(self.layout)
    }

    fn on_request(&mut self, _now: Time, agent: AgentId, priority: Priority) {
        check_agent(agent, self.n);
        let set = match priority {
            Priority::Urgent => &mut self.urgent,
            Priority::Ordinary => &mut self.ordinary,
        };
        assert!(
            set.insert(agent),
            "agent {agent} already has an outstanding request"
        );
    }

    fn arbitrate(&mut self, _now: Time) -> Option<Grant> {
        if let Some(winner) = self.urgent.max() {
            self.urgent.remove(winner);
            return Some(Grant {
                agent: winner,
                priority: Priority::Urgent,
                arbitrations: 1,
            });
        }
        let winner = self.ordinary.max()?;
        self.ordinary.remove(winner);
        Some(Grant::ordinary(winner))
    }

    fn pending(&self) -> usize {
        self.ordinary.len() + self.urgent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    fn request(fp: &mut FixedPriority, agent: u32) {
        fp.on_request(Time::ZERO, id(agent), Priority::Ordinary);
    }

    #[test]
    fn highest_identity_always_wins() {
        let mut fp = FixedPriority::new(10).unwrap();
        for a in [3, 9, 1, 6] {
            request(&mut fp, a);
        }
        let order: Vec<u32> = (0..4)
            .map(|_| fp.arbitrate(Time::ZERO).unwrap().agent.get())
            .collect();
        assert_eq!(order, [9, 6, 3, 1]);
        assert!(fp.arbitrate(Time::ZERO).is_none());
    }

    #[test]
    fn low_identity_is_starved_under_contention() {
        let mut fp = FixedPriority::new(4).unwrap();
        request(&mut fp, 1);
        for _ in 0..100 {
            request(&mut fp, 4);
            let g = fp.arbitrate(Time::ZERO).unwrap();
            assert_eq!(g.agent, id(4), "agent 1 should be starved");
        }
        assert_eq!(fp.pending(), 1);
    }

    #[test]
    fn urgent_beats_every_ordinary_request() {
        let mut fp = FixedPriority::new(10).unwrap();
        request(&mut fp, 10);
        fp.on_request(Time::ZERO, id(1), Priority::Urgent);
        let g = fp.arbitrate(Time::ZERO).unwrap();
        assert_eq!(g.agent, id(1));
        assert_eq!(g.priority, Priority::Urgent);
        assert_eq!(fp.arbitrate(Time::ZERO).unwrap().agent, id(10));
    }

    #[test]
    fn layout_has_priority_bit() {
        let fp = FixedPriority::new(30).unwrap();
        let layout = fp.layout().unwrap();
        assert!(layout.has_priority_bit());
        assert_eq!(layout.width(), AgentId::lines_required(30) + 1);
    }

    #[test]
    #[should_panic(expected = "already has an outstanding request")]
    fn duplicate_request_panics() {
        let mut fp = FixedPriority::new(4).unwrap();
        request(&mut fp, 2);
        request(&mut fp, 2);
    }

    #[test]
    #[should_panic(expected = "exceeds system size")]
    fn oversized_agent_panics() {
        let mut fp = FixedPriority::new(4).unwrap();
        request(&mut fp, 5);
    }
}
