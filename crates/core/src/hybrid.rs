//! The hybrid RR/FCFS protocol sketched in the paper's Section 5.

use busarb_bus::NumberLayout;
use busarb_types::{AgentId, AgentSet, Error, Priority, Time};

use crate::arbiter::{check_agent, validate_agents, Arbiter, Grant};

/// A hybrid protocol: **FCFS across arrival windows, round-robin within a
/// window**.
///
/// The paper's conclusions suggest that "the round robin protocol might be
/// used only for requests that arrive at the same time, while the FCFS
/// protocol is used for other requests". This implementation realizes that
/// idea with the composite arbitration number
/// `[priority | waiting-time counter | rr bit | static identity]`:
/// the counter (incremented per `a-incr` pulse as in FCFS-2) orders
/// requests from different arrival windows first-come first-serve, while
/// the round-robin bit breaks same-window ties fairly instead of always
/// favoring high identities.
///
/// This costs one more line than FCFS-2 and removes its only residual
/// unfairness at the price of RR's (slightly) higher waiting-time variance
/// *within* windows — the `hybrid` experiment quantifies the trade.
///
/// # Examples
///
/// ```
/// use busarb_core::{Arbiter, HybridRrFcfs};
/// use busarb_types::{AgentId, Priority, Time};
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// let mut h = HybridRrFcfs::new(8)?;
/// // Same-instant arrivals tie; the rr bit arbitrates the tie fairly.
/// h.on_request(Time::ZERO, AgentId::new(3)?, Priority::Ordinary);
/// h.on_request(Time::ZERO, AgentId::new(6)?, Priority::Ordinary);
/// assert_eq!(h.arbitrate(Time::ZERO).unwrap().agent.get(), 6);
/// assert_eq!(h.arbitrate(Time::ZERO).unwrap().agent.get(), 3);
/// # Ok(())
/// # }
/// ```
/// Agent state lives in identity-indexed planes rather than a `Vec` of
/// entry structs: class membership is a pair of [`AgentSet`] masks and the
/// waiting-time counter is *derived* — a global pulse epoch minus the
/// epoch recorded at arrival, saturated at the line capacity — so an
/// `a-incr` pulse is one integer bump instead of a walk over every
/// outstanding entry, and `arbitrate` scans set bits instead of a heap
/// allocation. The hybrid protocol admits at most one outstanding request
/// per agent, which is exactly the condition that makes the derived
/// counter exact (see the FCFS planes for the argument).
#[derive(Clone, Debug)]
pub struct HybridRrFcfs {
    n: u32,
    layout: NumberLayout,
    tie_window: Time,
    /// Agents with an outstanding ordinary-class request.
    ordinary: AgentSet,
    /// Agents with an outstanding urgent-class request.
    urgent: AgentSet,
    /// Pulse epoch observed when each agent's request arrived.
    base: Box<[u64]>,
    /// Injection sequence number of each agent's request (diagnostics).
    seq: Box<[u64]>,
    /// Count of `a-incr` pulses since construction.
    epoch: u64,
    next_seq: u64,
    last_pulse: Option<Time>,
    last_winner: u32,
}

impl HybridRrFcfs {
    /// Creates a hybrid arbiter with a zero tie window (only same-instant
    /// arrivals tie).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] if `n` is 0 or exceeds 128.
    pub fn new(n: u32) -> Result<Self, Error> {
        Self::with_tie_window(n, Time::ZERO)
    }

    /// Creates a hybrid arbiter whose arrival windows have the given
    /// width.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] for a bad `n`, or
    /// [`Error::InvalidScenario`] for a negative window.
    pub fn with_tie_window(n: u32, tie_window: Time) -> Result<Self, Error> {
        validate_agents(n)?;
        if tie_window < Time::ZERO {
            return Err(Error::InvalidScenario {
                reason: "tie window must be non-negative".to_string(),
            });
        }
        let layout = NumberLayout::for_agents(n)?
            .with_counter_bits(AgentId::lines_required(n).max(1))
            .with_rr_bit()
            .with_priority_bit();
        Ok(HybridRrFcfs {
            n,
            layout,
            tie_window,
            ordinary: AgentSet::new(),
            urgent: AgentSet::new(),
            base: vec![0; n as usize].into_boxed_slice(),
            seq: vec![0; n as usize].into_boxed_slice(),
            epoch: 0,
            next_seq: 0,
            last_pulse: None,
            last_winner: n + 1,
        })
    }

    /// The derived waiting-time counter of an outstanding request: pulses
    /// since arrival, saturated at the counter-line capacity.
    #[inline]
    fn counter_of(&self, agent: AgentId) -> u64 {
        (self.epoch - self.base[agent.index()]).min(self.layout.counter_max())
    }

    /// Current contents of the replicated winner register.
    #[must_use]
    pub fn last_winner(&self) -> u32 {
        self.last_winner
    }

    /// Appends a normalized fingerprint of the arbitration-relevant state
    /// to `out`: outstanding entries in arrival order (sequence numbers
    /// rank-normalized away) plus the winner register. The `last_pulse`
    /// stamp is excluded — the bounded model checker drives the arbiter
    /// with strictly increasing times and a zero tie window, so a past
    /// pulse can never merge with a future arrival.
    #[doc(hidden)]
    pub fn verify_signature(&self, out: &mut Vec<u64>) {
        // Emit outstanding requests in injection order by selection scan
        // over the membership masks — quadratic in the (tiny) outstanding
        // count, but free of scratch allocations.
        let members = self.ordinary.union(self.urgent);
        out.push(members.len() as u64);
        let mut last: Option<u64> = None;
        for _ in 0..members.len() {
            let next = members
                .iter()
                .filter(|a| last.is_none_or(|l| self.seq[a.index()] > l))
                .min_by_key(|a| self.seq[a.index()])
                .expect("selection scan visits each member once");
            out.push(u64::from(next.get()));
            out.push(u64::from(self.urgent.contains(next) as u32));
            out.push(self.counter_of(next));
            last = Some(self.seq[next.index()]);
        }
        out.push(u64::from(self.last_winner));
    }
}

impl Arbiter for HybridRrFcfs {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn agents(&self) -> u32 {
        self.n
    }

    fn layout(&self) -> Option<NumberLayout> {
        Some(self.layout)
    }

    fn on_request(&mut self, now: Time, agent: AgentId, priority: Priority) {
        check_agent(agent, self.n);
        assert!(
            !self.ordinary.contains(agent) && !self.urgent.contains(agent),
            "agent {agent} already has an outstanding request"
        );
        let merged = self.last_pulse.is_some_and(|t| now - t <= self.tie_window);
        if !merged {
            // One epoch bump stands in for incrementing every outstanding
            // counter; saturation is applied when the counter is read.
            self.epoch += 1;
            self.last_pulse = Some(now);
        }
        match priority {
            Priority::Urgent => self.urgent.insert(agent),
            Priority::Ordinary => self.ordinary.insert(agent),
        };
        self.base[agent.index()] = self.epoch;
        self.seq[agent.index()] = self.next_seq;
        self.next_seq += 1;
    }

    fn arbitrate(&mut self, _now: Time) -> Option<Grant> {
        let (members, priority) = if !self.urgent.is_empty() {
            (self.urgent, Priority::Urgent)
        } else if !self.ordinary.is_empty() {
            (self.ordinary, Priority::Ordinary)
        } else {
            return None;
        };
        // Composite number compare [counter | rr bit | identity]: ascending
        // identity scan with a non-strict compare makes the highest agent
        // win exact (counter, rr) ties, matching the replicated logic.
        let mut winner = None;
        let mut best = (0u64, false);
        for agent in members {
            let key = (self.counter_of(agent), agent.get() < self.last_winner);
            if winner.is_none() || key >= best {
                winner = Some(agent);
                best = key;
            }
        }
        // `members` is non-empty, so the scan always finds a winner.
        let winner = winner?;
        match priority {
            Priority::Urgent => self.urgent.remove(winner),
            Priority::Ordinary => self.ordinary.remove(winner),
        };
        self.last_winner = winner.get();
        Some(Grant {
            agent: winner,
            priority,
            arbitrations: 1,
        })
    }

    fn pending(&self) -> usize {
        self.ordinary.len() + self.urgent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    fn req(h: &mut HybridRrFcfs, now: f64, agent: u32) {
        h.on_request(Time::from(now), id(agent), Priority::Ordinary);
    }

    fn grant(h: &mut HybridRrFcfs) -> u32 {
        h.arbitrate(Time::ZERO).unwrap().agent.get()
    }

    #[test]
    fn fcfs_across_windows() {
        let mut h = HybridRrFcfs::new(8).unwrap();
        req(&mut h, 0.0, 2);
        req(&mut h, 1.0, 8);
        req(&mut h, 2.0, 5);
        let order: Vec<u32> = (0..3).map(|_| grant(&mut h)).collect();
        assert_eq!(order, [2, 8, 5]);
    }

    #[test]
    fn rr_within_a_window() {
        let mut h = HybridRrFcfs::new(8).unwrap();
        // Seed the winner register at 5.
        req(&mut h, 0.0, 5);
        assert_eq!(grant(&mut h), 5);
        // Three same-instant arrivals: RR order relative to register 5 is
        // 4, 2 (below 5, high first), then 7.
        for agent in [2, 4, 7] {
            req(&mut h, 1.0, agent);
        }
        assert_eq!(grant(&mut h), 4);
        assert_eq!(grant(&mut h), 2);
        assert_eq!(grant(&mut h), 7);
    }

    #[test]
    fn plain_fcfs_would_order_ties_by_identity_only() {
        // Contrast with the FCFS protocols: hybrid does not always favor
        // the high identity in a tie.
        let mut h = HybridRrFcfs::new(8).unwrap();
        req(&mut h, 0.0, 6);
        assert_eq!(grant(&mut h), 6); // register = 6
        req(&mut h, 1.0, 3);
        req(&mut h, 1.0, 7);
        // 3 is below the register: the rr bit puts it ahead of 7.
        assert_eq!(grant(&mut h), 3);
        assert_eq!(grant(&mut h), 7);
    }

    #[test]
    fn seniority_still_beats_rr_bit() {
        let mut h = HybridRrFcfs::new(8).unwrap();
        req(&mut h, 0.0, 6);
        assert_eq!(grant(&mut h), 6); // register = 6
        req(&mut h, 1.0, 7); // older request, above register
        req(&mut h, 2.0, 3); // fresh request, below register
                             // FCFS across windows dominates the rr tie-break.
        assert_eq!(grant(&mut h), 7);
        assert_eq!(grant(&mut h), 3);
    }

    #[test]
    fn urgent_first() {
        let mut h = HybridRrFcfs::new(8).unwrap();
        req(&mut h, 0.0, 5);
        h.on_request(Time::from(1.0), id(2), Priority::Urgent);
        let g = h.arbitrate(Time::ZERO).unwrap();
        assert_eq!((g.agent, g.priority), (id(2), Priority::Urgent));
    }

    #[test]
    fn tie_window_groups_arrivals() {
        let mut h = HybridRrFcfs::with_tie_window(8, Time::from(0.5)).unwrap();
        req(&mut h, 0.0, 7);
        assert_eq!(grant(&mut h), 7); // register = 7
        req(&mut h, 1.0, 8);
        req(&mut h, 1.3, 2); // within the 0.5 window: same group
                             // Same group: rr order (2 below 7) beats identity.
        assert_eq!(grant(&mut h), 2);
        assert_eq!(grant(&mut h), 8);
    }

    #[test]
    fn validation_and_metadata() {
        assert!(HybridRrFcfs::new(0).is_err());
        assert!(HybridRrFcfs::with_tie_window(4, Time::from(-1.0)).is_err());
        let h = HybridRrFcfs::new(30).unwrap();
        assert_eq!(h.name(), "hybrid");
        let k = AgentId::lines_required(30);
        assert_eq!(h.layout().unwrap().width(), 2 * k + 2);
        assert_eq!(h.last_winner(), 31);
    }

    #[test]
    #[should_panic(expected = "already has an outstanding request")]
    fn duplicate_request_panics() {
        let mut h = HybridRrFcfs::new(4).unwrap();
        req(&mut h, 0.0, 2);
        req(&mut h, 1.0, 2);
    }
}
