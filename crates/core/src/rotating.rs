//! The *rotating-priority* round-robin scheme — the prior art the
//! paper's RR protocol replaces.
//!
//! Section 2.2: "Round-robin scheduling, implemented using a dynamic
//! assignment of arbitration numbers, has been proposed. However, this
//! scheme is less robust and more complex to implement than schemes that
//! are based on static identities."
//!
//! In the rotating scheme every agent holds a *dynamic* arbitration
//! number register; after each arbitration every agent renumbers itself
//! relative to the winner (the winner takes the lowest priority, agents
//! "after" it in cyclic order take higher numbers). The schedule is the
//! same true round-robin as [`DistributedRoundRobin`], which the
//! equivalence tests verify — but the hardware cost is different, and
//! this model exposes it:
//!
//! * every agent rewrites a k-bit register after **every** arbitration
//!   ([`RotatingPriority::renumber_events`] counts the total register
//!   writes), versus one latch of the winner identity in the static
//!   scheme;
//! * a stuck renumbering circuit permanently corrupts the priority
//!   ordering (the robustness argument) — modeled by
//!   [`RotatingPriority::inject_stuck_register`], which the
//!   fault-injection tests use to show the divergence that the
//!   static-identity protocol cannot suffer (its only dynamic state is
//!   the broadcast winner identity, re-learned at every arbitration).
//!
//! [`DistributedRoundRobin`]: crate::DistributedRoundRobin

use busarb_bus::NumberLayout;
use busarb_types::{AgentId, AgentSet, Error, Priority, Time};

use crate::arbiter::{check_agent, validate_agents, Arbiter, Grant};

/// Round-robin arbitration via dynamically rotated arbitration numbers.
///
/// # Examples
///
/// ```
/// use busarb_core::{Arbiter, RotatingPriority};
/// use busarb_types::{AgentId, Priority, Time};
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// let mut rp = RotatingPriority::new(4)?;
/// for i in 1..=4 {
///     rp.on_request(Time::ZERO, AgentId::new(i)?, Priority::Ordinary);
/// }
/// let order: Vec<u32> = (0..4)
///     .map(|_| rp.arbitrate(Time::ZERO).unwrap().agent.get())
///     .collect();
/// assert_eq!(order, [4, 3, 2, 1]); // true round-robin
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct RotatingPriority {
    n: u32,
    layout: NumberLayout,
    /// Current dynamic arbitration number of each agent (index by
    /// `AgentId::index`). Higher wins. All values are distinct unless a
    /// fault has been injected.
    dynamic: Vec<u32>,
    ordinary: AgentSet,
    urgent: AgentSet,
    renumber_events: u64,
    stuck: AgentSet,
}

impl RotatingPriority {
    /// Creates a rotating-priority arbiter; agent `i` initially holds
    /// dynamic number `i`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] if `n` is 0 or exceeds 128.
    pub fn new(n: u32) -> Result<Self, Error> {
        validate_agents(n)?;
        Ok(RotatingPriority {
            n,
            layout: NumberLayout::for_agents(n)?.with_priority_bit(),
            dynamic: (1..=n).collect(),
            ordinary: AgentSet::new(),
            urgent: AgentSet::new(),
            renumber_events: 0,
            stuck: AgentSet::new(),
        })
    }

    /// Total per-agent register writes performed so far — the hardware
    /// activity the static-identity protocol avoids.
    #[must_use]
    pub fn renumber_events(&self) -> u64 {
        self.renumber_events
    }

    /// Current dynamic number of an agent.
    ///
    /// # Panics
    ///
    /// Panics if `agent` exceeds the system size.
    #[must_use]
    pub fn dynamic_number(&self, agent: AgentId) -> u32 {
        self.dynamic[agent.index()]
    }

    /// Fault injection: `agent`'s renumbering circuit sticks, so its
    /// dynamic-number register stops updating. This is the failure mode
    /// the paper's robustness argument is about; the dynamic numbers
    /// collide and the round-robin order silently breaks, with no
    /// mechanism to resynchronize.
    pub fn inject_stuck_register(&mut self, agent: AgentId) {
        check_agent(agent, self.n);
        self.stuck.insert(agent);
    }

    /// Whether any injected fault has fired.
    #[must_use]
    pub fn is_corrupted(&self) -> bool {
        // After a fault fires, numbers may collide.
        let mut seen = 0u128;
        for &d in &self.dynamic {
            let bit = 1u128 << (d % 128);
            if seen & bit != 0 {
                return true;
            }
            seen |= bit;
        }
        false
    }

    /// Appends a normalized fingerprint of the arbitration-relevant state
    /// (request sets, dynamic number registers, stuck-fault set) to `out`.
    /// The renumber-event statistic is excluded.
    #[doc(hidden)]
    pub fn verify_signature(&self, out: &mut Vec<u64>) {
        busarb_types::fingerprint::push_set(out, self.ordinary);
        busarb_types::fingerprint::push_set(out, self.urgent);
        busarb_types::fingerprint::push_set(out, self.stuck);
        out.extend(self.dynamic.iter().map(|&d| u64::from(d)));
    }

    /// Rotates every agent's dynamic number after `winner` wins: the
    /// winner takes number 1 (lowest), and each agent's new number is its
    /// cyclic distance from the winner.
    fn renumber(&mut self, winner: AgentId) {
        let w = winner.get();
        for agent in AgentId::all(self.n) {
            if self.stuck.contains(agent) {
                continue; // stuck register: keeps its stale value forever
            }
            // The next scan must prefer w-1, then w-2, ... wrapping to w
            // itself last, so each agent's new number is inversely
            // proportional to its downward cyclic distance from the
            // winner: w-1 gets N, w-2 gets N-1, ..., w gets 1.
            let a = agent.get();
            let down_steps = (w + self.n - a - 1) % self.n + 1; // 1..=N; N for a == w
            self.dynamic[agent.index()] = self.n + 1 - down_steps;
            self.renumber_events += 1;
        }
    }

    fn select(&self, set: AgentSet) -> Option<AgentId> {
        set.iter().max_by_key(|a| self.dynamic[a.index()])
    }
}

impl Arbiter for RotatingPriority {
    fn name(&self) -> &'static str {
        "rotating-rr"
    }

    fn agents(&self) -> u32 {
        self.n
    }

    fn layout(&self) -> Option<NumberLayout> {
        Some(self.layout)
    }

    fn on_request(&mut self, _now: Time, agent: AgentId, priority: Priority) {
        check_agent(agent, self.n);
        let set = match priority {
            Priority::Urgent => &mut self.urgent,
            Priority::Ordinary => &mut self.ordinary,
        };
        assert!(
            set.insert(agent),
            "agent {agent} already has an outstanding request"
        );
    }

    fn arbitrate(&mut self, _now: Time) -> Option<Grant> {
        if let Some(winner) = self.urgent.max() {
            self.urgent.remove(winner);
            self.renumber(winner);
            return Some(Grant {
                agent: winner,
                priority: Priority::Urgent,
                arbitrations: 1,
            });
        }
        let winner = self.select(self.ordinary)?;
        self.ordinary.remove(winner);
        self.renumber(winner);
        Some(Grant::ordinary(winner))
    }

    fn pending(&self) -> usize {
        self.ordinary.len() + self.urgent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DistributedRoundRobin;

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    fn req(a: &mut RotatingPriority, agent: u32) {
        a.on_request(Time::ZERO, id(agent), Priority::Ordinary);
    }

    fn grant(a: &mut RotatingPriority) -> u32 {
        a.arbitrate(Time::ZERO).unwrap().agent.get()
    }

    #[test]
    fn saturated_cycle_matches_round_robin() {
        let mut a = RotatingPriority::new(5).unwrap();
        for agent in 1..=5 {
            req(&mut a, agent);
        }
        let mut order = Vec::new();
        for _ in 0..10 {
            let w = grant(&mut a);
            order.push(w);
            req(&mut a, w);
        }
        assert_eq!(order, [5, 4, 3, 2, 1, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn matches_static_identity_rr_on_irregular_schedules() {
        let mut rotating = RotatingPriority::new(7).unwrap();
        let mut static_rr = DistributedRoundRobin::new(7).unwrap();
        let schedule: &[&[u32]] = &[
            &[2, 6],
            &[],
            &[1, 7, 4],
            &[3],
            &[],
            &[5],
            &[2],
            &[6, 7],
            &[],
            &[],
            &[1],
        ];
        for batch in schedule {
            for &agent in *batch {
                rotating.on_request(Time::ZERO, id(agent), Priority::Ordinary);
                static_rr.on_request(Time::ZERO, id(agent), Priority::Ordinary);
            }
            assert_eq!(
                rotating.arbitrate(Time::ZERO).map(|g| g.agent),
                static_rr.arbitrate(Time::ZERO).map(|g| g.agent)
            );
        }
        loop {
            let a = rotating.arbitrate(Time::ZERO).map(|g| g.agent);
            let b = static_rr.arbitrate(Time::ZERO).map(|g| g.agent);
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn renumbering_cost_is_n_registers_per_arbitration() {
        let mut a = RotatingPriority::new(8).unwrap();
        req(&mut a, 3);
        req(&mut a, 5);
        assert_eq!(a.renumber_events(), 0);
        grant(&mut a);
        assert_eq!(a.renumber_events(), 8);
        grant(&mut a);
        assert_eq!(a.renumber_events(), 16);
    }

    #[test]
    fn dynamic_numbers_rotate() {
        let mut a = RotatingPriority::new(4).unwrap();
        req(&mut a, 2);
        assert_eq!(grant(&mut a), 2);
        // Winner 2 gets the lowest number; 1 (just below it in the scan)
        // gets the highest, then the scan wraps: 4, then 3.
        assert_eq!(a.dynamic_number(id(2)), 1);
        assert_eq!(a.dynamic_number(id(1)), 4);
        assert_eq!(a.dynamic_number(id(4)), 3);
        assert_eq!(a.dynamic_number(id(3)), 2);
    }

    #[test]
    fn stuck_register_corrupts_the_ordering() {
        let mut a = RotatingPriority::new(4).unwrap();
        for agent in 1..=4 {
            req(&mut a, agent);
        }
        assert!(!a.is_corrupted());
        a.inject_stuck_register(id(1));
        grant(&mut a); // agent 1 misses this renumbering
        assert!(
            a.is_corrupted(),
            "stale register should collide with a rotated one"
        );
        // The static-identity protocol has no such failure mode: its only
        // dynamic state is the broadcast winner identity.
    }

    #[test]
    fn fault_divergence_from_static_rr() {
        let mut rotating = RotatingPriority::new(4).unwrap();
        let mut static_rr = DistributedRoundRobin::new(4).unwrap();
        for agent in 1..=4 {
            rotating.on_request(Time::ZERO, id(agent), Priority::Ordinary);
            static_rr.on_request(Time::ZERO, id(agent), Priority::Ordinary);
        }
        // Stick the top agent's register while it holds the highest
        // number: it keeps winning out of turn.
        rotating.inject_stuck_register(id(4));
        let mut diverged = false;
        for _ in 0..8 {
            let a = rotating.arbitrate(Time::ZERO).map(|g| g.agent);
            let b = static_rr.arbitrate(Time::ZERO).map(|g| g.agent);
            if a != b {
                diverged = true;
                break;
            }
            if let Some(w) = a {
                rotating.on_request(Time::ZERO, w, Priority::Ordinary);
                static_rr.on_request(Time::ZERO, w, Priority::Ordinary);
            }
        }
        assert!(diverged, "a missed renumbering should break the schedule");
    }

    #[test]
    fn urgent_served_first() {
        let mut a = RotatingPriority::new(4).unwrap();
        req(&mut a, 4);
        a.on_request(Time::ZERO, id(1), Priority::Urgent);
        let g = a.arbitrate(Time::ZERO).unwrap();
        assert_eq!((g.agent, g.priority), (id(1), Priority::Urgent));
    }
}
