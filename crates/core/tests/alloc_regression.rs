//! Allocation regression: steady-state protocol arbitration must not
//! touch the heap.
//!
//! The plane-based arbiters keep all mutable state in fixed-size bit
//! masks and per-agent slot arrays allocated at construction, so
//! `on_request`, `arbitrate`, and the `verify_signature` fingerprint
//! (which writes into a caller-reused buffer via an in-place selection
//! scan) perform zero allocations once warm. The central-queue FCFS
//! arbiter reaches the same steady state after its `VecDeque` grows to
//! the saturated depth. This test pins both with a counting global
//! allocator; `cargo xtask lint` pins the same property structurally by
//! scanning the hot function bodies for allocating constructs.
//!
//! All checks live in ONE `#[test]` function: the test harness runs tests
//! on separate threads, and a concurrently running test would perturb the
//! process-wide allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use busarb_core::{
    AdaptiveArbiter, Arbiter, CentralFcfs, CentralRoundRobin, CounterStrategy, DistributedFcfs,
    HybridRrFcfs, TicketFcfs,
};
use busarb_types::{AgentId, Priority, Time};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Minimum allocation count of `f` over a few repetitions. The counter is
/// process-wide, so a test-harness thread allocating concurrently can leak
/// a spurious count into one window; a genuine steady-state allocation in
/// `f` shows up in **every** window, so the minimum isolates it.
fn steady_allocations_in(mut f: impl FnMut()) -> usize {
    (0..3)
        .map(|_| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            f();
            ALLOCATIONS.load(Ordering::Relaxed) - before
        })
        .min()
        .expect("non-empty repetition count")
}

/// Saturates `arbiter` (every agent requesting, each winner immediately
/// re-requesting at a strictly later time), warms it through `4 * n`
/// grants so every internal buffer — the central queue's ring, the
/// signature scratch — reaches its steady capacity, then counts
/// allocations across a grant loop that also fingerprints the full state
/// after every grant.
fn steady_state_allocations<A: Arbiter>(
    arbiter: &mut A,
    n: u32,
    sig: impl Fn(&A, &mut Vec<u64>),
) -> usize {
    let mut clock = 0.0f64;
    let mut signature = Vec::new();
    for a in 1..=n {
        clock += 1.0;
        arbiter.on_request(Time::from(clock), AgentId::new(a).expect("valid id"), Priority::Ordinary);
    }
    for _ in 0..4 * n {
        clock += 1.0;
        let grant = arbiter.arbitrate(Time::from(clock)).expect("saturated arbiter grants");
        clock += 1.0;
        arbiter.on_request(Time::from(clock), grant.agent, Priority::Ordinary);
        signature.clear();
        sig(arbiter, &mut signature);
    }
    steady_allocations_in(|| {
        for _ in 0..256 {
            clock += 1.0;
            let grant = arbiter.arbitrate(Time::from(clock)).expect("saturated arbiter grants");
            clock += 1.0;
            arbiter.on_request(Time::from(clock), grant.agent, Priority::Ordinary);
            signature.clear();
            sig(arbiter, &mut signature);
        }
    })
}

#[test]
fn steady_state_arbitration_and_signatures_do_not_allocate() {
    let n = 32;

    let mut fcfs1 =
        DistributedFcfs::new(n, CounterStrategy::PerLostArbitration).expect("valid size");
    assert_eq!(
        steady_state_allocations(&mut fcfs1, n, DistributedFcfs::verify_signature),
        0,
        "fcfs-1: steady-state arbitration allocated"
    );

    let mut fcfs2 = DistributedFcfs::new(n, CounterStrategy::PerArrival).expect("valid size");
    assert_eq!(
        steady_state_allocations(&mut fcfs2, n, DistributedFcfs::verify_signature),
        0,
        "fcfs-2: steady-state arbitration allocated"
    );

    let mut hybrid = HybridRrFcfs::new(n).expect("valid size");
    assert_eq!(
        steady_state_allocations(&mut hybrid, n, HybridRrFcfs::verify_signature),
        0,
        "hybrid: steady-state arbitration allocated"
    );

    let mut adaptive = AdaptiveArbiter::new(n).expect("valid size");
    assert_eq!(
        steady_state_allocations(&mut adaptive, n, AdaptiveArbiter::verify_signature),
        0,
        "adaptive: steady-state arbitration allocated"
    );

    let mut central_rr = CentralRoundRobin::new(n).expect("valid size");
    assert_eq!(
        steady_state_allocations(&mut central_rr, n, CentralRoundRobin::verify_signature),
        0,
        "central-rr: steady-state arbitration allocated"
    );

    let mut central_fcfs = CentralFcfs::new(n).expect("valid size");
    assert_eq!(
        steady_state_allocations(&mut central_fcfs, n, CentralFcfs::verify_signature),
        0,
        "central-fcfs: steady-state arbitration allocated"
    );

    let mut ticket = TicketFcfs::new(n).expect("valid size");
    assert_eq!(
        steady_state_allocations(&mut ticket, n, TicketFcfs::verify_signature),
        0,
        "ticket-fcfs: steady-state arbitration allocated"
    );
}
