//! Allocation regression: the metrics hot path must not touch the heap.
//!
//! Every `MetricsRegistry::on_*` method runs once per simulated event —
//! inside the engine's monomorphized hot loop. All registry storage is
//! preallocated at construction, so steady-state updates must perform
//! zero heap allocations. This test pins that with a counting global
//! allocator, the same harness as `busarb-bus`'s arbitration hot-path
//! test.
//!
//! All checks live in ONE `#[test]` function: the test harness runs
//! tests on separate threads, and a concurrently running test would
//! perturb the process-wide allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use busarb_obs::MetricsRegistry;
use busarb_types::{AgentId, Time};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Minimum allocation count of `f` over a few repetitions. The counter
/// is process-wide, so a test-harness thread allocating concurrently can
/// leak a spurious count into one window; a genuine steady-state
/// allocation in `f` shows up in **every** window, so the minimum
/// isolates it.
fn steady_allocations_in(mut f: impl FnMut()) -> usize {
    (0..3)
        .map(|_| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            f();
            ALLOCATIONS.load(Ordering::Relaxed) - before
        })
        .min()
        .expect("non-empty repetition count")
}

#[test]
fn metrics_hot_path_does_not_allocate() {
    let n = 32u32;
    let mut registry = MetricsRegistry::new(n);
    let ids: Vec<AgentId> = AgentId::all(n).collect();

    // Warm up: drive the registry through a representative event mix.
    let drive = |registry: &mut MetricsRegistry, rounds: usize| {
        let mut t = 0.0f64;
        for i in 0..rounds {
            t += 0.37;
            let agent = ids[i % ids.len()];
            registry.on_event(Time::from(t));
            registry.on_request((i % 17) as u32);
            registry.on_grant(Time::from(t), 1 + (i % 3) as u32);
            registry.on_transfer_start();
            registry.on_completion(agent, t % 11.0);
        }
    };
    drive(&mut registry, 64);

    let allocs = steady_allocations_in(|| drive(&mut registry, 4096));
    assert_eq!(allocs, 0, "metrics hot path allocated");
}
