//! The metrics registry the event loop drives.

use busarb_types::{AgentId, CoherenceOp, Time};

use crate::metrics::{LogHistogram, WindowedRate};
use crate::snapshot::{MetricsSnapshot, RateSnapshot};

/// Allocation-bounded run metrics: monotonic counters, gauges,
/// log-scale histograms, and windowed rates.
///
/// All storage is preallocated in [`MetricsRegistry::new`]; every
/// `on_*` update method is `#[inline]` and allocation-free (pinned by
/// `cargo xtask lint` and the crate's counting-allocator test), so the
/// simulator keeps the registry permanently enabled in its
/// monomorphized hot loop. Counters cover the **whole run** including
/// warm-up — they are engine-level observability, complementing (not
/// replacing) the measurement-window statistics in `RunReport`.
#[derive(Clone, Debug)]
pub struct MetricsRegistry {
    agents: u32,
    events: u64,
    requests: u64,
    grants: u64,
    arbitrations: u64,
    transfers_started: u64,
    completions: u64,
    completions_per_agent: Vec<u64>,
    read_misses: Vec<u64>,
    write_misses: Vec<u64>,
    upgrades: Vec<u64>,
    invalidations: Vec<u64>,
    pending_peak: u32,
    wait: LogHistogram,
    queue_depth: LogHistogram,
    event_rate: WindowedRate,
    grant_rate: WindowedRate,
    last_event: f64,
}

impl MetricsRegistry {
    /// Creates a registry for a scenario with `agents` agents. This is
    /// the only allocating operation on the type.
    #[must_use]
    pub fn new(agents: u32) -> Self {
        MetricsRegistry {
            agents,
            events: 0,
            requests: 0,
            grants: 0,
            arbitrations: 0,
            transfers_started: 0,
            completions: 0,
            completions_per_agent: vec![0; agents as usize],
            read_misses: vec![0; agents as usize],
            write_misses: vec![0; agents as usize],
            upgrades: vec![0; agents as usize],
            invalidations: vec![0; agents as usize],
            pending_peak: 0,
            wait: LogHistogram::new(),
            queue_depth: LogHistogram::new(),
            event_rate: WindowedRate::new(),
            grant_rate: WindowedRate::new(),
            last_event: 0.0,
        }
    }

    /// One simulation event popped from the queue at time `t`.
    #[inline]
    pub fn on_event(&mut self, t: Time) {
        let t = t.as_f64();
        self.events += 1;
        self.event_rate.record(t);
        self.last_event = t;
    }

    /// A request-line assertion, with `pending` requests now outstanding
    /// at the arbiter (gauges the queue depth distribution).
    #[inline]
    pub fn on_request(&mut self, pending: u32) {
        self.requests += 1;
        if pending > self.pending_peak {
            self.pending_peak = pending;
        }
        self.queue_depth.record(f64::from(pending));
    }

    /// A grant at time `t` that took `arbitrations` line arbitrations.
    #[inline]
    pub fn on_grant(&mut self, t: Time, arbitrations: u32) {
        self.grants += 1;
        self.arbitrations += u64::from(arbitrations);
        self.grant_rate.record(t.as_f64());
    }

    /// A transfer began (the elected master took the bus).
    #[inline]
    pub fn on_transfer_start(&mut self) {
        self.transfers_started += 1;
    }

    /// A transfer by `agent` completed after waiting `wait` time units.
    #[inline]
    pub fn on_completion(&mut self, agent: AgentId, wait: f64) {
        self.completions += 1;
        self.completions_per_agent[agent.index()] += 1;
        self.wait.record(wait);
    }

    /// A coherence bus transaction by `agent` completed, classified by
    /// the MESI transition it performed (closed-loop workloads only).
    #[inline]
    pub fn on_coherence(&mut self, agent: AgentId, op: CoherenceOp) {
        let slot = agent.index();
        match op {
            CoherenceOp::ReadMiss => self.read_misses[slot] += 1,
            CoherenceOp::WriteMiss => self.write_misses[slot] += 1,
            CoherenceOp::Upgrade => self.upgrades[slot] += 1,
        }
    }

    /// `victim`'s cached copy of a line was invalidated by another
    /// agent's write (closed-loop workloads only).
    #[inline]
    pub fn on_invalidation(&mut self, victim: AgentId) {
        self.invalidations[victim.index()] += 1;
    }

    /// Total events observed so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total grants observed so far.
    #[must_use]
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total completions observed so far.
    #[must_use]
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Freezes the registry into a serializable, mergeable snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            agents: self.agents,
            sim_time: self.last_event,
            events: self.events,
            requests: self.requests,
            grants: self.grants,
            arbitrations: self.arbitrations,
            transfers_started: self.transfers_started,
            completions: self.completions,
            completions_per_agent: self.completions_per_agent.clone(),
            read_misses: self.read_misses.clone(),
            write_misses: self.write_misses.clone(),
            upgrades: self.upgrades.clone(),
            invalidations: self.invalidations.clone(),
            pending_peak: self.pending_peak,
            wait: crate::snapshot::HistogramSnapshot::of(&self.wait),
            queue_depth: crate::snapshot::HistogramSnapshot::of(&self.queue_depth),
            event_rate: RateSnapshot::of(&self.event_rate),
            grant_rate: RateSnapshot::of(&self.grant_rate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    #[test]
    fn registry_accumulates_and_snapshots() {
        let mut m = MetricsRegistry::new(3);
        for i in 0..10u32 {
            m.on_event(Time::from(f64::from(i) * 0.7));
        }
        m.on_request(1);
        m.on_request(2);
        m.on_grant(Time::from(1.0), 1);
        m.on_grant(Time::from(2.0), 3);
        m.on_transfer_start();
        m.on_completion(id(1), 1.5);
        m.on_completion(id(3), 2.5);
        m.on_coherence(id(1), CoherenceOp::ReadMiss);
        m.on_coherence(id(1), CoherenceOp::WriteMiss);
        m.on_coherence(id(3), CoherenceOp::Upgrade);
        m.on_invalidation(id(2));

        assert_eq!(m.events(), 10);
        assert_eq!(m.grants(), 2);
        assert_eq!(m.completions(), 2);

        let s = m.snapshot();
        assert_eq!(s.agents, 3);
        assert_eq!(s.events, 10);
        assert_eq!(s.requests, 2);
        assert_eq!(s.grants, 2);
        assert_eq!(s.arbitrations, 4);
        assert_eq!(s.transfers_started, 1);
        assert_eq!(s.completions, 2);
        assert_eq!(s.completions_per_agent, vec![1, 0, 1]);
        assert_eq!(s.read_misses, vec![1, 0, 0]);
        assert_eq!(s.write_misses, vec![1, 0, 0]);
        assert_eq!(s.upgrades, vec![0, 0, 1]);
        assert_eq!(s.invalidations, vec![0, 1, 0]);
        assert_eq!(s.pending_peak, 2);
        assert_eq!(s.wait.count, 2);
        assert_eq!(s.wait.sum, 4.0);
        assert_eq!(s.queue_depth.max, 2.0);
        assert_eq!(s.sim_time, 9.0 * 0.7);
        assert_eq!(s.event_rate.peak, 10);
    }
}
