//! Serializable, mergeable snapshots of a [`MetricsRegistry`].
//!
//! [`MetricsRegistry`]: crate::MetricsRegistry

use serde::Serialize;

use crate::metrics::{LogHistogram, WindowedRate};

/// A frozen [`LogHistogram`]: per-bucket counts plus exact moments.
///
/// Bucket edges are implicit — [`LogHistogram::bucket_edge`] maps index
/// to exclusive upper edge; they are fixed for the `busarb-trace/1`
/// schema so exports need not repeat them.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Exact sum of recorded samples.
    pub sum: f64,
    /// Smallest recorded sample (`null` in JSON when empty).
    pub min: f64,
    /// Largest recorded sample (`null` in JSON when empty).
    pub max: f64,
    /// Per-bucket counts ([`HISTOGRAM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Freezes a live histogram.
    #[must_use]
    pub fn of(h: &LogHistogram) -> Self {
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            buckets: h.buckets().to_vec(),
        }
    }

    /// Exact mean of the recorded samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (into, from) in self.buckets.iter_mut().zip(&other.buckets) {
            *into += from;
        }
    }
}

/// A frozen [`WindowedRate`].
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct RateSnapshot {
    /// Window length in simulated time units.
    pub window: f64,
    /// Completed windows.
    pub windows: u64,
    /// Occurrences inside completed windows.
    pub count: u64,
    /// Occurrences in the busiest single window (possibly the final,
    /// partial one).
    pub peak: u64,
}

impl RateSnapshot {
    /// Freezes a live rate tracker.
    #[must_use]
    pub fn of(r: &WindowedRate) -> Self {
        RateSnapshot {
            window: r.window(),
            windows: r.closed_windows(),
            count: r.closed_count(),
            peak: r.peak(),
        }
    }

    /// Mean rate over completed windows, per simulated time unit.
    #[must_use]
    pub fn mean_rate(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.count as f64 / (self.windows as f64 * self.window)
        }
    }

    /// Peak rate (busiest window), per simulated time unit.
    #[must_use]
    pub fn peak_rate(&self) -> f64 {
        self.peak as f64 / self.window
    }

    /// Folds another rate into this one (windows and counts add across
    /// runs; the peak is the max). Panics if the window lengths differ,
    /// since rates over different windows are not comparable.
    fn merge(&mut self, other: &RateSnapshot) {
        assert!(
            (self.window - other.window).abs() < f64::EPSILON,
            "cannot merge rates with different windows ({} vs {})",
            self.window,
            other.window
        );
        self.windows += other.windows;
        self.count += other.count;
        self.peak = self.peak.max(other.peak);
    }
}

/// A frozen [`MetricsRegistry`](crate::MetricsRegistry), ready for JSON
/// export or deterministic cross-run aggregation.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Agents in the scenario (the max across merged runs).
    pub agents: u32,
    /// Simulated time of the last observed event (summed across merged
    /// runs: total simulated time covered).
    pub sim_time: f64,
    /// Simulation events processed.
    pub events: u64,
    /// Bus requests issued.
    pub requests: u64,
    /// Grants (arbitration winners elected).
    pub grants: u64,
    /// Line arbitrations, including wraparounds and release cycles.
    pub arbitrations: u64,
    /// Transfers started.
    pub transfers_started: u64,
    /// Transfers completed.
    pub completions: u64,
    /// Completions per agent, indexed by `AgentId::index()`.
    pub completions_per_agent: Vec<u64>,
    /// MESI read misses per agent (closed-loop workloads; all zeros
    /// otherwise), indexed by `AgentId::index()`.
    pub read_misses: Vec<u64>,
    /// MESI write misses per agent, indexed by `AgentId::index()`.
    pub write_misses: Vec<u64>,
    /// MESI S→M upgrades per agent, indexed by `AgentId::index()`.
    pub upgrades: Vec<u64>,
    /// Cached copies invalidated per agent (victim-attributed), indexed
    /// by `AgentId::index()`.
    pub invalidations: Vec<u64>,
    /// Largest number of simultaneously pending requests observed.
    pub pending_peak: u32,
    /// Waiting-time distribution (whole run, warm-up included).
    pub wait: HistogramSnapshot,
    /// Pending-queue-depth distribution, gauged at each request arrival.
    pub queue_depth: HistogramSnapshot,
    /// Simulation events per simulated time unit.
    pub event_rate: RateSnapshot,
    /// Grants per simulated time unit.
    pub grant_rate: RateSnapshot,
}

impl MetricsSnapshot {
    /// An empty snapshot (the identity element of [`merge`]) for `agents`
    /// agents.
    ///
    /// [`merge`]: MetricsSnapshot::merge
    #[must_use]
    pub fn empty(agents: u32) -> Self {
        crate::MetricsRegistry::new(agents).snapshot()
    }

    /// Folds another snapshot into this one: counters and histogram
    /// buckets add, peaks take the max, per-agent tallies add
    /// elementwise (padding to the longer agent roster).
    ///
    /// Merging is commutative up to field semantics, but callers that
    /// need *deterministic* aggregates across a parallel sweep should
    /// fold snapshots in a canonical order (e.g. sorted by cell tag),
    /// since floating-point sums are order-sensitive.
    ///
    /// # Panics
    ///
    /// Panics if the rate windows differ (snapshots from the same build
    /// always share them).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.agents = self.agents.max(other.agents);
        self.sim_time += other.sim_time;
        self.events += other.events;
        self.requests += other.requests;
        self.grants += other.grants;
        self.arbitrations += other.arbitrations;
        self.transfers_started += other.transfers_started;
        self.completions += other.completions;
        fn add_per_agent(into: &mut Vec<u64>, from: &[u64]) {
            if into.len() < from.len() {
                into.resize(from.len(), 0);
            }
            for (into, from) in into.iter_mut().zip(from) {
                *into += from;
            }
        }
        add_per_agent(&mut self.completions_per_agent, &other.completions_per_agent);
        add_per_agent(&mut self.read_misses, &other.read_misses);
        add_per_agent(&mut self.write_misses, &other.write_misses);
        add_per_agent(&mut self.upgrades, &other.upgrades);
        add_per_agent(&mut self.invalidations, &other.invalidations);
        self.pending_peak = self.pending_peak.max(other.pending_peak);
        self.wait.merge(&other.wait);
        self.queue_depth.merge(&other.queue_depth);
        self.event_rate.merge(&other.event_rate);
        self.grant_rate.merge(&other.grant_rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HISTOGRAM_BUCKETS;
    use busarb_types::{AgentId, CoherenceOp, Time};

    fn sample(agents: u32, base: f64) -> MetricsSnapshot {
        let mut m = crate::MetricsRegistry::new(agents);
        m.on_event(Time::from(base));
        m.on_request(1);
        m.on_grant(Time::from(base), 2);
        m.on_transfer_start();
        m.on_completion(AgentId::new(1).unwrap(), base);
        m.on_coherence(AgentId::new(1).unwrap(), CoherenceOp::WriteMiss);
        if agents >= 2 {
            m.on_invalidation(AgentId::new(2).unwrap());
        }
        m.snapshot()
    }

    #[test]
    fn merge_sums_counters_and_maxes_peaks() {
        let mut a = sample(2, 1.0);
        let b = sample(4, 3.0);
        a.merge(&b);
        assert_eq!(a.agents, 4);
        assert_eq!(a.events, 2);
        assert_eq!(a.requests, 2);
        assert_eq!(a.grants, 2);
        assert_eq!(a.arbitrations, 4);
        assert_eq!(a.completions, 2);
        assert_eq!(a.completions_per_agent, vec![2, 0, 0, 0]);
        assert_eq!(a.write_misses, vec![2, 0, 0, 0]);
        assert_eq!(a.invalidations, vec![0, 2, 0, 0]);
        assert_eq!(a.read_misses, vec![0, 0, 0, 0]);
        assert_eq!(a.upgrades, vec![0, 0, 0, 0]);
        assert_eq!(a.wait.count, 2);
        assert_eq!(a.wait.sum, 4.0);
        assert_eq!(a.wait.min, 1.0);
        assert_eq!(a.wait.max, 3.0);
        assert_eq!(a.sim_time, 4.0);
        assert_eq!(a.wait.mean(), 2.0);
    }

    #[test]
    fn empty_is_the_merge_identity() {
        let s = sample(3, 2.0);
        let mut e = MetricsSnapshot::empty(3);
        e.merge(&s);
        assert_eq!(e, s);
    }

    #[test]
    fn histogram_buckets_have_fixed_length() {
        let s = sample(1, 1.0);
        assert_eq!(s.wait.buckets.len(), HISTOGRAM_BUCKETS);
        assert_eq!(s.queue_depth.buckets.len(), HISTOGRAM_BUCKETS);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let s = sample(2, 1.5);
        let json = serde_json::to_string(&s).expect("shim serializer is total");
        let v = serde_json::from_str(&json).expect("round-trip parses");
        assert_eq!(v.get("agents").and_then(serde::Value::as_u64), Some(2));
        assert_eq!(
            v.get("wait").and_then(|w| w.get("count")).and_then(serde::Value::as_u64),
            Some(1)
        );
        assert_eq!(
            v.get("completions_per_agent")
                .and_then(serde::Value::as_array)
                .map(<[serde::Value]>::len),
            Some(2)
        );
    }

    #[test]
    fn rate_merge_rejects_mismatched_windows() {
        let mut a = RateSnapshot {
            window: 10.0,
            windows: 1,
            count: 5,
            peak: 5,
        };
        let b = RateSnapshot {
            window: 10.0,
            windows: 3,
            count: 5,
            peak: 4,
        };
        a.merge(&b);
        assert_eq!(a.windows, 4);
        assert_eq!(a.count, 10);
        assert_eq!(a.peak, 5);
        assert_eq!(a.mean_rate(), 0.25);
        assert_eq!(a.peak_rate(), 0.5);
        let c = RateSnapshot {
            window: 20.0,
            windows: 1,
            count: 1,
            peak: 1,
        };
        let outcome = std::panic::catch_unwind(move || {
            let mut a = a;
            a.merge(&c);
        });
        assert!(outcome.is_err());
    }
}
