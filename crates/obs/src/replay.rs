//! Trace replay: recomputing run-level aggregates from an exported
//! trace alone.
//!
//! The replay mirrors the simulator's accounting arithmetic exactly —
//! the same warm-up discard, the same [`BatchMeans`] machinery fed the
//! same waiting times in the same order, the same
//! `samples / measured_time` utilization division — so on a losslessly
//! exported trace the recomputed mean wait and utilization match the
//! live `RunReport` bit-for-bit, not merely approximately. `repro
//! inspect` leans on this to cross-check exports against the engine.

use busarb_stats::{BatchMeans, BatchMeansConfig, Estimate, Summary};
use busarb_types::{TraceEvent, TraceKind};

use crate::TraceHeader;

/// Aggregates recomputed from an exported trace.
#[derive(Clone, Debug)]
pub struct Replay {
    /// Protocol name from the trace header.
    pub protocol: String,
    /// Batch-means estimate of the mean waiting time, if the trace
    /// contains enough post-warm-up completions to fill every batch.
    pub mean_wait: Option<Estimate>,
    /// Summary of the measured (post-warm-up, within-budget) waits.
    pub wait_summary: Summary,
    /// Bus utilization over the measurement interval.
    pub utilization: f64,
    /// Simulated time spanned by the measurement interval.
    pub measured_time: f64,
    /// Request-line assertions in the trace (whole run).
    pub requests: u64,
    /// Grants (arbitration-start events) in the trace (whole run).
    pub grants: u64,
    /// Transfer-start events in the trace (whole run).
    pub transfers: u64,
    /// Transfer completions in the trace (whole run).
    pub completions: u64,
    /// Coherence events in the trace (whole run; zero for open-loop
    /// workloads).
    pub coherence_events: u64,
    /// Completions consumed by the warm-up discard.
    pub warmup_consumed: u64,
    /// Measured completions per agent, indexed by `AgentId::index()`.
    pub per_agent_samples: Vec<u64>,
}

impl Replay {
    /// Measured completions (the samples behind [`Replay::mean_wait`]).
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.wait_summary.count()
    }
}

/// Incremental replay: the streaming form of [`replay`].
///
/// Feed events one at a time with [`push`]; [`finish`] freezes the
/// aggregates into a [`Replay`]. All state is fixed-size (the batch-means
/// accumulator holds one sum per batch, the per-agent tallies one slot
/// per agent), so replaying a trace of any length takes constant memory —
/// this is what lets `busarb analyze` and `repro inspect` process traces
/// that never fit in RAM while still reproducing the live run's
/// aggregates bit-for-bit.
///
/// [`push`]: ReplayBuilder::push
/// [`finish`]: ReplayBuilder::finish
#[derive(Clone, Debug)]
pub struct ReplayBuilder {
    protocol: String,
    agents: u32,
    warmup_samples: u64,
    bm: BatchMeans,
    warmup_remaining: u64,
    warmup_end: f64,
    last_counted: f64,
    requests: u64,
    grants: u64,
    transfers: u64,
    completions: u64,
    coherence_events: u64,
    per_agent_samples: Vec<u64>,
}

impl ReplayBuilder {
    /// Creates a replay accumulator from a trace header.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::ErrorKind::InvalidData`] when the header's
    /// batch-means configuration is invalid.
    pub fn new(header: &TraceHeader) -> std::io::Result<Self> {
        let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let config = BatchMeansConfig {
            batches: usize::try_from(header.batches)
                .map_err(|_| invalid("batch count exceeds usize".to_string()))?,
            samples_per_batch: usize::try_from(header.samples_per_batch)
                .map_err(|_| invalid("samples per batch exceeds usize".to_string()))?,
            confidence: header.confidence,
        };
        let bm = BatchMeans::new(config).map_err(|e| invalid(format!("bad batch config: {e}")))?;
        Ok(ReplayBuilder {
            protocol: header.protocol.clone(),
            agents: header.agents,
            warmup_samples: header.warmup_samples,
            bm,
            warmup_remaining: header.warmup_samples,
            warmup_end: 0.0,
            last_counted: 0.0,
            requests: 0,
            grants: 0,
            transfers: 0,
            completions: 0,
            coherence_events: 0,
            per_agent_samples: vec![0u64; header.agents as usize],
        })
    }

    /// Folds one event into the aggregates.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::ErrorKind::InvalidData`] when the event names
    /// an agent outside the header's roster.
    pub fn push(&mut self, event: &TraceEvent) -> std::io::Result<()> {
        match event.kind {
            TraceKind::Request { .. } => self.requests += 1,
            TraceKind::ArbitrationStart { .. } => self.grants += 1,
            TraceKind::TransferStart { .. } => self.transfers += 1,
            TraceKind::Coherence { .. } => self.coherence_events += 1,
            TraceKind::TransferEnd { agent, wait } => {
                self.completions += 1;
                if agent.get() > self.agents {
                    // Static message: `push` sits on the per-event trace
                    // path and must not allocate to report bad input.
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "trace event names an agent outside the header's roster",
                    ));
                }
                if self.warmup_remaining > 0 {
                    self.warmup_remaining -= 1;
                    if self.warmup_remaining == 0 {
                        self.warmup_end = event.at.as_f64();
                    }
                } else if !self.bm.is_complete() {
                    self.bm.record(wait);
                    self.per_agent_samples[agent.index()] += 1;
                    self.last_counted = event.at.as_f64();
                }
            }
        }
        Ok(())
    }

    /// Freezes the accumulated state into run-level aggregates.
    #[must_use]
    pub fn finish(self) -> Replay {
        let measured_time = self.last_counted - self.warmup_end;
        let utilization = if measured_time > 0.0 {
            self.bm.samples_recorded() as f64 / measured_time
        } else {
            0.0
        };
        Replay {
            protocol: self.protocol,
            mean_wait: self.bm.estimate(),
            wait_summary: *self.bm.overall(),
            utilization,
            measured_time,
            requests: self.requests,
            grants: self.grants,
            transfers: self.transfers,
            completions: self.completions,
            coherence_events: self.coherence_events,
            warmup_consumed: self.warmup_samples - self.warmup_remaining,
            per_agent_samples: self.per_agent_samples,
        }
    }
}

/// Replays an exported trace, recomputing `RunReport`-level aggregates.
///
/// This is the whole-slice convenience over [`ReplayBuilder`]; both
/// paths share the accumulation code, so streaming and whole-file replay
/// agree exactly by construction.
///
/// # Errors
///
/// Returns [`std::io::ErrorKind::InvalidData`] when the header's
/// batch-means configuration is invalid or an event names an agent
/// outside the header's roster.
pub fn replay(header: &TraceHeader, events: &[TraceEvent]) -> std::io::Result<Replay> {
    let mut builder = ReplayBuilder::new(header)?;
    for event in events {
        builder.push(event)?;
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TRACE_SCHEMA;
    use busarb_types::{AgentId, Time};

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    fn header(agents: u32, warmup: u64, batches: u64, spb: u64) -> TraceHeader {
        TraceHeader {
            schema: TRACE_SCHEMA.to_string(),
            protocol: "synthetic".to_string(),
            agents,
            seed: 0,
            warmup_samples: warmup,
            batches,
            samples_per_batch: spb,
            confidence: 0.9,
        }
    }

    /// A synthetic saturated two-agent run: a completion every unit of
    /// time, alternating agents, constant wait 1.5.
    fn completions(n: usize) -> Vec<TraceEvent> {
        (0..n)
            .map(|i| TraceEvent {
                at: Time::from(i as f64 + 1.0),
                kind: TraceKind::TransferEnd {
                    agent: id(1 + (i as u32) % 2),
                    wait: 1.5,
                },
            })
            .collect()
    }

    #[test]
    fn replay_applies_warmup_and_batch_budget() {
        let h = header(2, 4, 2, 3);
        let events = completions(20);
        let r = replay(&h, &events).unwrap();
        assert_eq!(r.completions, 20);
        assert_eq!(r.warmup_consumed, 4);
        // 2 batches x 3 samples measured; the rest ignored.
        assert_eq!(r.samples(), 6);
        assert_eq!(r.per_agent_samples, vec![3, 3]);
        let est = r.mean_wait.unwrap();
        assert_eq!(est.mean, 1.5);
        // warmup_end at t=4, last counted at t=10: 6 samples / 6 units.
        assert_eq!(r.measured_time, 6.0);
        assert_eq!(r.utilization, 1.0);
    }

    #[test]
    fn incomplete_batches_give_no_estimate() {
        let h = header(2, 0, 10, 100);
        let r = replay(&h, &completions(50)).unwrap();
        assert!(r.mean_wait.is_none());
        assert_eq!(r.samples(), 50);
    }

    #[test]
    fn out_of_roster_agent_is_rejected() {
        let h = header(1, 0, 2, 2);
        let events = vec![TraceEvent {
            at: Time::from(1.0),
            kind: TraceKind::TransferEnd {
                agent: id(2),
                wait: 1.0,
            },
        }];
        assert!(replay(&h, &events).is_err());
    }

    #[test]
    fn bad_batch_config_is_rejected() {
        let h = header(1, 0, 1, 2); // fewer than 2 batches
        assert!(replay(&h, &[]).is_err());
    }
}
