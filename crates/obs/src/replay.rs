//! Trace replay: recomputing run-level aggregates from an exported
//! trace alone.
//!
//! The replay mirrors the simulator's accounting arithmetic exactly —
//! the same warm-up discard, the same [`BatchMeans`] machinery fed the
//! same waiting times in the same order, the same
//! `samples / measured_time` utilization division — so on a losslessly
//! exported trace the recomputed mean wait and utilization match the
//! live `RunReport` bit-for-bit, not merely approximately. `repro
//! inspect` leans on this to cross-check exports against the engine.

use busarb_stats::{BatchMeans, BatchMeansConfig, Estimate, Summary};
use busarb_types::{TraceEvent, TraceKind};

use crate::TraceHeader;

/// Aggregates recomputed from an exported trace.
#[derive(Clone, Debug)]
pub struct Replay {
    /// Protocol name from the trace header.
    pub protocol: String,
    /// Batch-means estimate of the mean waiting time, if the trace
    /// contains enough post-warm-up completions to fill every batch.
    pub mean_wait: Option<Estimate>,
    /// Summary of the measured (post-warm-up, within-budget) waits.
    pub wait_summary: Summary,
    /// Bus utilization over the measurement interval.
    pub utilization: f64,
    /// Simulated time spanned by the measurement interval.
    pub measured_time: f64,
    /// Request-line assertions in the trace (whole run).
    pub requests: u64,
    /// Grants (arbitration-start events) in the trace (whole run).
    pub grants: u64,
    /// Transfer-start events in the trace (whole run).
    pub transfers: u64,
    /// Transfer completions in the trace (whole run).
    pub completions: u64,
    /// Completions consumed by the warm-up discard.
    pub warmup_consumed: u64,
    /// Measured completions per agent, indexed by `AgentId::index()`.
    pub per_agent_samples: Vec<u64>,
}

impl Replay {
    /// Measured completions (the samples behind [`Replay::mean_wait`]).
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.wait_summary.count()
    }
}

/// Replays an exported trace, recomputing `RunReport`-level aggregates.
///
/// # Errors
///
/// Returns [`std::io::ErrorKind::InvalidData`] when the header's
/// batch-means configuration is invalid or an event names an agent
/// outside the header's roster.
pub fn replay(header: &TraceHeader, events: &[TraceEvent]) -> std::io::Result<Replay> {
    let invalid =
        |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let config = BatchMeansConfig {
        batches: usize::try_from(header.batches)
            .map_err(|_| invalid("batch count exceeds usize".to_string()))?,
        samples_per_batch: usize::try_from(header.samples_per_batch)
            .map_err(|_| invalid("samples per batch exceeds usize".to_string()))?,
        confidence: header.confidence,
    };
    let mut bm =
        BatchMeans::new(config).map_err(|e| invalid(format!("bad batch config: {e}")))?;

    let mut warmup_remaining = header.warmup_samples;
    let mut warmup_end = 0.0f64;
    let mut last_counted = 0.0f64;
    let mut requests = 0u64;
    let mut grants = 0u64;
    let mut transfers = 0u64;
    let mut completions = 0u64;
    let mut per_agent_samples = vec![0u64; header.agents as usize];

    for event in events {
        match event.kind {
            TraceKind::Request { .. } => requests += 1,
            TraceKind::ArbitrationStart { .. } => grants += 1,
            TraceKind::TransferStart { .. } => transfers += 1,
            TraceKind::TransferEnd { agent, wait } => {
                completions += 1;
                if agent.get() > header.agents {
                    return Err(invalid(format!(
                        "event names agent {agent} but the header has {} agents",
                        header.agents
                    )));
                }
                if warmup_remaining > 0 {
                    warmup_remaining -= 1;
                    if warmup_remaining == 0 {
                        warmup_end = event.at.as_f64();
                    }
                } else if !bm.is_complete() {
                    bm.record(wait);
                    per_agent_samples[agent.index()] += 1;
                    last_counted = event.at.as_f64();
                }
            }
        }
    }

    let measured_time = last_counted - warmup_end;
    let utilization = if measured_time > 0.0 {
        bm.samples_recorded() as f64 / measured_time
    } else {
        0.0
    };
    Ok(Replay {
        protocol: header.protocol.clone(),
        mean_wait: bm.estimate(),
        wait_summary: *bm.overall(),
        utilization,
        measured_time,
        requests,
        grants,
        transfers,
        completions,
        warmup_consumed: header.warmup_samples - warmup_remaining,
        per_agent_samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TRACE_SCHEMA;
    use busarb_types::{AgentId, Time};

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    fn header(agents: u32, warmup: u64, batches: u64, spb: u64) -> TraceHeader {
        TraceHeader {
            schema: TRACE_SCHEMA.to_string(),
            protocol: "synthetic".to_string(),
            agents,
            seed: 0,
            warmup_samples: warmup,
            batches,
            samples_per_batch: spb,
            confidence: 0.9,
        }
    }

    /// A synthetic saturated two-agent run: a completion every unit of
    /// time, alternating agents, constant wait 1.5.
    fn completions(n: usize) -> Vec<TraceEvent> {
        (0..n)
            .map(|i| TraceEvent {
                at: Time::from(i as f64 + 1.0),
                kind: TraceKind::TransferEnd {
                    agent: id(1 + (i as u32) % 2),
                    wait: 1.5,
                },
            })
            .collect()
    }

    #[test]
    fn replay_applies_warmup_and_batch_budget() {
        let h = header(2, 4, 2, 3);
        let events = completions(20);
        let r = replay(&h, &events).unwrap();
        assert_eq!(r.completions, 20);
        assert_eq!(r.warmup_consumed, 4);
        // 2 batches x 3 samples measured; the rest ignored.
        assert_eq!(r.samples(), 6);
        assert_eq!(r.per_agent_samples, vec![3, 3]);
        let est = r.mean_wait.unwrap();
        assert_eq!(est.mean, 1.5);
        // warmup_end at t=4, last counted at t=10: 6 samples / 6 units.
        assert_eq!(r.measured_time, 6.0);
        assert_eq!(r.utilization, 1.0);
    }

    #[test]
    fn incomplete_batches_give_no_estimate() {
        let h = header(2, 0, 10, 100);
        let r = replay(&h, &completions(50)).unwrap();
        assert!(r.mean_wait.is_none());
        assert_eq!(r.samples(), 50);
    }

    #[test]
    fn out_of_roster_agent_is_rejected() {
        let h = header(1, 0, 2, 2);
        let events = vec![TraceEvent {
            at: Time::from(1.0),
            kind: TraceKind::TransferEnd {
                agent: id(2),
                wait: 1.0,
            },
        }];
        assert!(replay(&h, &events).is_err());
    }

    #[test]
    fn bad_batch_config_is_rejected() {
        let h = header(1, 0, 1, 2); // fewer than 2 batches
        assert!(replay(&h, &[]).is_err());
    }
}
