//! Observability layer for the bus-arbitration simulator.
//!
//! The paper's entire argument rests on measured quantities — mean wait
//! `W`, σ_W, per-agent throughput ratios, bus utilization — and a
//! production-scale engine needs those quantities *observable*, not just
//! printed once at the end of a run. This crate provides three pieces:
//!
//! * **Metrics** ([`MetricsRegistry`]) — an allocation-bounded registry
//!   of monotonic counters, gauges, fixed-bucket log-scale histograms
//!   (waiting time, queue depth), and windowed rates (events and grants
//!   per unit time). All state is preallocated at construction; the
//!   per-event update methods are `#[inline]` and perform zero heap
//!   allocations, so the simulator can keep them on in its hot loop
//!   (guarded by a counting-allocator regression test and `cargo xtask
//!   lint`). [`MetricsRegistry::snapshot`] freezes the registry into a
//!   serializable [`MetricsSnapshot`]; snapshots from parallel sweep
//!   cells merge deterministically via [`MetricsSnapshot::merge`].
//! * **Trace export** ([`TraceSink`], [`JsonlSink`], [`BinarySink`]) —
//!   structured, lossless export of the simulator's execution trace
//!   (`busarb_types::TraceEvent`) as self-describing JSON Lines or a
//!   compact binary framing, plus readers that auto-detect the format:
//!   [`read_trace`] / [`read_trace_file`] for whole-buffer decoding and
//!   the incremental [`TraceReader`], which yields one event at a time
//!   from any [`std::io::Read`] in bounded memory and reports malformed
//!   input as a structured [`StreamError`] naming the byte offset (and
//!   line, for JSONL). `busarb-tail` builds its streaming analyzers —
//!   `busarb analyze` / `busarb serve` — on [`TraceReader`] plus the
//!   incremental [`ReplayBuilder`].
//! * **Replay** ([`replay`]) — recomputes run-level aggregates (mean
//!   wait with its batch-means confidence interval, utilization, grant
//!   and completion counts) from an exported trace alone, mirroring the
//!   simulator's own accounting arithmetic exactly. `repro inspect`
//!   uses this as a cross-check that trace, metrics, and the live
//!   `RunReport` agree.
//!
//! # Export formats
//!
//! Both formats begin with a self-describing header carrying everything
//! replay needs ([`TraceHeader`]): schema tag `busarb-trace/1`, protocol
//! name, agent count, seed, warm-up sample count, and the batch-means
//! configuration.
//!
//! **JSONL** — line 1 is the header object; every further line is one
//! event object:
//!
//! ```text
//! {"schema":"busarb-trace/1","protocol":"RR","agents":10,"seed":7,...}
//! {"at":0.52,"ev":"req","agent":3}
//! {"at":0.52,"ev":"arb","winner":3,"completes":1.02}
//! {"at":1.02,"ev":"xfer","agent":3}
//! {"at":2.02,"ev":"end","agent":3,"wait":1.5}
//! ```
//!
//! **Binary** — magic `BTRC`, a version byte, a little-endian `u32`
//! length-prefixed copy of the same JSON header, then fixed-layout
//! records (tag byte, `f64` timestamp, `u32` agent, and for
//! arbitration/completion records one further `f64`), all little-endian.
//! Roughly 4× smaller than JSONL and parses without float formatting.
//!
//! Timestamps and waits round-trip bit-exactly through both formats
//! (JSONL uses Rust's shortest round-trip float formatting), which is
//! what lets [`replay`] reproduce the live run's aggregates to the last
//! bit rather than merely "close".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod metrics;
mod registry;
mod replay;
mod snapshot;
mod stream;

pub use export::{open_file_sink, read_trace, read_trace_file, BinarySink, JsonlSink, MemorySink};
pub use metrics::{LogHistogram, WindowedRate, HISTOGRAM_BUCKETS, RATE_WINDOW};
pub use registry::MetricsRegistry;
pub use replay::{replay, Replay, ReplayBuilder};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot, RateSnapshot};
pub use stream::{open_trace, stream_error, StreamError, TraceReader, MAX_LINE_BYTES};

use busarb_types::TraceEvent;

/// The schema tag written into every exported trace header.
pub const TRACE_SCHEMA: &str = "busarb-trace/1";

/// On-disk representation of an exported trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TraceFormat {
    /// Self-describing JSON Lines (header object, then one event per
    /// line). Grep-able and diff-able; the default.
    #[default]
    Jsonl,
    /// Compact little-endian binary framing with a JSON header.
    Binary,
}

impl core::fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceFormat::Jsonl => f.write_str("jsonl"),
            TraceFormat::Binary => f.write_str("binary"),
        }
    }
}

impl core::str::FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "jsonl" | "json" => Ok(TraceFormat::Jsonl),
            "binary" | "bin" => Ok(TraceFormat::Binary),
            other => Err(format!("unknown trace format `{other}` (jsonl|binary)")),
        }
    }
}

/// The self-describing header of an exported trace: everything
/// [`replay`] needs to recompute run-level aggregates without the
/// original `SystemConfig`.
#[derive(Clone, PartialEq, Debug, serde::Serialize)]
pub struct TraceHeader {
    /// Schema tag ([`TRACE_SCHEMA`]).
    pub schema: String,
    /// Protocol name as reported by the arbiter.
    pub protocol: String,
    /// Number of agents in the scenario.
    pub agents: u32,
    /// PRNG seed of the run.
    pub seed: u64,
    /// Completions discarded before measurement began.
    pub warmup_samples: u64,
    /// Batch-means batch count.
    pub batches: u64,
    /// Batch-means samples per batch.
    pub samples_per_batch: u64,
    /// Confidence level of the batch-means interval.
    pub confidence: f64,
}

impl TraceHeader {
    /// Parses a header from its JSON [`serde::Value`] form, validating
    /// the schema tag.
    ///
    /// # Errors
    ///
    /// Returns an [`std::io::ErrorKind::InvalidData`] error when a field
    /// is missing, mistyped, or the schema tag is unknown.
    pub fn from_value(value: &serde::Value) -> std::io::Result<Self> {
        fn field<'v, T>(
            value: &'v serde::Value,
            key: &str,
            get: impl FnOnce(&'v serde::Value) -> Option<T>,
        ) -> std::io::Result<T> {
            value.get(key).and_then(get).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("trace header: missing or mistyped field `{key}`"),
                )
            })
        }
        let schema = field(value, "schema", serde::Value::as_str)?;
        if schema != TRACE_SCHEMA {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unsupported trace schema `{schema}` (expected `{TRACE_SCHEMA}`)"),
            ));
        }
        Ok(TraceHeader {
            schema: schema.to_string(),
            protocol: field(value, "protocol", serde::Value::as_str)?.to_string(),
            agents: u32::try_from(field(value, "agents", serde::Value::as_u64)?).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "agent count exceeds u32")
            })?,
            seed: field(value, "seed", serde::Value::as_u64)?,
            warmup_samples: field(value, "warmup_samples", serde::Value::as_u64)?,
            batches: field(value, "batches", serde::Value::as_u64)?,
            samples_per_batch: field(value, "samples_per_batch", serde::Value::as_u64)?,
            confidence: field(value, "confidence", serde::Value::as_f64)?,
        })
    }
}

/// A destination for exported trace events.
///
/// The simulator drives a sink once per trace event and calls
/// [`TraceSink::finish`] exactly once at the end of the run. Sinks are
/// infallible in-memory ([`MemorySink`]) or write-through to I/O
/// ([`JsonlSink`], [`BinarySink`]).
pub trait TraceSink {
    /// Records one event.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from write-through sinks.
    fn record(&mut self, event: &TraceEvent) -> std::io::Result<()>;

    /// Flushes and finalizes the sink at the end of the run.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from write-through sinks.
    fn finish(&mut self) -> std::io::Result<()>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    fn header() -> TraceHeader {
        TraceHeader {
            schema: TRACE_SCHEMA.to_string(),
            protocol: "RR".to_string(),
            agents: 10,
            seed: 7,
            warmup_samples: 500,
            batches: 10,
            samples_per_batch: 100,
            confidence: 0.9,
        }
    }

    #[test]
    fn header_round_trips_through_json() {
        let h = header();
        let json = serde_json::to_string(&h).expect("shim serializer is total");
        let back =
            TraceHeader::from_value(&serde_json::from_str(&json).expect("valid JSON")).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn header_rejects_wrong_schema_and_missing_fields() {
        let mut h = header();
        h.schema = "busarb-trace/999".to_string();
        let v = h.to_value();
        assert!(TraceHeader::from_value(&v).is_err());
        let truncated = serde::Value::Object(vec![(
            "schema".to_string(),
            serde::Value::Str(TRACE_SCHEMA.to_string()),
        )]);
        assert!(TraceHeader::from_value(&truncated).is_err());
    }

    #[test]
    fn trace_format_parses_and_displays() {
        assert_eq!("jsonl".parse::<TraceFormat>().unwrap(), TraceFormat::Jsonl);
        assert_eq!("bin".parse::<TraceFormat>().unwrap(), TraceFormat::Binary);
        assert!("xml".parse::<TraceFormat>().is_err());
        assert_eq!(TraceFormat::Jsonl.to_string(), "jsonl");
        assert_eq!(TraceFormat::default(), TraceFormat::Jsonl);
    }
}
