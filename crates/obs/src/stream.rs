//! Incremental trace readers: bounded-memory streaming over both export
//! framings.
//!
//! [`read_trace`](crate::read_trace) loads a whole file and returns a
//! `Vec<TraceEvent>` — fine for debugging, impossible for the
//! multi-gigabyte traces a production bus emits. [`TraceReader`] is the
//! streaming sibling: it auto-detects the framing from the first four
//! bytes, parses the self-describing header up front, and then yields
//! one event at a time from a fixed-size internal buffer. Peak memory is
//! independent of trace length (the JSONL path caps line length at
//! [`MAX_LINE_BYTES`]; the binary path reads fixed-layout records into a
//! 20-byte scratch buffer).
//!
//! Failures are *structured*: every error is a [`StreamError`] carrying
//! the byte offset at which the malformed input was detected (and the
//! 1-based line number for JSONL), so a consumer such as `repro inspect`
//! can report exactly where a truncated or corrupt trace went wrong
//! instead of panicking or silently treating garbage as end-of-file.

use std::io::{self, BufRead, BufReader, Read};
use std::path::Path;

use busarb_types::{AgentId, Time, TraceEvent, TraceKind};

use crate::export::{
    coherence_op_from_code, coherence_op_from_slug, MAGIC, TAG_ARBITRATION, TAG_COHERENCE,
    TAG_END, TAG_REQUEST, TAG_TRANSFER, VERSION,
};
use crate::{TraceFormat, TraceHeader};

/// Upper bound on one JSONL line (header or event). A well-formed event
/// line is under 120 bytes; the cap exists so a corrupt newline-free
/// file cannot force unbounded buffering.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Upper bound on the length-prefixed binary header. Real headers are a
/// few hundred bytes; the cap keeps a corrupt length prefix from
/// provoking a multi-gigabyte allocation.
const MAX_HEADER_BYTES: u32 = 1 << 24;

/// A structured streaming-read failure: what went wrong and *where*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamError {
    /// Byte offset into the trace at which the failure was detected.
    pub offset: u64,
    /// 1-based line number (JSONL framing only).
    pub line: Option<u64>,
    /// What was wrong with the input.
    pub message: String,
}

impl StreamError {
    fn new(offset: u64, line: Option<u64>, message: impl Into<String>) -> Self {
        StreamError {
            offset,
            line,
            message: message.into(),
        }
    }
}

impl core::fmt::Display for StreamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.line {
            Some(line) => write!(
                f,
                "{} (line {line}, byte offset {})",
                self.message, self.offset
            ),
            None => write!(f, "{} (byte offset {})", self.message, self.offset),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<StreamError> for io::Error {
    fn from(e: StreamError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Extracts the [`StreamError`] (with its byte offset) from an
/// [`io::Error`] produced by this module, if there is one.
#[must_use]
pub fn stream_error(e: &io::Error) -> Option<&StreamError> {
    e.get_ref().and_then(|inner| inner.downcast_ref())
}

/// An incremental reader over an exported `busarb-trace/1` stream.
///
/// The framing (JSONL or `BTRC` binary) is auto-detected from the first
/// four bytes; the header is parsed eagerly by [`TraceReader::new`], and
/// events are then pulled one at a time — via [`next_event`] or the
/// [`Iterator`] impl — without ever buffering more than one record.
///
/// [`next_event`]: TraceReader::next_event
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: BufReader<R>,
    header: TraceHeader,
    format: TraceFormat,
    /// Bytes consumed from the underlying stream so far.
    offset: u64,
    /// Lines consumed so far (JSONL framing; the header is line 1).
    line: u64,
    /// Reusable line buffer (JSONL framing).
    buf: Vec<u8>,
    /// Set once end-of-stream or an error has been reached.
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Wraps a byte stream, detects the framing, and parses the header.
    ///
    /// # Errors
    ///
    /// Returns a [`StreamError`] locating the first malformed byte when
    /// the stream is empty, the magic/version is unrecognized, or the
    /// header is truncated or invalid.
    pub fn new(reader: R) -> Result<Self, StreamError> {
        let mut input = BufReader::new(reader);
        // Peek the first four bytes to tell `BTRC` from JSONL. A valid
        // JSONL header line is always longer than four bytes, so a
        // shorter stream is malformed either way.
        let mut magic = [0u8; 4];
        let got = read_up_to(&mut input, &mut magic)
            .map_err(|e| StreamError::new(0, None, format!("cannot read trace: {e}")))?;
        if got == 0 {
            return Err(StreamError::new(0, None, "empty trace"));
        }
        if got == 4 && &magic == MAGIC {
            Self::new_binary(input)
        } else {
            Self::new_jsonl(input, &magic[..got])
        }
    }

    fn new_binary(mut input: BufReader<R>) -> Result<Self, StreamError> {
        let mut offset = MAGIC.len() as u64;
        let mut version = [0u8; 1];
        input.read_exact(&mut version).map_err(|_| {
            StreamError::new(offset, None, "truncated binary trace (no version byte)")
        })?;
        if version[0] != VERSION {
            return Err(StreamError::new(
                offset,
                None,
                format!(
                    "unsupported binary trace version {} (expected {VERSION})",
                    version[0]
                ),
            ));
        }
        offset += 1;
        let mut len_bytes = [0u8; 4];
        input.read_exact(&mut len_bytes).map_err(|_| {
            StreamError::new(offset, None, "truncated binary trace (no header length)")
        })?;
        offset += 4;
        let header_len = u32::from_le_bytes(len_bytes);
        if header_len > MAX_HEADER_BYTES {
            return Err(StreamError::new(
                offset - 4,
                None,
                format!("implausible header length {header_len} (corrupt length prefix?)"),
            ));
        }
        let mut header_bytes = vec![0u8; header_len as usize];
        input.read_exact(&mut header_bytes).map_err(|_| {
            StreamError::new(offset, None, "truncated binary trace (header cut short)")
        })?;
        let header_text = core::str::from_utf8(&header_bytes)
            .map_err(|_| StreamError::new(offset, None, "binary trace header is not UTF-8"))?;
        let header = parse_header(header_text, offset, None)?;
        offset += u64::from(header_len);
        Ok(TraceReader {
            input,
            header,
            format: TraceFormat::Binary,
            offset,
            line: 0,
            buf: Vec::new(),
            done: false,
        })
    }

    fn new_jsonl(input: BufReader<R>, prefix: &[u8]) -> Result<Self, StreamError> {
        let mut reader = TraceReader {
            input,
            // Placeholder until the real header line parses.
            header: TraceHeader {
                schema: String::new(),
                protocol: String::new(),
                agents: 0,
                seed: 0,
                warmup_samples: 0,
                batches: 0,
                samples_per_batch: 0,
                confidence: 0.0,
            },
            format: TraceFormat::Jsonl,
            // The four sniffed magic-candidate bytes are part of the
            // header line and already consumed from the stream.
            offset: prefix.len() as u64,
            line: 0,
            buf: prefix.to_vec(),
            done: false,
        };
        let line_start = 0;
        let had_line = reader.fill_line(prefix.len())?;
        if !had_line || reader.buf.iter().all(u8::is_ascii_whitespace) {
            return Err(StreamError::new(line_start, Some(1), "empty trace"));
        }
        let text = core::str::from_utf8(&reader.buf).map_err(|_| {
            StreamError::new(
                line_start,
                Some(1),
                "trace is neither binary (no magic) nor UTF-8 JSONL",
            )
        })?;
        reader.header = parse_header(text, line_start, Some(1))?;
        Ok(reader)
    }

    /// The parsed trace header.
    #[must_use]
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The detected framing.
    #[must_use]
    pub fn format(&self) -> TraceFormat {
        self.format
    }

    /// Bytes consumed from the underlying stream so far.
    #[must_use]
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Reads the rest of one line (after `already` bytes of it are in
    /// `buf`), stripping the trailing newline. Returns `false` on clean
    /// end-of-stream with an empty buffer.
    fn fill_line(&mut self, already: usize) -> Result<bool, StreamError> {
        debug_assert_eq!(self.buf.len(), already);
        let limit = MAX_LINE_BYTES as u64;
        let read = self
            .input
            .by_ref()
            .take(limit)
            .read_until(b'\n', &mut self.buf)
            .map_err(|e| {
                StreamError::new(
                    self.offset + self.buf.len() as u64,
                    Some(self.line + 1),
                    format!("cannot read trace: {e}"),
                )
            })?;
        if already + read == 0 {
            return Ok(false);
        }
        if self.buf.last() == Some(&b'\n') {
            self.buf.pop();
        } else if already + read >= MAX_LINE_BYTES {
            return Err(StreamError::new(
                self.offset,
                Some(self.line + 1),
                format!("line exceeds {MAX_LINE_BYTES} bytes (corrupt trace?)"),
            ));
        }
        self.line += 1;
        self.offset += read as u64;
        Ok(true)
    }

    /// Yields the next event, or `Ok(None)` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// Returns a [`StreamError`] locating the first malformed byte on
    /// truncated or corrupt input. After an error (or a clean end) the
    /// reader stays exhausted: further calls return `Ok(None)`.
    pub fn next_event(&mut self) -> Result<Option<TraceEvent>, StreamError> {
        if self.done {
            return Ok(None);
        }
        let result = match self.format {
            TraceFormat::Jsonl => self.next_jsonl(),
            TraceFormat::Binary => self.next_binary(),
        };
        if !matches!(result, Ok(Some(_))) {
            self.done = true;
        }
        result
    }

    fn next_jsonl(&mut self) -> Result<Option<TraceEvent>, StreamError> {
        loop {
            let line_start = self.offset;
            self.buf.clear();
            if !self.fill_line(0)? {
                return Ok(None);
            }
            if self.buf.iter().all(u8::is_ascii_whitespace) {
                continue;
            }
            let text = core::str::from_utf8(&self.buf).map_err(|_| {
                StreamError::new(line_start, Some(self.line), "event line is not UTF-8")
            })?;
            let value = serde_json::from_str(text).map_err(|e| {
                StreamError::new(line_start, Some(self.line), format!("bad event: {e}"))
            })?;
            let agents = self.header.agents;
            return event_from_value(&value, agents)
                .map(Some)
                .map_err(|msg| StreamError::new(line_start, Some(self.line), msg));
        }
    }

    fn next_binary(&mut self) -> Result<Option<TraceEvent>, StreamError> {
        let record_start = self.offset;
        let mut tag = [0u8; 1];
        match read_up_to(&mut self.input, &mut tag) {
            Ok(0) => return Ok(None),
            Ok(_) => {}
            Err(e) => {
                return Err(StreamError::new(
                    record_start,
                    None,
                    format!("cannot read trace: {e}"),
                ))
            }
        }
        let tag = tag[0];
        // Per-tag body length (after the tag byte): `at` + agent for
        // every kind, plus an extra f64 for arbitration/completion
        // records or an op byte + u32 count for coherence records.
        let body_len = match tag {
            TAG_REQUEST | TAG_TRANSFER => 12,
            TAG_ARBITRATION | TAG_END => 20,
            TAG_COHERENCE => 17,
            other => {
                return Err(StreamError::new(
                    record_start,
                    None,
                    format!("unknown binary record tag {other}"),
                ))
            }
        };
        let mut fixed = [0u8; 20];
        self.input.read_exact(&mut fixed[..body_len]).map_err(|_| {
            StreamError::new(
                record_start,
                None,
                "truncated binary record (stream ends mid-record)",
            )
        })?;
        let position = |msg: String| StreamError::new(record_start, None, msg);
        let at = finite_time(
            f64::from_le_bytes(fixed[..8].try_into().expect("8-byte slice")),
            "timestamp",
        )
        .map_err(position)?;
        let raw_agent = u32::from_le_bytes(fixed[8..12].try_into().expect("4-byte slice"));
        let agent = AgentId::try_from_raw(raw_agent, self.header.agents).map_err(|e| {
            StreamError::new(record_start, None, format!("bad agent identity: {e}"))
        })?;
        let extra_f64 = || f64::from_le_bytes(fixed[12..20].try_into().expect("8-byte slice"));
        let kind = match tag {
            TAG_REQUEST => TraceKind::Request { agent },
            TAG_ARBITRATION => TraceKind::ArbitrationStart {
                winner: agent,
                completes: finite_time(extra_f64(), "completion time").map_err(position)?,
            },
            TAG_TRANSFER => TraceKind::TransferStart { agent },
            TAG_END => TraceKind::TransferEnd {
                agent,
                wait: finite_duration(extra_f64(), "wait").map_err(position)?,
            },
            _ => {
                // TAG_COHERENCE (any other tag was rejected above).
                let op = coherence_op_from_code(fixed[12]).ok_or_else(|| {
                    position(format!("unknown coherence op code {}", fixed[12]))
                })?;
                let invalidated =
                    u32::from_le_bytes(fixed[13..17].try_into().expect("4-byte slice"));
                TraceKind::Coherence {
                    agent,
                    op,
                    invalidated,
                }
            }
        };
        self.offset = record_start + 1 + body_len as u64;
        Ok(Some(TraceEvent { at, kind }))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceEvent, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_event().transpose()
    }
}

/// Opens a trace file for incremental reading (buffered, auto-detected
/// framing).
///
/// # Errors
///
/// Propagates file-open errors; header failures arrive as
/// [`io::ErrorKind::InvalidData`] wrapping a [`StreamError`] (recover it
/// with [`stream_error`] to get the byte offset).
pub fn open_trace(path: &Path) -> io::Result<TraceReader<std::fs::File>> {
    let file = std::fs::File::open(path)?;
    TraceReader::new(file).map_err(Into::into)
}

/// Reads as many bytes as the stream can give, up to `buf.len()`;
/// returns how many. Unlike `read_exact`, a clean end-of-stream is not
/// an error.
fn read_up_to<R: Read>(input: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match input.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

fn parse_header(
    text: &str,
    offset: u64,
    line: Option<u64>,
) -> Result<TraceHeader, StreamError> {
    let value = serde_json::from_str(text)
        .map_err(|e| StreamError::new(offset, line, format!("bad header: {e}")))?;
    TraceHeader::from_value(&value)
        .map_err(|e| StreamError::new(offset, line, format!("bad header: {e}")))
}

/// Validates a trace duration: finite and non-negative (negative zero
/// is allowed — it compares equal to zero). Rejecting here turns what
/// would be a release-mode silent saturation (or debug-mode panic)
/// inside [`Time`] into a structured parse error with a byte offset.
fn finite_duration(value: f64, what: &str) -> Result<f64, String> {
    if value.is_nan() || value.is_infinite() || value < 0.0 {
        return Err(format!("non-finite or negative {what} {value}"));
    }
    Ok(value)
}

/// Validates and converts a trace timestamp to [`Time`].
fn finite_time(value: f64, what: &str) -> Result<Time, String> {
    finite_duration(value, what).map(Time::saturating)
}

/// Parses one JSONL event object, validating agent identities against
/// the `agents` roster declared by the trace header. Returns the
/// complaint (without position information — the caller owns that) on
/// malformed input.
pub(crate) fn event_from_value(v: &serde::Value, agents: u32) -> Result<TraceEvent, String> {
    fn f64_field(v: &serde::Value, key: &str) -> Result<f64, String> {
        v.get(key)
            .and_then(serde::Value::as_f64)
            .ok_or_else(|| format!("missing or mistyped `{key}`"))
    }
    fn u32_field(v: &serde::Value, key: &str) -> Result<u32, String> {
        let raw = v
            .get(key)
            .and_then(serde::Value::as_u64)
            .ok_or_else(|| format!("missing or mistyped `{key}`"))?;
        u32::try_from(raw).map_err(|_| format!("`{key}` exceeds u32"))
    }
    let agent_field = |key: &str| -> Result<AgentId, String> {
        AgentId::try_from_raw(u32_field(v, key)?, agents)
            .map_err(|e| format!("bad agent identity: {e}"))
    };
    let at = finite_time(f64_field(v, "at")?, "timestamp")?;
    let kind = match v.get("ev").and_then(serde::Value::as_str) {
        Some("req") => TraceKind::Request {
            agent: agent_field("agent")?,
        },
        Some("arb") => TraceKind::ArbitrationStart {
            winner: agent_field("winner")?,
            completes: finite_time(f64_field(v, "completes")?, "completion time")?,
        },
        Some("xfer") => TraceKind::TransferStart {
            agent: agent_field("agent")?,
        },
        Some("end") => TraceKind::TransferEnd {
            agent: agent_field("agent")?,
            wait: finite_duration(f64_field(v, "wait")?, "wait")?,
        },
        Some("coh") => {
            let slug = v
                .get("op")
                .and_then(serde::Value::as_str)
                .ok_or_else(|| "missing or mistyped `op`".to_string())?;
            let op = coherence_op_from_slug(slug)
                .ok_or_else(|| format!("unknown coherence op {slug:?}"))?;
            TraceKind::Coherence {
                agent: agent_field("agent")?,
                op,
                invalidated: u32_field(v, "invalidated")?,
            }
        }
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok(TraceEvent { at, kind })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinarySink, JsonlSink, TraceSink, TRACE_SCHEMA};

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    fn header() -> TraceHeader {
        TraceHeader {
            schema: TRACE_SCHEMA.to_string(),
            protocol: "rr".to_string(),
            agents: 4,
            seed: 42,
            warmup_samples: 10,
            batches: 10,
            samples_per_batch: 5,
            confidence: 0.9,
        }
    }

    fn events() -> Vec<TraceEvent> {
        use busarb_types::CoherenceOp;
        let mut out = Vec::new();
        let mut t = 0.0f64;
        for i in 0..40u32 {
            t += 0.1 + f64::from(i) / 3.0;
            let agent = id(1 + i % 4);
            let kind = match i % 5 {
                0 => TraceKind::Request { agent },
                1 => TraceKind::ArbitrationStart {
                    winner: agent,
                    completes: Time::from(t + 0.5),
                },
                2 => TraceKind::TransferStart { agent },
                3 => TraceKind::TransferEnd {
                    agent,
                    wait: t / 7.0,
                },
                _ => TraceKind::Coherence {
                    agent,
                    op: match i % 3 {
                        0 => CoherenceOp::ReadMiss,
                        1 => CoherenceOp::WriteMiss,
                        _ => CoherenceOp::Upgrade,
                    },
                    invalidated: i % 4,
                },
            };
            out.push(TraceEvent {
                at: Time::from(t),
                kind,
            });
        }
        out
    }

    fn encode(format: TraceFormat) -> Vec<u8> {
        let mut bytes = Vec::new();
        match format {
            TraceFormat::Jsonl => {
                let mut sink = JsonlSink::new(&mut bytes, &header()).unwrap();
                for e in events() {
                    sink.record(&e).unwrap();
                }
                sink.finish().unwrap();
            }
            TraceFormat::Binary => {
                let mut sink = BinarySink::new(&mut bytes, &header()).unwrap();
                for e in events() {
                    sink.record(&e).unwrap();
                }
                sink.finish().unwrap();
            }
        }
        bytes
    }

    #[test]
    fn streaming_reader_round_trips_both_framings() {
        for format in [TraceFormat::Jsonl, TraceFormat::Binary] {
            let bytes = encode(format);
            let mut reader = TraceReader::new(&bytes[..]).unwrap();
            assert_eq!(reader.format(), format);
            assert_eq!(*reader.header(), header());
            let mut seen = Vec::new();
            while let Some(e) = reader.next_event().unwrap() {
                seen.push(e);
            }
            assert_eq!(seen, events(), "{format}");
            assert_eq!(reader.offset(), bytes.len() as u64, "{format}");
            // Exhausted readers stay exhausted.
            assert_eq!(reader.next_event().unwrap(), None);
        }
    }

    /// Boundary waiting times must survive export → stream **bit
    /// exactly** in both framings (`to_bits`, not `==`, which cannot
    /// see the sign of zero). The JSONL sink writes `Display` forms —
    /// `-0` for negative zero, full decimal expansions for subnormals —
    /// and the serde shim must hand back the identical double; the
    /// binary sink carries the raw bits and the reader must not launder
    /// them through any lossy normalization.
    #[test]
    fn boundary_wait_values_round_trip_bit_exactly() {
        let waits = [
            -0.0,
            0.0,
            5e-324,                  // smallest subnormal
            f64::MIN_POSITIVE / 2.0, // mid-range subnormal
            f64::MIN_POSITIVE,       // smallest normal
            f64::EPSILON,
            0.1,       // classic shortest-form case
            1.0 / 3.0, // needs all 17 significant digits
        ];
        for format in [TraceFormat::Jsonl, TraceFormat::Binary] {
            let mut bytes = Vec::new();
            let mut sink: Box<dyn TraceSink> = match format {
                TraceFormat::Jsonl => Box::new(JsonlSink::new(&mut bytes, &header()).unwrap()),
                TraceFormat::Binary => Box::new(BinarySink::new(&mut bytes, &header()).unwrap()),
            };
            for (i, &wait) in waits.iter().enumerate() {
                sink.record(&TraceEvent {
                    at: Time::from(1.0 + i as f64),
                    kind: TraceKind::TransferEnd { agent: id(1), wait },
                })
                .unwrap();
            }
            sink.finish().unwrap();
            drop(sink);

            let mut reader = TraceReader::new(&bytes[..]).unwrap();
            for &wait in &waits {
                let event = reader.next_event().unwrap().expect("event present");
                let TraceKind::TransferEnd { wait: back, .. } = event.kind else {
                    panic!("{format}: wrong kind {event:?}");
                };
                assert_eq!(
                    back.to_bits(),
                    wait.to_bits(),
                    "{format}: {wait:?} came back as {back:?}"
                );
            }
            assert_eq!(reader.next_event().unwrap(), None);
        }
    }

    #[test]
    fn truncated_binary_record_reports_record_offset() {
        let bytes = encode(TraceFormat::Binary);
        let cut = bytes.len() - 3;
        let mut reader = TraceReader::new(&bytes[..cut]).unwrap();
        let err = loop {
            match reader.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("truncation must not read as clean EOF"),
                Err(e) => break e,
            }
        };
        assert!(err.message.contains("truncated"), "{err}");
        // The error points at the start of the final, cut-short record.
        assert_eq!(err.offset, reader_record_starts(&bytes).last().copied().unwrap());
        assert_eq!(err.line, None);
        // After the error the reader reads as exhausted, not as looping.
        assert_eq!(reader.next_event(), Ok(None));
    }

    /// Byte offsets of every binary record start, computed independently.
    fn reader_record_starts(bytes: &[u8]) -> Vec<u64> {
        let header_len =
            u32::from_le_bytes(bytes[5..9].try_into().unwrap()) as usize;
        let mut at = 9 + header_len;
        let mut starts = Vec::new();
        while at < bytes.len() {
            starts.push(at as u64);
            let body = match bytes[at] {
                1 | 3 => 20,
                4 => 17,
                _ => 12,
            };
            at += 1 + body;
        }
        starts
    }

    /// One raw binary record: tag, timestamp, agent, then `rest` bytes.
    fn bin_record(tag: u8, at: f64, agent: u32, rest: &[u8]) -> Vec<u8> {
        let mut r = vec![tag];
        r.extend_from_slice(&at.to_le_bytes());
        r.extend_from_slice(&agent.to_le_bytes());
        r.extend_from_slice(rest);
        r
    }

    #[test]
    fn corrupt_binary_records_error_at_the_record_start() {
        let base = encode(TraceFormat::Binary);
        let start = base.len() as u64;
        let cases: Vec<(Vec<u8>, &str)> = vec![
            (bin_record(9, 1.0, 1, &[]), "unknown binary record tag"),
            (
                bin_record(4, 1.0, 1, &[9, 0, 0, 0, 0]),
                "unknown coherence op code",
            ),
            // The header declares a roster of 4 agents; identity 5 and
            // the reserved identity 0 are both out of range.
            (bin_record(0, 1.0, 5, &[]), "bad agent identity"),
            (bin_record(0, 1.0, 0, &[]), "bad agent identity"),
            (
                bin_record(0, f64::NAN, 1, &[]),
                "non-finite or negative timestamp",
            ),
            (
                bin_record(0, -1.0, 1, &[]),
                "non-finite or negative timestamp",
            ),
            (
                bin_record(3, 1.0, 1, &f64::INFINITY.to_le_bytes()),
                "non-finite or negative wait",
            ),
            // A coherence record cut off mid-body.
            (bin_record(4, 1.0, 1, &[0, 0, 0]), "truncated"),
        ];
        for (record, fragment) in cases {
            let mut bytes = base.clone();
            bytes.extend_from_slice(&record);
            let mut reader = TraceReader::new(&bytes[..]).unwrap();
            let err = loop {
                match reader.next_event() {
                    Ok(Some(_)) => {}
                    Ok(None) => panic!("corrupt record must error ({fragment})"),
                    Err(e) => break e,
                }
            };
            assert_eq!(err.offset, start, "{fragment}");
            assert_eq!(err.line, None, "{fragment}");
            assert!(err.message.contains(fragment), "{fragment}: {err}");
        }
    }

    #[test]
    fn jsonl_rejects_out_of_roster_agents_and_bad_durations() {
        let base = encode(TraceFormat::Jsonl);
        for (line, fragment) in [
            (r#"{"at":1.0,"ev":"req","agent":5}"#, "bad agent identity"),
            (r#"{"at":1.0,"ev":"req","agent":0}"#, "bad agent identity"),
            (
                r#"{"at":-1.0,"ev":"req","agent":1}"#,
                "non-finite or negative timestamp",
            ),
            (
                r#"{"at":1.0,"ev":"end","agent":1,"wait":-0.5}"#,
                "non-finite or negative wait",
            ),
            (
                r#"{"at":1.0,"ev":"coh","agent":1,"op":"mystery","invalidated":0}"#,
                "unknown coherence op",
            ),
            (
                r#"{"at":1.0,"ev":"coh","agent":1,"op":"upgrade"}"#,
                "missing or mistyped `invalidated`",
            ),
        ] {
            let mut bytes = base.clone();
            let line_start = bytes.len() as u64;
            bytes.extend_from_slice(line.as_bytes());
            bytes.push(b'\n');
            let mut reader = TraceReader::new(&bytes[..]).unwrap();
            let err = loop {
                match reader.next_event() {
                    Ok(Some(_)) => {}
                    Ok(None) => panic!("corrupt line must error ({fragment})"),
                    Err(e) => break e,
                }
            };
            assert_eq!(err.offset, line_start, "{fragment}");
            assert!(err.message.contains(fragment), "{fragment}: {err}");
        }
    }

    #[test]
    fn corrupt_jsonl_line_reports_line_and_offset() {
        let mut bytes = encode(TraceFormat::Jsonl);
        let line_start = bytes.len() as u64;
        bytes.extend_from_slice(b"{\"at\":1.0,\"ev\":\"nope\"}\n");
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let err = loop {
            match reader.next_event() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("corrupt line must error"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.offset, line_start);
        assert_eq!(err.line, Some(42)); // header + 40 events + this one
        assert!(err.message.contains("unknown event kind"), "{err}");
    }

    #[test]
    fn header_failures_locate_the_problem() {
        let empty = TraceReader::new(&b""[..]).unwrap_err();
        assert_eq!(empty.offset, 0);
        assert!(empty.message.contains("empty"), "{empty}");

        let bad_version = {
            let mut bytes = encode(TraceFormat::Binary);
            bytes[4] = 99;
            TraceReader::new(&bytes[..]).unwrap_err()
        };
        assert_eq!(bad_version.offset, 4);
        assert!(bad_version.message.contains("version"), "{bad_version}");

        let cut_header = {
            let bytes = encode(TraceFormat::Binary);
            TraceReader::new(&bytes[..20]).unwrap_err()
        };
        assert!(cut_header.message.contains("header"), "{cut_header}");

        let not_json = TraceReader::new(&b"not json at all\n"[..]).unwrap_err();
        assert_eq!(not_json.line, Some(1));
        assert!(not_json.message.contains("bad header"), "{not_json}");

        let wrong_schema = TraceReader::new(
            &br#"{"schema":"busarb-trace/999","protocol":"rr","agents":1,"seed":0,"warmup_samples":0,"batches":2,"samples_per_batch":1,"confidence":0.9}"#[..],
        )
        .unwrap_err();
        assert!(wrong_schema.message.contains("schema"), "{wrong_schema}");
    }

    #[test]
    fn implausible_binary_header_length_is_rejected_without_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(VERSION);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = TraceReader::new(&bytes[..]).unwrap_err();
        assert!(err.message.contains("implausible"), "{err}");
    }

    #[test]
    fn stream_error_converts_to_io_error_and_back() {
        let original = StreamError::new(17, Some(3), "bad event");
        let io_err: io::Error = original.clone().into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(stream_error(&io_err), Some(&original));
        assert!(io_err.to_string().contains("byte offset 17"));
        assert!(stream_error(&io::Error::other("plain")).is_none());
    }

    #[test]
    fn open_trace_streams_a_file() {
        let dir = std::env::temp_dir().join("busarb-stream-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t-{}.btrc", std::process::id()));
        std::fs::write(&path, encode(TraceFormat::Binary)).unwrap();
        let reader = open_trace(&path).unwrap();
        let collected: Result<Vec<_>, _> = reader.collect();
        assert_eq!(collected.unwrap(), events());
        std::fs::remove_file(&path).ok();
    }
}
