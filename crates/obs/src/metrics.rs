//! Allocation-free metric primitives: log-scale histograms and windowed
//! rates.
//!
//! Both types are fixed-size at construction and their `record` methods
//! touch no heap memory — they are safe to call once per simulated
//! event. `cargo xtask lint` and the crate's counting-allocator test pin
//! this down.

/// Number of buckets in a [`LogHistogram`].
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Resolution scale of a [`LogHistogram`]: values are quantized to
/// `1/SCALE` (in units of bus-transaction times) before bucketing.
const SCALE: f64 = 1024.0;

/// Length of one [`WindowedRate`] accumulation window, in simulated
/// bus-transaction times.
pub const RATE_WINDOW: f64 = 64.0;

/// A fixed-bucket base-2 log-scale histogram over non-negative samples.
///
/// Samples are quantized to [`SCALE`] counts per unit; bucket `i` then
/// covers the half-open range `[bucket_edge(i-1), bucket_edge(i))` with
/// exclusive upper edges doubling from `1/1024` time units (bucket 0,
/// which also absorbs everything below the resolution) up to
/// `2^31/1024` (≈ 2 million transaction times); larger samples clamp
/// into the last bucket. Alongside the buckets it tracks exact count,
/// sum, min, and max, so the mean is not subject to bucketing error.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl LogHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket index for a sample (see the type docs for the edges).
    #[must_use]
    #[inline]
    pub fn bucket_of(x: f64) -> usize {
        let scaled = (x * SCALE) as u64;
        let index = (u64::BITS - scaled.leading_zeros()) as usize;
        index.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Exclusive upper edge of bucket `i`, in sample units (the last
    /// bucket's edge is nominal: it also absorbs larger samples).
    #[must_use]
    pub fn bucket_edge(i: usize) -> f64 {
        (1u64 << i.min(63)) as f64 / SCALE
    }

    /// Records one sample. Negative samples are clamped to zero (waiting
    /// times and queue depths are non-negative by construction; the
    /// clamp keeps a rounding artifact from indexing out of range).
    #[inline]
    pub fn record(&mut self, x: f64) {
        let x = x.max(0.0);
        self.buckets[Self::bucket_of(x)] += 1;
        self.count += 1;
        self.sum += x;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean of recorded samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest recorded sample (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The per-bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// An event-per-window rate tracker over simulated time.
///
/// Simulated time is divided into fixed windows of [`RATE_WINDOW`]
/// transaction times. Recording an occurrence at time `t` credits the
/// window containing `t`; when time advances past a window boundary the
/// finished window (and any empty windows skipped over) are folded into
/// the closed totals. No per-window storage is kept — just the closed
/// count/window totals and the busiest window seen — so the tracker is
/// constant-size and `record` never allocates. Timestamps must be
/// non-decreasing, which the event loop guarantees.
#[derive(Clone, Debug)]
pub struct WindowedRate {
    window: f64,
    /// `1.0 / window` when that scaling is exact — i.e. `window` is a
    /// power of two, like the default [`RATE_WINDOW`] — so `record` can
    /// multiply instead of divide. `0.0` marks an inexact reciprocal, in
    /// which case `record` keeps the division.
    inv_window: f64,
    current_index: u64,
    current_count: u64,
    closed_windows: u64,
    closed_count: u64,
    peak: u64,
}

impl WindowedRate {
    /// Creates a tracker with the default [`RATE_WINDOW`] window.
    #[must_use]
    pub fn new() -> Self {
        WindowedRate::with_window(RATE_WINDOW)
    }

    /// Creates a tracker with a custom window length (must be positive).
    #[must_use]
    pub fn with_window(window: f64) -> Self {
        assert!(window > 0.0, "rate window must be positive");
        // Division by a power of two and multiplication by its reciprocal
        // are the same exact scaling, so the fast path cannot change any
        // window index.
        let is_pow2 = window.to_bits() & ((1u64 << 52) - 1) == 0;
        let inv_window = window.recip();
        WindowedRate {
            window,
            inv_window: if is_pow2 && inv_window.is_normal() {
                inv_window
            } else {
                0.0
            },
            current_index: 0,
            current_count: 0,
            closed_windows: 0,
            closed_count: 0,
            peak: 0,
        }
    }

    /// Records one occurrence at simulated time `t`.
    #[inline]
    pub fn record(&mut self, t: f64) {
        let index = if self.inv_window > 0.0 {
            (t * self.inv_window) as u64
        } else {
            (t / self.window) as u64
        };
        if index > self.current_index {
            self.closed_windows += index - self.current_index;
            self.closed_count += self.current_count;
            if self.current_count > self.peak {
                self.peak = self.current_count;
            }
            self.current_index = index;
            self.current_count = 0;
        }
        self.current_count += 1;
    }

    /// The window length in simulated time units.
    #[must_use]
    pub fn window(&self) -> f64 {
        self.window
    }

    /// Completed (closed) windows so far, including empty ones skipped
    /// over by a jump in time.
    #[must_use]
    pub fn closed_windows(&self) -> u64 {
        self.closed_windows
    }

    /// Occurrences inside closed windows.
    #[must_use]
    pub fn closed_count(&self) -> u64 {
        self.closed_count
    }

    /// Occurrences in the busiest single window, including the current
    /// (still open) one.
    #[must_use]
    pub fn peak(&self) -> u64 {
        self.peak.max(self.current_count)
    }

    /// Mean rate over closed windows, in occurrences per simulated time
    /// unit (0 until the first window closes).
    #[must_use]
    pub fn mean_rate(&self) -> f64 {
        if self.closed_windows == 0 {
            0.0
        } else {
            self.closed_count as f64 / (self.closed_windows as f64 * self.window)
        }
    }
}

impl Default for WindowedRate {
    fn default() -> Self {
        WindowedRate::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log_spaced() {
        assert_eq!(LogHistogram::bucket_of(0.0), 0);
        // 1/1024 is the edge of bucket 1.
        assert_eq!(LogHistogram::bucket_of(1.0 / 1024.0), 1);
        assert_eq!(LogHistogram::bucket_of(1.0), 11); // 1024 = 2^10 -> bucket 11
        assert_eq!(LogHistogram::bucket_of(f64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(LogHistogram::bucket_edge(0), 1.0 / 1024.0);
        assert_eq!(LogHistogram::bucket_edge(11), 2.0);
        // Every sample lands in the bucket whose half-open range holds it.
        for x in [0.001, 0.5, 1.0, 1.5, 2.0, 3.0, 100.0, 1e6] {
            let b = LogHistogram::bucket_of(x);
            if b < HISTOGRAM_BUCKETS - 1 {
                assert!(x < LogHistogram::bucket_edge(b), "x = {x}, bucket {b}");
            }
            if b > 0 {
                assert!(x >= LogHistogram::bucket_edge(b - 1), "x = {x}, bucket {b}");
            }
        }
    }

    #[test]
    fn histogram_tracks_exact_moments() {
        let mut h = LogHistogram::new();
        assert_eq!(h.mean(), 0.0);
        for x in [1.5, 0.5, 4.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 6.0);
        assert_eq!(h.mean(), 2.0);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 4.0);
        assert_eq!(h.buckets().iter().sum::<u64>(), 3);
        h.record(-1.0); // clamped to zero
        assert_eq!(h.min(), 0.0);
    }

    #[test]
    fn windowed_rate_closes_windows_as_time_advances() {
        let mut r = WindowedRate::with_window(10.0);
        for t in [1.0, 2.0, 3.0] {
            r.record(t);
        }
        assert_eq!(r.closed_windows(), 0);
        assert_eq!(r.peak(), 3);
        assert_eq!(r.mean_rate(), 0.0);
        r.record(15.0); // closes window 0
        assert_eq!(r.closed_windows(), 1);
        assert_eq!(r.closed_count(), 3);
        assert_eq!(r.mean_rate(), 0.3);
        r.record(45.0); // closes windows 1 (1 event), 2 and 3 (empty)
        assert_eq!(r.closed_windows(), 4);
        assert_eq!(r.closed_count(), 4);
        assert_eq!(r.peak(), 3);
        assert_eq!(r.mean_rate(), 0.1);
    }

    #[test]
    #[should_panic(expected = "rate window must be positive")]
    fn zero_window_is_rejected() {
        let _ = WindowedRate::with_window(0.0);
    }
}
