//! Trace export sinks and readers (JSONL and binary framings).

use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;

use busarb_types::{CoherenceOp, TraceEvent, TraceKind};

use crate::{TraceFormat, TraceHeader, TraceSink};

/// Magic bytes opening a binary trace.
pub(crate) const MAGIC: &[u8; 4] = b"BTRC";
/// Binary framing version.
pub(crate) const VERSION: u8 = 1;

pub(crate) const TAG_REQUEST: u8 = 0;
pub(crate) const TAG_ARBITRATION: u8 = 1;
pub(crate) const TAG_TRANSFER: u8 = 2;
pub(crate) const TAG_END: u8 = 3;
pub(crate) const TAG_COHERENCE: u8 = 4;

/// Binary wire code for a coherence operation.
pub(crate) fn coherence_op_code(op: CoherenceOp) -> u8 {
    match op {
        CoherenceOp::ReadMiss => 0,
        CoherenceOp::WriteMiss => 1,
        CoherenceOp::Upgrade => 2,
    }
}

/// Inverse of [`coherence_op_code`]; `None` for unknown codes.
pub(crate) fn coherence_op_from_code(code: u8) -> Option<CoherenceOp> {
    Some(match code {
        0 => CoherenceOp::ReadMiss,
        1 => CoherenceOp::WriteMiss,
        2 => CoherenceOp::Upgrade,
        _ => return None,
    })
}

/// JSONL slug → coherence operation (inverse of [`CoherenceOp::slug`]).
pub(crate) fn coherence_op_from_slug(slug: &str) -> Option<CoherenceOp> {
    Some(match slug {
        "read-miss" => CoherenceOp::ReadMiss,
        "write-miss" => CoherenceOp::WriteMiss,
        "upgrade" => CoherenceOp::Upgrade,
        _ => return None,
    })
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// An infallible in-memory sink, mostly for tests and tools that
/// post-process events directly.
#[derive(Clone, Debug, Default)]
pub struct MemorySink {
    events: Vec<TraceEvent>,
}

impl MemorySink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the sink, returning the recorded events.
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: &TraceEvent) -> io::Result<()> {
        self.events.push(*event);
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A write-through JSON Lines sink: one header line, then one compact
/// JSON object per event. Floats are formatted with Rust's shortest
/// round-trip representation, so a parse reproduces them bit-exactly.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    line: String,
}

impl<W: Write> JsonlSink<W> {
    /// Creates the sink and writes the header line.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn new(mut writer: W, header: &TraceHeader) -> io::Result<Self> {
        let json = serde_json::to_string(header).map_err(|e| invalid(e.to_string()))?;
        writer.write_all(json.as_bytes())?;
        writer.write_all(b"\n")?;
        Ok(JsonlSink {
            writer,
            line: String::new(),
        })
    }

    /// Consumes the sink, returning the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &TraceEvent) -> io::Result<()> {
        self.line.clear();
        let at = event.at.as_f64();
        match event.kind {
            TraceKind::Request { agent } => {
                write!(self.line, "{{\"at\":{at},\"ev\":\"req\",\"agent\":{agent}}}")
            }
            TraceKind::ArbitrationStart { winner, completes } => write!(
                self.line,
                "{{\"at\":{at},\"ev\":\"arb\",\"winner\":{winner},\"completes\":{}}}",
                completes.as_f64()
            ),
            TraceKind::TransferStart { agent } => {
                write!(self.line, "{{\"at\":{at},\"ev\":\"xfer\",\"agent\":{agent}}}")
            }
            TraceKind::TransferEnd { agent, wait } => write!(
                self.line,
                "{{\"at\":{at},\"ev\":\"end\",\"agent\":{agent},\"wait\":{wait}}}"
            ),
            TraceKind::Coherence {
                agent,
                op,
                invalidated,
            } => write!(
                self.line,
                "{{\"at\":{at},\"ev\":\"coh\",\"agent\":{agent},\"op\":\"{}\",\"invalidated\":{invalidated}}}",
                op.slug()
            ),
        }
        // Writing to a `String` cannot fail; mapping (instead of
        // unwrapping) keeps the per-event path free of panic branches.
        .map_err(io::Error::other)?;
        self.line.push('\n');
        self.writer.write_all(self.line.as_bytes())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// A write-through binary sink: `BTRC` magic, version byte, `u32`
/// little-endian length-prefixed JSON header, then fixed-layout
/// little-endian records (tag byte, `f64` timestamp, `u32` agent, then
/// one further `f64` for arbitration/completion records, or an op-code
/// byte plus `u32` invalidation count for coherence records).
#[derive(Debug)]
pub struct BinarySink<W: Write> {
    writer: W,
}

impl<W: Write> BinarySink<W> {
    /// Creates the sink and writes the framing preamble and header.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn new(mut writer: W, header: &TraceHeader) -> io::Result<Self> {
        let json = serde_json::to_string(header).map_err(|e| invalid(e.to_string()))?;
        let len = u32::try_from(json.len()).map_err(|_| invalid("trace header too large"))?;
        writer.write_all(MAGIC)?;
        writer.write_all(&[VERSION])?;
        writer.write_all(&len.to_le_bytes())?;
        writer.write_all(json.as_bytes())?;
        Ok(BinarySink { writer })
    }

    /// Consumes the sink, returning the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> TraceSink for BinarySink<W> {
    fn record(&mut self, event: &TraceEvent) -> io::Result<()> {
        // tag + at + agent + extra: at most 21 bytes per record.
        let mut buf = [0u8; 21];
        buf[1..9].copy_from_slice(&event.at.as_f64().to_le_bytes());
        let len = match event.kind {
            TraceKind::Request { agent } => {
                buf[0] = TAG_REQUEST;
                buf[9..13].copy_from_slice(&agent.get().to_le_bytes());
                13
            }
            TraceKind::ArbitrationStart { winner, completes } => {
                buf[0] = TAG_ARBITRATION;
                buf[9..13].copy_from_slice(&winner.get().to_le_bytes());
                buf[13..21].copy_from_slice(&completes.as_f64().to_le_bytes());
                21
            }
            TraceKind::TransferStart { agent } => {
                buf[0] = TAG_TRANSFER;
                buf[9..13].copy_from_slice(&agent.get().to_le_bytes());
                13
            }
            TraceKind::TransferEnd { agent, wait } => {
                buf[0] = TAG_END;
                buf[9..13].copy_from_slice(&agent.get().to_le_bytes());
                buf[13..21].copy_from_slice(&wait.to_le_bytes());
                21
            }
            TraceKind::Coherence {
                agent,
                op,
                invalidated,
            } => {
                // Coherence records have their own body layout: op code
                // byte plus a u32 invalidation count (18 bytes total).
                buf[0] = TAG_COHERENCE;
                buf[9..13].copy_from_slice(&agent.get().to_le_bytes());
                buf[13] = coherence_op_code(op);
                buf[14..18].copy_from_slice(&invalidated.to_le_bytes());
                18
            }
        };
        self.writer.write_all(&buf[..len])
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Opens a write-through file sink of the given format (buffered).
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn open_file_sink(
    path: &Path,
    format: TraceFormat,
    header: &TraceHeader,
) -> io::Result<Box<dyn TraceSink>> {
    let writer = io::BufWriter::new(std::fs::File::create(path)?);
    Ok(match format {
        TraceFormat::Jsonl => Box::new(JsonlSink::new(writer, header)?),
        TraceFormat::Binary => Box::new(BinarySink::new(writer, header)?),
    })
}

/// Reads an exported trace from raw bytes, auto-detecting the format by
/// the binary magic.
///
/// Implemented on the incremental [`TraceReader`](crate::TraceReader),
/// collected whole — the streaming reader is the single parsing code
/// path for both framings.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] errors for malformed input,
/// wrapping a [`StreamError`](crate::StreamError) that carries the byte
/// offset of the failure (recover it with
/// [`stream_error`](crate::stream_error)).
pub fn read_trace(bytes: &[u8]) -> io::Result<(TraceHeader, Vec<TraceEvent>)> {
    let mut reader = crate::TraceReader::new(bytes)?;
    let mut events = Vec::new();
    while let Some(event) = reader.next_event()? {
        events.push(event);
    }
    Ok((reader.header().clone(), events))
}

/// Reads an exported trace file, auto-detecting the format.
///
/// # Errors
///
/// Propagates I/O errors and malformed-input errors from [`read_trace`].
pub fn read_trace_file(path: &Path) -> io::Result<(TraceHeader, Vec<TraceEvent>)> {
    read_trace(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TRACE_SCHEMA;
    use busarb_types::{AgentId, Time};

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    fn header() -> TraceHeader {
        TraceHeader {
            schema: TRACE_SCHEMA.to_string(),
            protocol: "RR".to_string(),
            agents: 4,
            seed: 42,
            warmup_samples: 10,
            batches: 10,
            samples_per_batch: 5,
            confidence: 0.9,
        }
    }

    /// Events exercising every kind, with floats that do not have short
    /// decimal representations.
    fn events() -> Vec<TraceEvent> {
        let mut out = Vec::new();
        let mut t = 0.0f64;
        for i in 0..40u32 {
            t += 0.1 + f64::from(i) / 3.0;
            let agent = id(1 + i % 4);
            let kind = match i % 5 {
                0 => TraceKind::Request { agent },
                1 => TraceKind::ArbitrationStart {
                    winner: agent,
                    completes: Time::from(t + 0.5),
                },
                2 => TraceKind::TransferStart { agent },
                3 => TraceKind::TransferEnd {
                    agent,
                    wait: t / 7.0,
                },
                _ => TraceKind::Coherence {
                    agent,
                    op: match i % 3 {
                        0 => CoherenceOp::ReadMiss,
                        1 => CoherenceOp::WriteMiss,
                        _ => CoherenceOp::Upgrade,
                    },
                    invalidated: i % 4,
                },
            };
            out.push(TraceEvent {
                at: Time::from(t),
                kind,
            });
        }
        out
    }

    fn record_all(sink: &mut dyn TraceSink, events: &[TraceEvent]) {
        for e in events {
            sink.record(e).unwrap();
        }
        sink.finish().unwrap();
    }

    #[test]
    fn jsonl_round_trips_bit_exactly() {
        let mut sink = JsonlSink::new(Vec::new(), &header()).unwrap();
        record_all(&mut sink, &events());
        let bytes = sink.into_inner();
        let (h, evs) = read_trace(&bytes).unwrap();
        assert_eq!(h, header());
        assert_eq!(evs, events());
    }

    #[test]
    fn binary_round_trips_bit_exactly_and_is_smaller() {
        let mut jsonl = JsonlSink::new(Vec::new(), &header()).unwrap();
        record_all(&mut jsonl, &events());
        let mut sink = BinarySink::new(Vec::new(), &header()).unwrap();
        record_all(&mut sink, &events());
        let bytes = sink.into_inner();
        let (h, evs) = read_trace(&bytes).unwrap();
        assert_eq!(h, header());
        assert_eq!(evs, events());
        assert!(bytes.len() < jsonl.into_inner().len());
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let mut sink = MemorySink::new();
        record_all(&mut sink, &events());
        assert_eq!(sink.events(), &events()[..]);
        assert_eq!(sink.into_events(), events());
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(read_trace(b"").is_err());
        assert!(read_trace(b"not json\n").is_err());
        // Valid header, garbage event line.
        let mut sink = JsonlSink::new(Vec::new(), &header()).unwrap();
        sink.finish().unwrap();
        let mut bytes = sink.into_inner();
        bytes.extend_from_slice(b"{\"at\":1.0,\"ev\":\"nope\"}\n");
        assert!(read_trace(&bytes).is_err());
        // Agent identity zero is invalid.
        let mut sink = JsonlSink::new(Vec::new(), &header()).unwrap();
        sink.finish().unwrap();
        let mut bytes = sink.into_inner();
        bytes.extend_from_slice(b"{\"at\":1.0,\"ev\":\"req\",\"agent\":0}\n");
        assert!(read_trace(&bytes).is_err());
        // Truncated binary record.
        let mut sink = BinarySink::new(Vec::new(), &header()).unwrap();
        sink.record(&events()[0]).unwrap();
        let bytes = sink.into_inner();
        assert!(read_trace(&bytes[..bytes.len() - 3]).is_err());
        // Wrong binary version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(read_trace(&bad).is_err());
    }

    #[test]
    fn file_sink_writes_both_formats() {
        let dir = std::env::temp_dir().join("busarb-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        for (format, name) in [
            (TraceFormat::Jsonl, "t.jsonl"),
            (TraceFormat::Binary, "t.bin"),
        ] {
            let path = dir.join(name);
            let mut sink = open_file_sink(&path, format, &header()).unwrap();
            record_all(sink.as_mut(), &events());
            drop(sink);
            let (h, evs) = read_trace_file(&path).unwrap();
            assert_eq!(h, header());
            assert_eq!(evs, events());
            std::fs::remove_file(&path).unwrap();
        }
    }
}
