//! Statistical-equivalence suite for the fast draw engine.
//!
//! The fast engine is **not** bit-compatible with the reference engine —
//! that is the point of it — so its contract is distributional: for every
//! [`InterrequestTime`] family, samples drawn through [`FastEngine`] must
//! reproduce the family's configured mean and CV to the same tolerance
//! the reference sampler is held to (`distribution_props.rs`). A second
//! property pins the fast engine's determinism contract: a given
//! `(seed, agent)` stream replays identically no matter how draws to
//! *other* agents interleave, which is what makes sweep results
//! independent of worker count.

use busarb_stats::Summary;
use busarb_types::AgentId;
use busarb_workload::{
    AgentWorkload, BurstyTrace, DrawEngine, FastEngine, InterrequestTime, Scenario,
};
use proptest::prelude::*;

/// A two-agent scenario where every agent draws from `d`.
fn scenario_of(d: &InterrequestTime) -> Scenario {
    Scenario::from_workloads(
        vec![
            AgentWorkload {
                interrequest: d.clone()
            };
            2
        ],
        "stat-equiv",
    )
    .expect("valid scenario")
}

proptest! {
    // Moment checks sample a lot; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Mirrors `sampled_moments_match_spec` for the reference sampler:
    /// same CV grid, same tolerances, fast engine underneath.
    #[test]
    fn fast_engine_moments_match_spec(
        mean in 0.1f64..50.0,
        cv_index in 0usize..6,
        seed in any::<u64>(),
    ) {
        // The paper's CV grid: deterministic, Erlang k = 100/16/9/4,
        // exponential — every analytic family the simulator uses.
        let cv = [0.0, 0.1, 0.25, 1.0 / 3.0, 0.5, 1.0][cv_index];
        let d = InterrequestTime::from_mean_cv(mean, cv).unwrap();
        let mut engine = FastEngine::for_scenario(seed, &scenario_of(&d));
        let agent = AgentId::new(1).expect("valid identity");
        let s: Summary = (0..40_000).map(|_| engine.think_time(agent).as_f64()).collect();
        prop_assert!(
            (s.mean() - mean).abs() < 0.05 * mean + 1e-9,
            "mean {} vs spec {mean}",
            s.mean()
        );
        let sample_cv = if s.mean() > 0.0 { s.std_dev() / s.mean() } else { 0.0 };
        prop_assert!(
            (sample_cv - d.cv()).abs() < 0.05 + 0.05 * d.cv(),
            "cv {sample_cv} vs spec {}",
            d.cv()
        );
        prop_assert!(s.min().unwrap() >= 0.0);
    }

    /// Determinism contract: agent 1's draw stream is a pure function of
    /// `(seed, agent, draw count)` — replaying it against an arbitrary
    /// interleaving of draws by the other agent yields identical values,
    /// draw for draw.
    #[test]
    fn fast_streams_survive_arbitrary_interleaving(
        seed in any::<u64>(),
        cv_index in 0usize..3,
        schedule in proptest::collection::vec(0u8..4, 1..60),
    ) {
        let cv = [0.1, 0.5, 1.0][cv_index];
        let d = InterrequestTime::from_mean_cv(3.0, cv).unwrap();
        let s = scenario_of(&d);
        let watched = AgentId::new(1).expect("valid identity");
        let other = AgentId::new(2).expect("valid identity");

        let mut solo = FastEngine::for_scenario(seed, &s);
        let mut noisy = FastEngine::for_scenario(seed, &s);
        for &burst in &schedule {
            // Noise on the *other* agent's stream between watched draws:
            // think times and uniforms in proptest-chosen amounts.
            for _ in 0..burst {
                let _ = noisy.think_time(other);
                let _ = noisy.uniform(other);
            }
            prop_assert_eq!(solo.think_time(watched), noisy.think_time(watched));
            prop_assert_eq!(
                solo.uniform(watched).to_bits(),
                noisy.uniform(watched).to_bits()
            );
        }
    }
}

/// The empirical (trace-resampling) family: fast-engine draws must
/// reproduce the trace's own mean and CV.
#[test]
fn fast_engine_matches_empirical_trace_moments() {
    let trace = BurstyTrace::with_mean(4.0)
        .synthesize(0xDECAF)
        .expect("valid trace");
    let d = InterrequestTime::from_trace(trace).expect("valid distribution");
    let mut engine = FastEngine::for_scenario(21, &scenario_of(&d));
    let agent = AgentId::new(1).expect("valid identity");
    let s: Summary = (0..60_000)
        .map(|_| engine.think_time(agent).as_f64())
        .collect();
    assert!(
        (s.mean() - d.mean()).abs() < 0.05 * d.mean(),
        "mean {} vs trace {}",
        s.mean(),
        d.mean()
    );
    let sample_cv = s.std_dev() / s.mean();
    assert!(
        (sample_cv - d.cv()).abs() < 0.05 + 0.05 * d.cv(),
        "cv {sample_cv} vs trace {}",
        d.cv()
    );
}
