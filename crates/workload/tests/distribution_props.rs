//! Property tests for the workload layer: sampled moments match the
//! configured mean/CV across the whole parameter space, and scenario
//! builders preserve offered-load arithmetic.

use busarb_stats::Summary;
use busarb_types::AgentId;
use busarb_workload::{load, InterrequestTime, Scenario};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    // Moment checks sample a lot; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sampled_moments_match_spec(
        mean in 0.1f64..50.0,
        cv_index in 0usize..6,
        seed in any::<u64>(),
    ) {
        // Use the paper's CV grid so the Erlang family is exact.
        let cv = [0.0, 0.1, 0.25, 1.0 / 3.0, 0.5, 1.0][cv_index];
        let d = InterrequestTime::from_mean_cv(mean, cv).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let s: Summary = (0..40_000).map(|_| d.sample(&mut rng).as_f64()).collect();
        prop_assert!(
            (s.mean() - mean).abs() < 0.05 * mean + 1e-9,
            "mean {} vs spec {mean}",
            s.mean()
        );
        let sample_cv = if s.mean() > 0.0 { s.std_dev() / s.mean() } else { 0.0 };
        prop_assert!(
            (sample_cv - d.cv()).abs() < 0.05 + 0.05 * d.cv(),
            "cv {sample_cv} vs spec {}",
            d.cv()
        );
        // Samples are never negative.
        prop_assert!(s.min().unwrap() >= 0.0);
    }

    #[test]
    fn load_roundtrip(per_agent in 0.001f64..1.0) {
        let mean = load::mean_interrequest(per_agent).unwrap();
        let back = load::offered_load(mean).unwrap();
        prop_assert!((back - per_agent).abs() < 1e-12);
    }

    #[test]
    fn equal_load_scenarios_sum_to_total(
        n in 1u32..=128,
        total_milli in 1u64..2000,
    ) {
        let total = total_milli as f64 / 1000.0 * f64::from(n).min(8.0);
        prop_assume!(total / f64::from(n) <= 1.0 && total > 0.0);
        let s = Scenario::equal_load(n, total, 1.0).unwrap();
        prop_assert!((s.total_offered_load() - total).abs() < 1e-9 * (1.0 + total));
        prop_assert_eq!(s.agents(), n);
    }

    #[test]
    fn rate_multiplied_ratio_is_exact(
        n in 2u32..=64,
        factor in 1.0f64..6.0,
        base_milli in 10u64..500,
    ) {
        let base = base_milli as f64 / 1000.0;
        let boosted = AgentId::new(1).unwrap();
        prop_assume!(base / f64::from(n) * factor <= 1.0);
        let s = Scenario::rate_multiplied(n, base, boosted, factor, 1.0).unwrap();
        let ratio = s.workload(boosted).offered_load()
            / s.workload(AgentId::new(2).unwrap()).offered_load();
        prop_assert!((ratio - factor).abs() < 1e-9 * factor);
    }
}
