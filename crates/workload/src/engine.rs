//! Draw engines: the two interchangeable sources of workload randomness.
//!
//! Every random draw the simulator makes — interrequest ("think") times,
//! the initial phase stagger, urgent-class coin flips — goes through a
//! [`DrawEngine`]. Two implementations exist with deliberately different
//! contracts:
//!
//! * [`ReferenceEngine`] — the historical path: one shared ChaCha12
//!   [`StdRng`] seeded from the run seed, exact `f64::ln` sampling via
//!   [`InterrequestTime::sample`]. Its draw *order and bit patterns* are
//!   part of the byte-identical-reports contract: the `results/` golden
//!   fixtures reproduce bit-for-bit under this engine and nothing in this
//!   crate may perturb it.
//! * [`FastEngine`] — the throughput path: a counter-based Philox4x32-10
//!   generator with an **independent stream per agent** (keyed by run
//!   seed + agent identity, O(1) skippable by construction), inverse-CDF
//!   exponential sampling and exact Marsaglia–Tsang Erlang sampling
//!   (O(1) per draw in the shape, instead of the reference path's `k`
//!   exponentials) through a division-free table-based polynomial log
//!   ([`fast_ln`]-style reduction, ~1e-13 relative error), and draws
//!   batch-generated [`BATCH`] at a time into a per-agent refill buffer
//!   so the hot loop's draw cost amortizes to a buffer pop. It is **statistically** equivalent to the reference engine
//!   (same distributions, different variates) and *internally* bit-exact:
//!   a given `(seed, agent)` stream replays identically regardless of
//!   how other agents' draws interleave, so sweeps stay deterministic at
//!   any worker count.
//!
//! The engine is selected per run through `SystemConfig::with_draw_engine`
//! ([`DrawEngineKind`]); both simulator runners (plane and legacy) are
//! generic over `E: DrawEngine`, so the choice monomorphizes into the
//! event loop.

use core::fmt;
use std::sync::Arc;
use std::sync::OnceLock;

use busarb_types::{AgentId, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distribution::InterrequestTime;
use crate::scenario::Scenario;

/// Which draw engine a run uses. Carried by `SystemConfig` and recorded
/// in benchmark headers so every figure names the engine that produced
/// it.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, Debug)]
pub enum DrawEngineKind {
    /// The golden-fixture engine: shared ChaCha12 `StdRng`, exact
    /// `f64::ln`. Byte-identical to the PR-7 `results/` outputs.
    #[default]
    Reference,
    /// The throughput engine: per-agent Philox4x32-10 counter streams,
    /// batched inverse-CDF sampling with a polynomial log. Statistically
    /// equivalent, internally bit-exact, not byte-compatible with the
    /// reference goldens.
    Fast,
}

impl DrawEngineKind {
    /// Parses an engine name (for the `--engine` CLI flags).
    #[must_use]
    pub fn parse(name: &str) -> Option<DrawEngineKind> {
        match name {
            "reference" => Some(DrawEngineKind::Reference),
            "fast" => Some(DrawEngineKind::Fast),
            _ => None,
        }
    }
}

impl fmt::Display for DrawEngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrawEngineKind::Reference => f.write_str("reference"),
            DrawEngineKind::Fast => f.write_str("fast"),
        }
    }
}

/// A source of workload randomness for one simulation run.
///
/// The runner calls [`DrawEngine::think_time`] for every interrequest
/// draw and [`DrawEngine::uniform`] for the initial phase stagger and the
/// urgent-class coin flip. Both take the drawing agent: the reference
/// engine ignores it (one shared stream, draws interleave in event
/// order), the fast engine routes every call to that agent's private
/// stream.
pub trait DrawEngine {
    /// Which engine this is (for dispatch tables and report headers).
    const KIND: DrawEngineKind;

    /// Builds the engine for a run: `seed` plus the scenario's per-agent
    /// interrequest distributions.
    fn for_scenario(seed: u64, scenario: &Scenario) -> Self;

    /// Draws one interrequest time for `agent` from its configured
    /// distribution.
    fn think_time(&mut self, agent: AgentId) -> Time;

    /// Draws one uniform variate on `[0, 1)` on behalf of `agent`.
    fn uniform(&mut self, agent: AgentId) -> f64;
}

/// The golden-fixture engine: today's ChaCha12 [`StdRng`] and exact
/// `f64::ln` sampling, draw-for-draw identical to the pre-engine runner.
///
/// One shared stream serves every agent, so the draw sequence depends on
/// global event order — exactly the historical behavior the `results/`
/// fixtures pin byte-for-byte.
#[derive(Debug)]
pub struct ReferenceEngine {
    rng: StdRng,
    dists: Box<[InterrequestTime]>,
}

impl DrawEngine for ReferenceEngine {
    const KIND: DrawEngineKind = DrawEngineKind::Reference;

    fn for_scenario(seed: u64, scenario: &Scenario) -> Self {
        let dists = AgentId::all(scenario.agents())
            .map(|a| scenario.workload(a).interrequest.clone())
            .collect();
        ReferenceEngine {
            rng: StdRng::seed_from_u64(seed),
            dists,
        }
    }

    #[inline]
    fn think_time(&mut self, agent: AgentId) -> Time {
        self.dists[agent.index()].sample(&mut self.rng)
    }

    #[inline]
    fn uniform(&mut self, _agent: AgentId) -> f64 {
        self.rng.gen::<f64>()
    }
}

/// Samples per refill batch: one refill amortizes the Philox block
/// generation and the log-reduction polynomial over 64 hot-loop pops.
pub const BATCH: usize = 64;

/// Golden-ratio Weyl increments for the Philox round keys (Salmon et
/// al., SC'11).
const PHILOX_W0: u32 = 0x9E37_79B9;
const PHILOX_W1: u32 = 0xBB67_AE85;
/// Philox4x32 round multipliers.
const PHILOX_M0: u64 = 0xD251_1F53;
const PHILOX_M1: u64 = 0xCD9E_8D57;

/// One Philox4x32 S-P round: two 32×32→64 multiplies, then the permuted
/// xor-with-key mix.
#[inline]
fn philox_round(ctr: [u32; 4], key: [u32; 2]) -> [u32; 4] {
    let p0 = u64::from(ctr[0]) * PHILOX_M0;
    let p1 = u64::from(ctr[2]) * PHILOX_M1;
    [
        ((p1 >> 32) as u32) ^ ctr[1] ^ key[0],
        p1 as u32,
        ((p0 >> 32) as u32) ^ ctr[3] ^ key[1],
        p0 as u32,
    ]
}

/// The full 10-round Philox4x32-10 block function: 128-bit counter +
/// 64-bit key → 128 bits of output. Counter-based: block `i` of a stream
/// is a pure function of `(key, i)`, so streams are O(1) skippable and
/// agents' streams never entangle.
#[inline]
fn philox4x32_10(mut ctr: [u32; 4], mut key: [u32; 2]) -> [u32; 4] {
    for _ in 0..10 {
        ctr = philox_round(ctr, key);
        key[0] = key[0].wrapping_add(PHILOX_W0);
        key[1] = key[1].wrapping_add(PHILOX_W1);
    }
    ctr
}

/// `splitmix64` finalizer — used only to derive per-agent Philox keys
/// from `(seed, agent identity)`, never on the draw path.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Precomputed table for the division-free log reduction: 128 lanes over
/// the mantissa range `[1, 2)`, each holding `1/r` (rounded) and
/// `ln r = -ln(1/r)` for the lane's center `r`. Built once per process
/// with `f64::ln` (the *only* place the fast path's math touches the
/// libm log), then read-only.
#[derive(Debug)]
struct LnTable {
    inv: [f64; 128],
    ln: [f64; 128],
}

static LN_TABLE: OnceLock<LnTable> = OnceLock::new();

fn ln_table() -> &'static LnTable {
    LN_TABLE.get_or_init(|| {
        let mut inv = [0.0f64; 128];
        let mut ln = [0.0f64; 128];
        for i in 0..128 {
            // Lane center r = 1 + (i + 0.5)/128; store its (rounded)
            // reciprocal and the exact ln of that stored reciprocal, so
            // the identity ln m = -ln(1/r) + ln1p(m/r - 1) holds for the
            // values actually used.
            let r_inv = 1.0 / (1.0 + (i as f64 + 0.5) / 128.0);
            inv[i] = r_inv;
            ln[i] = -r_inv.ln();
        }
        LnTable { inv, ln }
    })
}

/// `ln x` for positive finite normal `x` by table-based range reduction:
/// split `x = 2^e · m` with `m ∈ [1, 2)`, pick the lane from the top 7
/// mantissa bits, form `t = m·(1/r) − 1` with `|t| ≤ 2⁻⁸`, and evaluate
/// `ln(1+t)` by a degree-4 Horner polynomial. Division-free on the hot
/// path (the reciprocals are precomputed) and accurate to ~1e-13
/// absolute on `ln x` — far below the statistical resolution of any
/// experiment cell.
#[inline]
fn fast_ln(tab: &LnTable, x: f64) -> f64 {
    debug_assert!(x > 0.0 && x.is_finite(), "fast_ln domain: 0 < x < inf");
    let bits = x.to_bits();
    let e = ((bits >> 52) as i64) - 1023;
    let idx = ((bits >> 45) & 0x7F) as usize;
    let m = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000);
    let t = m.mul_add(tab.inv[idx], -1.0);
    let ln1p = t * t.mul_add(t.mul_add(t.mul_add(-0.25, 1.0 / 3.0), -0.5), 1.0);
    (e as f64).mul_add(core::f64::consts::LN_2, tab.ln[idx] + ln1p)
}

/// Maps a raw `u64` to a uniform on the **half-open** `[0, 1)` with the
/// same 53-bit construction as the rand shim's `gen::<f64>()`.
#[inline]
fn unit_halfopen(u: u64) -> f64 {
    (u >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps a raw `u64` to a uniform on the **left-open** `(0, 1]` — the
/// inverse-CDF domain, so `ln` never sees zero.
#[inline]
fn unit_nonzero(u: u64) -> f64 {
    ((u >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Per-agent transformed-draw recipe, precomputed from the agent's
/// [`InterrequestTime`] so the refill loop never re-derives parameters.
#[derive(Clone, Debug)]
enum Sampler {
    /// CV = 0: no randomness, no buffer — the stream's counter is never
    /// advanced by think-time draws (matching the reference engine,
    /// which also consumes no variate for deterministic draws).
    Deterministic { value: Time },
    /// CV = 1: `-mean · ln u` per sample, one uniform each.
    Exponential { neg_mean: f64 },
    /// 0 < CV < 1: Erlang-k as Gamma(k, θ) by the Marsaglia–Tsang
    /// squeeze-rejection method — one standard normal and one uniform
    /// per draw (acceptance > 99% at k ≥ 2), **O(1) in the shape**
    /// instead of the reference path's k-exponential sum. `d = k - 1/3`
    /// and `c = 1/√(9d)` are the method's precomputed constants.
    Erlang { theta: f64, d: f64, c: f64 },
    /// Trace resampling: one uniform index per sample (widening
    /// multiply; bias ≤ len·2⁻⁶⁴, unobservable).
    Empirical { samples: Arc<[f64]> },
}

/// One agent's private counter-based stream plus its refill buffer.
#[derive(Debug)]
struct AgentStream {
    key: [u32; 2],
    /// Constant high words of the 128-bit Philox counter (a per-agent
    /// salt; the low 64 bits count blocks).
    salt: [u32; 2],
    /// Next Philox block index.
    ctr: u64,
    /// Second half of the last generated block, if unconsumed — blocks
    /// yield two `u64`s and every draw site pulls whole `u64`s, so
    /// nothing is discarded and the stream position stays a pure
    /// function of the number of draws made.
    carry: u64,
    has_carry: bool,
    /// Second normal of the last polar-method pair, if unconsumed (the
    /// rejection step yields two independent normals per acceptance).
    spare: f64,
    has_spare: bool,
    sampler: Sampler,
    /// Next unread slot of `buf`; `BATCH` means "empty, refill".
    pos: usize,
    /// Batched think-time draws, refilled [`BATCH`] at a time.
    buf: [Time; BATCH],
}

impl AgentStream {
    fn new(seed: u64, agent: AgentId, dist: &InterrequestTime) -> Self {
        // Distinct agents hash to distinct splitmix inputs (odd
        // multiplier ⇒ injective), and distinct Philox keys give
        // independent streams by construction.
        let a = splitmix64(seed ^ u64::from(agent.get()).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let b = splitmix64(a);
        let sampler = match *dist {
            InterrequestTime::Deterministic { value } => Sampler::Deterministic {
                value: Time::from(value),
            },
            InterrequestTime::Exponential { mean } => Sampler::Exponential { neg_mean: -mean },
            InterrequestTime::Erlang { mean, shape } => {
                let d = f64::from(shape) - 1.0 / 3.0;
                Sampler::Erlang {
                    theta: mean / f64::from(shape),
                    d,
                    c: (9.0 * d).sqrt().recip(),
                }
            }
            InterrequestTime::Empirical { ref samples, .. } => Sampler::Empirical {
                samples: Arc::clone(samples),
            },
        };
        AgentStream {
            key: [a as u32, (a >> 32) as u32],
            salt: [b as u32, (b >> 32) as u32],
            ctr: 0,
            carry: 0,
            has_carry: false,
            spare: 0.0,
            has_spare: false,
            sampler,
            pos: BATCH,
            buf: [Time::ZERO; BATCH],
        }
    }

    /// The next raw `u64` of this agent's stream.
    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.has_carry {
            self.has_carry = false;
            return self.carry;
        }
        let c = self.ctr;
        self.ctr += 1;
        let b = philox4x32_10(
            [c as u32, (c >> 32) as u32, self.salt[0], self.salt[1]],
            self.key,
        );
        self.carry = (u64::from(b[2]) << 32) | u64::from(b[3]);
        self.has_carry = true;
        (u64::from(b[0]) << 32) | u64::from(b[1])
    }

    /// One standard normal by the Marsaglia polar method. Each accepted
    /// rejection pair yields two independent normals, so every other
    /// call is a cached-spare pop; acceptance is π/4 ≈ 0.785.
    #[inline]
    fn next_normal(&mut self, tab: &LnTable) -> f64 {
        if self.has_spare {
            self.has_spare = false;
            return self.spare;
        }
        loop {
            let a = unit_halfopen(self.next_u64()).mul_add(2.0, -1.0);
            let b = unit_halfopen(self.next_u64()).mul_add(2.0, -1.0);
            let s = a.mul_add(a, b * b);
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * fast_ln(tab, s) / s).sqrt();
                self.spare = b * f;
                self.has_spare = true;
                return a * f;
            }
        }
    }

    /// Regenerates the whole buffer: [`BATCH`] inverse-CDF samples in one
    /// pass, so consecutive Philox blocks pipeline and the polynomial
    /// log's table lines stay hot.
    #[inline(never)]
    fn refill(&mut self, tab: &LnTable) {
        match self.sampler {
            // `think_time` short-circuits deterministic draws before the
            // buffer; filling it anyway keeps refill total (no panic
            // branch on the hot path).
            Sampler::Deterministic { value } => self.buf = [value; BATCH],
            Sampler::Exponential { neg_mean } => {
                for i in 0..BATCH {
                    let u = unit_nonzero(self.next_u64());
                    self.buf[i] = Time::saturating(neg_mean * fast_ln(tab, u));
                }
            }
            Sampler::Erlang { theta, d, c } => {
                for i in 0..BATCH {
                    // Marsaglia–Tsang: x ~ N(0,1), v = (1 + cx)³, accept
                    // d·v as a Gamma(k, 1) variate when the squeeze
                    // `u < 1 − 0.0331 x⁴` holds (the common case) or the
                    // exact log test passes. Rejections re-enter the
                    // per-agent stream, so the draw sequence stays a
                    // pure function of (seed, agent, draw count).
                    let gamma = loop {
                        let x = self.next_normal(tab);
                        let t = c.mul_add(x, 1.0);
                        if t <= 0.0 {
                            continue;
                        }
                        let v = t * t * t;
                        let u = unit_nonzero(self.next_u64());
                        let x2 = x * x;
                        if u < 0.0331f64.mul_add(-(x2 * x2), 1.0) {
                            break d * v;
                        }
                        if fast_ln(tab, u) < 0.5f64.mul_add(x2, d * (1.0 - v + fast_ln(tab, v))) {
                            break d * v;
                        }
                    };
                    self.buf[i] = Time::saturating(theta * gamma);
                }
            }
            Sampler::Empirical { ref samples } => {
                let samples = Arc::clone(samples);
                let len = samples.len() as u128;
                for i in 0..BATCH {
                    let idx = ((u128::from(self.next_u64()) * len) >> 64) as usize;
                    self.buf[i] = Time::saturating(samples[idx]);
                }
            }
        }
        self.pos = 0;
    }
}

/// The throughput engine: an independent Philox4x32-10 counter stream
/// per agent, inverse-CDF sampling through the division-free table log,
/// and [`BATCH`]-deep refill buffers.
///
/// Determinism contract: agent `a`'s draw sequence is a pure function of
/// `(seed, a, number of draws already made by a)` — independent of every
/// other agent and of sweep worker count. See the module docs for what
/// is bit-stable versus only statistically stable.
#[derive(Debug)]
pub struct FastEngine {
    streams: Box<[AgentStream]>,
    tab: &'static LnTable,
}

impl DrawEngine for FastEngine {
    const KIND: DrawEngineKind = DrawEngineKind::Fast;

    fn for_scenario(seed: u64, scenario: &Scenario) -> Self {
        let streams = AgentId::all(scenario.agents())
            .map(|a| AgentStream::new(seed, a, &scenario.workload(a).interrequest))
            .collect();
        FastEngine {
            streams,
            tab: ln_table(),
        }
    }

    #[inline]
    fn think_time(&mut self, agent: AgentId) -> Time {
        let stream = &mut self.streams[agent.index()];
        if let Sampler::Deterministic { value } = stream.sampler {
            return value;
        }
        if stream.pos == BATCH {
            stream.refill(self.tab);
        }
        let t = stream.buf[stream.pos];
        stream.pos += 1;
        t
    }

    #[inline]
    fn uniform(&mut self, agent: AgentId) -> f64 {
        unit_halfopen(self.streams[agent.index()].next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;

    fn scenario(n: u32, cv: f64) -> Scenario {
        Scenario::equal_load(n, f64::from(n) * 0.5, cv).expect("valid scenario")
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [DrawEngineKind::Reference, DrawEngineKind::Fast] {
            assert_eq!(DrawEngineKind::parse(&kind.to_string()), Some(kind));
        }
        assert_eq!(DrawEngineKind::parse("bogus"), None);
        assert_eq!(DrawEngineKind::default(), DrawEngineKind::Reference);
    }

    #[test]
    fn reference_engine_matches_the_historical_draw_stream() {
        // The engine must be a transparent refactor of the old runner
        // code: same StdRng, same sample calls, same interleaving.
        let s = scenario(4, 1.0);
        let mut engine = ReferenceEngine::for_scenario(99, &s);
        let mut rng = StdRng::seed_from_u64(99);
        for agent in AgentId::all(4) {
            assert_eq!(
                engine.think_time(agent),
                s.workload(agent).interrequest.sample(&mut rng)
            );
            assert_eq!(engine.uniform(agent), rng.gen::<f64>());
        }
    }

    #[test]
    fn philox_blocks_differ_by_counter_and_key() {
        let k = [1u32, 2];
        let a = philox4x32_10([0, 0, 0, 0], k);
        let b = philox4x32_10([1, 0, 0, 0], k);
        let c = philox4x32_10([0, 0, 0, 0], [3, 4]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Pure function: same inputs, same block.
        assert_eq!(a, philox4x32_10([0, 0, 0, 0], k));
    }

    #[test]
    fn fast_ln_tracks_libm_ln() {
        let tab = ln_table();
        let mut worst = 0.0f64;
        // Sweep magnitudes from tiny to huge plus the near-1 cancellation
        // zone.
        let mut x = 1e-300;
        while x < 1e300 {
            let got = fast_ln(tab, x);
            let want = x.ln();
            worst = worst.max((got - want).abs() / want.abs().max(1.0));
            x *= 1.9;
        }
        for i in 0..1000 {
            let x = 0.5 + f64::from(i) / 667.0;
            let err = (fast_ln(tab, x) - x.ln()).abs();
            worst = worst.max(err);
        }
        assert!(worst < 1e-12, "worst fast_ln error {worst:e}");
    }

    #[test]
    fn unit_mappings_stay_in_range() {
        for u in [0u64, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX] {
            let h = unit_halfopen(u);
            let n = unit_nonzero(u);
            assert!((0.0..1.0).contains(&h), "halfopen({u}) = {h}");
            assert!(n > 0.0 && n <= 1.0, "nonzero({u}) = {n}");
        }
        assert_eq!(unit_halfopen(0), 0.0);
        assert_eq!(unit_nonzero(u64::MAX), 1.0);
    }

    #[test]
    fn fast_streams_are_independent_of_other_agents() {
        let s = scenario(3, 1.0);
        let a2 = AgentId::new(2).expect("valid identity");
        // Draw agent 2's stream alone...
        let mut solo = FastEngine::for_scenario(7, &s);
        let alone: Vec<Time> = (0..200).map(|_| solo.think_time(a2)).collect();
        // ...and interleaved with heavy traffic from agents 1 and 3.
        let mut busy = FastEngine::for_scenario(7, &s);
        let mut interleaved = Vec::new();
        for i in 0..200 {
            for other in [AgentId::new(1), AgentId::new(3)] {
                let o = other.expect("valid identity");
                for _ in 0..(i % 5) {
                    let _ = busy.think_time(o);
                    let _ = busy.uniform(o);
                }
            }
            interleaved.push(busy.think_time(a2));
        }
        assert_eq!(alone, interleaved);
    }

    #[test]
    fn fast_uniform_and_think_draws_share_one_per_agent_position() {
        // Interleaving uniforms into an agent's own stream *does* shift
        // its later think times (one stream per agent), but stays
        // deterministic under replay.
        let s = scenario(2, 1.0);
        let a = AgentId::new(1).expect("valid identity");
        let run = |with_uniform: bool| -> Vec<Time> {
            let mut e = FastEngine::for_scenario(5, &s);
            if with_uniform {
                let _ = e.uniform(a);
            }
            (0..10).map(|_| e.think_time(a)).collect()
        };
        assert_eq!(run(true), run(true));
        assert_eq!(run(false), run(false));
    }

    #[test]
    fn deterministic_family_consumes_no_stream_state() {
        let s = scenario(2, 0.0);
        let a = AgentId::new(1).expect("valid identity");
        let mut e = FastEngine::for_scenario(11, &s);
        let u_before = {
            let mut probe = FastEngine::for_scenario(11, &s);
            probe.uniform(a)
        };
        for _ in 0..50 {
            let t = e.think_time(a);
            assert!(t.as_f64() > 0.0);
        }
        // 50 deterministic draws later the stream is still at position 0.
        assert_eq!(e.uniform(a), u_before);
    }

    #[test]
    fn erlang_sampler_handles_extreme_shapes() {
        // k = 625 (CV = 0.04): samples must stay positive, finite, and
        // tightly concentrated around the mean — the rejection method's
        // cost is O(1) in the shape, so this is no slower than k = 2.
        let d = InterrequestTime::Erlang {
            mean: 10.0,
            shape: 625,
        };
        let workloads = vec![crate::AgentWorkload { interrequest: d }; 3];
        let s = Scenario::from_workloads(workloads, "erlang-625").expect("valid scenario");
        let a = AgentId::new(1).expect("valid identity");
        let mut e = FastEngine::for_scenario(3, &s);
        let mut sum = 0.0;
        let n = 8 * BATCH;
        for _ in 0..n {
            let t = e.think_time(a).as_f64();
            assert!(t.is_finite() && t > 0.0, "sample {t}");
            // Mean 10, sd 0.4: anything past ±10 sd is a broken sampler.
            assert!((6.0..14.0).contains(&t), "sample {t} implausible for k=625");
            sum += t;
        }
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.2, "sample mean {mean}");
    }

    #[test]
    fn erlang_moments_match_the_distribution() {
        // Marsaglia–Tsang must reproduce the Erlang's first two moments:
        // mean θk and CV 1/√k.
        let d = InterrequestTime::Erlang {
            mean: 4.0,
            shape: 100,
        };
        let workloads = vec![crate::AgentWorkload { interrequest: d }; 2];
        let s = Scenario::from_workloads(workloads, "erlang-100").expect("valid scenario");
        let a = AgentId::new(1).expect("valid identity");
        let mut e = FastEngine::for_scenario(17, &s);
        let n = 64 * BATCH;
        let samples: Vec<f64> = (0..n).map(|_| e.think_time(a).as_f64()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let cv = var.sqrt() / mean;
        assert!((mean - 4.0).abs() < 0.05, "mean {mean} (want 4.0)");
        assert!((cv - 0.1).abs() < 0.01, "cv {cv} (want 0.1)");
    }
}
