//! Workload generation for bus arbitration studies.
//!
//! Section 4.1 of Vernon & Manber (ISCA 1988) fixes the workload model used
//! throughout the paper's evaluation:
//!
//! * Bus transaction times are **deterministic** and define the unit of
//!   time.
//! * Interrequest times (the time an agent computes between completing one
//!   bus transaction and issuing its next request) are random with a
//!   specified mean and coefficient of variation (CV). CV = 0 is
//!   deterministic, CV = 1 is exponential, and intermediate values use the
//!   **Erlang** distribution.
//! * The *offered load* of an agent is `S / (S + mean interrequest)` with
//!   `S = 1` (the bus transaction time): the fraction of time the agent
//!   would keep the bus busy absent interference. The *total offered load*
//!   is the sum over agents.
//!
//! This crate provides:
//!
//! * [`InterrequestTime`] — the three-family distribution with exact
//!   mean/CV bookkeeping and seeded sampling via [`rand`].
//! * [`Scenario`] — per-agent workload assignments with builders for every
//!   experiment in the paper (equal loads, one agent at a rate multiple,
//!   and the Table 4.5 "just miss" worst case for round-robin).
//! * [`load`] — conversions between offered load and mean interrequest
//!   time.
//! * [`DrawEngine`] — the pluggable source of workload randomness: the
//!   byte-stable [`ReferenceEngine`] (ChaCha12 + exact `ln`) and the
//!   statistically equivalent [`FastEngine`] (per-agent Philox4x32-10
//!   counter streams with batched inverse-CDF sampling).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod distribution;
mod engine;
pub mod load;
mod scenario;
pub mod trace;

pub use busarb_mem::CoherenceConfig;
pub use distribution::InterrequestTime;
pub use engine::{DrawEngine, DrawEngineKind, FastEngine, ReferenceEngine, BATCH};
pub use scenario::{AgentWorkload, Scenario};
pub use trace::BurstyTrace;
