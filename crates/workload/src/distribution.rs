//! Interrequest-time distributions.

use core::fmt;
use std::sync::Arc;

use busarb_types::{Error, Time};
use rand::Rng;

/// An interrequest-time distribution, parameterized by mean and coefficient
/// of variation (CV = standard deviation / mean), following Section 4.1 of
/// the paper:
///
/// * CV = 0 — deterministic,
/// * 0 < CV < 1 — Erlang-k with `k = round(1 / CV²)` (the Erlang family
///   realizes CVs of exactly `1/sqrt(k)`; the paper's sweep values 0.1,
///   0.2, 0.25, 1/3, 0.5 are all exactly realizable),
/// * CV = 1 — exponential.
///
/// # Examples
///
/// ```
/// use busarb_workload::InterrequestTime;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// let d = InterrequestTime::from_mean_cv(3.0, 0.5)?;
/// assert_eq!(d.mean(), 3.0);
/// assert_eq!(d.cv(), 0.5); // Erlang-4
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = d.sample(&mut rng);
/// assert!(x.as_f64() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Debug)]
pub enum InterrequestTime {
    /// Always exactly `value` (CV = 0).
    Deterministic {
        /// The constant interrequest time.
        value: f64,
    },
    /// Erlang distribution: sum of `shape` exponentials (0 < CV < 1).
    Erlang {
        /// Mean of the whole Erlang variate.
        mean: f64,
        /// Number of exponential stages (k ≥ 2 here; k = 1 is
        /// [`InterrequestTime::Exponential`]).
        shape: u32,
    },
    /// Exponential distribution (CV = 1) — the highest-contention case in
    /// the paper's sweep.
    Exponential {
        /// Mean interrequest time.
        mean: f64,
    },
    /// Empirical distribution: interrequest times resampled uniformly
    /// from a recorded trace. This is the trace-driven evaluation mode
    /// (cf. the paper's \[EgGi87\] citation) and the only family that can
    /// exceed CV = 1 (bursty traffic).
    Empirical {
        /// The recorded interrequest times.
        samples: Arc<[f64]>,
        /// Cached trace mean.
        mean: f64,
        /// Cached trace coefficient of variation.
        cv: f64,
    },
}

impl InterrequestTime {
    /// Builds the distribution for a given mean and CV, choosing the family
    /// as the paper does.
    ///
    /// For 0 < CV < 1 the Erlang shape is `round(1/CV²)` clamped to ≥ 2;
    /// the *achieved* CV is `1/sqrt(shape)` and can be read back with
    /// [`Self::cv`].
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidMean`] if `mean` is not positive and finite
    ///   (except that a zero mean is allowed for CV = 0, meaning the agent
    ///   re-requests immediately).
    /// * [`Error::InvalidCv`] if `cv` is outside `[0, 1]`.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Result<Self, Error> {
        if !(0.0..=1.0).contains(&cv) || !cv.is_finite() {
            return Err(Error::InvalidCv { cv });
        }
        if !mean.is_finite() || mean < 0.0 || (mean == 0.0 && cv != 0.0) {
            return Err(Error::InvalidMean { mean });
        }
        if cv == 0.0 {
            Ok(InterrequestTime::Deterministic { value: mean })
        } else if cv == 1.0 {
            Ok(InterrequestTime::Exponential { mean })
        } else {
            let shape = (1.0 / (cv * cv)).round().max(2.0) as u32;
            Ok(InterrequestTime::Erlang { mean, shape })
        }
    }

    /// Builds an empirical distribution that resamples (bootstraps) from
    /// a recorded trace of interrequest times.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidScenario`] if the trace is empty or
    /// contains a negative or non-finite value.
    pub fn from_trace(samples: Vec<f64>) -> Result<Self, Error> {
        if samples.is_empty() {
            return Err(Error::InvalidScenario {
                reason: "empirical trace must not be empty".to_string(),
            });
        }
        if samples.iter().any(|&x| !x.is_finite() || x < 0.0) {
            return Err(Error::InvalidScenario {
                reason: "empirical trace values must be finite and non-negative".to_string(),
            });
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        Ok(InterrequestTime::Empirical {
            samples: samples.into(),
            mean,
            cv,
        })
    }

    /// The distribution mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            InterrequestTime::Deterministic { value } => value,
            InterrequestTime::Erlang { mean, .. } | InterrequestTime::Exponential { mean } => mean,
            InterrequestTime::Empirical { mean, .. } => mean,
        }
    }

    /// The achieved coefficient of variation.
    #[must_use]
    pub fn cv(&self) -> f64 {
        match *self {
            InterrequestTime::Deterministic { .. } => 0.0,
            InterrequestTime::Erlang { shape, .. } => 1.0 / f64::from(shape).sqrt(),
            InterrequestTime::Exponential { .. } => 1.0,
            InterrequestTime::Empirical { cv, .. } => cv,
        }
    }

    /// The distribution variance.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let sd = self.cv() * self.mean();
        sd * sd
    }

    /// Draws one interrequest time.
    ///
    /// Sampling uses inverse-transform for the exponential and the
    /// product-of-uniforms identity for the Erlang (`-θ · ln Π uᵢ` over
    /// `shape` uniforms with `θ = mean / shape`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Time {
        let value = match *self {
            InterrequestTime::Deterministic { value } => value,
            InterrequestTime::Exponential { mean } => -mean * ln_nonzero_uniform(rng),
            InterrequestTime::Erlang { mean, shape } => {
                let theta = mean / f64::from(shape);
                let mut ln_sum = 0.0;
                for _ in 0..shape {
                    ln_sum += ln_nonzero_uniform(rng);
                }
                -theta * ln_sum
            }
            InterrequestTime::Empirical { ref samples, .. } => {
                samples[rng.gen_range(0..samples.len())]
            }
        };
        // Every branch above yields a finite value; `saturating` (same
        // result, no panic branch) keeps the per-draw path unwind-free.
        Time::saturating(value)
    }
}

/// `ln(u)` for `u` uniform on (0, 1], avoiding `ln(0)`.
fn ln_nonzero_uniform<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // gen::<f64>() is uniform on [0, 1); map to (0, 1].
    let u: f64 = 1.0 - rng.gen::<f64>();
    u.ln()
}

impl fmt::Display for InterrequestTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            InterrequestTime::Deterministic { value } => {
                write!(f, "deterministic({value})")
            }
            InterrequestTime::Erlang { mean, shape } => {
                write!(f, "erlang(mean={mean}, k={shape})")
            }
            InterrequestTime::Exponential { mean } => {
                write!(f, "exponential(mean={mean})")
            }
            InterrequestTime::Empirical {
                ref samples,
                mean,
                cv,
            } => {
                write!(
                    f,
                    "empirical({} samples, mean={mean:.3}, cv={cv:.3})",
                    samples.len()
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use busarb_stats::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_summary(d: InterrequestTime, n: usize, seed: u64) -> Summary {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng).as_f64()).collect()
    }

    #[test]
    fn family_selection_matches_paper() {
        assert!(matches!(
            InterrequestTime::from_mean_cv(2.0, 0.0).unwrap(),
            InterrequestTime::Deterministic { .. }
        ));
        assert!(matches!(
            InterrequestTime::from_mean_cv(2.0, 1.0).unwrap(),
            InterrequestTime::Exponential { .. }
        ));
        let erlang = InterrequestTime::from_mean_cv(2.0, 0.5).unwrap();
        assert_eq!(
            erlang,
            InterrequestTime::Erlang {
                mean: 2.0,
                shape: 4
            }
        );
    }

    #[test]
    fn paper_cv_sweep_is_exactly_realizable() {
        // Table 4.5 sweeps CV in {0, 0.1, 0.2, 0.25, 1/3, 0.5, 1.0}.
        for &(cv, shape) in &[(0.1, 100), (0.2, 25), (0.25, 16), (1.0 / 3.0, 9), (0.5, 4)] {
            match InterrequestTime::from_mean_cv(1.0, cv).unwrap() {
                InterrequestTime::Erlang { shape: k, .. } => {
                    assert_eq!(k, shape, "cv={cv}");
                }
                other => panic!("expected Erlang for cv={cv}, got {other}"),
            }
        }
    }

    #[test]
    fn achieved_cv_is_reported() {
        let d = InterrequestTime::from_mean_cv(5.0, 1.0 / 3.0).unwrap();
        assert!((d.cv() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.mean(), 5.0);
        assert!((d.variance() - (5.0 / 3.0f64).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(InterrequestTime::from_mean_cv(1.0, -0.1).is_err());
        assert!(InterrequestTime::from_mean_cv(1.0, 1.5).is_err());
        assert!(InterrequestTime::from_mean_cv(-1.0, 0.5).is_err());
        assert!(InterrequestTime::from_mean_cv(f64::NAN, 0.5).is_err());
        // Zero mean allowed only for the deterministic family.
        assert!(InterrequestTime::from_mean_cv(0.0, 0.0).is_ok());
        assert!(InterrequestTime::from_mean_cv(0.0, 0.5).is_err());
    }

    #[test]
    fn deterministic_sampling_is_constant() {
        let d = InterrequestTime::from_mean_cv(2.5, 0.0).unwrap();
        let s = sample_summary(d, 100, 1);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn exponential_moments() {
        let d = InterrequestTime::from_mean_cv(3.0, 1.0).unwrap();
        let s = sample_summary(d, 200_000, 42);
        assert!((s.mean() - 3.0).abs() < 0.05, "mean {}", s.mean());
        let cv = s.std_dev() / s.mean();
        assert!((cv - 1.0).abs() < 0.02, "cv {cv}");
        assert!(s.min().unwrap() > 0.0);
    }

    #[test]
    fn erlang_moments() {
        let d = InterrequestTime::from_mean_cv(4.0, 0.5).unwrap();
        let s = sample_summary(d, 200_000, 43);
        assert!((s.mean() - 4.0).abs() < 0.05);
        let cv = s.std_dev() / s.mean();
        assert!((cv - 0.5).abs() < 0.01, "cv {cv}");
    }

    #[test]
    fn erlang_high_shape_moments() {
        let d = InterrequestTime::from_mean_cv(10.0, 0.1).unwrap();
        let s = sample_summary(d, 100_000, 44);
        assert!((s.mean() - 10.0).abs() < 0.05);
        let cv = s.std_dev() / s.mean();
        assert!((cv - 0.1).abs() < 0.005, "cv {cv}");
    }

    #[test]
    fn sampling_is_reproducible_with_seed() {
        let d = InterrequestTime::from_mean_cv(1.0, 1.0).unwrap();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }

    #[test]
    fn display_names_family() {
        assert!(
            format!("{}", InterrequestTime::from_mean_cv(1.0, 0.0).unwrap())
                .starts_with("deterministic")
        );
        assert!(
            format!("{}", InterrequestTime::from_mean_cv(1.0, 0.5).unwrap()).starts_with("erlang")
        );
        assert!(
            format!("{}", InterrequestTime::from_mean_cv(1.0, 1.0).unwrap())
                .starts_with("exponential")
        );
    }
}
