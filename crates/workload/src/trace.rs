//! Synthetic traces for trace-driven evaluation.
//!
//! The paper cites a trace-simulation fairness study (\[EgGi87\]) beside
//! its distribution-driven experiments. Real multiprocessor memory
//! traces are bursty — long quiet stretches punctuated by tight request
//! trains — which no member of the paper's CV ∈ \[0, 1\] distribution
//! family can express (burstiness means CV > 1). This module provides a
//! from-scratch substitute: a two-state (on/off) modulated interrequest
//! process whose overall mean is controlled exactly and whose CV rises
//! with the configured burstiness, for use with
//! [`InterrequestTime::from_trace`](crate::InterrequestTime::from_trace).

use busarb_types::Error;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic bursty trace.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BurstyTrace {
    /// Target mean interrequest time of the whole trace.
    pub mean: f64,
    /// Ratio of the quiet-state mean to the burst-state mean (1 = not
    /// bursty at all; 10–50 = pronounced bursts). Must be >= 1.
    pub burstiness: f64,
    /// Expected number of requests per burst (geometric). Must be >= 1.
    pub burst_length: f64,
    /// Number of interrequest samples to synthesize.
    pub length: usize,
}

impl BurstyTrace {
    /// A moderately bursty default: 10× quiet/burst ratio, bursts of 8
    /// requests, 50 000 samples.
    #[must_use]
    pub fn with_mean(mean: f64) -> Self {
        BurstyTrace {
            mean,
            burstiness: 10.0,
            burst_length: 8.0,
            length: 50_000,
        }
    }

    fn validate(&self) -> Result<(), Error> {
        if !(self.mean > 0.0 && self.mean.is_finite()) {
            return Err(Error::InvalidMean { mean: self.mean });
        }
        if self.burstiness < 1.0 || !self.burstiness.is_finite() {
            return Err(Error::InvalidScenario {
                reason: format!("burstiness {} must be >= 1", self.burstiness),
            });
        }
        if self.burst_length < 1.0 || self.length == 0 {
            return Err(Error::InvalidScenario {
                reason: "burst length must be >= 1 and trace length positive".to_string(),
            });
        }
        Ok(())
    }

    /// Synthesizes the trace: alternating bursts (short exponential
    /// interrequest times, geometric length) and quiet gaps
    /// (`burstiness`× longer), then rescales so the realized mean equals
    /// [`BurstyTrace::mean`] exactly.
    ///
    /// # Errors
    ///
    /// Returns a validation error for non-positive means, burstiness
    /// below 1, or an empty trace.
    pub fn synthesize(&self, seed: u64) -> Result<Vec<f64>, Error> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        // Burst-state mean m_b and the quiet gap m_q = burstiness * m_b,
        // chosen so the overall mean is self.mean (one quiet gap per
        // burst of expected length L):
        //   (L * m_b + m_q) / (L + 1) = mean
        let l = self.burst_length;
        let m_b = self.mean * (l + 1.0) / (l + self.burstiness);
        let m_q = self.burstiness * m_b;
        let mut samples = Vec::with_capacity(self.length);
        let mut remaining_in_burst = 0usize;
        while samples.len() < self.length {
            if remaining_in_burst == 0 {
                // Quiet gap, then a new burst with geometric length >= 1.
                samples.push(-m_q * (1.0 - rng.gen::<f64>()).ln());
                let mut len = 1usize;
                while rng.gen::<f64>() < 1.0 - 1.0 / l {
                    len += 1;
                }
                remaining_in_burst = len;
            } else {
                samples.push(-m_b * (1.0 - rng.gen::<f64>()).ln());
                remaining_in_burst -= 1;
            }
        }
        // Exact mean correction (finite-sample drift).
        let realized = samples.iter().sum::<f64>() / samples.len() as f64;
        if realized > 0.0 {
            let scale = self.mean / realized;
            for s in &mut samples {
                *s *= scale;
            }
        }
        Ok(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InterrequestTime;

    #[test]
    fn mean_is_exact_and_cv_exceeds_one() {
        let trace = BurstyTrace::with_mean(4.0).synthesize(7).unwrap();
        let d = InterrequestTime::from_trace(trace).unwrap();
        assert!((d.mean() - 4.0).abs() < 1e-9);
        assert!(d.cv() > 1.2, "bursty cv {} should exceed 1", d.cv());
    }

    #[test]
    fn burstiness_one_is_roughly_exponential() {
        let config = BurstyTrace {
            burstiness: 1.0,
            ..BurstyTrace::with_mean(2.0)
        };
        let d = InterrequestTime::from_trace(config.synthesize(9).unwrap()).unwrap();
        assert!((d.cv() - 1.0).abs() < 0.1, "cv {}", d.cv());
    }

    #[test]
    fn higher_burstiness_raises_cv() {
        let cv_at = |b: f64| {
            let config = BurstyTrace {
                burstiness: b,
                ..BurstyTrace::with_mean(3.0)
            };
            InterrequestTime::from_trace(config.synthesize(11).unwrap())
                .unwrap()
                .cv()
        };
        assert!(cv_at(30.0) > cv_at(5.0));
    }

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let config = BurstyTrace::with_mean(1.0);
        assert_eq!(config.synthesize(1).unwrap(), config.synthesize(1).unwrap());
        assert_ne!(config.synthesize(1).unwrap(), config.synthesize(2).unwrap());
    }

    #[test]
    fn validation() {
        assert!(BurstyTrace::with_mean(0.0).synthesize(1).is_err());
        assert!(BurstyTrace {
            burstiness: 0.5,
            ..BurstyTrace::with_mean(1.0)
        }
        .synthesize(1)
        .is_err());
        assert!(BurstyTrace {
            length: 0,
            ..BurstyTrace::with_mean(1.0)
        }
        .synthesize(1)
        .is_err());
    }

    #[test]
    fn from_trace_validation() {
        assert!(InterrequestTime::from_trace(Vec::new()).is_err());
        assert!(InterrequestTime::from_trace(vec![1.0, -0.5]).is_err());
        assert!(InterrequestTime::from_trace(vec![1.0, f64::NAN]).is_err());
        let d = InterrequestTime::from_trace(vec![2.0, 4.0]).unwrap();
        assert_eq!(d.mean(), 3.0);
        assert!(d.to_string().starts_with("empirical"));
    }
}
