//! Scenario builders for the paper's experiments.

use core::fmt;

use busarb_types::{AgentId, AgentSet, Error};

use crate::load;
use crate::InterrequestTime;

/// The workload assigned to a single agent.
#[derive(Clone, PartialEq, Debug)]
pub struct AgentWorkload {
    /// Interrequest-time distribution for this agent.
    pub interrequest: InterrequestTime,
}

impl AgentWorkload {
    /// Offered load of this agent (transaction time = 1).
    #[must_use]
    pub fn offered_load(&self) -> f64 {
        1.0 / (1.0 + self.interrequest.mean())
    }
}

/// A complete workload scenario: one [`AgentWorkload`] per agent,
/// identities `1..=n`.
///
/// Builders correspond to the paper's experiment setups:
///
/// * [`Scenario::equal_load`] — Tables 4.1, 4.2, 4.3 and Figure 4.1.
/// * [`Scenario::rate_multiplied`] — Table 4.4 (one agent at 2× / 4× the
///   common request rate).
/// * [`Scenario::worst_case_rr`] — Table 4.5 (the deterministic "just
///   miss" workload).
///
/// # Examples
///
/// ```
/// use busarb_workload::Scenario;
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// let s = Scenario::equal_load(10, 2.5, 1.0)?;
/// assert_eq!(s.agents(), 10);
/// assert!((s.total_offered_load() - 2.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Scenario {
    workloads: Vec<AgentWorkload>,
    label: String,
}

impl Scenario {
    /// Builds a scenario from explicit per-agent workloads.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] if `workloads` is empty or has
    /// more than [`AgentSet::MAX_ID`] entries.
    pub fn from_workloads(
        workloads: Vec<AgentWorkload>,
        label: impl Into<String>,
    ) -> Result<Self, Error> {
        let n = workloads.len() as u32;
        if workloads.is_empty() || n > AgentSet::MAX_ID {
            return Err(Error::InvalidAgentCount {
                requested: n,
                max: AgentSet::MAX_ID,
            });
        }
        Ok(Scenario {
            workloads,
            label: label.into(),
        })
    }

    /// `n` statistically identical agents sharing `total_load`, with the
    /// given interrequest-time CV.
    ///
    /// # Errors
    ///
    /// Propagates load and CV validation errors.
    pub fn equal_load(n: u32, total_load: f64, cv: f64) -> Result<Self, Error> {
        let share = load::per_agent(total_load, n)?;
        let mean = load::mean_interrequest(share)?;
        let d = InterrequestTime::from_mean_cv(mean, cv)?;
        let workloads = vec![AgentWorkload { interrequest: d }; n as usize];
        Scenario::from_workloads(
            workloads,
            format!("{n} equal agents, total load {total_load}, cv {cv}"),
        )
    }

    /// Table 4.4's setup: all agents carry the per-agent share of
    /// `base_total_load`, except `boosted`, whose offered load is
    /// multiplied by `factor` (2.0 or 4.0 in the paper).
    ///
    /// # Errors
    ///
    /// Propagates validation errors; fails with [`Error::AgentOutOfRange`]
    /// if `boosted` exceeds `n`, and with [`Error::InvalidLoad`] if the
    /// boosted per-agent load leaves `(0, 1]`.
    pub fn rate_multiplied(
        n: u32,
        base_total_load: f64,
        boosted: AgentId,
        factor: f64,
        cv: f64,
    ) -> Result<Self, Error> {
        if boosted.get() > n {
            return Err(Error::AgentOutOfRange {
                id: boosted.get(),
                agents: n,
            });
        }
        let share = load::per_agent(base_total_load, n)?;
        let base_mean = load::mean_interrequest(share)?;
        let boosted_load = share * factor;
        if !(boosted_load > 0.0 && boosted_load <= 1.0) {
            return Err(Error::InvalidLoad { load: boosted_load });
        }
        let boosted_mean = load::mean_interrequest(boosted_load)?;
        let mut workloads = Vec::with_capacity(n as usize);
        for id in AgentId::all(n) {
            let mean = if id == boosted {
                boosted_mean
            } else {
                base_mean
            };
            workloads.push(AgentWorkload {
                interrequest: InterrequestTime::from_mean_cv(mean, cv)?,
            });
        }
        Scenario::from_workloads(
            workloads,
            format!("{n} agents, agent {boosted} at {factor}x rate, cv {cv}"),
        )
    }

    /// Table 4.5's contrived worst case for the RR protocol: the `slow`
    /// agent has (mean) interrequest time `n - 0.5` and every other agent
    /// has `n - 3.6`, with the given CV applied to all agents. At CV = 0
    /// the slow agent deterministically "just misses" its round-robin turn.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidScenario`] for systems too small for the
    /// formula to produce positive interrequest times (`n <= 3`), and
    /// propagates other validation errors.
    pub fn worst_case_rr(n: u32, slow: AgentId, cv: f64) -> Result<Self, Error> {
        if slow.get() > n {
            return Err(Error::AgentOutOfRange {
                id: slow.get(),
                agents: n,
            });
        }
        let nf = f64::from(n);
        let slow_mean = nf - 0.5;
        let other_mean = nf - 3.6;
        if other_mean <= 0.0 {
            return Err(Error::InvalidScenario {
                reason: format!("worst-case workload needs n >= 4, got {n}"),
            });
        }
        let mut workloads = Vec::with_capacity(n as usize);
        for id in AgentId::all(n) {
            let mean = if id == slow { slow_mean } else { other_mean };
            workloads.push(AgentWorkload {
                interrequest: InterrequestTime::from_mean_cv(mean, cv)?,
            });
        }
        Scenario::from_workloads(
            workloads,
            format!("{n} agents, worst-case RR (slow agent {slow}), cv {cv}"),
        )
    }

    /// The contrived FCFS worst case sketched (and declined) in the
    /// paper's §4.5: per-agent deterministic interrequest times chosen so
    /// that, once synchronized, **every** agent re-requests at the same
    /// instant each round. With FCFS counters, every arbitration then
    /// ties and resolves by static identity, so agent `k` is always
    /// served in position `n − k + 1`. The fixed point: after a batch is
    /// served in identity order, agent `k` completes `n − k + 1` units
    /// after the batch grant, so interrequest `k − 1 + δ` (with a common
    /// offset `δ`) realigns every arrival.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] for invalid sizes, and
    /// propagates distribution validation errors.
    pub fn worst_case_fcfs(n: u32, delta: f64) -> Result<Self, Error> {
        let mut workloads = Vec::with_capacity(n as usize);
        for id in AgentId::all(n) {
            let mean = f64::from(id.get()) - 1.0 + delta;
            workloads.push(AgentWorkload {
                interrequest: InterrequestTime::from_mean_cv(mean, 0.0)?,
            });
        }
        Scenario::from_workloads(
            workloads,
            format!("{n} agents, worst-case FCFS lock-step (delta {delta})"),
        )
    }

    /// `n` agents all drawing interrequest times from the same recorded
    /// trace (resampled independently per agent) — the trace-driven
    /// evaluation mode.
    ///
    /// # Errors
    ///
    /// Propagates trace validation errors.
    pub fn from_trace_equal(n: u32, trace: Vec<f64>) -> Result<Self, Error> {
        let d = InterrequestTime::from_trace(trace)?;
        let label = format!("{n} agents, {d}");
        let workloads = vec![AgentWorkload { interrequest: d }; n as usize];
        Scenario::from_workloads(workloads, label)
    }

    /// Number of agents.
    #[must_use]
    pub fn agents(&self) -> u32 {
        self.workloads.len() as u32
    }

    /// Workload of one agent.
    ///
    /// # Panics
    ///
    /// Panics if `id` exceeds the scenario size.
    #[must_use]
    pub fn workload(&self, id: AgentId) -> &AgentWorkload {
        &self.workloads[id.index()]
    }

    /// All workloads, indexed by `AgentId::index()`.
    #[must_use]
    pub fn workloads(&self) -> &[AgentWorkload] {
        &self.workloads
    }

    /// Sum of per-agent offered loads.
    #[must_use]
    pub fn total_offered_load(&self) -> f64 {
        self.workloads.iter().map(AgentWorkload::offered_load).sum()
    }

    /// Human-readable scenario description.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    #[test]
    fn equal_load_splits_evenly() {
        let s = Scenario::equal_load(30, 1.5, 1.0).unwrap();
        assert_eq!(s.agents(), 30);
        let w1 = s.workload(id(1));
        let w30 = s.workload(id(30));
        assert_eq!(w1, w30);
        assert!((w1.offered_load() - 0.05).abs() < 1e-12);
        assert!((s.total_offered_load() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn rate_multiplied_matches_table_4_4_loads() {
        // Table 4.4(a): 30 agents, base total 0.25, agent 1 doubled:
        // reported total offered load is 0.26.
        let s = Scenario::rate_multiplied(30, 0.25, id(1), 2.0, 1.0).unwrap();
        let l1 = s.workload(id(1)).offered_load();
        let l2 = s.workload(id(2)).offered_load();
        assert!((l1 / l2 - 2.0).abs() < 1e-9);
        assert!((s.total_offered_load() - 0.2583).abs() < 1e-3);

        // Table 4.4(b): quadruple rate; total 0.28 for base 0.25.
        let s4 = Scenario::rate_multiplied(30, 0.25, id(1), 4.0, 1.0).unwrap();
        let ratio = s4.workload(id(1)).offered_load() / s4.workload(id(2)).offered_load();
        assert!((ratio - 4.0).abs() < 1e-9);
        assert!((s4.total_offered_load() - 0.275).abs() < 1e-2);
    }

    #[test]
    fn rate_multiplied_rejects_overload() {
        // Boosted load above 1.0 must be rejected.
        assert!(Scenario::rate_multiplied(10, 6.0, id(1), 2.0, 1.0).is_err());
        assert!(Scenario::rate_multiplied(10, 1.0, id(11), 2.0, 1.0).is_err());
    }

    #[test]
    fn worst_case_rr_means() {
        let s = Scenario::worst_case_rr(10, id(1), 0.0).unwrap();
        assert_eq!(s.workload(id(1)).interrequest.mean(), 9.5);
        assert!((s.workload(id(2)).interrequest.mean() - 6.4).abs() < 1e-12);
        // Load ratio (n - 2.6) / (n + 0.5): 30 agents -> ~0.90 (paper).
        let s30 = Scenario::worst_case_rr(30, id(1), 0.0).unwrap();
        let ratio = s30.workload(id(1)).offered_load() / s30.workload(id(2)).offered_load();
        assert!((ratio - 27.4 / 30.5).abs() < 1e-9);
    }

    #[test]
    fn worst_case_rr_rejects_tiny_systems() {
        assert!(Scenario::worst_case_rr(3, id(1), 0.0).is_err());
        assert!(Scenario::worst_case_rr(4, id(1), 0.0).is_ok());
    }

    #[test]
    fn from_workloads_validation() {
        assert!(Scenario::from_workloads(Vec::new(), "empty").is_err());
        let w = AgentWorkload {
            interrequest: InterrequestTime::from_mean_cv(1.0, 0.0).unwrap(),
        };
        assert!(Scenario::from_workloads(vec![w.clone(); 129], "too many").is_err());
        let s = Scenario::from_workloads(vec![w; 2], "pair").unwrap();
        assert_eq!(s.agents(), 2);
        assert_eq!(s.label(), "pair");
        assert_eq!(format!("{s}"), "pair");
    }

    #[test]
    fn workloads_slice_is_indexed_by_agent_index() {
        let s = Scenario::rate_multiplied(5, 0.5, id(3), 2.0, 0.0).unwrap();
        assert_eq!(
            s.workloads()[id(3).index()].offered_load(),
            s.workload(id(3)).offered_load()
        );
        assert!(s.workload(id(3)).offered_load() > s.workload(id(1)).offered_load());
    }
}
