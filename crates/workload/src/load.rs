//! Offered-load arithmetic.
//!
//! The paper defines the offered load of an agent as its bus transaction
//! time divided by the sum of its bus transaction time and mean
//! interrequest time. With the transaction time fixed at 1 unit:
//!
//! ```text
//! load = 1 / (1 + mean_interrequest)
//! mean_interrequest = 1 / load - 1
//! ```
//!
//! Total offered load is the sum of individual loads; values above ~1.5–2.0
//! saturate the bus and probe asymptotic protocol behavior.

use busarb_types::Error;

/// Converts a per-agent offered load into the mean interrequest time that
/// produces it (transaction time = 1).
///
/// # Errors
///
/// Returns [`Error::InvalidLoad`] unless `0 < load <= 1`. A load of exactly
/// 1 yields a mean interrequest time of 0 (the agent re-requests
/// immediately).
///
/// # Examples
///
/// ```
/// use busarb_workload::load;
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// assert_eq!(load::mean_interrequest(0.5)?, 1.0);
/// assert_eq!(load::mean_interrequest(0.25)?, 3.0);
/// # Ok(())
/// # }
/// ```
pub fn mean_interrequest(load: f64) -> Result<f64, Error> {
    if !(load > 0.0 && load <= 1.0 && load.is_finite()) {
        return Err(Error::InvalidLoad { load });
    }
    Ok(1.0 / load - 1.0)
}

/// Converts a mean interrequest time into the per-agent offered load it
/// produces (transaction time = 1).
///
/// # Errors
///
/// Returns [`Error::InvalidMean`] if `mean` is negative or non-finite.
///
/// # Examples
///
/// ```
/// use busarb_workload::load;
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// assert_eq!(load::offered_load(3.0)?, 0.25);
/// assert_eq!(load::offered_load(0.0)?, 1.0);
/// # Ok(())
/// # }
/// ```
pub fn offered_load(mean: f64) -> Result<f64, Error> {
    if !(mean >= 0.0 && mean.is_finite()) {
        return Err(Error::InvalidMean { mean });
    }
    Ok(1.0 / (1.0 + mean))
}

/// Splits a total offered load evenly over `agents` agents, returning the
/// per-agent load.
///
/// # Errors
///
/// Returns [`Error::InvalidLoad`] if the per-agent share is not in `(0, 1]`
/// (the bus model cannot offer more than 100% load per agent), or
/// [`Error::InvalidAgentCount`] if `agents == 0`.
pub fn per_agent(total: f64, agents: u32) -> Result<f64, Error> {
    if agents == 0 {
        return Err(Error::InvalidAgentCount {
            requested: 0,
            max: u32::MAX,
        });
    }
    let share = total / f64::from(agents);
    if !(share > 0.0 && share <= 1.0 && share.is_finite()) {
        return Err(Error::InvalidLoad { load: total });
    }
    Ok(share)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for &l in &[0.01, 0.1, 0.25, 0.5, 0.752, 1.0] {
            let m = mean_interrequest(l).unwrap();
            let back = offered_load(m).unwrap();
            assert!((back - l).abs() < 1e-12, "load {l}");
        }
    }

    #[test]
    fn paper_sanity_points() {
        // Total load 7.52 over 10 agents -> per-agent 0.752 -> mean ~0.3298.
        let share = per_agent(7.52, 10).unwrap();
        assert!((share - 0.752).abs() < 1e-12);
        let m = mean_interrequest(share).unwrap();
        assert!((m - (1.0 / 0.752 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(mean_interrequest(0.0).is_err());
        assert!(mean_interrequest(1.5).is_err());
        assert!(mean_interrequest(f64::NAN).is_err());
        assert!(offered_load(-1.0).is_err());
        assert!(offered_load(f64::INFINITY).is_err());
        assert!(per_agent(1.0, 0).is_err());
        assert!(per_agent(20.0, 10).is_err()); // per-agent share > 1
        assert!(per_agent(0.0, 10).is_err());
    }

    #[test]
    fn full_load_means_zero_think_time() {
        assert_eq!(mean_interrequest(1.0).unwrap(), 0.0);
        assert_eq!(offered_load(0.0).unwrap(), 1.0);
    }
}
