//! Worker-count determinism under the **fast** draw engine.
//!
//! The fast engine's whole design exists to make this hold cheaply: each
//! agent's Philox stream is keyed by `(run seed, agent identity)` alone,
//! so a cell's draws cannot depend on which sweep worker ran it or on
//! what other cells did. This suite is the fast-engine twin of
//! `determinism.rs` (which pins the same guarantee for the default
//! reference engine) and is a single `#[test]` in its own binary because
//! the engine selector is process-global: concurrent tests flipping it
//! would race.

use busarb_experiments::{grid::Grid, run_cells_with, set_engine, Scale};
use busarb_workload::DrawEngineKind;

fn fingerprint(cell: &busarb_experiments::grid::GridCell) -> String {
    format!("{cell:?}")
}

#[test]
fn fast_engine_sweeps_are_deterministic_and_distinct_from_reference() {
    // Phase 1 — worker-count independence: serial and parallel sweeps
    // must agree bit-for-bit at every pool size.
    set_engine(DrawEngineKind::Fast);
    let points: Vec<(u32, f64)> = vec![(10, 1.5), (30, 0.5), (64, 2.0), (10, 0.25)];
    let compute = |(n, load): (u32, f64)| Grid::compute_cell(n, load, Scale::Smoke);
    let serial: Vec<String> = points.iter().map(|&p| fingerprint(&compute(p))).collect();
    for workers in [2, 4, 16] {
        let parallel: Vec<String> = run_cells_with(workers, points.clone(), compute)
            .iter()
            .map(fingerprint)
            .collect();
        assert_eq!(
            serial, parallel,
            "fast engine: worker pool of {workers} changed a cell result"
        );
    }

    // Phase 2 — replay stability and engine distinctness: the fast
    // engine replays itself exactly, and really is a different sampler
    // than the reference engine (else the switch is not reaching the
    // runner).
    let one_cell = |engine: DrawEngineKind| {
        set_engine(engine);
        fingerprint(&Grid::compute_cell(10, 1.5, Scale::Smoke))
    };
    let fast_a = one_cell(DrawEngineKind::Fast);
    let fast_b = one_cell(DrawEngineKind::Fast);
    assert_eq!(fast_a, fast_b, "fast engine replay diverged");
    let reference = one_cell(DrawEngineKind::Reference);
    assert_ne!(
        fast_a, reference,
        "fast and reference engines produced identical reports — the \
         engine switch is not reaching the runner"
    );
    set_engine(DrawEngineKind::default());
}
