//! Observability invariants, across protocols and scenario shapes:
//!
//! * **Conservation** — the always-on metrics registry agrees with the
//!   run report's own counters, its per-agent completion tallies sum
//!   exactly to the total, and grants can exceed completions only by the
//!   grants still in flight when the run stops (at most the elected
//!   next master, an arbitration in progress, and the transfer on the
//!   bus).
//! * **Round trip** — replaying an exported trace through
//!   `busarb_obs::replay` (the engine behind `repro inspect`)
//!   reproduces the live run's mean wait and utilization within f64
//!   round-off.
//! * **Rollup determinism** — per-cell metric rollups merged after a
//!   parallel sweep are identical at any worker count.

use busarb_core::ProtocolKind;
use busarb_experiments::observe::{cross_check, inspect, run_pinned};
use busarb_experiments::{
    common::run_cell_kind, enable_rollups, merge_rollups, run_cells_with, take_rollups, Scale,
};
use busarb_obs::TraceFormat;
use busarb_workload::Scenario;
use proptest::prelude::*;

/// Grants not yet matched by a completion when the run loop exits: one
/// elected next master, one arbitration in flight, one transfer on the
/// bus.
const MAX_GRANTS_IN_FLIGHT: u64 = 3;

proptest! {
    // Every case is a full smoke-scale simulation; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn per_agent_completions_sum_to_the_total_and_bound_grants(
        agents in 2u32..=16,
        per_agent_load in 0.05f64..0.9,
        kind_index in 0usize..4,
        salt in any::<u16>(),
    ) {
        // A single agent cannot offer a full unit of load; scale the
        // total so the per-agent share stays feasible at every size.
        let load = per_agent_load * f64::from(agents);
        let kind = [
            ProtocolKind::RoundRobin,
            ProtocolKind::Fcfs1,
            ProtocolKind::Fcfs2,
            ProtocolKind::CentralRoundRobin,
        ][kind_index];
        let scenario = Scenario::equal_load(agents, load, 1.0).unwrap();
        let tag = format!("observe-prop-{agents}-{load}-{kind}-{salt}");
        let report = run_cell_kind(scenario, kind, Scale::Smoke, &tag, false);
        let m = &report.metrics;

        // The registry's tallies are one source of truth, the Runner's
        // legacy counters another; they must agree exactly.
        prop_assert_eq!(m.events, report.events);
        prop_assert_eq!(m.grants, report.grants);
        prop_assert_eq!(m.arbitrations, report.arbitrations);

        let per_agent: u64 = m.completions_per_agent.iter().sum();
        prop_assert_eq!(per_agent, m.completions, "per-agent tallies must partition the total");
        prop_assert_eq!(m.completions_per_agent.len(), agents as usize);
        prop_assert_eq!(m.wait.count, m.completions, "every completion records one wait sample");

        prop_assert!(m.grants >= m.completions);
        prop_assert!(
            m.grants - m.completions <= MAX_GRANTS_IN_FLIGHT,
            "{} grants vs {} completions",
            m.grants,
            m.completions
        );
        // Requests that were granted must have been asserted first.
        prop_assert!(m.requests >= m.completions);
        prop_assert!(m.pending_peak >= 1);
        prop_assert!(m.queue_depth.count == m.requests);
    }
}

proptest! {
    // Each case simulates AND exports+replays a full trace; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn exported_jsonl_replays_to_the_live_aggregates(
        scale_index in 0usize..2,
        format_index in 0usize..2,
    ) {
        let scale = [Scale::Smoke, Scale::Quick][scale_index];
        let format = [TraceFormat::Jsonl, TraceFormat::Binary][format_index];
        let path = std::env::temp_dir().join(format!(
            "busarb-roundtrip-{}-{scale}-{format}.{format}",
            std::process::id()
        ));
        let live = run_pinned(scale, Some((&path, format)));
        let replayed = inspect(&path);
        std::fs::remove_file(&path).ok();
        let replayed = replayed.expect("export must be readable");
        let check = cross_check(&live, &replayed);
        prop_assert!(
            check.is_ok(),
            "{scale}/{format} round-trip mismatch: {check:?}"
        );
        let est = replayed.mean_wait.expect("batch budget was met");
        // Identical sample sequence through identical batch-means
        // arithmetic: equality, not mere closeness.
        prop_assert_eq!(est.mean, live.mean_wait.mean);
        prop_assert_eq!(est.halfwidth, live.mean_wait.halfwidth);
        prop_assert_eq!(replayed.utilization, live.utilization);
    }
}

/// The sweep's metric rollups, like its reports, must not depend on the
/// worker count: cells arrive in completion order, but `take_rollups`
/// canonicalizes by tag before the merge folds them.
#[test]
fn merged_rollups_identical_at_any_worker_count() {
    let cells: Vec<(u32, f64)> = vec![(4, 1.0), (10, 2.0), (6, 0.5), (8, 4.0)];
    let sweep = |workers: usize| {
        enable_rollups();
        run_cells_with(workers, cells.clone(), |(agents, load)| {
            let scenario = Scenario::equal_load(agents, load, 1.0).unwrap();
            run_cell_kind(
                scenario,
                ProtocolKind::RoundRobin,
                Scale::Smoke,
                &format!("rollup-det-{agents}-{load}"),
                false,
            )
        });
        // The collector is process-global and other tests in this binary
        // may be offering snapshots concurrently; keep only this sweep's
        // tags (already tag-sorted by `take_rollups`).
        let collected: Vec<_> = take_rollups()
            .expect("rollups were enabled")
            .into_iter()
            .filter(|(tag, _)| tag.starts_with("rollup-det-"))
            .collect();
        assert_eq!(collected.len(), cells.len());
        (merge_rollups(&collected), collected)
    };
    let (serial_merge, serial_cells) = sweep(1);
    for workers in [2, 4] {
        let (parallel_merge, parallel_cells) = sweep(workers);
        assert_eq!(serial_cells, parallel_cells, "workers={workers}");
        assert_eq!(serial_merge, parallel_merge, "workers={workers}");
    }
}
