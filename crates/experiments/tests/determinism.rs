//! Determinism regression: the parallel sweep executor must produce
//! results identical to serial execution at any worker count.
//!
//! Every cell seeds its own RNG from `seed_for(tag)`, so a cell's result
//! depends only on its inputs — never on which worker ran it or in what
//! order. `run_cells_with` additionally writes each result back to the
//! slot of its input, so output order matches input order. Together these
//! make `--jobs N` byte-identical to serial for every N; this test pins
//! that guarantee.

use busarb_experiments::{grid::Grid, run_cells_with, Scale};

/// `RunReport` carries floats at full precision; `Debug` renders every
/// field (recursively) with exact shortest-roundtrip float formatting, so
/// equal Debug strings imply field-for-field identical reports.
fn fingerprint(cell: &busarb_experiments::grid::GridCell) -> String {
    format!("{cell:?}")
}

#[test]
fn grid_cells_identical_at_any_worker_count() {
    let points: Vec<(u32, f64)> = vec![(10, 1.5), (30, 0.5), (64, 2.0), (10, 0.25)];
    let compute = |(n, load): (u32, f64)| Grid::compute_cell(n, load, Scale::Smoke);

    let serial: Vec<String> = points.iter().map(|&p| fingerprint(&compute(p))).collect();

    for workers in [2, 4] {
        let parallel: Vec<String> = run_cells_with(workers, points.clone(), compute)
            .iter()
            .map(fingerprint)
            .collect();
        assert_eq!(
            serial, parallel,
            "worker pool of {workers} changed a cell result"
        );
    }
}

#[test]
fn oversubscribed_pool_is_also_identical() {
    // More workers than cells: excess workers exit immediately and must
    // not perturb anything.
    let points: Vec<(u32, f64)> = vec![(10, 1.0), (30, 2.0)];
    let compute = |(n, load): (u32, f64)| Grid::compute_cell(n, load, Scale::Smoke);
    let serial: Vec<String> = points.iter().map(|&p| fingerprint(&compute(p))).collect();
    let parallel: Vec<String> = run_cells_with(16, points, compute)
        .iter()
        .map(fingerprint)
        .collect();
    assert_eq!(serial, parallel);
}
