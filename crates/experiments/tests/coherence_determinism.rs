//! Worker-count determinism of the closed-loop MESI sweep.
//!
//! The coherence study fans its size × protocol cells across workers
//! (`run_cells`); its pinned `results/coherence.json` fixture is only
//! meaningful if the sweep is bit-for-bit identical at any `--jobs`.
//! The cache feedback path makes this a sharper claim than for the
//! open-loop sweeps: every arrival time depends on the full history of
//! grants, so any cross-worker leak (a shared draw stream, a rollup-
//! order dependence) would show up here first. A single `#[test]` in
//! its own binary because the jobs and engine selectors are
//! process-global: concurrent tests flipping them would race.

use busarb_experiments::{coherence, set_engine, set_jobs, Scale};
use busarb_workload::DrawEngineKind;

#[test]
fn closed_loop_sweeps_are_worker_count_independent() {
    for engine in [DrawEngineKind::Reference, DrawEngineKind::Fast] {
        set_engine(engine);
        set_jobs(1);
        let serial = format!("{:?}", coherence::run(Scale::Smoke));
        for jobs in [2usize, 4] {
            set_jobs(jobs);
            let parallel = format!("{:?}", coherence::run(Scale::Smoke));
            assert_eq!(
                serial, parallel,
                "{engine}: --jobs {jobs} changed the coherence study"
            );
        }
    }
    set_jobs(0);
    set_engine(DrawEngineKind::default());
}
