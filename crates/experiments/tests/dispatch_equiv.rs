//! Dispatch-equivalence regression: the monomorphized event loop
//! ([`busarb_sim::Simulation::run_kind`]) must produce bit-for-bit the
//! same report as the boxed `dyn Arbiter` entry point for every protocol.
//!
//! The two paths share one generic `Runner`, so divergence would mean the
//! `ProtocolKind` dispatcher built a differently-configured arbiter than
//! `ProtocolKind::build` — exactly the bug class this pins. Comparison is
//! by `Debug` string: `RunReport` fans out into floats, vectors,
//! summaries, and the trace, and the derived `Debug` format covers every
//! field of that tree.

use busarb_core::ProtocolKind;
use busarb_experiments::common::{run_cell, run_cell_kind};
use busarb_experiments::{set_engine, Scale};
use busarb_workload::{DrawEngineKind, Scenario};

/// Both draw engines, one test function: the engine selector is
/// process-global, so looping inside a single `#[test]` keeps the two
/// passes from racing each other under the parallel test harness.
#[test]
fn mono_and_dyn_dispatch_produce_identical_reports() {
    let n = 10;
    for engine in [DrawEngineKind::Reference, DrawEngineKind::Fast] {
        set_engine(engine);
        for &kind in ProtocolKind::all() {
            let tag = format!("dispatch-equiv/{kind}");
            let scenario = || Scenario::equal_load(n, 2.0, 1.0).expect("valid scenario");
            let dynamic = run_cell(
                scenario(),
                kind.build(n).expect("valid size"),
                Scale::Smoke,
                &tag,
                true,
            );
            let mono = run_cell_kind(scenario(), kind, Scale::Smoke, &tag, true);
            assert_eq!(
                format!("{dynamic:?}"),
                format!("{mono:?}"),
                "{kind}/{engine}: dyn and monomorphized runs diverged"
            );
            assert!(dynamic.events > 0, "{kind}/{engine}: no events simulated");
        }
    }
    set_engine(DrawEngineKind::default());
}
