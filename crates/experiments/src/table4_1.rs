//! Table 4.1 — allocation of bus bandwidth among agents with equal
//! request rates.
//!
//! For each system size and offered load, the table reports the ratio of
//! the **highest-identity** agent's throughput to the **lowest-identity**
//! agent's, with 90% confidence intervals. The RR protocol is perfectly
//! fair (ratio 1.0, the column illustrates simulation noise), the simple
//! FCFS-1 implementation shows at most a ~6–8% advantage near saturation,
//! and the assured access protocol (shown for 30 agents, as in the paper)
//! grows toward a 2× advantage.

use serde::Serialize;

use crate::common::{EstimateJson, Scale};
use crate::grid::Grid;

/// One load row.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Total offered load.
    pub load: f64,
    /// Measured system throughput / bus utilization (the `Λ` column).
    pub utilization: f64,
    /// Throughput ratio t\[N\]/t\[1\] under RR.
    pub rr: Option<EstimateJson>,
    /// Throughput ratio t\[N\]/t\[1\] under FCFS-1.
    pub fcfs: Option<EstimateJson>,
    /// Throughput ratio t\[N\]/t\[1\] under AAP-1 (30-agent section only).
    pub aap: Option<EstimateJson>,
}

/// One system-size section.
#[derive(Clone, Debug, Serialize)]
pub struct Section {
    /// Number of agents.
    pub agents: u32,
    /// Rows in load order.
    pub rows: Vec<Row>,
}

/// The full table.
#[derive(Clone, Debug, Serialize)]
pub struct Table41 {
    /// Sections for 10, 30 and 64 agents.
    pub sections: Vec<Section>,
}

/// Derives the table from a precomputed grid.
#[must_use]
pub fn from_grid(grid: &Grid) -> Table41 {
    let sections = [10u32, 30, 64]
        .into_iter()
        .map(|n| Section {
            agents: n,
            rows: grid
                .section(n)
                .map(|cell| Row {
                    load: cell.load,
                    utilization: cell.rr.utilization,
                    rr: cell.rr.throughput_ratio(n, 1, 0.90).map(Into::into),
                    fcfs: cell.fcfs.throughput_ratio(n, 1, 0.90).map(Into::into),
                    aap: cell
                        .aap
                        .as_ref()
                        .and_then(|r| r.throughput_ratio(n, 1, 0.90))
                        .map(Into::into),
                })
                .collect(),
        })
        .collect();
    Table41 { sections }
}

/// Runs the underlying sweep and derives the table.
#[must_use]
pub fn run(scale: Scale) -> Table41 {
    from_grid(&Grid::compute(scale))
}

fn fmt_opt(e: &Option<EstimateJson>) -> String {
    e.map_or_else(|| "-".to_string(), |e| e.to_string())
}

/// Renders the paper-style text table.
#[must_use]
pub fn format(table: &Table41) -> String {
    let mut out = String::new();
    out.push_str("Table 4.1: Allocation of Bus Bandwidth Among Agents with Equal Request Rates\n");
    for section in &table.sections {
        out.push_str(&format!("\n({} agents)\n", section.agents));
        out.push_str(&format!(
            "{:>6} {:>6} {:>14} {:>14} {:>14}\n",
            "Load", "Util", "t[N]/t[1] RR", "t[N]/t[1] FCFS", "t[N]/t[1] AAP"
        ));
        for row in &section.rows {
            out.push_str(&format!(
                "{:>6.2} {:>6.2} {:>14} {:>14} {:>14}\n",
                row.load,
                row.utilization,
                fmt_opt(&row.rr),
                fmt_opt(&row.fcfs),
                fmt_opt(&row.aap),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridCell;

    fn tiny_grid() -> Grid {
        Grid {
            cells: vec![
                Grid::compute_cell(10, 2.0, Scale::Smoke),
                Grid::compute_cell(30, 2.0, Scale::Smoke),
            ],
            scale: Scale::Smoke,
        }
    }

    fn high_load_row(cells: &[GridCell], n: u32) -> Row {
        let grid = Grid {
            cells: cells.to_vec(),
            scale: Scale::Smoke,
        };
        from_grid(&grid)
            .sections
            .into_iter()
            .find(|s| s.agents == n)
            .unwrap()
            .rows
            .pop()
            .unwrap()
    }

    #[test]
    fn rr_ratio_is_near_one_fcfs_close_aap_larger() {
        let grid = tiny_grid();
        let row30 = high_load_row(&grid.cells, 30);
        let rr = row30.rr.unwrap().mean;
        let fcfs = row30.fcfs.unwrap().mean;
        let aap = row30.aap.unwrap().mean;
        assert!((rr - 1.0).abs() < 0.25, "rr ratio {rr}");
        assert!(fcfs < aap, "fcfs {fcfs} should be fairer than aap {aap}");
        assert!(aap > 1.1, "aap ratio {aap} should show the unfairness");
    }

    #[test]
    fn format_contains_sections() {
        let grid = tiny_grid();
        let table = from_grid(&grid);
        let text = format(&table);
        assert!(text.contains("(10 agents)"));
        assert!(text.contains("(30 agents)"));
        assert!(text.contains("Table 4.1"));
    }

    #[test]
    fn serializes_to_json() {
        let grid = tiny_grid();
        let table = from_grid(&grid);
        let json = serde_json::to_string(&table).unwrap();
        assert!(json.contains("\"agents\":10"));
    }
}
