//! Methodological validation of the output analysis itself.
//!
//! Two studies that put the paper's Section 4.1 statistics machinery
//! under test:
//!
//! * [`ci_coverage`] — run many independently seeded replications of one
//!   cell and measure how often each run's 90% batch-means confidence
//!   interval covers the pooled grand mean. A well-calibrated method
//!   lands near 90%.
//! * [`batch_diagnostics`] — independence diagnostics (lag-1
//!   autocorrelation, von Neumann ratio) of the batch means across the
//!   load range: positive serial correlation inflates apparent
//!   confidence, and grows with load as the queue decorrelates more
//!   slowly.

use busarb_core::ProtocolKind;
use busarb_sim::{Simulation, SystemConfig};
use busarb_stats::independence::{lag1_autocorrelation, von_neumann_ratio};
use busarb_workload::Scenario;
use serde::Serialize;

use crate::common::{seed_for, Scale};

/// Result of the CI-coverage study.
#[derive(Clone, Debug, Serialize)]
pub struct CiCoverage {
    /// Cell description.
    pub setting: String,
    /// Number of independent replications.
    pub replications: usize,
    /// Pooled grand mean across replications (the "truth" proxy).
    pub grand_mean: f64,
    /// Fraction of replications whose 90% CI covered the grand mean.
    pub coverage: f64,
    /// Mean CI half-width across replications.
    pub mean_halfwidth: f64,
}

/// Runs the coverage study: `replications` independently seeded runs of
/// a 10-agent, load-1.5 round-robin cell.
#[must_use]
pub fn ci_coverage(scale: Scale, replications: usize) -> CiCoverage {
    let n = 10u32;
    let load = 1.5;
    let scenario = Scenario::equal_load(n, load, 1.0).expect("valid scenario");
    let mut estimates = Vec::with_capacity(replications);
    for r in 0..replications {
        let config = SystemConfig::new(scenario.clone())
            .with_batches(scale.batches())
            .with_warmup(scale.warmup())
            .with_seed(seed_for(&format!("ci-coverage-{r}")));
        let report = Simulation::new(config)
            .expect("valid config")
            .run_kind(ProtocolKind::RoundRobin)
            .expect("valid size");
        estimates.push(report.mean_wait);
    }
    let grand_mean = estimates.iter().map(|e| e.mean).sum::<f64>() / replications as f64;
    let covered = estimates.iter().filter(|e| e.covers(grand_mean)).count();
    CiCoverage {
        setting: format!("{n} agents, load {load}, cv 1.0, RR"),
        replications,
        grand_mean,
        coverage: covered as f64 / replications as f64,
        mean_halfwidth: estimates.iter().map(|e| e.halfwidth).sum::<f64>() / replications as f64,
    }
}

/// One batch-diagnostics row.
#[derive(Clone, Debug, Serialize)]
pub struct DiagnosticsRow {
    /// Total offered load.
    pub load: f64,
    /// Lag-1 autocorrelation of the batch means.
    pub lag1: Option<f64>,
    /// Von Neumann ratio of the batch means (≈ 2 when independent).
    pub von_neumann: Option<f64>,
}

/// Result of the batch-diagnostics study.
#[derive(Clone, Debug, Serialize)]
pub struct BatchDiagnostics {
    /// Cell description.
    pub setting: String,
    /// One row per load.
    pub rows: Vec<DiagnosticsRow>,
}

/// Runs the independence diagnostics across the load range.
#[must_use]
pub fn batch_diagnostics(scale: Scale) -> BatchDiagnostics {
    let n = 10u32;
    let rows = [0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 5.0]
        .into_iter()
        .map(|load| {
            let scenario = Scenario::equal_load(n, load, 1.0).expect("valid scenario");
            let config = SystemConfig::new(scenario)
                .with_batches(scale.batches())
                .with_warmup(scale.warmup())
                .with_seed(seed_for(&format!("diag-{load}")));
            let report = Simulation::new(config)
                .expect("valid config")
                .run_kind(ProtocolKind::Fcfs1)
                .expect("valid size");
            DiagnosticsRow {
                load,
                lag1: lag1_autocorrelation(&report.wait_batch_means),
                von_neumann: von_neumann_ratio(&report.wait_batch_means),
            }
        })
        .collect();
    BatchDiagnostics {
        setting: format!("{n} agents, cv 1.0, FCFS-1"),
        rows,
    }
}

/// Renders the coverage result.
#[must_use]
pub fn format_coverage(c: &CiCoverage) -> String {
    format!(
        "CI coverage ({}; {} replications)\n\
         grand mean W = {:.3}; observed 90% CI coverage = {:.1}% (mean halfwidth {:.3})\n",
        c.setting,
        c.replications,
        c.grand_mean,
        c.coverage * 100.0,
        c.mean_halfwidth,
    )
}

/// Renders the diagnostics table.
#[must_use]
pub fn format_diagnostics(d: &BatchDiagnostics) -> String {
    let mut out = format!("Batch-means independence diagnostics ({})\n", d.setting);
    out.push_str(&format!(
        "{:>6} {:>8} {:>12}\n",
        "Load", "lag-1", "von Neumann"
    ));
    for row in &d.rows {
        out.push_str(&format!(
            "{:>6.2} {:>8} {:>12}\n",
            row.load,
            row.lag1.map_or_else(|| "-".into(), |v| format!("{v:.3}")),
            row.von_neumann
                .map_or_else(|| "-".into(), |v| format!("{v:.3}")),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_is_calibrated_at_smoke_scale() {
        let result = ci_coverage(Scale::Smoke, 30);
        // 90% nominal; generous bounds for 30 replications at tiny batch
        // sizes.
        assert!(
            result.coverage >= 0.6,
            "coverage {:.2} suspiciously low",
            result.coverage
        );
        assert!(result.grand_mean > 1.5);
        assert!(result.mean_halfwidth > 0.0);
        assert!(format_coverage(&result).contains("coverage"));
    }

    #[test]
    fn diagnostics_produce_defined_statistics() {
        let result = batch_diagnostics(Scale::Smoke);
        assert_eq!(result.rows.len(), 7);
        for row in &result.rows {
            let vn = row.von_neumann.expect("non-constant batch means");
            assert!(vn > 0.0 && vn < 4.0, "von Neumann {vn} out of range");
        }
        assert!(format_diagnostics(&result).contains("von Neumann"));
    }
}
