//! Table 4.5 — worst-case bus allocation for the RR protocol.
//!
//! The contrived "just miss" workload: the slow agent's deterministic
//! interrequest time is `n − 0.5`, every other agent's is `n − 3.6`. At
//! CV = 0 and high utilization the slow agent reliably just misses its
//! round-robin turn and receives roughly half its proportional share of
//! the bus; any interrequest-time variability (CV ≥ 0.1) lets it "sneak
//! in" often enough to erase the effect.

use busarb_core::ProtocolKind;
use busarb_stats::Estimate;
use busarb_types::AgentId;
use busarb_workload::Scenario;
use serde::Serialize;

use crate::common::{run_cell_kind, run_cells, EstimateJson, Scale};

/// One CV row.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Interrequest-time coefficient of variation.
    pub cv: f64,
    /// Offered-load ratio `load_slow / load_other`.
    pub load_ratio: f64,
    /// Measured bus utilization.
    pub utilization: f64,
    /// Throughput ratio t\[slow\]/t\[other\] under RR.
    pub rr: EstimateJson,
    /// Throughput ratio t\[slow\]/t\[other\] under FCFS-1 (our addition;
    /// the paper chose not to pursue the FCFS worst case).
    pub fcfs: EstimateJson,
}

/// One system-size section.
#[derive(Clone, Debug, Serialize)]
pub struct Section {
    /// Number of agents.
    pub agents: u32,
    /// Rows in CV order.
    pub rows: Vec<Row>,
}

/// The full table.
#[derive(Clone, Debug, Serialize)]
pub struct Table45 {
    /// Sections for 10, 30 and 64 agents.
    pub sections: Vec<Section>,
}

/// The CV sweep for the 10-agent system (the paper's full sweep).
pub const CV_SWEEP_10: [f64; 7] = [0.0, 0.1, 0.2, 0.25, 1.0 / 3.0, 0.5, 1.0];

/// Ratio of the slow agent's per-batch completions to the *average* other
/// agent's, with a batch-means confidence interval (less noisy than a
/// single pairwise ratio).
fn slow_to_other_ratio(report: &busarb_sim::RunReport, n: u32) -> Option<Estimate> {
    let batches = report.tally.batches();
    let mut per_batch = Vec::with_capacity(batches);
    let slow_counts = report.tally.batch_counts(0);
    let mut other_sums = vec![0u64; batches];
    for agent in 1..n as usize {
        for (sum, c) in other_sums.iter_mut().zip(report.tally.batch_counts(agent)) {
            *sum += c;
        }
    }
    for (slow, others) in slow_counts.iter().zip(&other_sums) {
        if *others == 0 {
            return None;
        }
        let other_avg = *others as f64 / (n - 1) as f64;
        per_batch.push(*slow as f64 / other_avg);
    }
    Some(Estimate::from_batch_values(&per_batch, 0.90))
}

fn row_for(n: u32, cv: f64, scale: Scale) -> Row {
    let slow = AgentId::new(1).expect("agent 1 exists");
    let scenario = Scenario::worst_case_rr(n, slow, cv).expect("valid scenario");
    let load_ratio = scenario.workload(slow).offered_load()
        / scenario
            .workload(AgentId::new(2).expect("agent 2 exists"))
            .offered_load();
    let rr = run_cell_kind(
        scenario.clone(),
        ProtocolKind::RoundRobin,
        scale,
        &format!("t45-rr-{n}-{cv}"),
        false,
    );
    let fcfs = run_cell_kind(
        scenario,
        ProtocolKind::Fcfs1,
        scale,
        &format!("t45-fcfs-{n}-{cv}"),
        false,
    );
    Row {
        cv,
        load_ratio,
        utilization: rr.utilization,
        rr: slow_to_other_ratio(&rr, n)
            .expect("saturated batches are non-empty")
            .into(),
        fcfs: slow_to_other_ratio(&fcfs, n)
            .expect("saturated batches are non-empty")
            .into(),
    }
}

#[cfg(test)]
fn section(n: u32, cvs: &[f64], scale: Scale) -> Section {
    let rows = run_cells(cvs.to_vec(), |cv| row_for(n, cv, scale));
    Section { agents: n, rows }
}

/// Runs the experiment: the full CV sweep for 10 agents and the CV = 0
/// point for 30 and 64 agents, as in the paper. All nine (size, CV)
/// cells execute in one parallel fan-out.
#[must_use]
pub fn run(scale: Scale) -> Table45 {
    let points: Vec<(u32, f64)> = CV_SWEEP_10
        .iter()
        .map(|&cv| (10u32, cv))
        .chain([(30, 0.0), (64, 0.0)])
        .collect();
    let rows = run_cells(points.clone(), |(n, cv)| row_for(n, cv, scale));
    let mut sections: Vec<Section> = Vec::new();
    for ((n, _), row) in points.into_iter().zip(rows) {
        match sections.last_mut() {
            Some(s) if s.agents == n => s.rows.push(row),
            _ => sections.push(Section {
                agents: n,
                rows: vec![row],
            }),
        }
    }
    Table45 { sections }
}

/// Renders the paper-style text table.
#[must_use]
pub fn format(table: &Table45) -> String {
    let mut out = String::new();
    out.push_str("Table 4.5: Worst Case Bus Allocation for RR\n");
    for section in &table.sections {
        out.push_str(&format!("\n({} agents)\n", section.agents));
        out.push_str(&format!(
            "{:>6} {:>12} {:>6} {:>18} {:>18}\n",
            "CV", "L[s]/L[o]", "Util", "t[s]/t[o] RR", "t[s]/t[o] FCFS"
        ));
        for row in &section.rows {
            out.push_str(&format!(
                "{:>6.2} {:>12.2} {:>6.2} {:>18} {:>18}\n",
                row.cv, row.load_ratio, row.utilization, row.rr, row.fcfs
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn just_miss_effect_appears_only_at_cv_zero() {
        let s = section(10, &[0.0, 0.5], Scale::Smoke);
        let at_zero = s.rows[0].rr.mean;
        let at_half = s.rows[1].rr.mean;
        // Deterministic: the slow agent gets well below its proportional
        // share; with variability the ratio recovers toward (or past) the
        // load ratio.
        assert!(
            at_zero < at_half - 0.1,
            "cv=0 ratio {at_zero} should be depressed vs cv=0.5 ratio {at_half}"
        );
        assert!(s.rows[0].load_ratio > 0.69 && s.rows[0].load_ratio < 0.71);
    }

    #[test]
    fn format_renders() {
        let table = Table45 {
            sections: vec![section(10, &[1.0], Scale::Smoke)],
        };
        let text = format(&table);
        assert!(text.contains("Table 4.5"));
        assert!(text.contains("t[s]/t[o] RR"));
    }
}
