//! Figure 4.1 — CDF of the bus waiting time for RR and FCFS
//! (30 agents, load 1.5).
//!
//! The figure's qualitative signature: the FCFS CDF rises sharply near the
//! mean waiting time, while the RR CDF is flatter — more mass both well
//! below and well above the mean.

use serde::Serialize;

use crate::common::Scale;
use crate::grid::{Grid, GridCell};

/// One plotted point.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Point {
    /// Waiting time.
    pub x: f64,
    /// Cumulative probability `P(W <= x)`.
    pub p: f64,
}

/// The figure's two series.
#[derive(Clone, Debug, Serialize)]
pub struct Figure41 {
    /// Number of agents (30 in the paper).
    pub agents: u32,
    /// Total offered load (1.5 in the paper).
    pub load: f64,
    /// Mean waiting time (common to both protocols).
    pub mean_wait: f64,
    /// RR series.
    pub rr: Vec<Point>,
    /// FCFS series.
    pub fcfs: Vec<Point>,
}

/// Number of plotted points per series.
pub const POINTS: usize = 64;

/// Derives the figure from a grid that contains the (30, 1.5) cell.
///
/// # Panics
///
/// Panics if the grid lacks that cell or its CDFs.
#[must_use]
pub fn from_grid(grid: &Grid) -> Figure41 {
    let cell = grid
        .cell(30, 1.5)
        .expect("grid contains the 30-agent, load-1.5 cell");
    from_cell(cell)
}

/// Derives the figure from a single matched cell.
///
/// # Panics
///
/// Panics if the cell's runs lack CDFs.
#[must_use]
pub fn from_cell(cell: &GridCell) -> Figure41 {
    let mut rr_cdf = cell.rr.cdf.clone().expect("grid collects CDFs");
    let mut fcfs_cdf = cell.fcfs.cdf.clone().expect("grid collects CDFs");
    let series = |cdf: &mut busarb_stats::Cdf| {
        cdf.series(POINTS)
            .into_iter()
            .map(|(x, p)| Point { x, p })
            .collect::<Vec<_>>()
    };
    Figure41 {
        agents: cell.agents,
        load: cell.load,
        mean_wait: 0.5 * (cell.rr.mean_wait.mean + cell.fcfs.mean_wait.mean),
        rr: series(&mut rr_cdf),
        fcfs: series(&mut fcfs_cdf),
    }
}

/// Runs just the needed cell and derives the figure.
#[must_use]
pub fn run(scale: Scale) -> Figure41 {
    from_cell(&Grid::compute_cell(30, 1.5, scale))
}

/// Renders an ASCII plot plus a numeric table of both series.
#[must_use]
pub fn format(fig: &Figure41) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 4.1: CDF of the Bus Waiting Time for RR and FCFS ({} agents, load = {})\n",
        fig.agents, fig.load
    ));
    out.push_str(&format!("mean waiting time W = {:.2}\n\n", fig.mean_wait));

    const WIDTH: usize = 64;
    const HEIGHT: usize = 16;
    let x_max = fig
        .rr
        .iter()
        .chain(&fig.fcfs)
        .map(|p| p.x)
        .fold(0.0, f64::max)
        .max(1e-9);
    let mut canvas = vec![vec![b' '; WIDTH + 1]; HEIGHT + 1];
    let eval = |series: &[Point], x: f64| -> f64 {
        // Step-function evaluation over the sampled series.
        series
            .iter()
            .take_while(|p| p.x <= x)
            .last()
            .map_or(0.0, |p| p.p)
    };
    #[allow(clippy::needless_range_loop)] // col indexes every row of the canvas
    for col in 0..=WIDTH {
        let x = x_max * col as f64 / WIDTH as f64;
        let rr_row = ((1.0 - eval(&fig.rr, x)) * HEIGHT as f64).round() as usize;
        let fcfs_row = ((1.0 - eval(&fig.fcfs, x)) * HEIGHT as f64).round() as usize;
        canvas[fcfs_row.min(HEIGHT)][col] = b'F';
        if rr_row.min(HEIGHT) != fcfs_row.min(HEIGHT) {
            canvas[rr_row.min(HEIGHT)][col] = b'R';
        } else {
            canvas[rr_row.min(HEIGHT)][col] = b'*';
        }
    }
    for (i, line) in canvas.iter().enumerate() {
        let p = 1.0 - i as f64 / HEIGHT as f64;
        out.push_str(&format!("{p:>4.2} |{}\n", String::from_utf8_lossy(line)));
    }
    out.push_str(&format!("      0{x_max:>WIDTH$.1}\n"));
    out.push_str("      (R = round-robin, F = FCFS, * = both)\n\nx, F_rr(x), F_fcfs(x)\n");
    for (r, f) in fig.rr.iter().zip(&fig.fcfs) {
        out.push_str(&format!("{:8.3} {:8.4} {:8.4}\n", r.x, r.p, f.p));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_cdf_is_steeper_around_the_mean() {
        let fig = run(Scale::Smoke);
        assert_eq!(fig.agents, 30);
        // Spread between the 10th and 90th percentile is wider for RR.
        let spread = |series: &[Point]| {
            let lo = series.iter().find(|p| p.p >= 0.1).map_or(0.0, |p| p.x);
            let hi = series.iter().find(|p| p.p >= 0.9).map_or(0.0, |p| p.x);
            hi - lo
        };
        assert!(
            spread(&fig.rr) > spread(&fig.fcfs),
            "rr spread {} vs fcfs spread {}",
            spread(&fig.rr),
            spread(&fig.fcfs)
        );
    }

    #[test]
    fn plot_renders() {
        let fig = run(Scale::Smoke);
        let text = format(&fig);
        assert!(text.contains("Figure 4.1"));
        assert!(text.contains('R') || text.contains('*'));
        assert!(text.lines().count() > POINTS);
    }
}
