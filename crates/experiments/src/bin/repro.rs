//! `repro` — regenerate every table and figure from Vernon & Manber
//! (ISCA 1988).
//!
//! ```text
//! repro [--scale paper|quick|smoke] [--json DIR] [--jobs N]
//!       [--engine reference|fast] [--metrics FILE] [--trace FILE]
//!       [--trace-format jsonl|binary] <command>
//!
//! commands:
//!   table4.1            bandwidth allocation, equal request rates
//!   table4.2            waiting-time standard deviation
//!   fig4.1              waiting-time CDF (30 agents, load 1.5)
//!   table4.3            execution overlapped with bus waiting
//!   table4.4            unequal request rates
//!   table4.5            RR worst case ("just miss")
//!   ablation.counters   FCFS counter-width sweep
//!   ablation.window     FCFS-2 a-incr window sweep
//!   ablation.rr3        RR-3 wraparound overhead
//!   ablation.start-rule greedy vs transaction-aligned arbitration start
//!   ablation.overhead   arbitration-overhead sensitivity sweep
//!   ablation.width-overhead  width-scaled overhead (§3.3 efficiency)
//!   hybrid              §5 hybrid and adaptive protocols
//!   conservation        conservation-law check
//!   tails               waiting-time percentiles (P50/P90/P99) per protocol
//!   bursty              trace-driven bursty traffic (CV > 1)
//!   worst-case.fcfs     the §4.5 FCFS worst case the paper declined to run
//!   priority            urgent traffic vs FCFS counter-update rules (§3.2)
//!   scaling             W and sd ratio vs system size (4..64 agents)
//!   validate.cis        CI coverage + batch-independence diagnostics
//!   protocols           list every simulated protocol and its line cost
//!   cell                run the pinned traced cell, export its trace,
//!                       replay the export, and cross-check the aggregates
//!   inspect FILE        replay an exported trace and print its aggregates
//!   tolerance [FACTOR]  run Table 4.1 under both draw engines and check
//!                       the fast means land within FACTOR x the summed
//!                       confidence halfwidths (default 1.5)
//!   all                 everything above (shares one simulation grid)
//! ```
//!
//! `--engine reference|fast` selects the workload draw engine for every
//! simulation the command runs (the `tolerance` command runs both and
//! ignores the flag). `--metrics FILE` collects a per-cell metrics
//! snapshot from every simulation the command runs and writes them
//! (plus a deterministic tag-sorted merge) as JSON. `--trace FILE` sets
//! the export path used by the `cell` command.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use busarb_core::{Arbiter, ProtocolKind};
use busarb_experiments::{
    ablations, bursty, coherence, figure4_1, grid::Grid, observe, priority_study, protocol_slug,
    scaling,
    table4_1, table4_2, table4_3, table4_4, table4_5, tails, validation, worst_case_fcfs,
    EstimateJson, Scale,
};
use busarb_obs::TraceFormat;
use busarb_workload::DrawEngineKind;
use serde::Serialize;

struct Options {
    scale: Scale,
    json_dir: Option<PathBuf>,
    jobs: usize,
    engine: DrawEngineKind,
    metrics: Option<PathBuf>,
    trace: Option<PathBuf>,
    trace_format: TraceFormat,
    command: String,
    argument: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut scale = Scale::Paper;
    let mut json_dir = None;
    let mut jobs = 0;
    let mut engine = DrawEngineKind::default();
    let mut metrics = None;
    let mut trace = None;
    let mut trace_format = TraceFormat::Jsonl;
    let mut command = None;
    let mut argument = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().ok_or("--scale needs a value")?;
                scale = Scale::parse(&value)
                    .ok_or_else(|| format!("unknown scale '{value}' (paper|quick|smoke)"))?;
            }
            "--engine" => {
                let value = args.next().ok_or("--engine needs a value")?;
                engine = DrawEngineKind::parse(&value)
                    .ok_or_else(|| format!("unknown engine '{value}' (reference|fast)"))?;
            }
            "--json" => {
                let value = args.next().ok_or("--json needs a directory")?;
                json_dir = Some(PathBuf::from(value));
            }
            "--jobs" => {
                let value = args.next().ok_or("--jobs needs a value")?;
                jobs = value
                    .parse()
                    .map_err(|e| format!("invalid --jobs '{value}': {e}"))?;
            }
            "--metrics" => {
                let value = args.next().ok_or("--metrics needs a file")?;
                metrics = Some(PathBuf::from(value));
            }
            "--trace" => {
                let value = args.next().ok_or("--trace needs a file")?;
                trace = Some(PathBuf::from(value));
            }
            "--trace-format" => {
                let value = args.next().ok_or("--trace-format needs a value")?;
                trace_format = value
                    .parse()
                    .map_err(|e| format!("invalid --trace-format '{value}': {e}"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other if command.is_none() => command = Some(other.to_string()),
            other if argument.is_none() => argument = Some(other.to_string()),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    Ok(Options {
        scale,
        json_dir,
        jobs,
        engine,
        metrics,
        trace,
        trace_format,
        command: command.ok_or("missing command; try --help")?,
        argument,
    })
}

fn usage() -> &'static str {
    "usage: repro [--scale paper|quick|smoke] [--json DIR] [--jobs N]\n\
     \u{20}            [--engine reference|fast] [--metrics FILE] [--trace FILE]\n\
     \u{20}            [--trace-format jsonl|binary] <command>\n\
     commands: table4.1 table4.2 fig4.1 table4.3 table4.4 table4.5\n\
     \u{20}         ablation.counters ablation.window ablation.rr3\n\
     \u{20}         ablation.start-rule ablation.overhead ablation.width-overhead\n\
     \u{20}         hybrid conservation\n\
     \u{20}         tails bursty coherence worst-case.fcfs priority scaling validate.cis\n\
     \u{20}         protocols cell inspect tolerance all"
}

fn emit<T: Serialize>(opts: &Options, name: &str, value: &T, text: String) {
    println!("{text}");
    if let Some(dir) = &opts.json_dir {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{name}.json"));
        match serde_json::to_string_pretty(value) {
            Ok(json) => {
                if let Err(e) = fs::write(&path, json) {
                    eprintln!("warning: cannot write {}: {e}", path.display());
                } else {
                    eprintln!("wrote {}", path.display());
                }
            }
            Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
        }
    }
}

fn run_ablation(opts: &Options, result: &ablations::Ablation) {
    let name = result.name.replace('.', "_");
    emit(opts, &name, result, ablations::format(result));
}

/// One compared Table 4.1 estimate in the `tolerance` report.
#[derive(Serialize)]
struct ToleranceCell {
    agents: u32,
    load: f64,
    column: &'static str,
    reference: EstimateJson,
    fast: EstimateJson,
    distance: f64,
    budget: f64,
    pass: bool,
}

/// The `tolerance` command's JSON output.
#[derive(Serialize)]
struct ToleranceReport {
    factor: f64,
    cells: Vec<ToleranceCell>,
    failures: usize,
}

/// Runs Table 4.1 under both draw engines and checks every estimate the
/// fast engine produces against the reference run: the means must agree
/// to within `factor * (halfwidth_ref + halfwidth_fast)`.
fn tolerance(opts: &Options, factor: f64) -> ExitCode {
    eprintln!("tolerance: Table 4.1 under the reference engine...");
    busarb_experiments::set_engine(DrawEngineKind::Reference);
    let reference = table4_1::run(opts.scale);
    eprintln!("tolerance: Table 4.1 under the fast engine...");
    busarb_experiments::set_engine(DrawEngineKind::Fast);
    let fast = table4_1::run(opts.scale);
    busarb_experiments::set_engine(opts.engine);

    let mut cells = Vec::new();
    for (rs, fs) in reference.sections.iter().zip(&fast.sections) {
        for (rr, fr) in rs.rows.iter().zip(&fs.rows) {
            let columns = [
                ("rr", rr.rr, fr.rr),
                ("fcfs", rr.fcfs, fr.fcfs),
                ("aap", rr.aap, fr.aap),
            ];
            for (column, r, f) in columns {
                let (Some(r), Some(f)) = (r, f) else { continue };
                let distance = (f.mean - r.mean).abs();
                let budget = factor * (r.halfwidth + f.halfwidth);
                cells.push(ToleranceCell {
                    agents: rs.agents,
                    load: rr.load,
                    column,
                    reference: r,
                    fast: f,
                    distance,
                    budget,
                    pass: distance <= budget,
                });
            }
        }
    }
    let failures = cells.iter().filter(|c| !c.pass).count();

    let mut text = format!(
        "Tolerance check: fast vs reference Table 4.1 (factor {factor})\n{:>6} {:>6} {:>6} {:>16} {:>16} {:>10} {:>10}  verdict\n",
        "agents", "load", "column", "reference", "fast", "|diff|", "budget"
    );
    for c in &cells {
        text.push_str(&format!(
            "{:>6} {:>6.2} {:>6} {:>16} {:>16} {:>10.4} {:>10.4}  {}\n",
            c.agents,
            c.load,
            c.column,
            c.reference.to_string(),
            c.fast.to_string(),
            c.distance,
            c.budget,
            if c.pass { "ok" } else { "FAIL" },
        ));
    }
    text.push_str(&format!(
        "{} of {} estimates within tolerance",
        cells.len() - failures,
        cells.len()
    ));
    let report = ToleranceReport {
        factor,
        cells,
        failures,
    };
    emit(opts, "tolerance", &report, text);
    if failures > 0 {
        eprintln!("error: {failures} estimate(s) outside tolerance");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    busarb_experiments::set_jobs(opts.jobs);
    busarb_experiments::set_engine(opts.engine);
    if opts.metrics.is_some() {
        busarb_experiments::enable_rollups();
    }
    eprintln!("scale: {} ({} samples per run)", opts.scale, {
        let b = opts.scale.batches();
        b.total_samples()
    });
    eprintln!("jobs: {}", busarb_experiments::jobs());
    eprintln!("engine: {}", busarb_experiments::engine());

    match opts.command.as_str() {
        "table4.1" => {
            let t = table4_1::run(opts.scale);
            emit(&opts, "table4_1", &t, table4_1::format(&t));
        }
        "table4.2" => {
            let t = table4_2::run(opts.scale);
            emit(&opts, "table4_2", &t, table4_2::format(&t));
        }
        "fig4.1" => {
            let f = figure4_1::run(opts.scale);
            emit(&opts, "figure4_1", &f, figure4_1::format(&f));
        }
        "table4.3" => {
            let t = table4_3::run(opts.scale);
            emit(&opts, "table4_3", &t, table4_3::format(&t));
        }
        "table4.4" => {
            let t = table4_4::run(opts.scale);
            emit(&opts, "table4_4", &t, table4_4::format(&t));
        }
        "table4.5" => {
            let t = table4_5::run(opts.scale);
            emit(&opts, "table4_5", &t, table4_5::format(&t));
        }
        "ablation.counters" => run_ablation(&opts, &ablations::counter_bits(opts.scale)),
        "ablation.window" => run_ablation(&opts, &ablations::tie_window(opts.scale)),
        "ablation.rr3" => run_ablation(&opts, &ablations::rr3_overhead(opts.scale)),
        "ablation.start-rule" => run_ablation(&opts, &ablations::start_rule(opts.scale)),
        "ablation.overhead" => run_ablation(&opts, &ablations::overhead(opts.scale)),
        "ablation.width-overhead" => {
            run_ablation(&opts, &ablations::width_overhead(opts.scale));
        }
        "hybrid" => run_ablation(&opts, &ablations::hybrid(opts.scale)),
        "conservation" => run_ablation(&opts, &ablations::conservation(opts.scale)),
        "tails" => {
            let t = tails::run(opts.scale);
            emit(&opts, "tails", &t, tails::format(&t));
        }
        "bursty" => {
            let b = bursty::run(opts.scale);
            emit(&opts, "bursty", &b, bursty::format(&b));
        }
        "coherence" => {
            let c = coherence::run(opts.scale);
            emit(&opts, "coherence", &c, coherence::format(&c));
        }
        "scaling" => {
            let sc = scaling::run(opts.scale);
            emit(&opts, "scaling", &sc, scaling::format(&sc));
        }
        "priority" => {
            let p = priority_study::run(opts.scale);
            emit(&opts, "priority_study", &p, priority_study::format(&p));
        }
        "worst-case.fcfs" => {
            let w = worst_case_fcfs::run(opts.scale);
            emit(&opts, "worst_case_fcfs", &w, worst_case_fcfs::format(&w));
        }
        "validate.cis" => {
            let c = validation::ci_coverage(opts.scale, 40);
            emit(&opts, "ci_coverage", &c, validation::format_coverage(&c));
            let d = validation::batch_diagnostics(opts.scale);
            emit(
                &opts,
                "batch_diagnostics",
                &d,
                validation::format_diagnostics(&d),
            );
        }
        "protocols" => {
            // One row per simulated protocol: slug, family name, and the
            // arbitration-number width on a 30-agent bus (distributed
            // protocols only). This is the canonical roster `cargo xtask
            // lint` checks the other dispatch sites against.
            println!("{:<14} {:<16} lines(n=30)", "slug", "name");
            for &kind in ProtocolKind::all() {
                let arbiter = kind.build(30).expect("30 agents is a valid size");
                let lines = arbiter
                    .layout()
                    .map_or_else(|| "-".to_string(), |l| l.width().to_string());
                println!("{:<14} {:<16} {lines}", protocol_slug(kind), arbiter.name());
            }
        }
        "cell" => {
            let format = opts.trace_format;
            let path = opts.trace.clone().unwrap_or_else(|| {
                std::env::temp_dir().join(format!("busarb-cell-{}.{format}", std::process::id()))
            });
            eprintln!("tracing the pinned cell to {}", path.display());
            let live = observe::run_pinned(opts.scale, Some((&path, format)));
            println!("live     {live}");
            let replayed = match observe::inspect(&path) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: cannot replay {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            emit(
                &opts,
                "cell_inspect",
                &observe::InspectJson::from(&replayed),
                observe::format_replay(&replayed),
            );
            if let Err(diffs) = observe::cross_check(&live, &replayed) {
                // One line, machine-grepable: count first, then every
                // differing aggregate as `field: live X vs replayed Y`.
                eprintln!(
                    "round-trip MISMATCH: {} aggregate(s) differ: {}",
                    diffs.len(),
                    diffs.join("; ")
                );
                return ExitCode::FAILURE;
            }
            println!("round-trip OK: replayed aggregates match the live run");
        }
        "inspect" => {
            let Some(file) = &opts.argument else {
                eprintln!("error: inspect needs a trace file\n{}", usage());
                return ExitCode::FAILURE;
            };
            let replayed = match observe::inspect(Path::new(file)) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: cannot replay {file}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            emit(
                &opts,
                "inspect",
                &observe::InspectJson::from(&replayed),
                observe::format_replay(&replayed),
            );
        }
        "tolerance" => {
            let factor = match opts.argument.as_deref() {
                None => 1.5,
                Some(v) => match v.parse::<f64>() {
                    Ok(f) if f > 0.0 => f,
                    _ => {
                        eprintln!("error: invalid tolerance factor '{v}'\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                },
            };
            return tolerance(&opts, factor);
        }
        "all" => {
            eprintln!("computing the shared simulation grid...");
            let grid = Grid::compute(opts.scale);
            let t1 = table4_1::from_grid(&grid);
            emit(&opts, "table4_1", &t1, table4_1::format(&t1));
            let t2 = table4_2::from_grid(&grid);
            emit(&opts, "table4_2", &t2, table4_2::format(&t2));
            let f = figure4_1::from_grid(&grid);
            emit(&opts, "figure4_1", &f, figure4_1::format(&f));
            let t3 = table4_3::from_grid(&grid);
            emit(&opts, "table4_3", &t3, table4_3::format(&t3));
            let t4 = table4_4::run(opts.scale);
            emit(&opts, "table4_4", &t4, table4_4::format(&t4));
            let t5 = table4_5::run(opts.scale);
            emit(&opts, "table4_5", &t5, table4_5::format(&t5));
            for ablation in ablations::all(opts.scale) {
                run_ablation(&opts, &ablation);
            }
            let t = tails::run(opts.scale);
            emit(&opts, "tails", &t, tails::format(&t));
            let b = bursty::run(opts.scale);
            emit(&opts, "bursty", &b, bursty::format(&b));
            let w = worst_case_fcfs::run(opts.scale);
            emit(&opts, "worst_case_fcfs", &w, worst_case_fcfs::format(&w));
            let p = priority_study::run(opts.scale);
            emit(&opts, "priority_study", &p, priority_study::format(&p));
            let sc = scaling::run(opts.scale);
            emit(&opts, "scaling", &sc, scaling::format(&sc));
            let c = validation::ci_coverage(opts.scale, 40);
            emit(&opts, "ci_coverage", &c, validation::format_coverage(&c));
            let d = validation::batch_diagnostics(opts.scale);
            emit(
                &opts,
                "batch_diagnostics",
                &d,
                validation::format_diagnostics(&d),
            );
        }
        other => {
            eprintln!("error: unknown command '{other}'\n{}", usage());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &opts.metrics {
        if let Some(sweep) = observe::collect_rollups() {
            eprintln!("collected metrics from {} cells", sweep.cells.len());
            match serde_json::to_string_pretty(&sweep) {
                Ok(json) => {
                    if let Err(e) = fs::write(path, json) {
                        eprintln!("error: cannot write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote {}", path.display());
                }
                Err(e) => {
                    eprintln!("error: cannot serialize metrics: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
