//! `simulate` — run one custom bus-arbitration scenario and print the
//! measurements.
//!
//! ```text
//! simulate [options]
//!   --protocol NAME    fixed-priority | aap-1 | aap-2 | aap-2m | rr |
//!                      fcfs-1 | fcfs-2 | central-rr | central-fcfs |
//!                      hybrid | adaptive | rotating-rr | ticket-fcfs
//!                      (default: rr)
//!   --agents N         system size (default 10)
//!   --load X           total offered load (default 2.0)
//!   --cv C             interrequest-time CV in [0, 1] (default 1.0)
//!   --samples S        samples per batch, 10 batches (default 2000)
//!   --seed S           PRNG seed (default 1)
//!   --engine E         workload draw engine: reference | fast
//!                      (default reference)
//!   --urgent P         urgent-request probability (default 0)
//!   --outstanding R    max outstanding requests per agent (default 1)
//!   --overhead A       arbitration overhead (default 0.5)
//!   --trace K          print the first K trace events
//!   --trace-out FILE   export EVERY trace event to FILE (see --trace-format)
//!   --trace-format F   export framing: jsonl (default) or binary
//!   --metrics FILE     write the run's metrics snapshot as JSON
//!   --compare          run ALL protocols on the scenario instead of one
//!                      (incompatible with --trace-out / --metrics)
//!   --jobs N           worker threads for --compare (0 = all cores)
//!
//! scenario variants (default: equal loads):
//!   --boost FACTOR     agent 1 offers FACTOR x the common load (Table 4.4)
//!   --worst-case-rr    the Table 4.5 "just miss" workload (slow agent 1)
//!   --worst-case-fcfs  the 4.5-footnote re-synchronizing FCFS workload
//!   --bursty B         trace-driven bursty traffic (quiet/burst ratio B)
//!   --workload mesi    closed-loop MESI coherence workload: every request
//!                      is a cache miss and the agent stalls until its
//!                      grant completes (--load/--cv are ignored; requires
//!                      --outstanding 1)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use busarb_core::ProtocolKind;
use busarb_sim::{RunReport, Simulation, SystemConfig, TraceFormat};
use busarb_stats::BatchMeansConfig;
use busarb_types::{AgentId, Time};
use busarb_workload::{BurstyTrace, CoherenceConfig, DrawEngineKind, Scenario};

#[derive(Clone, Copy, PartialEq, Debug)]
enum Variant {
    EqualLoad,
    Boost(f64),
    WorstCaseRr,
    WorstCaseFcfs,
    Bursty(f64),
    Mesi,
}

#[derive(Clone, Debug)]
struct Options {
    protocol: ProtocolKind,
    agents: u32,
    load: f64,
    cv: f64,
    samples: usize,
    seed: u64,
    engine: DrawEngineKind,
    urgent: f64,
    outstanding: u32,
    overhead: f64,
    trace: usize,
    trace_out: Option<PathBuf>,
    trace_format: TraceFormat,
    metrics: Option<PathBuf>,
    compare: bool,
    jobs: usize,
    variant: Variant,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            protocol: ProtocolKind::RoundRobin,
            agents: 10,
            load: 2.0,
            cv: 1.0,
            samples: 2000,
            seed: 1,
            engine: DrawEngineKind::Reference,
            urgent: 0.0,
            outstanding: 1,
            overhead: 0.5,
            trace: 0,
            trace_out: None,
            trace_format: TraceFormat::Jsonl,
            metrics: None,
            compare: false,
            jobs: 0,
            variant: Variant::EqualLoad,
        }
    }
}

fn protocol_by_name(name: &str) -> Option<ProtocolKind> {
    ProtocolKind::all()
        .iter()
        .copied()
        .find(|k| k.to_string() == name)
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--protocol" => {
                let v = value("--protocol")?;
                opts.protocol =
                    protocol_by_name(&v).ok_or_else(|| format!("unknown protocol '{v}'"))?;
            }
            "--agents" => opts.agents = value("--agents")?.parse().map_err(|e| format!("{e}"))?,
            "--load" => opts.load = value("--load")?.parse().map_err(|e| format!("{e}"))?,
            "--cv" => opts.cv = value("--cv")?.parse().map_err(|e| format!("{e}"))?,
            "--samples" => {
                opts.samples = value("--samples")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--engine" => {
                let v = value("--engine")?;
                opts.engine = DrawEngineKind::parse(&v)
                    .ok_or_else(|| format!("unknown engine '{v}' (reference|fast)"))?;
            }
            "--urgent" => opts.urgent = value("--urgent")?.parse().map_err(|e| format!("{e}"))?,
            "--outstanding" => {
                opts.outstanding = value("--outstanding")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--overhead" => {
                opts.overhead = value("--overhead")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--trace" => opts.trace = value("--trace")?.parse().map_err(|e| format!("{e}"))?,
            "--trace-out" => opts.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--trace-format" => opts.trace_format = value("--trace-format")?.parse()?,
            "--metrics" => opts.metrics = Some(PathBuf::from(value("--metrics")?)),
            "--compare" => opts.compare = true,
            "--jobs" => opts.jobs = value("--jobs")?.parse().map_err(|e| format!("{e}"))?,
            "--boost" => {
                opts.variant =
                    Variant::Boost(value("--boost")?.parse().map_err(|e| format!("{e}"))?);
            }
            "--worst-case-rr" => opts.variant = Variant::WorstCaseRr,
            "--worst-case-fcfs" => opts.variant = Variant::WorstCaseFcfs,
            "--bursty" => {
                opts.variant =
                    Variant::Bursty(value("--bursty")?.parse().map_err(|e| format!("{e}"))?);
            }
            "--workload" => {
                opts.variant = match value("--workload")?.as_str() {
                    "mesi" => Variant::Mesi,
                    "open" => Variant::EqualLoad,
                    other => return Err(format!("unknown workload '{other}' (open|mesi)")),
                };
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    Ok(opts)
}

fn usage() -> &'static str {
    "usage: simulate [--protocol NAME] [--agents N] [--load X] [--cv C]\n\
     \u{20}               [--samples S] [--seed S] [--engine reference|fast]\n\
     \u{20}               [--urgent P] [--outstanding R]\n\
     \u{20}               [--overhead A] [--trace K] [--compare] [--jobs N]\n\
     \u{20}               [--trace-out FILE] [--trace-format jsonl|binary] [--metrics FILE]\n\
     \u{20}               [--boost F | --worst-case-rr | --worst-case-fcfs | --bursty B]\n\
     \u{20}               [--workload open|mesi]\n\
     protocols: fixed-priority aap-1 aap-2 aap-2m rr fcfs-1 fcfs-2\n\
     \u{20}          central-rr central-fcfs hybrid adaptive rotating-rr ticket-fcfs"
}

fn build_scenario(opts: &Options) -> Result<Scenario, String> {
    let agent1 = AgentId::new(1).map_err(|e| e.to_string())?;
    match opts.variant {
        Variant::EqualLoad => {
            Scenario::equal_load(opts.agents, opts.load, opts.cv).map_err(|e| e.to_string())
        }
        Variant::Boost(factor) => {
            Scenario::rate_multiplied(opts.agents, opts.load, agent1, factor, opts.cv)
                .map_err(|e| e.to_string())
        }
        Variant::WorstCaseRr => {
            Scenario::worst_case_rr(opts.agents, agent1, opts.cv).map_err(|e| e.to_string())
        }
        Variant::WorstCaseFcfs => {
            Scenario::worst_case_fcfs(opts.agents, 0.5).map_err(|e| e.to_string())
        }
        Variant::Bursty(burstiness) => {
            let per_agent = opts.load / f64::from(opts.agents);
            if !(0.0..1.0).contains(&per_agent) || per_agent <= 0.0 {
                return Err(format!("per-agent load {per_agent} out of range"));
            }
            let mean = 1.0 / per_agent - 1.0;
            let trace = BurstyTrace {
                burstiness,
                ..BurstyTrace::with_mean(mean)
            }
            .synthesize(opts.seed ^ 0xB0B5)
            .map_err(|e| e.to_string())?;
            Scenario::from_trace_equal(opts.agents, trace).map_err(|e| e.to_string())
        }
        Variant::Mesi => Scenario::closed_loop(opts.agents, CoherenceConfig::default_mix())
            .map_err(|e| e.to_string()),
    }
}

fn run_one(opts: &Options, kind: ProtocolKind) -> Result<RunReport, String> {
    let scenario = build_scenario(opts)?;
    let mut config = SystemConfig::new(scenario)
        .with_batches(BatchMeansConfig::quick(opts.samples))
        .with_warmup(opts.samples / 2)
        .with_seed(opts.seed)
        .with_draw_engine(opts.engine)
        .with_urgent_fraction(opts.urgent)
        .with_max_outstanding(opts.outstanding)
        .with_arbitration_overhead(Time::new(opts.overhead).map_err(|e| e.to_string())?);
    if opts.trace > 0 {
        config = config.with_trace(opts.trace);
    }
    if let Some(path) = &opts.trace_out {
        config = config.with_trace_export(path, opts.trace_format);
    }
    let arbiter = kind.build(opts.agents).map_err(|e| e.to_string())?;
    Ok(Simulation::new(config)
        .map_err(|e| e.to_string())?
        .run(arbiter))
}

fn print_report(opts: &Options, report: &RunReport) {
    let fairness = report
        .throughput_ratio(opts.agents, 1, 0.90)
        .map_or_else(|| "n/a".to_string(), |r| r.estimate.to_string());
    println!(
        "{:<14} W = {:<14} sd(W) = {:<7.3} util = {:<6.3} t[N]/t[1] = {:<13} arbs/grant = {:.3}",
        report.protocol,
        report.mean_wait.to_string(),
        report.wait_summary.std_dev(),
        report.utilization,
        fairness,
        report.arbitrations as f64 / report.grants.max(1) as f64,
    );
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if opts.compare && (opts.trace_out.is_some() || opts.metrics.is_some()) {
        eprintln!("error: --trace-out/--metrics export a single run; drop --compare");
        return ExitCode::FAILURE;
    }
    println!(
        "scenario: {} agents, total load {}, cv {}, seed {}, engine {}, variant {:?}",
        opts.agents, opts.load, opts.cv, opts.seed, opts.engine, opts.variant
    );
    busarb_experiments::set_jobs(opts.jobs);
    let kinds: Vec<ProtocolKind> = if opts.compare {
        ProtocolKind::all().to_vec()
    } else {
        vec![opts.protocol]
    };
    // Each protocol is an independent cell (same scenario, same seed), so
    // --compare fans out across workers; reports print in protocol order.
    let reports = busarb_experiments::run_cells(kinds, |kind| run_one(&opts, kind));
    for report in reports {
        match report {
            Ok(report) => {
                print_report(&opts, &report);
                if opts.trace > 0 && !opts.compare {
                    println!("\ntrace (first {} events):", opts.trace);
                    print!("{}", report.trace.render());
                }
                if let Some(path) = &opts.trace_out {
                    eprintln!("exported trace to {}", path.display());
                }
                if let Some(path) = &opts.metrics {
                    match serde_json::to_string_pretty(&report.metrics) {
                        Ok(json) => {
                            if let Err(e) = std::fs::write(path, json) {
                                eprintln!("error: cannot write {}: {e}", path.display());
                                return ExitCode::FAILURE;
                            }
                            eprintln!("wrote {}", path.display());
                        }
                        Err(e) => {
                            eprintln!("error: cannot serialize metrics: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
