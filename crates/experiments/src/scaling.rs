//! System-size scaling of the RR/FCFS comparison.
//!
//! The paper samples three sizes (10/30/64 agents) and observes the σ
//! ratio grow (60% → 195% → 350% at its worst points). This experiment
//! fills in the curve: a sweep over N at fixed offered load 2.0,
//! reporting the mean wait (which the saturated closed form predicts as
//! `N − Z`), the σ_RR/σ_FCFS ratio, and FCFS-1's residual unfairness.
//!
//! Measured shape: the σ ratio grows roughly linearly in N across the
//! sweep (the RR scan's positional variance grows with the ring size
//! while FCFS's queue-depth variance does not), and FCFS-1's throughput
//! spread stays in the same few-percent band at every size.

use busarb_analysis::BusModel;
use busarb_core::ProtocolKind;
use busarb_workload::Scenario;
use serde::Serialize;

use crate::common::{run_cell_kind, run_cells, EstimateJson, Scale};

/// One system-size row.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Number of agents.
    pub agents: u32,
    /// Measured mean waiting time.
    pub mean_wait: f64,
    /// The saturated closed-form prediction `N − Z`.
    pub predicted_wait: f64,
    /// σ_RR / σ_FCFS.
    pub sd_ratio: f64,
    /// FCFS-1 throughput ratio t\[N\]/t\[1\].
    pub fcfs_fairness: Option<EstimateJson>,
}

/// The sweep result.
#[derive(Clone, Debug, Serialize)]
pub struct Scaling {
    /// Fixed total offered load.
    pub load: f64,
    /// Rows in size order.
    pub rows: Vec<Row>,
}

/// Sizes swept.
pub const SIZES: [u32; 7] = [4, 8, 16, 24, 32, 48, 64];

/// Runs the sweep at total load 2.0, CV 1.
#[must_use]
pub fn run(scale: Scale) -> Scaling {
    let load = 2.0;
    let rows = run_cells(SIZES.to_vec(), |n| {
        let scenario = Scenario::equal_load(n, load, 1.0).expect("valid scenario");
        let rr = run_cell_kind(
            scenario.clone(),
            ProtocolKind::RoundRobin,
            scale,
            &format!("scaling-rr-{n}"),
            false,
        );
        let fcfs = run_cell_kind(
            scenario,
            ProtocolKind::Fcfs1,
            scale,
            &format!("scaling-fcfs-{n}"),
            false,
        );
        let model = BusModel::paper(n, load).expect("valid model");
        Row {
            agents: n,
            mean_wait: 0.5 * (rr.mean_wait.mean + fcfs.mean_wait.mean),
            predicted_wait: model.saturated_wait(),
            sd_ratio: rr.wait_summary.std_dev() / fcfs.wait_summary.std_dev(),
            fcfs_fairness: fcfs.throughput_ratio(n, 1, 0.90).map(Into::into),
        }
    });
    Scaling { load, rows }
}

/// Renders the sweep.
#[must_use]
pub fn format(s: &Scaling) -> String {
    let mut out = format!("System-size scaling at total load {} (cv 1.0)\n", s.load);
    out.push_str(&format!(
        "{:>7} {:>9} {:>10} {:>12} {:>16}\n",
        "agents", "W", "N - Z", "sd RR/FCFS", "FCFS t[N]/t[1]"
    ));
    for row in &s.rows {
        out.push_str(&format!(
            "{:>7} {:>9.2} {:>10.2} {:>12.2} {:>16}\n",
            row.agents,
            row.mean_wait,
            row.predicted_wait,
            row.sd_ratio,
            row.fcfs_fairness
                .map_or_else(|| "-".to_string(), |e| e.to_string()),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sd_ratio_grows_with_system_size_and_w_matches_closed_form() {
        let s = run(Scale::Smoke);
        // The closed form holds at every size (load 2 saturates the bus).
        for row in &s.rows {
            // Larger systems need longer warm-up than the smoke scale
            // provides (quick/paper scales match within ~1%); allow a
            // proportional tolerance here.
            let tolerance = (0.08 * row.predicted_wait).max(0.35);
            assert!(
                (row.mean_wait - row.predicted_wait).abs() < tolerance,
                "N = {}: W {} vs {}",
                row.agents,
                row.mean_wait,
                row.predicted_wait
            );
        }
        // The σ ratio at the largest size clearly exceeds the smallest.
        let first = s.rows.first().unwrap().sd_ratio;
        let last = s.rows.last().unwrap().sd_ratio;
        assert!(last > first + 0.5, "ratio {first} -> {last}");
    }

    #[test]
    fn format_renders() {
        let s = Scaling {
            load: 2.0,
            rows: vec![],
        };
        assert!(format(&s).contains("scaling"));
    }
}
