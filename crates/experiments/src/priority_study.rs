//! Priority traffic vs the FCFS waiting-time counters — the question the
//! paper raised and left open.
//!
//! §3.2: with priority requests in the system, an arbitrary number of
//! urgent wins can increment an ordinary request's waiting-time counter.
//! The paper sketches the options — let the counter **overflow and reset
//! to zero** ("may be the right approach if the likelihood of overflow is
//! small"), or **update only on matching-class events** (longer tie
//! intervals instead) — and concludes: *"The relative merit of this
//! approach compared with the strategy that allows counter overflow is
//! highly dependent on the characteristics of the bus workload, and is
//! beyond the scope of this paper."*
//!
//! This experiment answers it for the paper's own workload model: an
//! urgent-fraction sweep against both [`PriorityCounterRule`]s and two
//! counter widths, measuring ordinary-class delay (mean and σ), urgent
//! delay, and ordinary-class throughput fairness.
//!
//! Measured answer (see `results/priority_study.json`): with the paper's
//! counter sizing (`ceil(log2 N)` bits) the two rules are
//! indistinguishable up to at least 50% urgent traffic — overflow simply
//! doesn't happen, so the simpler overflow-and-reset hardware wins. With
//! *narrow* counters both rules degrade badly even without urgent
//! traffic (ordinary queueing alone wraps a 2-bit counter at 16 agents),
//! and heavy urgent traffic widens the gap in the matching-class rule's
//! favor (σ_ord ≈ 13.7 vs 16.7 at 50% urgent). So the deciding factor is
//! counter *sizing*, not the update rule — the precise content of the
//! paper's "if the likelihood of overflow is small" hedge.
//!
//! [`PriorityCounterRule`]: busarb_core::PriorityCounterRule

use busarb_core::{Arbiter, CounterStrategy, DistributedFcfs, FcfsConfig, PriorityCounterRule};
use busarb_sim::{Simulation, SystemConfig};
use busarb_workload::Scenario;
use serde::Serialize;

use crate::common::{run_cells, seed_for, EstimateJson, Scale};

/// One (urgent fraction, rule, width) row.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Fraction of requests that are urgent.
    pub urgent_fraction: f64,
    /// Counter update rule under priority traffic.
    pub rule: String,
    /// Waiting-time counter width in bits.
    pub counter_bits: u32,
    /// Ordinary-class mean waiting time.
    pub ordinary_wait: f64,
    /// Ordinary-class waiting-time standard deviation.
    pub ordinary_sd: f64,
    /// Urgent-class mean waiting time.
    pub urgent_wait: Option<f64>,
    /// Ordinary-class throughput ratio t\[N\]/t\[1\].
    pub fairness: Option<EstimateJson>,
}

/// The study result.
#[derive(Clone, Debug, Serialize)]
pub struct PriorityStudy {
    /// Number of agents.
    pub agents: u32,
    /// Total offered load.
    pub load: f64,
    /// Rows: urgent fraction × rule × width.
    pub rows: Vec<Row>,
}

/// Runs the study: 16 agents, load 2.0, FCFS-1, urgent fraction
/// ∈ {0, 0.25, 0.5}, both priority rules, counters at the paper's width
/// and at a deliberately narrow 2 bits.
#[must_use]
pub fn run(scale: Scale) -> PriorityStudy {
    let n = 16u32;
    let load = 2.0;
    let paper_bits = busarb_types::AgentId::lines_required(n);
    let mut points: Vec<(f64, PriorityCounterRule, &str, u32)> = Vec::new();
    for &urgent in &[0.0, 0.25, 0.5] {
        for &(rule, rule_name) in &[
            (PriorityCounterRule::Always, "overflow"),
            (PriorityCounterRule::MatchingClassOnly, "matching-class"),
        ] {
            for &bits in &[2u32, paper_bits] {
                points.push((urgent, rule, rule_name, bits));
            }
        }
    }
    let rows = run_cells(points, |(urgent, rule, rule_name, bits)| {
        let scenario = Scenario::equal_load(n, load, 1.0).expect("valid scenario");
        let fcfs_config = FcfsConfig {
            counter_bits: bits,
            priority_rule: rule,
            ..FcfsConfig::for_agents(n, CounterStrategy::PerLostArbitration)
        };
        let arbiter: Box<dyn Arbiter> =
            Box::new(DistributedFcfs::with_config(n, fcfs_config).expect("valid config"));
        let config = SystemConfig::new(scenario)
            .with_batches(scale.batches())
            .with_warmup(scale.warmup())
            .with_seed(seed_for(&format!("prio-{urgent}-{rule_name}-{bits}")))
            .with_urgent_fraction(urgent);
        let report = Simulation::new(config).expect("valid config").run(arbiter);
        Row {
            urgent_fraction: urgent,
            rule: rule_name.to_string(),
            counter_bits: bits,
            ordinary_wait: report.ordinary_wait.mean(),
            ordinary_sd: report.ordinary_wait.std_dev(),
            urgent_wait: (report.urgent_wait.count() > 0).then(|| report.urgent_wait.mean()),
            fairness: report.throughput_ratio(n, 1, 0.90).map(Into::into),
        }
    });
    PriorityStudy {
        agents: n,
        load,
        rows,
    }
}

/// Renders the study.
#[must_use]
pub fn format(p: &PriorityStudy) -> String {
    let mut out = format!(
        "Priority traffic vs FCFS counters ({} agents, load {}, FCFS-1)\n",
        p.agents, p.load
    );
    out.push_str(&format!(
        "{:>7} {:<15} {:>5} {:>9} {:>9} {:>9} {:>14}\n",
        "urgent", "rule", "bits", "W ord", "sd ord", "W urg", "t[N]/t[1]"
    ));
    let mut last = f64::NAN;
    for row in &p.rows {
        if row.urgent_fraction != last && !last.is_nan() {
            out.push('\n');
        }
        last = row.urgent_fraction;
        out.push_str(&format!(
            "{:>7.2} {:<15} {:>5} {:>9.2} {:>9.2} {:>9} {:>14}\n",
            row.urgent_fraction,
            row.rule,
            row.counter_bits,
            row.ordinary_wait,
            row.ordinary_sd,
            row.urgent_wait
                .map_or_else(|| "-".to_string(), |v| format!("{v:.2}")),
            row.fairness
                .map_or_else(|| "-".to_string(), |e| e.to_string()),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn urgent_requests_wait_less_and_narrow_overflow_degrades() {
        let study = run(Scale::Smoke);
        let find = |urgent: f64, rule: &str, bits: u32| {
            study
                .rows
                .iter()
                .find(|r| r.urgent_fraction == urgent && r.rule == rule && r.counter_bits == bits)
                .unwrap()
        };
        // Urgent beats ordinary delay whenever present.
        for row in study.rows.iter().filter(|r| r.urgent_fraction > 0.0) {
            let urgent = row.urgent_wait.expect("urgent traffic present");
            assert!(
                urgent < row.ordinary_wait,
                "{}: urgent {} !< ordinary {}",
                row.rule,
                urgent,
                row.ordinary_wait
            );
        }
        // Narrow counters + overflow rule: ordinary sd grows with urgent
        // traffic relative to the matching-class rule.
        let overflow = find(0.5, "overflow", 2);
        let matching = find(0.5, "matching-class", 2);
        assert!(
            overflow.ordinary_sd >= matching.ordinary_sd - 0.5,
            "overflow sd {} vs matching sd {}",
            overflow.ordinary_sd,
            matching.ordinary_sd
        );
    }

    #[test]
    fn format_renders() {
        let study = PriorityStudy {
            agents: 16,
            load: 2.0,
            rows: vec![],
        };
        assert!(format(&study).contains("Priority traffic"));
    }
}
