//! Tail-latency extension: waiting-time percentiles per protocol.
//!
//! The paper compares protocols on the waiting-time *standard deviation*
//! (Table 4.2) and the full CDF (Figure 4.1). The modern framing of the
//! same question is tail latency: P50 / P90 / P99 / max of the waiting
//! time. FCFS's minimum-variance property shows up as dramatically
//! shorter tails than RR's at the same mean — exactly the property that
//! matters when a tightly coupled parallel program waits for its slowest
//! processor (paper §2.3).

use busarb_core::ProtocolKind;
use busarb_workload::Scenario;
use serde::Serialize;

use crate::common::{run_cell_kind, run_cells, Scale};

/// Percentiles for one (protocol, load) cell.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Protocol name.
    pub protocol: String,
    /// Total offered load.
    pub load: f64,
    /// Mean waiting time.
    pub mean: f64,
    /// Median waiting time.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest observed wait.
    pub max: f64,
}

/// The full study.
#[derive(Clone, Debug, Serialize)]
pub struct Tails {
    /// Number of agents.
    pub agents: u32,
    /// Rows grouped by load, then protocol.
    pub rows: Vec<Row>,
}

/// Protocols compared in the study.
pub const PROTOCOLS: [ProtocolKind; 5] = [
    ProtocolKind::RoundRobin,
    ProtocolKind::Fcfs1,
    ProtocolKind::Fcfs2,
    ProtocolKind::AssuredAccessIdleBatch,
    ProtocolKind::Hybrid,
];

/// Loads swept.
pub const LOADS: [f64; 4] = [1.0, 1.5, 2.0, 2.5];

/// Runs the study at 30 agents.
#[must_use]
pub fn run(scale: Scale) -> Tails {
    let n = 30u32;
    let points: Vec<(f64, ProtocolKind)> = LOADS
        .iter()
        .flat_map(|&load| PROTOCOLS.map(|kind| (load, kind)))
        .collect();
    let rows = run_cells(points, |(load, kind)| {
        let scenario = Scenario::equal_load(n, load, 1.0).expect("valid scenario");
        let report = run_cell_kind(scenario, kind, scale, &format!("tails-{kind}-{load}"), true);
        let mut cdf = report.cdf.expect("cdf collection enabled");
        let q = |p: f64, cdf: &mut busarb_stats::Cdf| cdf.quantile(p).unwrap_or(0.0);
        Row {
            protocol: kind.to_string(),
            load,
            mean: report.wait_summary.mean(),
            p50: q(0.50, &mut cdf),
            p90: q(0.90, &mut cdf),
            p99: q(0.99, &mut cdf),
            max: report.wait_summary.max().unwrap_or(0.0),
        }
    });
    Tails { agents: n, rows }
}

/// Renders the study as a text table.
#[must_use]
pub fn format(tails: &Tails) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Tail latency of the bus waiting time ({} agents, cv 1.0)\n",
        tails.agents
    ));
    out.push_str(&format!(
        "{:>6} {:<10} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
        "Load", "protocol", "mean", "P50", "P90", "P99", "max"
    ));
    let mut last_load = f64::NAN;
    for row in &tails.rows {
        if row.load != last_load && !last_load.is_nan() {
            out.push('\n');
        }
        last_load = row.load;
        out.push_str(&format!(
            "{:>6.2} {:<10} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}\n",
            row.load, row.protocol, row.mean, row.p50, row.p90, row.p99, row.max
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_tails_are_shorter_than_rr_at_saturation() {
        let tails = run(Scale::Smoke);
        let find = |proto: &str, load: f64| {
            tails
                .rows
                .iter()
                .find(|r| r.protocol == proto && (r.load - load).abs() < 1e-9)
                .unwrap()
        };
        let rr = find("rr", 2.0);
        let fcfs = find("fcfs-1", 2.0);
        // Same mean (conservation), shorter FCFS tail.
        assert!((rr.mean - fcfs.mean).abs() < 0.8);
        assert!(
            fcfs.p99 < rr.p99,
            "fcfs p99 {} should beat rr p99 {}",
            fcfs.p99,
            rr.p99
        );
        // Percentiles are ordered.
        for row in &tails.rows {
            assert!(row.p50 <= row.p90 && row.p90 <= row.p99 && row.p99 <= row.max);
        }
    }

    #[test]
    fn format_renders() {
        let tails = Tails {
            agents: 30,
            rows: vec![Row {
                protocol: "rr".to_string(),
                load: 2.0,
                mean: 16.0,
                p50: 16.0,
                p90: 24.0,
                p99: 30.0,
                max: 40.0,
            }],
        };
        let text = format(&tails);
        assert!(text.contains("Tail latency"));
        assert!(text.contains("P99"));
    }
}
