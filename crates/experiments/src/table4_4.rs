//! Table 4.4 — allocation of bus bandwidth among agents with unequal
//! request rates.
//!
//! 30 agents; agent 1's offered load is 2× (section a) or 4× (section b)
//! that of every other agent. Both protocols allocate bandwidth in
//! proportion to demand at low load; as the bus saturates, RR evens the
//! allocation out faster, while FCFS keeps it (slightly) more proportional
//! to the actual request rates.

use busarb_core::ProtocolKind;
use busarb_types::AgentId;
use busarb_workload::Scenario;
use serde::Serialize;

use crate::common::{run_cell_kind, run_cells, EstimateJson, Scale};

/// One load row.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Total offered load (base load plus the boosted agent's excess).
    pub load: f64,
    /// Measured bus utilization.
    pub utilization: f64,
    /// Offered-load ratio `load_1 / load_2`.
    pub load_ratio: f64,
    /// Throughput ratio t\[1\]/t\[2\] under RR.
    pub rr: Option<EstimateJson>,
    /// Throughput ratio t\[1\]/t\[2\] under FCFS-1.
    pub fcfs: Option<EstimateJson>,
}

/// One rate-multiplier section.
#[derive(Clone, Debug, Serialize)]
pub struct Section {
    /// Number of agents (30).
    pub agents: u32,
    /// Agent 1's rate multiplier (2 or 4).
    pub factor: f64,
    /// Rows in base-load order.
    pub rows: Vec<Row>,
}

/// The full table.
#[derive(Clone, Debug, Serialize)]
pub struct Table44 {
    /// The 2× and 4× sections.
    pub sections: Vec<Section>,
}

/// Base total loads swept in the paper (before the boost).
pub const BASE_LOADS: [f64; 7] = [0.25, 0.50, 1.00, 1.50, 2.00, 2.50, 5.00];

/// Runs the experiment.
///
/// # Panics
///
/// Panics on internal configuration errors.
#[must_use]
pub fn run(scale: Scale) -> Table44 {
    let n = 30u32;
    const FACTORS: [f64; 2] = [2.0, 4.0];
    let points: Vec<(f64, f64)> = FACTORS
        .iter()
        .flat_map(|&factor| BASE_LOADS.iter().map(move |&base| (factor, base)))
        .collect();
    let mut rows = run_cells(points, |(factor, base)| {
        let boosted = AgentId::new(1).expect("agent 1 exists");
        let scenario =
            Scenario::rate_multiplied(n, base, boosted, factor, 1.0).expect("valid scenario");
        let load = scenario.total_offered_load();
        let load_ratio = scenario.workload(boosted).offered_load()
            / scenario
                .workload(AgentId::new(2).expect("agent 2 exists"))
                .offered_load();
        let rr = run_cell_kind(
            scenario.clone(),
            ProtocolKind::RoundRobin,
            scale,
            &format!("t44-rr-{factor}-{base}"),
            false,
        );
        let fcfs = run_cell_kind(
            scenario,
            ProtocolKind::Fcfs1,
            scale,
            &format!("t44-fcfs-{factor}-{base}"),
            false,
        );
        Row {
            load,
            utilization: rr.utilization,
            load_ratio,
            rr: rr.throughput_ratio(1, 2, 0.90).map(Into::into),
            fcfs: fcfs.throughput_ratio(1, 2, 0.90).map(Into::into),
        }
    })
    .into_iter();
    let sections = FACTORS
        .iter()
        .map(|&factor| Section {
            agents: n,
            factor,
            rows: rows.by_ref().take(BASE_LOADS.len()).collect(),
        })
        .collect();
    Table44 { sections }
}

/// Renders the paper-style text table.
#[must_use]
pub fn format(table: &Table44) -> String {
    let mut out = String::new();
    out.push_str(
        "Table 4.4: Allocation of Bus Bandwidth Among Agents with Unequal Request Rates\n",
    );
    for section in &table.sections {
        out.push_str(&format!(
            "\n({} agents, agent 1 at {}x the common rate)\n",
            section.agents, section.factor
        ));
        out.push_str(&format!(
            "{:>6} {:>6} {:>12} {:>14} {:>14}\n",
            "Load", "Util", "L[1]/L[2]", "t[1]/t[2] RR", "t[1]/t[2] FCFS"
        ));
        for row in &section.rows {
            let fmt =
                |e: &Option<EstimateJson>| e.map_or_else(|| "-".to_string(), |e| e.to_string());
            out.push_str(&format!(
                "{:>6.2} {:>6.2} {:>12.2} {:>14} {:>14}\n",
                row.load,
                row.utilization,
                row.load_ratio,
                fmt(&row.rr),
                fmt(&row.fcfs),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trimmed version of the experiment for tests: one factor, two
    /// loads.
    fn mini(factor: f64, loads: &[f64]) -> Vec<Row> {
        let n = 30u32;
        let boosted = AgentId::new(1).unwrap();
        loads
            .iter()
            .map(|&base| {
                let scenario = Scenario::rate_multiplied(n, base, boosted, factor, 1.0).unwrap();
                let load = scenario.total_offered_load();
                let rr = run_cell_kind(
                    scenario.clone(),
                    ProtocolKind::RoundRobin,
                    Scale::Smoke,
                    &format!("t44-test-rr-{factor}-{base}"),
                    false,
                );
                let fcfs = run_cell_kind(
                    scenario,
                    ProtocolKind::Fcfs1,
                    Scale::Smoke,
                    &format!("t44-test-fcfs-{factor}-{base}"),
                    false,
                );
                Row {
                    load,
                    utilization: rr.utilization,
                    load_ratio: factor,
                    rr: rr.throughput_ratio(1, 2, 0.90).map(Into::into),
                    fcfs: fcfs.throughput_ratio(1, 2, 0.90).map(Into::into),
                }
            })
            .collect()
    }

    #[test]
    fn proportional_at_low_load_evened_out_at_saturation() {
        let rows = mini(2.0, &[0.25, 5.0]);
        let low = rows[0].rr.unwrap().mean;
        assert!((low - 2.0).abs() < 0.5, "low-load RR ratio {low}");
        let high = rows[1].rr.unwrap().mean;
        assert!((high - 1.0).abs() < 0.15, "saturated RR ratio {high}");
    }

    #[test]
    fn fcfs_tracks_demand_at_least_as_closely_as_rr_at_high_load() {
        let rows = mini(4.0, &[2.0]);
        let rr = rows[0].rr.unwrap().mean;
        let fcfs = rows[0].fcfs.unwrap().mean;
        assert!(
            fcfs >= rr - 0.15,
            "fcfs ratio {fcfs} should stay closer to demand than rr {rr}"
        );
    }

    #[test]
    fn format_renders() {
        let table = Table44 {
            sections: vec![Section {
                agents: 30,
                factor: 2.0,
                rows: mini(2.0, &[1.0]),
            }],
        };
        let text = format(&table);
        assert!(text.contains("Table 4.4"));
        assert!(text.contains("2x the common rate"));
    }
}
