//! Table 4.3 — performance comparison for execution overlapped with bus
//! waiting times.
//!
//! The paper's contrived best case for FCFS: each agent can perform up to
//! `overlap` units of useful "extra work" while waiting for the bus, where
//! `overlap` is chosen as the minimum integer at which the RR waiting-time
//! CDF falls below the FCFS CDF. Because FCFS concentrates waiting times
//! near the mean, less of its waiting time spills past the overlap
//! budget, so FCFS agents are (slightly) more productive.
//!
//! Definitions (per the paper):
//!
//! * `W` — total mean waiting time including the overlapped execution
//!   (same measurement as Table 4.2).
//! * residual waits — `E[(W − overlap)⁺]`: the mean waiting time left
//!   after subtracting the overlapped execution.
//! * productivity — mean time spent executing productively between bus
//!   requests divided by mean time between bus requests:
//!   `(interrequest + E[min(W, overlap)]) / (interrequest + E[W])`.

use serde::Serialize;

use busarb_sim::RunReport;

use crate::common::Scale;
use crate::grid::Grid;

/// One load row.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Total offered load.
    pub load: f64,
    /// Mean waiting time including overlapped execution.
    pub mean_wait: f64,
    /// Mean residual wait after overlap, RR.
    pub residual_rr: f64,
    /// Mean residual wait after overlap, FCFS.
    pub residual_fcfs: f64,
    /// Agent productivity under RR.
    pub productivity_rr: f64,
    /// Agent productivity under FCFS.
    pub productivity_fcfs: f64,
    /// The execution-overlap value used (CDF crossing point).
    pub overlap: f64,
}

/// One system-size section.
#[derive(Clone, Debug, Serialize)]
pub struct Section {
    /// Number of agents.
    pub agents: u32,
    /// Rows in load order.
    pub rows: Vec<Row>,
}

/// The full table.
#[derive(Clone, Debug, Serialize)]
pub struct Table43 {
    /// Sections for 10, 30 and 64 agents.
    pub sections: Vec<Section>,
}

/// Picks the overlap value: the minimum integer `x` with
/// `CDF_RR(x) < CDF_FCFS(x)`, i.e. the point past which RR has more
/// residual waiting mass than FCFS.
///
/// Because both CDFs are nearly zero in the far lower tail, sampling
/// noise there can produce spurious "crossings" well below the mean; the
/// paper's overlap values all sit at or above the mean waiting time, so
/// the search is restricted to the region where the FCFS CDF has
/// accumulated at least half its mass. Falls back to `ceil(mean W)` if
/// the CDFs never cross within four mean waits (possible at very low
/// loads where both distributions are nearly a point mass).
fn pick_overlap(rr: &RunReport, fcfs: &RunReport) -> f64 {
    let mut rr_cdf = rr.cdf.clone().expect("grid collects CDFs");
    let mut fcfs_cdf = fcfs.cdf.clone().expect("grid collects CDFs");
    let limit = (rr.wait_summary.mean() * 4.0).ceil().max(8.0) as u32;
    let crossing = (1..=limit).find(|&x| {
        let x = f64::from(x);
        fcfs_cdf.eval(x) > 0.5 && rr_cdf.eval(x) < fcfs_cdf.eval(x)
    });
    match crossing {
        Some(x) => f64::from(x),
        None => rr.wait_summary.mean().ceil(),
    }
}

/// Derives the table from a precomputed grid.
#[must_use]
pub fn from_grid(grid: &Grid) -> Table43 {
    let sections = [10u32, 30, 64]
        .into_iter()
        .map(|n| Section {
            agents: n,
            rows: grid
                .section(n)
                .map(|cell| {
                    let overlap = pick_overlap(&cell.rr, &cell.fcfs);
                    let interrequest = 1.0 / (cell.load / f64::from(n)) - 1.0;
                    let productivity = |r: &RunReport| {
                        let overlapped =
                            r.mean_overlapped_wait(overlap).expect("grid collects CDFs");
                        (interrequest + overlapped) / (interrequest + r.wait_summary.mean())
                    };
                    let residual = |r: &RunReport| {
                        (r.wait_summary.mean()
                            - r.mean_overlapped_wait(overlap).expect("grid collects CDFs"))
                        .max(0.0)
                    };
                    Row {
                        load: cell.load,
                        mean_wait: 0.5
                            * (cell.rr.wait_summary.mean() + cell.fcfs.wait_summary.mean()),
                        residual_rr: residual(&cell.rr),
                        residual_fcfs: residual(&cell.fcfs),
                        productivity_rr: productivity(&cell.rr),
                        productivity_fcfs: productivity(&cell.fcfs),
                        overlap,
                    }
                })
                .collect(),
        })
        .collect();
    Table43 { sections }
}

/// Runs the underlying sweep and derives the table.
#[must_use]
pub fn run(scale: Scale) -> Table43 {
    from_grid(&Grid::compute(scale))
}

/// Renders the paper-style text table.
#[must_use]
pub fn format(table: &Table43) -> String {
    let mut out = String::new();
    out.push_str(
        "Table 4.3: Performance Comparison for Execution Overlapped with Bus Waiting Times\n",
    );
    for section in &table.sections {
        out.push_str(&format!("\n({} agents)\n", section.agents));
        out.push_str(&format!(
            "{:>6} {:>8} {:>9} {:>9} {:>9} {:>9} {:>8}\n",
            "Load", "W", "resid RR", "res FCFS", "prod RR", "prod FCFS", "Overlap"
        ));
        for row in &section.rows {
            out.push_str(&format!(
                "{:>6.2} {:>8.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>8.1}\n",
                row.load,
                row.mean_wait,
                row.residual_rr,
                row.residual_fcfs,
                row.productivity_rr,
                row.productivity_fcfs,
                row.overlap
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_productivity_at_least_matches_rr_at_high_load() {
        let grid = Grid {
            cells: vec![Grid::compute_cell(10, 2.5, Scale::Smoke)],
            scale: Scale::Smoke,
        };
        let table = from_grid(&grid);
        let row = &table.sections[0].rows[0];
        // FCFS wastes less waiting beyond the overlap budget...
        assert!(
            row.residual_fcfs <= row.residual_rr + 1e-9,
            "residuals: fcfs {} rr {}",
            row.residual_fcfs,
            row.residual_rr
        );
        // ...and is therefore at least as productive.
        assert!(row.productivity_fcfs >= row.productivity_rr - 1e-9);
        assert!(row.overlap >= 1.0);
        assert!(row.productivity_rr > 0.0 && row.productivity_rr <= 1.0 + 1e-9);
    }

    #[test]
    fn format_renders() {
        let grid = Grid {
            cells: vec![Grid::compute_cell(10, 1.0, Scale::Smoke)],
            scale: Scale::Smoke,
        };
        let text = format(&from_grid(&grid));
        assert!(text.contains("Table 4.3"));
        assert!(text.contains("Overlap"));
    }
}
