//! Trace-driven evaluation under bursty traffic.
//!
//! The paper's distribution sweep stops at CV = 1 (exponential), but its
//! fairness citations include a *trace-driven* study (\[EgGi87\]). This
//! experiment substitutes a synthetic bursty trace
//! ([`busarb_workload::BurstyTrace`]) with CV well above 1 and re-asks
//! the paper's questions: do the fairness and variance conclusions
//! survive realistic burstiness?
//!
//! Expected shape (confirmed in `results/`): yes — RR stays exactly
//! fair, FCFS-1's residual unfairness stays within a few percent, the
//! FCFS variance advantage *widens* (bursts deepen the queue RR scans
//! through), and the conservation law continues to hold.

use busarb_core::ProtocolKind;
use busarb_workload::{BurstyTrace, Scenario};
use serde::Serialize;

use crate::common::{run_cell_kind, run_cells, seed_for, EstimateJson, Scale};

/// One (burstiness, protocol) row.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Quiet/burst mean ratio of the trace.
    pub burstiness: f64,
    /// Realized CV of the trace.
    pub trace_cv: f64,
    /// Protocol name.
    pub protocol: String,
    /// Mean waiting time with CI.
    pub mean_wait: EstimateJson,
    /// Waiting-time standard deviation.
    pub sd_wait: f64,
    /// Throughput ratio of the highest- to lowest-identity agent.
    pub fairness_ratio: Option<EstimateJson>,
    /// Bus utilization.
    pub utilization: f64,
}

/// The full study.
#[derive(Clone, Debug, Serialize)]
pub struct Bursty {
    /// Number of agents.
    pub agents: u32,
    /// Total offered load.
    pub load: f64,
    /// Rows grouped by burstiness then protocol.
    pub rows: Vec<Row>,
}

/// Protocols compared.
pub const PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::RoundRobin,
    ProtocolKind::Fcfs1,
    ProtocolKind::Fcfs2,
    ProtocolKind::AssuredAccessIdleBatch,
];

/// Runs the study: 16 agents, total load 2.0, burstiness ∈ {1, 10, 40}.
#[must_use]
pub fn run(scale: Scale) -> Bursty {
    let n = 16u32;
    let load = 2.0;
    let per_agent_mean = 1.0 / (load / f64::from(n)) - 1.0;
    // Trace synthesis is seeded from the burstiness tag, so re-deriving
    // the trace inside each (burstiness, protocol) cell is deterministic
    // and keeps the cells fully independent for the parallel fan-out.
    let points: Vec<(f64, ProtocolKind)> = [1.0, 10.0, 40.0]
        .iter()
        .flat_map(|&burstiness| PROTOCOLS.map(|kind| (burstiness, kind)))
        .collect();
    let rows = run_cells(points, |(burstiness, kind)| {
        let config = BurstyTrace {
            burstiness,
            ..BurstyTrace::with_mean(per_agent_mean)
        };
        let trace = config
            .synthesize(seed_for(&format!("bursty-trace-{burstiness}")))
            .expect("valid trace parameters");
        let scenario = Scenario::from_trace_equal(n, trace).expect("valid trace");
        let trace_cv = scenario
            .workload(busarb_types::AgentId::new(1).expect("agent 1 exists"))
            .interrequest
            .cv();
        let report = run_cell_kind(
            scenario,
            kind,
            scale,
            &format!("bursty-{kind}-{burstiness}"),
            false,
        );
        Row {
            burstiness,
            trace_cv,
            protocol: kind.to_string(),
            mean_wait: report.mean_wait.into(),
            sd_wait: report.wait_summary.std_dev(),
            fairness_ratio: report.throughput_ratio(n, 1, 0.90).map(Into::into),
            utilization: report.utilization,
        }
    });
    Bursty {
        agents: n,
        load,
        rows,
    }
}

/// Renders the study as a text table.
#[must_use]
pub fn format(b: &Bursty) -> String {
    let mut out = format!(
        "Trace-driven bursty traffic ({} agents, load {})\n",
        b.agents, b.load
    );
    out.push_str(&format!(
        "{:>6} {:>8} {:<10} {:>14} {:>8} {:>14} {:>6}\n",
        "burst", "cv", "protocol", "W", "sd W", "t[N]/t[1]", "util"
    ));
    let mut last = f64::NAN;
    for row in &b.rows {
        if row.burstiness != last && !last.is_nan() {
            out.push('\n');
        }
        last = row.burstiness;
        out.push_str(&format!(
            "{:>6.0} {:>8.2} {:<10} {:>14} {:>8.2} {:>14} {:>6.2}\n",
            row.burstiness,
            row.trace_cv,
            row.protocol,
            row.mean_wait.to_string(),
            row.sd_wait,
            row.fairness_ratio
                .map_or_else(|| "-".to_string(), |e| e.to_string()),
            row.utilization,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conclusions_survive_burstiness() {
        let b = run(Scale::Smoke);
        let find = |proto: &str, burst: f64| {
            b.rows
                .iter()
                .find(|r| r.protocol == proto && r.burstiness == burst)
                .unwrap()
        };
        let rr = find("rr", 40.0);
        let fcfs = find("fcfs-1", 40.0);
        // Conservation still holds...
        assert!(
            (rr.mean_wait.mean - fcfs.mean_wait.mean).abs() < 0.15 * rr.mean_wait.mean.max(1.0),
            "rr {} vs fcfs {}",
            rr.mean_wait.mean,
            fcfs.mean_wait.mean
        );
        // ...RR stays fair...
        assert!((rr.fairness_ratio.unwrap().mean - 1.0).abs() < 0.3);
        // ...and the variance gap persists under bursts.
        assert!(rr.sd_wait > fcfs.sd_wait);
        // The traces really were bursty.
        assert!(rr.trace_cv > 1.5);
    }

    #[test]
    fn format_renders() {
        let b = Bursty {
            agents: 16,
            load: 2.0,
            rows: vec![],
        };
        assert!(format(&b).contains("bursty"));
    }
}
