//! Ablation studies for the design choices called out in DESIGN.md.
//!
//! * [`counter_bits`] — how many waiting-time counter bits does FCFS
//!   really need? (§3.2: "fewer bits in the dynamic portion should
//!   implement nearly ideal FCFS scheduling when the bus is not
//!   saturated".)
//! * [`tie_window`] — sensitivity of FCFS-2 fairness to the `a-incr`
//!   sensing-window width.
//! * [`rr3_overhead`] — how often the RR-3 implementation pays its
//!   empty-arbitration wraparound (§3.1: "somewhat less efficient").
//! * [`start_rule`] — greedy vs transaction-aligned arbitration start
//!   (the two readings of the paper's §4.1 timing assumption).
//! * [`overhead`] — arbitration-overhead sensitivity (the §4.1 "fully
//!   overlapped" claim).
//! * [`width_overhead`] — per-protocol overhead scaled by
//!   arbitration-number width (the §3.3 efficiency comparison, including
//!   footnote 3's binary-patterned static lines).
//! * [`hybrid`] — the §5 hybrid protocol against RR and FCFS-2.
//! * [`conservation`] — the footnote-4 conservation law across every
//!   protocol in the library.

use busarb_core::{
    Arbiter, CounterStrategy, DistributedFcfs, FcfsConfig, HybridRrFcfs, ProtocolKind,
    RrImplementation,
};
use busarb_sim::RunReport;
use busarb_types::Time;
use busarb_workload::Scenario;
use serde::Serialize;

use crate::common::{run_cell, run_cell_kind, run_cells, EstimateJson, Scale};

/// A (label, metrics) row shared by the ablation tables.
#[derive(Clone, Debug, Serialize)]
pub struct AblationRow {
    /// What was varied.
    pub label: String,
    /// Mean waiting time.
    pub mean_wait: EstimateJson,
    /// Waiting-time standard deviation.
    pub sd_wait: f64,
    /// Throughput ratio of the highest- to lowest-identity agent.
    pub fairness_ratio: Option<EstimateJson>,
    /// Line arbitrations per grant (RR-3 overhead metric).
    pub arbitrations_per_grant: f64,
    /// Bus utilization.
    pub utilization: f64,
}

/// A complete ablation result.
#[derive(Clone, Debug, Serialize)]
pub struct Ablation {
    /// Study name.
    pub name: String,
    /// Study conditions (size, load, CV).
    pub setting: String,
    /// One row per configuration.
    pub rows: Vec<AblationRow>,
}

fn row(label: impl Into<String>, n: u32, report: &RunReport) -> AblationRow {
    AblationRow {
        label: label.into(),
        mean_wait: report.mean_wait.into(),
        sd_wait: report.wait_summary.std_dev(),
        fairness_ratio: report.throughput_ratio(n, 1, 0.90).map(Into::into),
        arbitrations_per_grant: if report.grants > 0 {
            report.arbitrations as f64 / report.grants as f64
        } else {
            0.0
        },
        utilization: report.utilization,
    }
}

/// FCFS-2 counter-width sweep at 30 agents, load 2.0 (saturated) — narrow
/// counters wrap and degrade toward identity-priority behavior.
#[must_use]
pub fn counter_bits(scale: Scale) -> Ablation {
    let n = 30u32;
    let scenario = Scenario::equal_load(n, 2.0, 1.0).expect("valid scenario");
    // `None` is the central-FCFS reference row; `Some(bits)` the sweep.
    let points: Vec<Option<u32>> = (1..=6).map(Some).chain([None]).collect();
    let rows = run_cells(points, |point| match point {
        Some(bits) => {
            let config = FcfsConfig {
                counter_bits: bits,
                ..FcfsConfig::for_agents(n, CounterStrategy::PerArrival)
            };
            let arbiter: Box<dyn Arbiter> =
                Box::new(DistributedFcfs::with_config(n, config).expect("valid config"));
            let report = run_cell(
                scenario.clone(),
                arbiter,
                scale,
                &format!("abl-bits-{bits}"),
                false,
            );
            row(format!("{bits} counter bit(s)"), n, &report)
        }
        None => {
            let central = run_cell_kind(
                scenario.clone(),
                ProtocolKind::CentralFcfs,
                scale,
                "abl-bits-central",
                false,
            );
            row("central FCFS (ideal)", n, &central)
        }
    });
    Ablation {
        name: "ablation.counters".to_string(),
        setting: "30 agents, load 2.0, cv 1.0, FCFS-2".to_string(),
        rows,
    }
}

/// FCFS-2 `a-incr` sensing-window sweep at 30 agents, load 2.0 — wider
/// windows merge more arrivals into identity-ordered ties.
#[must_use]
pub fn tie_window(scale: Scale) -> Ablation {
    let n = 30u32;
    let scenario = Scenario::equal_load(n, 2.0, 1.0).expect("valid scenario");
    let windows = vec![0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0];
    let rows = run_cells(windows, |window| {
        let config = FcfsConfig {
            tie_window: Time::from(window),
            ..FcfsConfig::for_agents(n, CounterStrategy::PerArrival)
        };
        let arbiter: Box<dyn Arbiter> =
            Box::new(DistributedFcfs::with_config(n, config).expect("valid config"));
        let report = run_cell(
            scenario.clone(),
            arbiter,
            scale,
            &format!("abl-window-{window}"),
            false,
        );
        row(format!("window {window}"), n, &report)
    });
    Ablation {
        name: "ablation.window".to_string(),
        setting: "30 agents, load 2.0, cv 1.0, FCFS-2".to_string(),
        rows,
    }
}

/// RR-3 wraparound overhead vs load at 10 agents — the extra empty
/// arbitration per wrap shows up in arbitrations-per-grant (and, at low
/// load, slightly in waiting time).
#[must_use]
pub fn rr3_overhead(scale: Scale) -> Ablation {
    let n = 10u32;
    let points: Vec<(f64, &str, RrImplementation)> = [0.25, 0.5, 1.0, 2.0, 5.0]
        .iter()
        .flat_map(|&load| {
            [
                (load, "rr-1", RrImplementation::PriorityBit),
                (load, "rr-3", RrImplementation::NoExtraLine),
            ]
        })
        .collect();
    let rows = run_cells(points, |(load, label, implementation)| {
        let scenario = Scenario::equal_load(n, load, 1.0).expect("valid scenario");
        let arbiter: Box<dyn Arbiter> = Box::new(
            busarb_core::DistributedRoundRobin::with_implementation(n, implementation)
                .expect("valid size"),
        );
        let report = run_cell(
            scenario,
            arbiter,
            scale,
            &format!("abl-rr3-{label}-{load}"),
            false,
        );
        row(format!("{label} @ load {load}"), n, &report)
    });
    Ablation {
        name: "ablation.rr3".to_string(),
        setting: "10 agents, cv 1.0, RR-1 vs RR-3".to_string(),
        rows,
    }
}

/// Greedy vs transaction-aligned arbitration start at 10 agents — the
/// strict reading pays extra overhead at low load, none at saturation.
#[must_use]
pub fn start_rule(scale: Scale) -> Ablation {
    use busarb_sim::{ArbitrationStartRule, Simulation, SystemConfig};
    let n = 10u32;
    let points: Vec<(f64, &str, ArbitrationStartRule)> = [0.25, 1.0, 2.5]
        .iter()
        .flat_map(|&load| {
            [
                (load, "greedy", ArbitrationStartRule::Greedy),
                (load, "aligned", ArbitrationStartRule::TransactionAligned),
            ]
        })
        .collect();
    let rows = run_cells(points, |(load, label, rule)| {
        let scenario = Scenario::equal_load(n, load, 1.0).expect("valid scenario");
        let config = SystemConfig::new(scenario)
            .with_batches(scale.batches())
            .with_warmup(scale.warmup())
            .with_seed(crate::common::seed_for(&format!(
                "abl-start-{label}-{load}"
            )))
            .with_start_rule(rule);
        let report = Simulation::new(config)
            .expect("valid config")
            .run_kind(ProtocolKind::RoundRobin)
            .expect("valid size");
        row(format!("{label} @ load {load}"), n, &report)
    });
    Ablation {
        name: "ablation.start-rule".to_string(),
        setting: "10 agents, cv 1.0, RR".to_string(),
        rows,
    }
}

/// Arbitration-overhead sensitivity at 10 agents: the paper fixes the
/// overhead at 0.5 and argues it is fully hidden under load; sweeping it
/// from 0 to 1.0 shows where the overlap stops saving it.
#[must_use]
pub fn overhead(scale: Scale) -> Ablation {
    use busarb_sim::{Simulation, SystemConfig};
    let n = 10u32;
    let points: Vec<(f64, f64)> = [0.25, 1.0, 2.5]
        .iter()
        .flat_map(|&load| [0.0, 0.25, 0.5, 0.75, 1.0].map(|a| (load, a)))
        .collect();
    let rows = run_cells(points, |(load, a)| {
        let scenario = Scenario::equal_load(n, load, 1.0).expect("valid scenario");
        let config = SystemConfig::new(scenario)
            .with_batches(scale.batches())
            .with_warmup(scale.warmup())
            .with_seed(crate::common::seed_for(&format!("abl-ovh-{a}-{load}")))
            .with_arbitration_overhead(Time::from(a));
        let report = Simulation::new(config)
            .expect("valid config")
            .run_kind(ProtocolKind::RoundRobin)
            .expect("valid size");
        row(format!("overhead {a} @ load {load}"), n, &report)
    });
    Ablation {
        name: "ablation.overhead".to_string(),
        setting: "10 agents, cv 1.0, RR".to_string(),
        rows,
    }
}

/// The paper's §3.3 efficiency comparison: with arbitration overhead
/// scaled by the arbitration-number width (Taub's k/2 propagation
/// delays), the FCFS protocol's doubled identity makes every arbitration
/// slower than RR's — unless binary-patterned lines carry the static
/// portion (footnote 3), which restores near-parity. Visible at low
/// load; hidden by overlap at saturation.
#[must_use]
pub fn width_overhead(scale: Scale) -> Ablation {
    use busarb_sim::{OverheadModel, Simulation, SystemConfig};
    let n = 30u32;
    // One end-to-end bus propagation = 0.1 transaction times; 0.05 of
    // fixed logic delay.
    let per_line = 0.1;
    let base = 0.05;
    let scaled = OverheadModel::WidthScaled {
        base: Time::from(base),
        per_line: Time::from(per_line),
    };
    let k = f64::from(busarb_types::AgentId::lines_required(n));
    // Footnote 3: binary-patterned static lines -> k/2 propagations for
    // the dynamic (counter) part plus a single end-to-end propagation
    // for the static part.
    let fcfs_bp_overhead = base + per_line * (k / 2.0) + per_line;
    let points: Vec<(f64, String, ProtocolKind, OverheadModel)> = [0.25, 1.0, 2.5]
        .iter()
        .flat_map(|&load| {
            [
                (
                    load,
                    "rr (full lines)".to_string(),
                    ProtocolKind::RoundRobin,
                    scaled,
                ),
                (
                    load,
                    "fcfs-1 (full lines)".to_string(),
                    ProtocolKind::Fcfs1,
                    scaled,
                ),
                (
                    load,
                    "fcfs-1 (binary-patterned static)".to_string(),
                    ProtocolKind::Fcfs1,
                    OverheadModel::Fixed(Time::from(fcfs_bp_overhead)),
                ),
            ]
        })
        .collect();
    let rows = run_cells(points, |(load, label, kind, model)| {
        let scenario = Scenario::equal_load(n, load, 1.0).expect("valid scenario");
        let config = SystemConfig::new(scenario)
            .with_batches(scale.batches())
            .with_warmup(scale.warmup())
            .with_seed(crate::common::seed_for(&format!(
                "abl-width-{label}-{load}"
            )))
            .with_overhead_model(model);
        let report = Simulation::new(config)
            .expect("valid config")
            .run_kind(kind)
            .expect("valid size");
        row(format!("{label} @ load {load}"), n, &report)
    });
    Ablation {
        name: "ablation.width-overhead".to_string(),
        setting: format!(
            "30 agents, cv 1.0; overhead = 0.05 + 0.1 x width/2 (rr width {}, fcfs width {})",
            7, 11
        ),
        rows,
    }
}

/// The §5 hybrid protocol vs RR and FCFS-2, at CV = 0 (heavy same-instant
/// ties, where the hybrid's RR tie-break matters) and CV = 1.
#[must_use]
pub fn hybrid(scale: Scale) -> Ablation {
    let n = 16u32;
    // Arbiters are built inside each cell: `Box<dyn Arbiter>` need not
    // cross threads.
    let points: Vec<(f64, &str)> = [0.0, 1.0]
        .iter()
        .flat_map(|&cv| ["rr", "fcfs-2", "hybrid", "adaptive"].map(|label| (cv, label)))
        .collect();
    let rows = run_cells(points, |(cv, label)| {
        let scenario = Scenario::equal_load(n, 2.0, cv).expect("valid scenario");
        let arbiter: Box<dyn Arbiter> = match label {
            "rr" => ProtocolKind::RoundRobin.build(n).expect("valid size"),
            "fcfs-2" => ProtocolKind::Fcfs2.build(n).expect("valid size"),
            "hybrid" => Box::new(HybridRrFcfs::new(n).expect("valid size")),
            _ => Box::new(busarb_core::AdaptiveArbiter::new(n).expect("valid size")),
        };
        let report = run_cell(
            scenario,
            arbiter,
            scale,
            &format!("abl-hybrid-{label}-{cv}"),
            false,
        );
        row(format!("{label} @ cv {cv}"), n, &report)
    });
    Ablation {
        name: "hybrid".to_string(),
        setting: "16 agents, load 2.0".to_string(),
        rows,
    }
}

/// Conservation-law check: the mean waiting time is protocol-independent
/// for every work-conserving discipline in the library.
#[must_use]
pub fn conservation(scale: Scale) -> Ablation {
    let n = 10u32;
    let scenario = Scenario::equal_load(n, 1.5, 1.0).expect("valid scenario");
    let rows = run_cells(ProtocolKind::work_conserving().to_vec(), |kind| {
        let report = run_cell_kind(
            scenario.clone(),
            kind,
            scale,
            &format!("abl-cons-{kind}"),
            false,
        );
        row(kind.to_string(), n, &report)
    });
    Ablation {
        name: "conservation".to_string(),
        setting: "10 agents, load 1.5, cv 1.0".to_string(),
        rows,
    }
}

/// All ablations, in report order.
#[must_use]
pub fn all(scale: Scale) -> Vec<Ablation> {
    vec![
        counter_bits(scale),
        tie_window(scale),
        rr3_overhead(scale),
        start_rule(scale),
        overhead(scale),
        width_overhead(scale),
        hybrid(scale),
        conservation(scale),
    ]
}

/// Renders one ablation as a text table.
#[must_use]
pub fn format(ablation: &Ablation) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Ablation: {} ({})\n",
        ablation.name, ablation.setting
    ));
    out.push_str(&format!(
        "{:<26} {:>14} {:>8} {:>14} {:>10} {:>6}\n",
        "configuration", "W", "sd W", "t[N]/t[1]", "arbs/grant", "util"
    ));
    for row in &ablation.rows {
        out.push_str(&format!(
            "{:<26} {:>14} {:>8.2} {:>14} {:>10.3} {:>6.2}\n",
            row.label,
            row.mean_wait.to_string(),
            row.sd_wait,
            row.fairness_ratio
                .map_or_else(|| "-".to_string(), |e| e.to_string()),
            row.arbitrations_per_grant,
            row.utilization,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rr3_pays_extra_arbitrations() {
        let result = rr3_overhead(Scale::Smoke);
        // Compare rr-1 vs rr-3 at the same load: rr-3 strictly more
        // arbitrations per grant.
        for pair in result.rows.chunks(2) {
            assert!(
                pair[1].arbitrations_per_grant > pair[0].arbitrations_per_grant,
                "{} vs {}",
                pair[0].label,
                pair[1].label
            );
            assert!((pair[0].arbitrations_per_grant - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn narrow_counters_hurt_fairness() {
        let result = counter_bits(Scale::Smoke);
        // A missing ratio means some batch starved the low-identity agent
        // entirely — the extreme of unfairness.
        let one_bit = result.rows[0]
            .fairness_ratio
            .map_or(f64::INFINITY, |e| e.mean);
        let five_bit = result.rows[4].fairness_ratio.unwrap().mean;
        // 1-bit counters wrap constantly and favor high identities more
        // than (or equal to) wide counters.
        assert!(
            one_bit >= five_bit - 0.1,
            "1-bit ratio {one_bit} vs 5-bit ratio {five_bit}"
        );
        assert!(result.rows.last().unwrap().label.contains("central"));
    }

    #[test]
    fn conservation_holds_across_protocols() {
        let result = conservation(Scale::Smoke);
        let waits: Vec<f64> = result.rows.iter().map(|r| r.mean_wait.mean).collect();
        let min = waits.iter().copied().fold(f64::INFINITY, f64::min);
        let max = waits.iter().copied().fold(0.0, f64::max);
        assert!(
            max - min < 0.6,
            "mean waits should agree, got spread {min}..{max}: {waits:?}"
        );
    }

    #[test]
    fn format_renders() {
        let result = start_rule(Scale::Smoke);
        let text = format(&result);
        assert!(text.contains("ablation.start-rule"));
        assert!(text.contains("greedy"));
    }

    #[test]
    fn width_scaled_overhead_penalizes_fcfs_at_low_load_only() {
        let result = width_overhead(Scale::Smoke);
        // Rows come in triples (rr, fcfs full, fcfs binary-patterned) per
        // load; at the lowest load the wide FCFS identity costs visibly
        // more waiting, and the binary-patterned variant restores parity.
        let low = &result.rows[0..3];
        assert!(
            low[1].mean_wait.mean > low[0].mean_wait.mean + 0.1,
            "fcfs {} should exceed rr {} at low load",
            low[1].mean_wait.mean,
            low[0].mean_wait.mean
        );
        assert!(
            (low[2].mean_wait.mean - low[0].mean_wait.mean).abs() < 0.1,
            "binary-patterned fcfs {} should match rr {}",
            low[2].mean_wait.mean,
            low[0].mean_wait.mean
        );
        // At saturation the overhead is hidden: all three agree.
        let high = &result.rows[result.rows.len() - 3..];
        let max = high.iter().map(|r| r.mean_wait.mean).fold(0.0, f64::max);
        let min = high
            .iter()
            .map(|r| r.mean_wait.mean)
            .fold(f64::MAX, f64::min);
        assert!(max - min < 0.8, "saturated spread {min}..{max}");
    }
}
