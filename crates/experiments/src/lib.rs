//! Reproduction harness for the evaluation section of Vernon & Manber
//! (ISCA 1988).
//!
//! One module per table/figure, plus ablation studies. Each experiment
//! exposes:
//!
//! * a `run(scale)` entry point returning a serializable result struct,
//! * a `format(&result)` function rendering the paper-style text table.
//!
//! The [`grid`] module runs the shared (system size × load × protocol)
//! sweep that Tables 4.1, 4.2, 4.3 and Figure 4.1 are all views of, so
//! the `repro all` command simulates each cell exactly once.
//!
//! [`Scale::Paper`] uses the paper's full output-analysis configuration
//! (10 batches × 8000 samples, 90% confidence intervals);
//! [`Scale::Quick`] shrinks the batches for faster runs and
//! [`Scale::Smoke`] further still for tests and benches.
//!
//! # Examples
//!
//! ```
//! use busarb_experiments::{table4_5, Scale};
//!
//! let result = table4_5::run(Scale::Smoke);
//! assert!(!result.sections.is_empty());
//! println!("{}", table4_5::format(&result));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod bursty;
pub mod coherence;
pub mod common;
pub mod figure4_1;
pub mod grid;
pub mod observe;
pub mod priority_study;
pub mod scaling;
pub mod table4_1;
pub mod table4_2;
pub mod table4_3;
pub mod table4_4;
pub mod table4_5;
pub mod tails;
pub mod validation;
pub mod worst_case_fcfs;

pub use common::{
    enable_rollups, engine, jobs, merge_rollups, offer_rollup, protocol_slug, run_cells,
    run_cells_with, set_engine, set_jobs, take_rollups, EstimateJson, Scale,
};
