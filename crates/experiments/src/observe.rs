//! Observability harness: the pinned traced cell, trace-export
//! inspection, and sweep-wide metric rollups.
//!
//! The *pinned cell* (round-robin, 10 agents, total load 2.0, CV 1.0)
//! is the scenario the round-trip acceptance check runs: simulate it
//! with a write-through trace export, replay the export through
//! [`busarb_obs::replay`], and require the replayed aggregates to match
//! the live [`RunReport`] within floating-point round-off. The `repro
//! cell` command and the CI observability step both drive this module.

use std::path::Path;

use busarb_core::ProtocolKind;
use busarb_obs::{MetricsSnapshot, Replay, ReplayBuilder, TraceFormat};
use busarb_sim::{RunReport, Simulation, SystemConfig};
use busarb_workload::Scenario;
use serde::Serialize;

use crate::common::{engine, merge_rollups, offer_rollup, seed_for, take_rollups, Scale};

/// System size of the pinned observability cell.
pub const PINNED_AGENTS: u32 = 10;
/// Total offered load of the pinned cell.
pub const PINNED_LOAD: f64 = 2.0;
/// Interrequest-time CV of the pinned cell.
pub const PINNED_CV: f64 = 1.0;
/// Protocol of the pinned cell.
pub const PINNED_KIND: ProtocolKind = ProtocolKind::RoundRobin;
/// Seed tag of the pinned cell (also its rollup tag).
pub const PINNED_TAG: &str = "observe-pinned";

/// Runs the pinned cell, optionally exporting every trace event to
/// `export`, and offers its metrics to the rollup collector.
///
/// # Panics
///
/// Panics if the export file cannot be created or written (the pinned
/// configuration itself is statically valid).
#[must_use]
pub fn run_pinned(scale: Scale, export: Option<(&Path, TraceFormat)>) -> RunReport {
    let scenario = Scenario::equal_load(PINNED_AGENTS, PINNED_LOAD, PINNED_CV)
        .expect("pinned scenario is valid");
    let mut config = SystemConfig::new(scenario)
        .with_batches(scale.batches())
        .with_warmup(scale.warmup())
        .with_seed(seed_for(PINNED_TAG))
        .with_draw_engine(engine());
    if let Some((path, format)) = export {
        config = config.with_trace_export(path, format);
    }
    let report = Simulation::new(config)
        .expect("pinned config is valid")
        .run_kind(PINNED_KIND)
        .expect("pinned system size is valid");
    offer_rollup(PINNED_TAG, &report.metrics);
    report
}

/// Streams an exported trace (either framing, auto-detected) through
/// the incremental replay, producing run-level aggregates in constant
/// memory — the trace is never materialized as an event list, so
/// arbitrarily large exports inspect fine.
///
/// # Errors
///
/// Returns an error if the file cannot be read or is not a valid
/// `busarb-trace/1` export. Parse failures are structured
/// ([`busarb_obs::StreamError`] wrapped in [`std::io::Error`]): their
/// message names the byte offset — and, for JSONL, the line — where
/// decoding failed.
pub fn inspect(path: &Path) -> std::io::Result<Replay> {
    let mut reader = busarb_obs::open_trace(path)?;
    let mut builder = ReplayBuilder::new(reader.header())?;
    while let Some(event) = reader.next_event()? {
        builder.push(&event)?;
    }
    Ok(builder.finish())
}

/// Relative closeness at f64 round-off scale.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
}

/// Checks that a replayed export reproduces the live run's aggregates.
///
/// # Errors
///
/// Returns one entry per mismatched aggregate, each a `field: live X vs
/// replayed Y` description (`repro cell` joins them into its one-line
/// diff summary).
pub fn cross_check(live: &RunReport, replayed: &Replay) -> Result<(), Vec<String>> {
    let mut mismatches = Vec::new();
    if live.protocol != replayed.protocol {
        mismatches.push(format!(
            "protocol: live {} vs replayed {}",
            live.protocol, replayed.protocol
        ));
    }
    if live.wait_summary.count() != replayed.samples() {
        mismatches.push(format!(
            "samples: live {} vs replayed {}",
            live.wait_summary.count(),
            replayed.samples()
        ));
    }
    match replayed.mean_wait {
        Some(est) if close(est.mean, live.mean_wait.mean) => {}
        Some(est) => mismatches.push(format!(
            "mean wait: live {} vs replayed {}",
            live.mean_wait.mean, est.mean
        )),
        None => mismatches.push("mean wait: replay batches incomplete".to_string()),
    }
    if !close(live.utilization, replayed.utilization) {
        mismatches.push(format!(
            "utilization: live {} vs replayed {}",
            live.utilization, replayed.utilization
        ));
    }
    if live.metrics.completions != replayed.completions {
        mismatches.push(format!(
            "completions: live {} vs replayed {}",
            live.metrics.completions, replayed.completions
        ));
    }
    if mismatches.is_empty() {
        Ok(())
    } else {
        Err(mismatches)
    }
}

/// Serializable view of a [`Replay`] for `repro inspect --json`.
#[derive(Clone, Debug, Serialize)]
pub struct InspectJson {
    /// Protocol named by the trace header.
    pub protocol: String,
    /// Waiting-time samples that survived warm-up and the batch budget.
    pub samples: u64,
    /// Replayed batch-means estimate of the mean waiting time (negative
    /// halfwidth when the trace ended before the batch budget filled).
    pub mean_wait: f64,
    /// Confidence-interval half-width of `mean_wait`.
    pub halfwidth: f64,
    /// Replayed bus utilization over the measurement interval.
    pub utilization: f64,
    /// Simulated time spanned by the measurement interval.
    pub measured_time: f64,
    /// Request arrivals in the trace.
    pub requests: u64,
    /// Grants (arbitration completions) in the trace.
    pub grants: u64,
    /// Transfer starts in the trace.
    pub transfers: u64,
    /// Transfer completions in the trace.
    pub completions: u64,
    /// Completions discarded as warm-up.
    pub warmup_consumed: u64,
}

impl From<&Replay> for InspectJson {
    fn from(r: &Replay) -> Self {
        InspectJson {
            protocol: r.protocol.clone(),
            samples: r.samples(),
            mean_wait: r.mean_wait.map_or(f64::NAN, |e| e.mean),
            halfwidth: r.mean_wait.map_or(-1.0, |e| e.halfwidth),
            utilization: r.utilization,
            measured_time: r.measured_time,
            requests: r.requests,
            grants: r.grants,
            transfers: r.transfers,
            completions: r.completions,
            warmup_consumed: r.warmup_consumed,
        }
    }
}

/// Paper-style text rendering of a replayed trace.
#[must_use]
pub fn format_replay(r: &Replay) -> String {
    let wait = r.mean_wait.map_or_else(
        || "incomplete (batch budget unmet)".to_string(),
        |e| e.to_string(),
    );
    format!(
        "replayed {}: W = {wait}, utilization {:.3}\n\
         events: {} requests, {} grants, {} transfers, {} completions\n\
         samples: {} counted after {} warm-up, over {:.1} time units",
        r.protocol,
        r.utilization,
        r.requests,
        r.grants,
        r.transfers,
        r.completions,
        r.samples(),
        r.warmup_consumed,
        r.measured_time,
    )
}

/// One cell's tag and metrics inside a [`SweepMetrics`] export.
#[derive(Clone, Debug, Serialize)]
pub struct CellMetrics {
    /// The cell's seed tag.
    pub tag: String,
    /// The cell's whole-run metrics snapshot.
    pub metrics: MetricsSnapshot,
}

/// The `--metrics` export: every collected cell plus the deterministic
/// (tag-sorted) sweep-wide merge.
#[derive(Clone, Debug, Serialize)]
pub struct SweepMetrics {
    /// Per-cell snapshots, sorted by tag.
    pub cells: Vec<CellMetrics>,
    /// All cells folded together in tag order.
    pub merged: MetricsSnapshot,
}

/// Drains the rollup collector into a serializable sweep summary.
/// Returns `None` if [`crate::common::enable_rollups`] was never
/// called.
#[must_use]
pub fn collect_rollups() -> Option<SweepMetrics> {
    let cells = take_rollups()?;
    let merged = merge_rollups(&cells);
    Some(SweepMetrics {
        cells: cells
            .into_iter()
            .map(|(tag, metrics)| CellMetrics { tag, metrics })
            .collect(),
        merged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use busarb_obs::TraceHeader;

    #[test]
    fn pinned_cell_round_trips_through_both_export_formats() {
        for format in [TraceFormat::Jsonl, TraceFormat::Binary] {
            let path = std::env::temp_dir().join(format!(
                "busarb-observe-test-{}.{format}",
                std::process::id()
            ));
            let live = run_pinned(Scale::Smoke, Some((&path, format)));
            let replayed = inspect(&path).expect("export is readable");
            let outcome = cross_check(&live, &replayed);
            std::fs::remove_file(&path).ok();
            outcome.unwrap_or_else(|diffs| {
                panic!("{format} round-trip mismatch: {}", diffs.join("; "));
            });
            // The replay feeds the identical sample sequence to the same
            // batch-means arithmetic, so the estimate is not merely
            // close — it is equal (shortest-round-trip floats in JSONL,
            // raw bits in the binary framing).
            assert_eq!(
                replayed.mean_wait.expect("batches complete").mean,
                live.mean_wait.mean,
                "{format}: replayed mean drifted from the live run"
            );
            assert_eq!(replayed.utilization, live.utilization, "{format}");
        }
    }

    #[test]
    fn cross_check_reports_every_mismatch() {
        let live = run_pinned(Scale::Smoke, None);
        let header = TraceHeader {
            schema: busarb_obs::TRACE_SCHEMA.to_string(),
            protocol: "bogus".to_string(),
            agents: PINNED_AGENTS,
            seed: 0,
            warmup_samples: 0,
            batches: 2,
            samples_per_batch: 1,
            confidence: 0.9,
        };
        let replayed = busarb_obs::replay(&header, &[]).expect("empty trace replays");
        let diffs = cross_check(&live, &replayed).expect_err("everything differs");
        let msg = diffs.join("; ");
        assert!(diffs.len() >= 3, "{msg}");
        assert!(msg.contains("protocol"), "{msg}");
        assert!(msg.contains("samples"), "{msg}");
        assert!(msg.contains("mean wait"), "{msg}");
    }
}
