//! The shared (system size × load × protocol) simulation sweep.
//!
//! Tables 4.1 (fairness), 4.2 (waiting-time deviation), 4.3 (execution
//! overlap) and Figure 4.1 (waiting-time CDF) all derive from the same
//! family of equal-load simulation runs. Computing the grid once and
//! deriving every table from it keeps `repro all` affordable and — more
//! importantly — guarantees the tables are mutually consistent, exactly
//! as in the paper.

use busarb_core::{BatchingRule, ProtocolKind};
use busarb_sim::RunReport;
use busarb_workload::Scenario;

use crate::common::{paper_loads, run_cell, run_cell_kind, run_cells, Scale, PAPER_SIZES};

/// One (size, load) cell: matched RR and FCFS runs, plus AAP-1 for the
/// 30-agent system (the comparison column in Table 4.1(b)).
#[derive(Clone, Debug)]
pub struct GridCell {
    /// Number of agents.
    pub agents: u32,
    /// Total offered load.
    pub load: f64,
    /// Round-robin run (with waiting-time CDF).
    pub rr: RunReport,
    /// FCFS-1 run (with waiting-time CDF).
    pub fcfs: RunReport,
    /// Assured-access (idle batch) run, 30-agent system only.
    pub aap: Option<RunReport>,
}

/// The full sweep.
#[derive(Clone, Debug)]
pub struct Grid {
    /// All cells, ordered by (size, load).
    pub cells: Vec<GridCell>,
    /// The scale the grid was computed at.
    pub scale: Scale,
}

impl Grid {
    /// Runs the sweep: every paper size and load, RR and FCFS-1 (plus
    /// AAP-1 at 30 agents), CV = 1 (exponential interrequest times).
    /// Cells execute in parallel (see [`run_cells`]); every cell seeds
    /// from its own tag, so the result is identical at any worker count.
    #[must_use]
    pub fn compute(scale: Scale) -> Grid {
        let points: Vec<(u32, f64)> = PAPER_SIZES
            .iter()
            .flat_map(|&n| paper_loads(n).into_iter().map(move |load| (n, load)))
            .collect();
        let cells = run_cells(points, |(n, load)| Self::compute_cell(n, load, scale));
        Grid { cells, scale }
    }

    /// Runs a single cell (used by benches to bound work).
    #[must_use]
    pub fn compute_cell(n: u32, load: f64, scale: Scale) -> GridCell {
        let scenario = Scenario::equal_load(n, load, 1.0).expect("valid equal-load scenario");
        let rr = run_cell_kind(
            scenario.clone(),
            ProtocolKind::RoundRobin,
            scale,
            &format!("grid-rr-{n}-{load}"),
            true,
        );
        let fcfs = run_cell_kind(
            scenario.clone(),
            ProtocolKind::Fcfs1,
            scale,
            &format!("grid-fcfs-{n}-{load}"),
            true,
        );
        let aap = (n == 30).then(|| {
            run_cell(
                scenario,
                Box::new(
                    busarb_core::AssuredAccess::new(n, BatchingRule::IdleBatch)
                        .expect("valid size"),
                ),
                scale,
                &format!("grid-aap-{n}-{load}"),
                false,
            )
        });
        GridCell {
            agents: n,
            load,
            rr,
            fcfs,
            aap,
        }
    }

    /// Cells for one system size, in load order.
    pub fn section(&self, agents: u32) -> impl Iterator<Item = &GridCell> {
        self.cells.iter().filter(move |c| c.agents == agents)
    }

    /// Looks up one cell.
    #[must_use]
    pub fn cell(&self, agents: u32, load: f64) -> Option<&GridCell> {
        self.cells
            .iter()
            .find(|c| c.agents == agents && (c.load - load).abs() < 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cell_has_matched_runs() {
        let cell = Grid::compute_cell(10, 1.5, Scale::Smoke);
        assert_eq!(cell.rr.protocol, "rr");
        assert_eq!(cell.fcfs.protocol, "fcfs-1");
        assert!(cell.aap.is_none());
        assert!(cell.rr.cdf.is_some());
        // Conservation: matched mean waits.
        assert!((cell.rr.mean_wait.mean - cell.fcfs.mean_wait.mean).abs() < 0.5);
    }

    #[test]
    fn thirty_agent_cells_carry_aap() {
        let cell = Grid::compute_cell(30, 0.25, Scale::Smoke);
        assert_eq!(cell.aap.as_ref().unwrap().protocol, "aap-1");
    }
}
