//! Shared experiment plumbing.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use busarb_core::{Arbiter, ProtocolKind};
use busarb_obs::MetricsSnapshot;
use busarb_sim::{RunReport, Simulation, SystemConfig};
use busarb_stats::{BatchMeansConfig, Estimate, RatioEstimate};
use busarb_workload::{DrawEngineKind, Scenario};
use serde::Serialize;

/// How much simulation effort to spend.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scale {
    /// The paper's configuration: 10 batches × 8000 samples per run.
    Paper,
    /// 10 × 1500 samples — minutes-scale full reproduction.
    Quick,
    /// 10 × 150 samples — for unit tests and benches.
    Smoke,
}

impl Scale {
    /// The batch-means configuration for this scale.
    #[must_use]
    pub fn batches(self) -> BatchMeansConfig {
        match self {
            Scale::Paper => BatchMeansConfig::paper(),
            Scale::Quick => BatchMeansConfig::quick(1500),
            Scale::Smoke => BatchMeansConfig::quick(150),
        }
    }

    /// Warm-up responses discarded before measurement.
    #[must_use]
    pub fn warmup(self) -> usize {
        match self {
            Scale::Paper => 4000,
            Scale::Quick => 1500,
            Scale::Smoke => 300,
        }
    }

    /// Parses a scale name (for the `repro` CLI).
    #[must_use]
    pub fn parse(name: &str) -> Option<Scale> {
        match name {
            "paper" => Some(Scale::Paper),
            "quick" => Some(Scale::Quick),
            "smoke" => Some(Scale::Smoke),
            _ => None,
        }
    }
}

impl core::fmt::Display for Scale {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Scale::Paper => f.write_str("paper"),
            Scale::Quick => f.write_str("quick"),
            Scale::Smoke => f.write_str("smoke"),
        }
    }
}

/// Deterministic per-cell seed derived from a textual tag, so every
/// experiment cell is reproducible in isolation.
#[must_use]
pub fn seed_for(tag: &str) -> u64 {
    let mut h = DefaultHasher::new();
    tag.hash(&mut h);
    h.finish() ^ 0xB0A7_AB1E_5EED_5EED
}

/// The file-name-safe slug for one protocol, used to tag per-cell seeds
/// and JSON outputs.
///
/// Matches the `Display` form of [`ProtocolKind`], but is spelled as an
/// explicit per-variant match so `cargo xtask lint` can prove that every
/// protocol is wired into the experiment layer.
#[must_use]
pub fn protocol_slug(kind: ProtocolKind) -> &'static str {
    match kind {
        ProtocolKind::FixedPriority => "fixed-priority",
        ProtocolKind::AssuredAccessIdleBatch => "aap-1",
        ProtocolKind::AssuredAccessFairnessRelease => "aap-2",
        ProtocolKind::AssuredAccessClosedBatch => "aap-2m",
        ProtocolKind::RoundRobin => "rr",
        ProtocolKind::Fcfs1 => "fcfs-1",
        ProtocolKind::Fcfs2 => "fcfs-2",
        ProtocolKind::CentralRoundRobin => "central-rr",
        ProtocolKind::CentralFcfs => "central-fcfs",
        ProtocolKind::Hybrid => "hybrid",
        ProtocolKind::Adaptive => "adaptive",
        ProtocolKind::RotatingRr => "rotating-rr",
        ProtocolKind::TicketFcfs => "ticket-fcfs",
        // `ProtocolKind` is non-exhaustive; a kind without a slug here
        // must fail loudly rather than silently inherit one.
        other => unimplemented!("no experiment slug for {other}"),
    }
}

/// Runs one simulation cell.
///
/// # Panics
///
/// Panics on internal configuration errors (experiment code constructs
/// only valid configurations).
#[must_use]
pub fn run_cell(
    scenario: Scenario,
    arbiter: Box<dyn Arbiter>,
    scale: Scale,
    tag: &str,
    collect_cdf: bool,
) -> RunReport {
    let mut config = SystemConfig::new(scenario)
        .with_batches(scale.batches())
        .with_warmup(scale.warmup())
        .with_seed(seed_for(tag))
        .with_draw_engine(engine());
    if collect_cdf {
        config = config.with_cdf();
    }
    let report = Simulation::new(config)
        .expect("experiment configs are valid")
        .run(arbiter);
    offer_rollup(tag, &report.metrics);
    report
}

/// Runs one simulation cell for a default-parameter protocol of `kind`
/// through the **monomorphized** event loop ([`Simulation::run_kind`]).
///
/// This is the static-dispatch sibling of [`run_cell`]: sweeps over
/// [`ProtocolKind`] should use it (the event loop is specialized per
/// protocol — no virtual call per arbiter operation); cells that need a
/// custom-configured arbiter keep using [`run_cell`] with a box. Both
/// paths produce bit-for-bit identical reports for the same cell (pinned
/// by the `dispatch_equivalence` regression test).
///
/// # Panics
///
/// Panics on internal configuration errors (experiment code constructs
/// only valid configurations).
#[must_use]
pub fn run_cell_kind(
    scenario: Scenario,
    kind: ProtocolKind,
    scale: Scale,
    tag: &str,
    collect_cdf: bool,
) -> RunReport {
    let mut config = SystemConfig::new(scenario)
        .with_batches(scale.batches())
        .with_warmup(scale.warmup())
        .with_seed(seed_for(tag))
        .with_draw_engine(engine());
    if collect_cdf {
        config = config.with_cdf();
    }
    let report = Simulation::new(config)
        .expect("experiment configs are valid")
        .run_kind(kind)
        .expect("experiment scenarios use valid system sizes");
    offer_rollup(tag, &report.metrics);
    report
}

/// Per-cell metric rollups, collected when enabled (see
/// [`enable_rollups`]). `None` means collection is off — the default, so
/// the sweep path pays one mutex lock per *cell* (not per event) only
/// when a caller asked for metrics.
static ROLLUPS: Mutex<Option<Vec<(String, MetricsSnapshot)>>> = Mutex::new(None);

/// Starts collecting per-cell metric rollups from every subsequent
/// [`run_cell`] / [`run_cell_kind`] call (clearing anything previously
/// collected). Retrieve them with [`take_rollups`].
pub fn enable_rollups() {
    *ROLLUPS.lock().expect("rollup lock") = Some(Vec::new());
}

/// Records one cell's metrics snapshot under its seed tag, if rollup
/// collection is enabled. Called by the cell runners; experiment code
/// that runs `Simulation` directly may offer its own snapshots too.
pub fn offer_rollup(tag: &str, metrics: &MetricsSnapshot) {
    if let Some(cells) = ROLLUPS.lock().expect("rollup lock").as_mut() {
        cells.push((tag.to_string(), metrics.clone()));
    }
}

/// Stops rollup collection and returns everything collected since
/// [`enable_rollups`], sorted by cell tag — parallel sweep workers
/// finish cells in nondeterministic order, so the canonical sort (and a
/// fold over it, see [`merge_rollups`]) makes the result independent of
/// the worker count. Returns `None` if collection was never enabled.
#[must_use]
pub fn take_rollups() -> Option<Vec<(String, MetricsSnapshot)>> {
    let mut cells = ROLLUPS.lock().expect("rollup lock").take()?;
    cells.sort_by(|a, b| a.0.cmp(&b.0));
    Some(cells)
}

/// Folds per-cell snapshots into one sweep-wide snapshot. The input
/// order matters for floating-point sums, so callers should pass the
/// tag-sorted vector from [`take_rollups`] to get a deterministic
/// merge.
#[must_use]
pub fn merge_rollups(cells: &[(String, MetricsSnapshot)]) -> MetricsSnapshot {
    let agents = cells.iter().map(|(_, m)| m.agents).max().unwrap_or(0);
    let mut merged = MetricsSnapshot::empty(agents);
    for (_, metrics) in cells {
        merged.merge(metrics);
    }
    merged
}

/// Process-wide draw-engine selection for the experiment layer:
/// 0 = reference, 1 = fast. A global (like [`JOBS`]) rather than a
/// parameter because every `run_cell`/`run_cell_kind` call in a sweep
/// must use the same engine, and threading it through dozens of
/// experiment signatures would buy nothing.
static ENGINE: AtomicUsize = AtomicUsize::new(0);

/// Selects the draw engine used by every subsequent [`run_cell`] /
/// [`run_cell_kind`] call. Called by the `repro` and `simulate` binaries
/// when `--engine` is given; the default is [`DrawEngineKind::Reference`],
/// which preserves the golden-fixture byte contract.
pub fn set_engine(kind: DrawEngineKind) {
    let v = match kind {
        DrawEngineKind::Reference => 0,
        DrawEngineKind::Fast => 1,
    };
    ENGINE.store(v, Ordering::Relaxed);
}

/// The draw engine [`run_cell`] / [`run_cell_kind`] will use.
#[must_use]
pub fn engine() -> DrawEngineKind {
    match ENGINE.load(Ordering::Relaxed) {
        0 => DrawEngineKind::Reference,
        _ => DrawEngineKind::Fast,
    }
}

/// Configured sweep parallelism: 0 means "auto" (one worker per
/// available core).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the worker count used by [`run_cells`]. `0` restores the
/// default of one worker per available core. Called by the `repro` and
/// `simulate` binaries when `--jobs N` is given.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The resolved worker count [`run_cells`] will use (always ≥ 1).
#[must_use]
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n,
    }
}

/// Executes independent sweep cells across worker threads, preserving
/// input order in the output.
///
/// Every experiment cell derives its RNG seed from [`seed_for`] on a
/// per-cell tag, so cells are fully independent of execution order: the
/// result vector is **identical** to a serial `map` at any worker
/// count. Workers claim cells from a shared atomic cursor, so uneven
/// cell costs balance automatically.
///
/// (The usual crate for this is rayon; this build environment is fully
/// offline, so the fan-out is built on `std::thread::scope` instead.)
pub fn run_cells<I, T, F>(inputs: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    run_cells_with(jobs(), inputs, f)
}

/// [`run_cells`] with an explicit worker count (used directly by the
/// determinism regression tests; experiments go through [`run_cells`]).
///
/// # Panics
///
/// Panics if a worker thread panics (the cell's panic is propagated).
pub fn run_cells_with<I, T, F>(workers: usize, inputs: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let workers = workers.max(1).min(inputs.len().max(1));
    if workers <= 1 {
        return inputs.into_iter().map(f).collect();
    }

    let pending: Vec<Mutex<Option<I>>> = inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let done: Vec<Mutex<Option<T>>> = pending.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= pending.len() {
                        return;
                    }
                    let input = pending[idx]
                        .lock()
                        .expect("cell input lock")
                        .take()
                        .expect("each cell is claimed exactly once");
                    let output = f(input);
                    *done[idx].lock().expect("cell output lock") = Some(output);
                })
            })
            .collect();
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });

    done.into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("cell output lock")
                .expect("every claimed cell produced output")
        })
        .collect()
}

/// A serializable `value ± halfwidth` estimate.
#[derive(Clone, Copy, PartialEq, Debug, Serialize)]
pub struct EstimateJson {
    /// Point estimate.
    pub mean: f64,
    /// Confidence-interval half-width.
    pub halfwidth: f64,
}

impl From<Estimate> for EstimateJson {
    fn from(e: Estimate) -> Self {
        EstimateJson {
            mean: e.mean,
            halfwidth: e.halfwidth,
        }
    }
}

impl From<RatioEstimate> for EstimateJson {
    fn from(r: RatioEstimate) -> Self {
        r.estimate.into()
    }
}

impl core::fmt::Display for EstimateJson {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.2} \u{b1} {:.2}", self.mean, self.halfwidth)
    }
}

/// The load points used throughout the paper's tables for a given system
/// size (the 10-agent table tops out at 7.52, the others at 7.50).
#[must_use]
pub fn paper_loads(agents: u32) -> Vec<f64> {
    let top = if agents == 10 { 7.52 } else { 7.50 };
    vec![0.25, 0.50, 1.00, 1.50, 2.00, 2.50, 5.00, top]
}

/// The three system sizes studied in the paper.
pub const PAPER_SIZES: [u32; 3] = [10, 30, 64];

#[cfg(test)]
mod tests {
    use super::*;
    use busarb_core::ProtocolKind;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(seed_for("a"), seed_for("a"));
        assert_ne!(seed_for("a"), seed_for("b"));
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("bogus"), None);
        assert_eq!(Scale::Paper.to_string(), "paper");
    }

    #[test]
    fn paper_loads_match_tables() {
        assert_eq!(paper_loads(10).last(), Some(&7.52));
        assert_eq!(paper_loads(30).last(), Some(&7.50));
        assert_eq!(paper_loads(10).len(), 8);
    }

    #[test]
    fn run_cell_smoke() {
        let scenario = Scenario::equal_load(4, 1.0, 1.0).unwrap();
        let report = run_cell(
            scenario,
            ProtocolKind::RoundRobin.build(4).unwrap(),
            Scale::Smoke,
            "common-smoke",
            false,
        );
        assert!(report.mean_wait.mean > 0.0);
        assert!(report.cdf.is_none());
    }

    #[test]
    fn run_cells_preserves_order_at_any_worker_count() {
        let inputs: Vec<u64> = (0..37).collect();
        let serial: Vec<u64> = inputs.iter().map(|&x| x * x + 1).collect();
        for workers in [1, 2, 3, 8, 64] {
            let parallel = run_cells_with(workers, inputs.clone(), |x| x * x + 1);
            assert_eq!(parallel, serial, "workers={workers}");
        }
    }

    #[test]
    fn run_cells_handles_empty_input() {
        let out: Vec<u32> = run_cells_with(4, Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_setter_round_trips() {
        // Restore the default afterwards: other tests in this process may
        // consult the global.
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }

    #[test]
    fn engine_setter_round_trips() {
        assert_eq!(engine(), DrawEngineKind::Reference);
        set_engine(DrawEngineKind::Fast);
        assert_eq!(engine(), DrawEngineKind::Fast);
        set_engine(DrawEngineKind::Reference);
        assert_eq!(engine(), DrawEngineKind::Reference);
    }

    #[test]
    fn protocol_slug_matches_display_for_every_kind() {
        for &kind in ProtocolKind::all() {
            assert_eq!(protocol_slug(kind), kind.to_string());
        }
    }

    #[test]
    fn estimate_json_display() {
        let e = EstimateJson {
            mean: 1.2345,
            halfwidth: 0.042,
        };
        assert_eq!(e.to_string(), "1.23 \u{b1} 0.04");
    }
}
