//! The FCFS worst case the paper declined to pursue (§4.5, last
//! paragraph).
//!
//! *"We could similarly devise a worst-case model for FCFS, in which all
//! agents generate a request for the bus within the same interval defined
//! by the waiting time counters, each time they make a request. This
//! situation would be equally as contrived, if not more so, than the
//! previous model. Thus, we choose not to pursue this issue further."*
//!
//! We pursue it — and find the paper's instinct confirmed, for a
//! sharper reason than "contrived". To make every batch of requests
//! arrive within one counter interval **repeatedly**, the interrequest
//! times must re-synchronize the agents after each identity-ordered
//! batch, which forces agent `k`'s interrequest to be `k − 1 + δ`
//! ([`Scenario::worst_case_fcfs`]). But that heterogeneity makes the
//! delay spread *workload-determined*: in the synchronized steady state
//! every agent completes once per round of length ≈ `N + δ + 1`, so
//! conservation pins `W_k = round − interrequest_k` for **every**
//! work-conserving protocol. The measurement confirms it: FCFS-1,
//! FCFS-2, RR and the hybrid all show the identical per-agent wait
//! profile (spread 7.0 at N = 10) — even from randomized initial phases,
//! which the deterministic dynamics re-attract to the synchronized
//! pattern. The FCFS "worst case" punishes no protocol differentially;
//! there is nothing for a fair arbiter to fix, which is the strongest
//! justification for the paper's decision to drop it.

use busarb_core::ProtocolKind;
use busarb_sim::{Simulation, SystemConfig};
use busarb_workload::Scenario;
use serde::Serialize;

use crate::common::{seed_for, Scale};

/// One protocol's result under the lockstep workload.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Protocol name.
    pub protocol: String,
    /// Mean waiting time of the lowest-identity agent.
    pub wait_agent_1: f64,
    /// Mean waiting time of the highest-identity agent.
    pub wait_agent_n: f64,
    /// Max/min per-agent mean-wait ratio (1.0 = fair delays).
    pub wait_spread: Option<f64>,
    /// Max/min per-agent throughput stays ~1 even here.
    pub utilization: f64,
}

/// The study result.
#[derive(Clone, Debug, Serialize)]
pub struct WorstCaseFcfs {
    /// Number of agents.
    pub agents: u32,
    /// Rows per protocol.
    pub rows: Vec<Row>,
}

/// Protocols compared.
pub const PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::Fcfs1,
    ProtocolKind::Fcfs2,
    ProtocolKind::RoundRobin,
    ProtocolKind::Hybrid,
];

/// Runs the study: `n = 10` agents with the re-synchronizing
/// deterministic workload ([`Scenario::worst_case_fcfs`]): agent `k`'s
/// interrequest is `k − 0.5`, so after each identity-ordered batch every
/// agent re-requests at the same instant and the batch re-forms.
#[must_use]
pub fn run(scale: Scale) -> WorstCaseFcfs {
    let n = 10u32;
    let scenario = Scenario::worst_case_fcfs(n, 0.5).expect("valid scenario");
    let rows = PROTOCOLS
        .iter()
        .map(|&kind| {
            let config = SystemConfig::new(scenario.clone())
                .with_batches(scale.batches())
                .with_warmup(scale.warmup())
                .with_seed(seed_for(&format!("wc-fcfs-{kind}")))
                .without_initial_stagger();
            let report = Simulation::new(config)
                .expect("valid config")
                .run_kind(kind)
                .expect("valid size");
            Row {
                protocol: kind.to_string(),
                wait_agent_1: report.agent_wait(1).mean(),
                wait_agent_n: report.agent_wait(n).mean(),
                wait_spread: report.wait_spread(),
                utilization: report.utilization,
            }
        })
        .collect();
    WorstCaseFcfs { agents: n, rows }
}

/// Renders the study.
#[must_use]
pub fn format(w: &WorstCaseFcfs) -> String {
    let mut out = format!(
        "Worst case for FCFS (paper 4.5): {} agents, re-synchronizing deterministic\n\
         workload (interrequest of agent k = k - 0.5; every batch arrives within\n\
         one counter interval and is served in identity order)\n\n",
        w.agents
    );
    out.push_str(&format!(
        "{:<10} {:>10} {:>10} {:>12} {:>6}\n",
        "protocol", "W[1]", "W[N]", "spread", "util"
    ));
    for row in &w.rows {
        out.push_str(&format!(
            "{:<10} {:>10.2} {:>10.2} {:>12} {:>6.2}\n",
            row.protocol,
            row.wait_agent_1,
            row.wait_agent_n,
            row.wait_spread
                .map_or_else(|| "-".to_string(), |v| format!("{v:.2}")),
            row.utilization,
        ));
    }
    out.push_str(
        "\n(The spread is forced by conservation: each agent completes once per\n\
         round, so W_k = round - interrequest_k for EVERY work-conserving\n\
         protocol. The FCFS worst case punishes no protocol differentially --\n\
         the sharp version of the paper's reason for not pursuing it.)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_spread_is_workload_forced_and_protocol_independent() {
        let result = run(Scale::Smoke);
        // The synchronized pattern: round length N + 1.5 served in
        // identity order; W[1] = N + 0.5, W[N] = 1.5, for every protocol.
        for row in &result.rows {
            assert!(
                (row.wait_agent_1 - 10.5).abs() < 0.2,
                "{}: W[1] = {}",
                row.protocol,
                row.wait_agent_1
            );
            assert!(
                (row.wait_agent_n - 1.5).abs() < 0.2,
                "{}: W[N] = {}",
                row.protocol,
                row.wait_agent_n
            );
            let spread = row.wait_spread.unwrap();
            assert!(
                (spread - 7.0).abs() < 0.5,
                "{}: spread {spread}",
                row.protocol
            );
        }
        // And all protocols agree with each other (conservation, per
        // agent, not just in aggregate).
        let spreads: Vec<f64> = result.rows.iter().map(|r| r.wait_spread.unwrap()).collect();
        let max = spreads.iter().copied().fold(0.0, f64::max);
        let min = spreads.iter().copied().fold(f64::MAX, f64::min);
        assert!(max - min < 0.2, "{spreads:?}");
    }

    #[test]
    fn format_renders() {
        let result = run(Scale::Smoke);
        let text = format(&result);
        assert!(text.contains("Worst case for FCFS"));
        assert!(text.contains("spread"));
    }
}
