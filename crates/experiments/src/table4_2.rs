//! Table 4.2 — standard deviation of the waiting time for FCFS and RR.
//!
//! For each system size and offered load: the mean waiting time `W`
//! (identical for both protocols by the conservation law), the waiting
//! time standard deviation under FCFS and under RR, and their ratio. The
//! paper finds σ_RR up to 60% / 195% / 350% higher than σ_FCFS for
//! 10 / 30 / 64 agents.

use serde::Serialize;

use crate::common::Scale;
use crate::grid::Grid;

/// One load row.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Total offered load.
    pub load: f64,
    /// Mean waiting time (averaged over the two protocols' estimates).
    pub mean_wait: f64,
    /// σ_W under FCFS-1.
    pub sd_fcfs: f64,
    /// σ_W under RR.
    pub sd_rr: f64,
    /// σ_RR / σ_FCFS.
    pub sd_ratio: f64,
}

/// One system-size section.
#[derive(Clone, Debug, Serialize)]
pub struct Section {
    /// Number of agents.
    pub agents: u32,
    /// Rows in load order.
    pub rows: Vec<Row>,
}

/// The full table.
#[derive(Clone, Debug, Serialize)]
pub struct Table42 {
    /// Sections for 10, 30 and 64 agents.
    pub sections: Vec<Section>,
}

/// Derives the table from a precomputed grid.
#[must_use]
pub fn from_grid(grid: &Grid) -> Table42 {
    let sections = [10u32, 30, 64]
        .into_iter()
        .map(|n| Section {
            agents: n,
            rows: grid
                .section(n)
                .map(|cell| {
                    let sd_fcfs = cell.fcfs.wait_summary.std_dev();
                    let sd_rr = cell.rr.wait_summary.std_dev();
                    Row {
                        load: cell.load,
                        mean_wait: 0.5 * (cell.rr.mean_wait.mean + cell.fcfs.mean_wait.mean),
                        sd_fcfs,
                        sd_rr,
                        sd_ratio: if sd_fcfs > 0.0 {
                            sd_rr / sd_fcfs
                        } else {
                            f64::NAN
                        },
                    }
                })
                .collect(),
        })
        .collect();
    Table42 { sections }
}

/// Runs the underlying sweep and derives the table.
#[must_use]
pub fn run(scale: Scale) -> Table42 {
    from_grid(&Grid::compute(scale))
}

/// Renders the paper-style text table.
#[must_use]
pub fn format(table: &Table42) -> String {
    let mut out = String::new();
    out.push_str("Table 4.2: Standard Deviation of the Waiting Time for FCFS and RR\n");
    for section in &table.sections {
        out.push_str(&format!("\n({} agents)\n", section.agents));
        out.push_str(&format!(
            "{:>6} {:>8} {:>9} {:>9} {:>12}\n",
            "Load", "W", "sd FCFS", "sd RR", "sd RR/FCFS"
        ));
        for row in &section.rows {
            out.push_str(&format!(
                "{:>6.2} {:>8.2} {:>9.2} {:>9.2} {:>12.2}\n",
                row.load, row.mean_wait, row.sd_fcfs, row.sd_rr, row.sd_ratio
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rr_variance_exceeds_fcfs_at_moderate_load() {
        let grid = Grid {
            cells: vec![Grid::compute_cell(10, 2.0, Scale::Smoke)],
            scale: Scale::Smoke,
        };
        let table = from_grid(&grid);
        let row = &table.sections[0].rows[0];
        assert!(
            row.sd_ratio > 1.0,
            "sd ratio {} should exceed 1",
            row.sd_ratio
        );
        assert!(row.mean_wait > 1.5);
        let text = format(&table);
        assert!(text.contains("Table 4.2"));
    }
}
