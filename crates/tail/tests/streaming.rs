//! Streaming-vs-whole-file equivalence and corrupt-input regressions.
//!
//! The contract `busarb analyze` sells is: one bounded-memory pass over
//! a trace produces *exactly* the aggregates a whole-file replay would —
//! on either framing — and malformed input fails with a structured
//! error naming the byte offset, never a panic or a silent truncation of
//! the result. Both halves are pinned here:
//!
//! * a property test drives randomized event sequences through the
//!   JSONL sink, the binary sink, the streaming pipeline, and the
//!   whole-file replay, and requires bit-exact agreement everywhere;
//! * a regression suite feeds truncated and corrupt streams (cut binary
//!   records, garbage JSONL lines, bad agent identities) to
//!   `analyze`/`analyze_path` and checks the structured error surface.

use busarb_obs::{
    replay, stream_error, BinarySink, JsonlSink, TraceHeader, TraceReader, TraceSink, TRACE_SCHEMA,
};
use busarb_tail::{analyze, analyze_path};
use busarb_types::{AgentId, Time, TraceEvent, TraceKind};
use proptest::prelude::*;

fn header(protocol: &str, agents: u32, warmup: u64) -> TraceHeader {
    TraceHeader {
        schema: TRACE_SCHEMA.to_string(),
        protocol: protocol.to_string(),
        agents,
        seed: 9,
        warmup_samples: warmup,
        batches: 2,
        samples_per_batch: 4,
        confidence: 0.9,
    }
}

/// Builds a monotone-time event sequence from raw proptest choices.
fn build_events(choices: &[(u8, u32, u32)], agents: u32) -> Vec<TraceEvent> {
    let mut t = 0.0f64;
    choices
        .iter()
        .map(|&(kind, agent, dt)| {
            t += f64::from(dt) / 64.0;
            let agent = AgentId::new(1 + agent % agents).unwrap();
            let kind = match kind % 4 {
                0 => TraceKind::Request { agent },
                1 => TraceKind::ArbitrationStart {
                    winner: agent,
                    completes: Time::from(t + 0.25),
                },
                2 => TraceKind::TransferStart { agent },
                _ => TraceKind::TransferEnd {
                    agent,
                    wait: t / 3.0,
                },
            };
            TraceEvent {
                at: Time::from(t),
                kind,
            }
        })
        .collect()
}

fn encode_jsonl(h: &TraceHeader, events: &[TraceEvent]) -> Vec<u8> {
    let mut sink = JsonlSink::new(Vec::new(), h).unwrap();
    for e in events {
        sink.record(e).unwrap();
    }
    sink.finish().unwrap();
    sink.into_inner()
}

fn encode_binary(h: &TraceHeader, events: &[TraceEvent]) -> Vec<u8> {
    let mut sink = BinarySink::new(Vec::new(), h).unwrap();
    for e in events {
        sink.record(e).unwrap();
    }
    sink.finish().unwrap();
    sink.into_inner()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Streaming analysis over either framing must equal the whole-file
    /// replay bit-for-bit, and the two framings must agree on the
    /// entire report (all analyzers, not just replay).
    #[test]
    fn streaming_matches_whole_file_replay_on_both_framings(
        choices in proptest::collection::vec((any::<u8>(), any::<u32>(), 1u32..128), 0..200),
        agents in 1u32..6,
        warmup in 0u64..4,
        protocol_index in 0usize..4,
    ) {
        let protocol = ["rr", "fcfs-2", "aap-1", "unknown-proto"][protocol_index];
        let h = header(protocol, agents, warmup);
        let events = build_events(&choices, agents);

        let whole = replay(&h, &events).unwrap();

        let jsonl = encode_jsonl(&h, &events);
        let binary = encode_binary(&h, &events);
        let mut reports = Vec::new();
        for bytes in [&jsonl, &binary] {
            let mut reader = TraceReader::new(&bytes[..]).unwrap();
            reports.push(analyze("prop", &mut reader).unwrap());
        }

        for r in &reports {
            prop_assert_eq!(r.events, events.len() as u64);
            // Bit-exact, not approximate: the pipeline runs the same
            // accumulation code as the whole-file replay.
            prop_assert_eq!(r.replay.samples, whole.samples());
            prop_assert_eq!(r.replay.utilization, whole.utilization);
            prop_assert_eq!(r.replay.measured_time, whole.measured_time);
            prop_assert_eq!(r.replay.requests, whole.requests);
            prop_assert_eq!(r.replay.grants, whole.grants);
            prop_assert_eq!(r.replay.transfers, whole.transfers);
            prop_assert_eq!(r.replay.completions, whole.completions);
            prop_assert_eq!(r.replay.warmup_consumed, whole.warmup_consumed);
            prop_assert_eq!(&r.replay.per_agent_samples, &whole.per_agent_samples);
            prop_assert_eq!(
                r.replay.mean_wait,
                whole.mean_wait.as_ref().map(|e| e.mean)
            );
        }

        // The two framings must produce the same report everywhere
        // except the recorded format tag. JSON rendering is canonical
        // (field order fixed by declaration), so compare the parses.
        let a = serde_json::from_str(&reports[0].to_json()).unwrap();
        let b = serde_json::from_str(&reports[1].to_json()).unwrap();
        for section in ["replay", "usage", "fairness", "adapter", "protocol", "agents", "events"] {
            prop_assert_eq!(a.get(section), b.get(section), "section {}", section);
        }
    }
}

// ---------------------------------------------------------------------
// Corrupt- and truncated-input regressions.
// ---------------------------------------------------------------------

fn sample_trace(n: usize) -> (TraceHeader, Vec<TraceEvent>) {
    let h = header("rr", 3, 0);
    let choices: Vec<(u8, u32, u32)> = (0..n).map(|i| (i as u8, i as u32, 7)).collect();
    let events = build_events(&choices, 3);
    (h, events)
}

#[test]
fn truncated_binary_trace_errors_with_the_record_offset() {
    let (h, events) = sample_trace(24);
    let bytes = encode_binary(&h, &events);
    // Cut inside the last record.
    let cut = bytes.len() - 5;
    let mut reader = TraceReader::new(&bytes[..cut]).unwrap();
    let err = analyze("cut", &mut reader).unwrap_err();
    let stream = stream_error(&err).expect("structured stream error");
    assert!(stream.message.contains("truncated"), "{stream}");
    assert!(stream.offset < cut as u64);
    // The offset points inside the trace body, at a record boundary the
    // reader had reached before failing.
    assert!(stream.offset > 9, "{}", stream.offset);
}

#[test]
fn corrupt_jsonl_line_errors_with_line_and_offset() {
    let (h, events) = sample_trace(10);
    let mut bytes = encode_jsonl(&h, &events);
    let corrupt_at = bytes.len() as u64;
    bytes.extend_from_slice(b"this is not an event\n");
    let mut reader = TraceReader::new(&bytes[..]).unwrap();
    let err = analyze("garbage", &mut reader).unwrap_err();
    let stream = stream_error(&err).expect("structured stream error");
    assert_eq!(stream.offset, corrupt_at);
    assert_eq!(stream.line, Some(12)); // header + 10 events + this line
}

#[test]
fn out_of_roster_agent_fails_analysis_not_parsing() {
    let (mut h, mut events) = sample_trace(8);
    h.agents = 2;
    // A completion for agent 3 exceeds the 2-agent roster.
    events.push(TraceEvent {
        at: Time::from(1000.0),
        kind: TraceKind::TransferEnd {
            agent: AgentId::new(3).unwrap(),
            wait: 0.5,
        },
    });
    let bytes = encode_binary(&h, &events);
    let mut reader = TraceReader::new(&bytes[..]).unwrap();
    let err = analyze("roster", &mut reader).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("agent"), "{err}");
}

#[test]
fn analyze_path_surfaces_offsets_for_corrupt_files() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("busarb-tail-corrupt-{}.btrc", std::process::id()));
    let (h, events) = sample_trace(16);
    let mut bytes = encode_binary(&h, &events);
    // Smash one record's tag byte into an unknown value.
    let header_len = u32::from_le_bytes(bytes[5..9].try_into().unwrap()) as usize;
    let body = 9 + header_len;
    bytes[body] = 200;
    std::fs::write(&path, &bytes).unwrap();
    let err = analyze_path(&path).unwrap_err();
    std::fs::remove_file(&path).ok();
    let stream = stream_error(&err).expect("structured stream error");
    assert_eq!(stream.offset, body as u64);
    assert!(stream.message.contains("unknown binary record tag"), "{stream}");
    // The rendered error names the offset, so CLI users see it too.
    assert!(err.to_string().contains(&format!("byte offset {body}")), "{err}");
}

#[test]
fn empty_and_headerless_files_error_cleanly() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("busarb-tail-empty-{}.jsonl", std::process::id()));
    std::fs::write(&path, b"").unwrap();
    let err = analyze_path(&path).unwrap_err();
    std::fs::remove_file(&path).ok();
    let stream = stream_error(&err).expect("structured stream error");
    assert_eq!(stream.offset, 0);
    assert!(stream.message.contains("empty"), "{stream}");
}
