//! Bounded-memory guarantee: analyzing a trace 16× longer must not use
//! more heap.
//!
//! The ISSUE-level acceptance criterion for `busarb analyze` is that
//! peak memory is *independent of trace length* — the analyzers hold
//! O(agents + buckets) state and the readers buffer one record. Rather
//! than spot-checking RSS (noisy, allocator-dependent), this test swaps
//! in a global allocator that tracks live bytes and their high-water
//! mark, synthesizes BTRC streams of two very different lengths on the
//! fly (no file, no materialized event list — the generator itself is
//! O(1)), and asserts the peak for the long stream does not exceed the
//! short stream's peak plus slack. It also pins the hot loop: after the
//! pipeline is warm, pushing events performs zero steady-state
//! allocations.
//!
//! Everything runs in ONE `#[test]`: the harness runs tests on separate
//! threads and the allocator counters are process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use busarb_obs::{TraceHeader, TraceReader, TRACE_SCHEMA};
use busarb_tail::synth::SyntheticBtrc;
use busarb_tail::{analyze, Pipeline};
use busarb_types::{AgentId, Time, TraceEvent, TraceKind};

struct TrackingAllocator;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            on_alloc(new_size - layout.size());
        } else {
            LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: TrackingAllocator = TrackingAllocator;

fn header(agents: u32) -> TraceHeader {
    TraceHeader {
        schema: TRACE_SCHEMA.to_string(),
        protocol: "rr".to_string(),
        agents,
        seed: 3,
        warmup_samples: 100,
        batches: 4,
        samples_per_batch: 50,
        confidence: 0.9,
    }
}

/// Peak live heap while analyzing a synthetic stream of `n` transactions.
fn peak_during_analysis(n: u64) -> (usize, u64) {
    let h = header(8);
    let stream = SyntheticBtrc::new(&h, n);
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    let base = LIVE.load(Ordering::Relaxed);
    let mut reader = TraceReader::new(stream).expect("synthetic stream is valid");
    let report = analyze("synthetic", &mut reader).expect("synthetic stream analyzes");
    let peak = PEAK.load(Ordering::Relaxed) - base;
    (peak, report.events)
}

#[test]
fn peak_memory_is_independent_of_trace_length_and_hot_path_is_steady() {
    // --- Peak-vs-length: 16× more events, same peak (plus slack). ---
    let (short_peak, short_events) = peak_during_analysis(8_192);
    let (long_peak, long_events) = peak_during_analysis(16 * 8_192);
    assert_eq!(short_events, 4 * 8_192);
    assert_eq!(long_events, 4 * 16 * 8_192);
    // The pipeline state is identical in both runs; the only variable
    // heap is transient allocator noise. 64 KiB of slack is far below
    // the ~1.6 MiB the long trace's event list would need if anything
    // materialized it.
    assert!(
        long_peak <= short_peak + (64 << 10),
        "peak grew with trace length: short {short_peak} vs long {long_peak}"
    );

    // --- Steady state: a warm pipeline pushes events without heap. ---
    let h = header(8);
    let mut pipeline = Pipeline::new(&h).expect("valid header");
    let agent = AgentId::new(1).unwrap();
    let push_all = |base: f64, pipeline: &mut Pipeline| {
        for i in 0..1_000u32 {
            let t = base + f64::from(i);
            pipeline
                .push(&TraceEvent {
                    at: Time::from(t),
                    kind: TraceKind::Request { agent },
                })
                .unwrap();
            pipeline
                .push(&TraceEvent {
                    at: Time::from(t),
                    kind: TraceKind::ArbitrationStart {
                        winner: agent,
                        completes: Time::from(t + 0.25),
                    },
                })
                .unwrap();
            pipeline
                .push(&TraceEvent {
                    at: Time::from(t + 0.25),
                    kind: TraceKind::TransferStart { agent },
                })
                .unwrap();
            pipeline
                .push(&TraceEvent {
                    at: Time::from(t + 1.0),
                    kind: TraceKind::TransferEnd { agent, wait: 0.5 },
                })
                .unwrap();
        }
    };
    // Warm-up pass absorbs any lazy one-time allocation.
    push_all(0.0, &mut pipeline);
    // Minimum over a few windows tolerates harness threads allocating
    // concurrently; a real per-event allocation would hit every window.
    let steady = (0..3)
        .map(|w| {
            let before = ALLOCS.load(Ordering::Relaxed);
            push_all(10_000.0 * f64::from(w + 1), &mut pipeline);
            ALLOCS.load(Ordering::Relaxed) - before
        })
        .min()
        .expect("non-empty windows");
    assert_eq!(steady, 0, "pipeline push allocated in steady state");
}
