//! Windowed fairness tracking: per-agent grant shares and Jain's index
//! over a sliding window of recent grants.
//!
//! The paper's central claim is that the distributed round-robin and
//! FCFS protocols are *fair* — no agent is starved, grant shares track
//! demand. A whole-run grant share can hide transient starvation (an
//! agent locked out for ten thousand grants then caught up later), so
//! alongside the overall share this tracker slides a fixed window over
//! the grant sequence and samples Jain's fairness index
//! `(Σx)² / (n·Σx²)` inside it: 1.0 when every agent holds an equal
//! share, `1/n` when one agent monopolizes the bus. The *minimum*
//! windowed index is the headline number — it bounds the worst local
//! unfairness anywhere in the trace.
//!
//! State is one ring buffer of [`FAIRNESS_WINDOW`] agent indices plus
//! per-agent counters: constant memory regardless of trace length, and
//! the per-grant update is allocation-free.

use serde::Serialize;

/// Sliding-window length, in grants.
pub const FAIRNESS_WINDOW: usize = 1024;

/// Grants between consecutive windowed-index samples.
pub const FAIRNESS_STRIDE: usize = 256;

/// Frozen results of [`FairnessTracker`].
#[derive(Clone, Debug, Serialize)]
pub struct FairnessReport {
    /// Agents in the roster.
    pub agents: u32,
    /// Total grants observed.
    pub grants: u64,
    /// Sliding-window length used, in grants.
    pub window: u64,
    /// Whole-trace grant share per agent (sums to 1 when `grants > 0`).
    pub share: Vec<f64>,
    /// Jain index over the whole trace's per-agent grant counts.
    pub jain_overall: f64,
    /// Windowed-index samples taken.
    pub jain_windows: u64,
    /// Smallest windowed index (worst local unfairness).
    pub jain_min: f64,
    /// Mean windowed index.
    pub jain_mean: f64,
}

/// Streaming fairness tracker over the grant sequence.
#[derive(Clone, Debug)]
pub struct FairnessTracker {
    agents: u32,
    /// Agent index of each grant in the current window, oldest
    /// overwritten first.
    ring: Vec<u32>,
    head: usize,
    /// Per-agent grants inside the current window.
    in_window: Vec<u64>,
    /// Per-agent grants over the whole trace.
    total: Vec<u64>,
    grants: u64,
    jain_samples: u64,
    jain_sum: f64,
    jain_min: f64,
}

impl FairnessTracker {
    /// Creates a tracker for an `agents`-agent roster.
    #[must_use]
    pub fn new(agents: u32) -> Self {
        FairnessTracker {
            agents,
            ring: vec![0; FAIRNESS_WINDOW],
            head: 0,
            in_window: vec![0; agents as usize],
            total: vec![0; agents as usize],
            grants: 0,
            jain_samples: 0,
            jain_sum: 0.0,
            jain_min: f64::INFINITY,
        }
    }

    /// Records one grant to the agent at roster index `agent_index`.
    /// Out-of-roster indices are ignored (the replay layer already
    /// rejects them with a structured error). Allocation-free.
    pub fn on_grant(&mut self, agent_index: usize) {
        if agent_index >= self.in_window.len() {
            return;
        }
        if self.grants >= FAIRNESS_WINDOW as u64 {
            let evicted = self.ring[self.head] as usize;
            self.in_window[evicted] -= 1;
        }
        self.ring[self.head] = agent_index as u32;
        self.head = (self.head + 1) % FAIRNESS_WINDOW;
        self.in_window[agent_index] += 1;
        self.total[agent_index] += 1;
        self.grants += 1;
        if self.grants >= FAIRNESS_WINDOW as u64
            && (self.grants - FAIRNESS_WINDOW as u64).is_multiple_of(FAIRNESS_STRIDE as u64)
        {
            let j = jain(&self.in_window);
            self.jain_samples += 1;
            self.jain_sum += j;
            if j < self.jain_min {
                self.jain_min = j;
            }
        }
    }

    /// Freezes the tracker into a [`FairnessReport`].
    ///
    /// Traces shorter than one window never sampled the sliding index;
    /// those (and only those) take a single end-of-trace sample over the
    /// partial window so short runs still report a windowed figure.
    #[must_use]
    pub fn finish(mut self) -> FairnessReport {
        if self.jain_samples == 0 && self.grants > 0 {
            let j = jain(&self.in_window);
            self.jain_samples = 1;
            self.jain_sum = j;
            self.jain_min = j;
        }
        let share = if self.grants == 0 {
            vec![0.0; self.total.len()]
        } else {
            self.total
                .iter()
                .map(|&c| c as f64 / self.grants as f64)
                .collect()
        };
        FairnessReport {
            agents: self.agents,
            grants: self.grants,
            window: FAIRNESS_WINDOW as u64,
            share,
            jain_overall: jain(&self.total),
            jain_windows: self.jain_samples,
            jain_min: if self.jain_samples == 0 {
                0.0
            } else {
                self.jain_min
            },
            jain_mean: if self.jain_samples == 0 {
                0.0
            } else {
                self.jain_sum / self.jain_samples as f64
            },
        }
    }
}

/// Jain's fairness index over per-agent counts; 0 when all are zero.
fn jain(counts: &[u64]) -> f64 {
    let n = counts.len() as f64;
    let sum: f64 = counts.iter().map(|&c| c as f64).sum();
    let sq: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    if sq == 0.0 {
        0.0
    } else {
        sum * sum / (n * sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_shares_score_one() {
        let mut t = FairnessTracker::new(4);
        for i in 0..4 * FAIRNESS_WINDOW {
            t.on_grant(i % 4);
        }
        let r = t.finish();
        assert_eq!(r.grants, 4 * FAIRNESS_WINDOW as u64);
        assert!((r.jain_overall - 1.0).abs() < 1e-12);
        assert!((r.jain_min - 1.0).abs() < 1e-12);
        assert!((r.jain_mean - 1.0).abs() < 1e-12);
        assert!(r.share.iter().all(|&s| (s - 0.25).abs() < 1e-12));
        assert!(r.jain_windows > 0);
    }

    #[test]
    fn monopoly_scores_one_over_n() {
        let mut t = FairnessTracker::new(8);
        for _ in 0..2 * FAIRNESS_WINDOW {
            t.on_grant(0);
        }
        let r = t.finish();
        assert!((r.jain_overall - 1.0 / 8.0).abs() < 1e-12);
        assert!((r.jain_min - 1.0 / 8.0).abs() < 1e-12);
        assert_eq!(r.share[0], 1.0);
    }

    #[test]
    fn transient_starvation_lowers_min_but_not_overall() {
        let mut t = FairnessTracker::new(2);
        // Fair overall: half the grants each — but agent 1 gets all of
        // the first half and agent 0 all of the second.
        for _ in 0..4 * FAIRNESS_WINDOW {
            t.on_grant(1);
        }
        for _ in 0..4 * FAIRNESS_WINDOW {
            t.on_grant(0);
        }
        let r = t.finish();
        assert!((r.jain_overall - 1.0).abs() < 1e-12);
        assert!((r.jain_min - 0.5).abs() < 1e-12);
    }

    #[test]
    fn short_trace_takes_one_end_sample() {
        let mut t = FairnessTracker::new(2);
        t.on_grant(0);
        t.on_grant(1);
        let r = t.finish();
        assert_eq!(r.jain_windows, 1);
        assert!((r.jain_min - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_reports_zeros() {
        let r = FairnessTracker::new(3).finish();
        assert_eq!(r.grants, 0);
        assert_eq!(r.jain_windows, 0);
        assert_eq!(r.jain_overall, 0.0);
        assert_eq!(r.share, vec![0.0; 3]);
    }
}
