//! Synthetic BTRC stream generation — benchmark and test support.
//!
//! [`SyntheticBtrc`] is a [`Read`] that produces a syntactically valid
//! `busarb-trace/1` binary stream of any length *on the fly*: a few
//! dozen bytes of scratch buffer are refilled one transaction at a time,
//! so generating a ten-million-event stream neither touches disk nor
//! materializes anything proportional to its length. `bench_analyze`
//! feeds these to the pipeline to measure pure analysis throughput, and
//! the bounded-memory regression test uses them to prove peak heap is
//! independent of trace length.

use std::io::Read;

use busarb_obs::TraceHeader;

/// An infinite-capable synthetic BTRC byte stream: `transactions`
/// four-event bus transactions (request, arbitration, transfer start,
/// completion) over the header's agent roster, round-robin.
pub struct SyntheticBtrc {
    /// Current chunk being served (the encoded header first, then one
    /// transaction's records at a time).
    chunk: Vec<u8>,
    pos: usize,
    next: u64,
    transactions: u64,
    agents: u32,
}

impl SyntheticBtrc {
    /// Builds the generator. Only the header is encoded up front.
    ///
    /// # Panics
    ///
    /// Panics if the header has zero agents (no roster to rotate over).
    #[must_use]
    pub fn new(header: &TraceHeader, transactions: u64) -> Self {
        assert!(header.agents > 0, "synthetic stream needs agents");
        let header_json = serde_json::to_string(header).expect("header serializes");
        let mut chunk = Vec::with_capacity(96 + header_json.len());
        chunk.extend_from_slice(b"BTRC");
        chunk.push(1);
        chunk.extend_from_slice(&(header_json.len() as u32).to_le_bytes());
        chunk.extend_from_slice(header_json.as_bytes());
        SyntheticBtrc {
            chunk,
            pos: 0,
            next: 0,
            transactions,
            agents: header.agents,
        }
    }

    /// Trace events this stream will yield (four per transaction).
    #[must_use]
    pub fn events(&self) -> u64 {
        4 * self.transactions
    }

    fn push_record(&mut self, tag: u8, at: f64, agent: u32, extra: Option<f64>) {
        self.chunk.push(tag);
        self.chunk.extend_from_slice(&at.to_le_bytes());
        self.chunk.extend_from_slice(&agent.to_le_bytes());
        if let Some(x) = extra {
            self.chunk.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Refills the scratch buffer with the next transaction's records.
    fn refill(&mut self) -> bool {
        if self.next >= self.transactions {
            return false;
        }
        let i = self.next;
        self.next += 1;
        self.chunk.clear();
        self.pos = 0;
        let t = i as f64;
        let agent = 1 + (i as u32) % self.agents;
        self.push_record(0, t, agent, None); // request
        self.push_record(1, t, agent, Some(t + 0.25)); // arbitration
        self.push_record(2, t + 0.25, agent, None); // transfer start
        self.push_record(3, t + 1.0, agent, Some(0.75)); // completion
        true
    }
}

impl Read for SyntheticBtrc {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.chunk.len() && !self.refill() {
            return Ok(0);
        }
        let n = buf.len().min(self.chunk.len() - self.pos);
        buf[..n].copy_from_slice(&self.chunk[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use busarb_obs::{TraceReader, TRACE_SCHEMA};

    #[test]
    fn synthetic_stream_parses_end_to_end() {
        let header = TraceHeader {
            schema: TRACE_SCHEMA.to_string(),
            protocol: "rr".to_string(),
            agents: 3,
            seed: 0,
            warmup_samples: 0,
            batches: 2,
            samples_per_batch: 2,
            confidence: 0.9,
        };
        let stream = SyntheticBtrc::new(&header, 25);
        assert_eq!(stream.events(), 100);
        let mut reader = TraceReader::new(stream).unwrap();
        assert_eq!(reader.header().agents, 3);
        let mut n = 0;
        while let Some(e) = reader.next_event().unwrap() {
            assert!(e.at.as_f64() >= 0.0);
            n += 1;
        }
        assert_eq!(n, 100);
    }
}
