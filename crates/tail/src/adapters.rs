//! Per-protocol trace adapters: protocol-specific views over the shared
//! grant stream.
//!
//! The generic analyzers (usage, fairness, replay) treat every protocol
//! identically; the adapter layer adds the quantity each protocol
//! *family* is actually about, mirroring how a bus profiler ships one
//! small analyzer per bus rather than one monolith:
//!
//! * **round-robin family** ([`RrRotation`]) — the distribution of
//!   rotation steps between consecutive winners. Under the paper's RR
//!   protocol the priority ring rotates to just past the last winner, so
//!   the step distance (winner index minus previous winner, mod N) is
//!   the rotation-position occupancy: heavy mass at small steps means
//!   neighbors of the last winner dominate.
//! * **FCFS family** ([`FcfsLag`]) — counter lag: how far each grant
//!   deviates from true first-come first-served order. A grant's lag is
//!   the number of *older* still-pending requests it overtook; an exact
//!   FCFS protocol shows lag 0 everywhere, while FCFS-1/FCFS-2's
//!   bounded-count approximations admit small nonzero lags.
//! * **assured-access / priority family** ([`BypassCounts`]) — bypass
//!   accounting: how often the protocol's priority or assured-access
//!   path let a younger request jump older ones, and which agents were
//!   jumped. This is the cost side of the AAP latency bound.
//!
//! Every adapter keeps O(agents) state and is allocation-free per event.

use busarb_obs::{HistogramSnapshot, LogHistogram};
use busarb_types::{TraceEvent, TraceKind};
use serde::Serialize;

/// A named scalar in an [`AdapterReport`].
#[derive(Clone, Debug, Serialize)]
pub struct AdapterMetric {
    /// Metric name (stable, snake_case).
    pub name: String,
    /// Metric value.
    pub value: f64,
}

/// Frozen results of a protocol adapter.
#[derive(Clone, Debug, Serialize)]
pub struct AdapterReport {
    /// Adapter family: `rr-rotation`, `fcfs-lag`, or `assured-bypass`.
    pub adapter: String,
    /// Family-specific scalars, in a fixed documented order.
    pub metrics: Vec<AdapterMetric>,
    /// Meaning of the `counts` vector for this family.
    pub counts_label: String,
    /// Family-specific per-slot counts (see `counts_label`).
    pub counts: Vec<u64>,
    /// Family-specific distribution: rotation steps, FIFO lags, or
    /// requests bypassed per grant.
    pub histogram: HistogramSnapshot,
}

/// A streaming protocol-specific analyzer.
pub trait ProtocolAdapter {
    /// Folds one trace event into the adapter state. Allocation-free.
    fn on_event(&mut self, event: &TraceEvent);

    /// Snapshots the adapter into its report. Non-consuming so serve
    /// mode can publish partial reports while ingest continues.
    fn report(&self) -> AdapterReport;
}

/// Selects the adapter for a protocol slug (the trace header's
/// `protocol` field, as written by `Arbiter::name`). Unknown slugs get
/// the bypass adapter — FIFO-deviation accounting is meaningful for any
/// arbiter.
#[must_use]
pub fn adapter_for(protocol: &str, agents: u32) -> Box<dyn ProtocolAdapter> {
    match protocol {
        "rr" | "central-rr" | "rotating-rr" => Box::new(RrRotation::new(agents)),
        "fcfs-1" | "fcfs-2" | "central-fcfs" | "ticket-fcfs" => Box::new(FcfsLag::new(agents)),
        "aap-1" | "aap-2" | "aap-2m" | "fixed-priority" | "hybrid" | "adaptive" => {
            Box::new(BypassCounts::new(agents))
        }
        _ => Box::new(BypassCounts::new(agents)),
    }
}

/// Rotation-step occupancy for the round-robin family.
#[derive(Clone, Debug)]
pub struct RrRotation {
    agents: u32,
    prev_winner: Option<u32>,
    /// Grants per step distance `(winner - prev_winner) mod N`.
    step_counts: Vec<u64>,
    steps: LogHistogram,
    grants: u64,
    repeat_grants: u64,
    max_step: u64,
}

impl RrRotation {
    /// Creates the adapter for an `agents`-agent ring.
    #[must_use]
    pub fn new(agents: u32) -> Self {
        RrRotation {
            agents,
            prev_winner: None,
            step_counts: vec![0; agents as usize],
            steps: LogHistogram::new(),
            grants: 0,
            repeat_grants: 0,
            max_step: 0,
        }
    }
}

impl ProtocolAdapter for RrRotation {
    fn on_event(&mut self, event: &TraceEvent) {
        let TraceKind::ArbitrationStart { winner, .. } = event.kind else {
            return;
        };
        let cur = winner.index() as u32;
        self.grants += 1;
        if let Some(prev) = self.prev_winner {
            let step = u64::from((cur + self.agents - prev) % self.agents);
            if let Some(slot) = self.step_counts.get_mut(step as usize) {
                *slot += 1;
            }
            self.steps.record(step as f64);
            if step == 0 {
                self.repeat_grants += 1;
            }
            if step > self.max_step {
                self.max_step = step;
            }
        }
        self.prev_winner = Some(cur);
    }

    fn report(&self) -> AdapterReport {
        AdapterReport {
            adapter: "rr-rotation".to_string(),
            metrics: vec![
                AdapterMetric {
                    name: "mean_step".to_string(),
                    value: self.steps.mean(),
                },
                AdapterMetric {
                    name: "max_step".to_string(),
                    value: self.max_step as f64,
                },
                AdapterMetric {
                    name: "repeat_grants".to_string(),
                    value: self.repeat_grants as f64,
                },
            ],
            counts_label: "grants per rotation step distance".to_string(),
            counts: self.step_counts.clone(),
            histogram: HistogramSnapshot::of(&self.steps),
        }
    }
}

/// Shared arrival-order bookkeeping for the FIFO-deviation adapters.
///
/// One outstanding request per agent (the bus model guarantees an agent
/// cannot re-request before its transfer completes), so a fixed
/// per-agent slot of arrival sequence numbers suffices: O(agents)
/// memory, O(agents) work per grant, no allocation.
#[derive(Clone, Debug)]
struct ArrivalOrder {
    next_seq: u64,
    pending_seq: Vec<Option<u64>>,
}

impl ArrivalOrder {
    fn new(agents: u32) -> Self {
        ArrivalOrder {
            next_seq: 0,
            pending_seq: vec![None; agents as usize],
        }
    }

    fn on_request(&mut self, agent_index: usize) {
        if let Some(slot) = self.pending_seq.get_mut(agent_index) {
            *slot = Some(self.next_seq);
            self.next_seq += 1;
        }
    }

    /// Retires the winner's pending request and returns its arrival
    /// sequence number, if the trace recorded one.
    fn on_grant(&mut self, agent_index: usize) -> Option<u64> {
        self.pending_seq.get_mut(agent_index)?.take()
    }

    /// Number of still-pending requests older than `seq`.
    fn older_than(&self, seq: u64) -> u64 {
        self.pending_seq
            .iter()
            .filter(|s| matches!(s, Some(other) if *other < seq))
            .count() as u64
    }
}

/// FIFO counter-lag accounting for the FCFS family.
#[derive(Clone, Debug)]
pub struct FcfsLag {
    order: ArrivalOrder,
    lags: LogHistogram,
    /// Grants to each agent that overtook at least one older request.
    overtaking_by: Vec<u64>,
    grants: u64,
    in_order: u64,
    max_lag: u64,
}

impl FcfsLag {
    /// Creates the adapter for an `agents`-agent roster.
    #[must_use]
    pub fn new(agents: u32) -> Self {
        FcfsLag {
            order: ArrivalOrder::new(agents),
            lags: LogHistogram::new(),
            overtaking_by: vec![0; agents as usize],
            grants: 0,
            in_order: 0,
            max_lag: 0,
        }
    }
}

impl ProtocolAdapter for FcfsLag {
    fn on_event(&mut self, event: &TraceEvent) {
        match event.kind {
            TraceKind::Request { agent } => self.order.on_request(agent.index()),
            TraceKind::ArbitrationStart { winner, .. } => {
                let idx = winner.index();
                self.grants += 1;
                let Some(seq) = self.order.on_grant(idx) else {
                    return;
                };
                let lag = self.order.older_than(seq);
                self.lags.record(lag as f64);
                if lag == 0 {
                    self.in_order += 1;
                } else {
                    if let Some(slot) = self.overtaking_by.get_mut(idx) {
                        *slot += 1;
                    }
                    if lag > self.max_lag {
                        self.max_lag = lag;
                    }
                }
            }
            TraceKind::TransferStart { .. }
            | TraceKind::TransferEnd { .. }
            | TraceKind::Coherence { .. } => {}
        }
    }

    fn report(&self) -> AdapterReport {
        let measured = self.lags.count();
        AdapterReport {
            adapter: "fcfs-lag".to_string(),
            metrics: vec![
                AdapterMetric {
                    name: "in_order_fraction".to_string(),
                    value: if measured == 0 {
                        1.0
                    } else {
                        self.in_order as f64 / measured as f64
                    },
                },
                AdapterMetric {
                    name: "max_lag".to_string(),
                    value: self.max_lag as f64,
                },
                AdapterMetric {
                    name: "mean_lag".to_string(),
                    value: self.lags.mean(),
                },
            ],
            counts_label: "out-of-order grants per agent".to_string(),
            counts: self.overtaking_by.clone(),
            histogram: HistogramSnapshot::of(&self.lags),
        }
    }
}

/// Bypass accounting for the assured-access and priority families.
#[derive(Clone, Debug)]
pub struct BypassCounts {
    order: ArrivalOrder,
    bypassed_per_grant: LogHistogram,
    /// Times each agent's older pending request was bypassed.
    bypassed: Vec<u64>,
    grants: u64,
    bypass_events: u64,
    bypassed_total: u64,
}

impl BypassCounts {
    /// Creates the adapter for an `agents`-agent roster.
    #[must_use]
    pub fn new(agents: u32) -> Self {
        BypassCounts {
            order: ArrivalOrder::new(agents),
            bypassed_per_grant: LogHistogram::new(),
            bypassed: vec![0; agents as usize],
            grants: 0,
            bypass_events: 0,
            bypassed_total: 0,
        }
    }
}

impl ProtocolAdapter for BypassCounts {
    fn on_event(&mut self, event: &TraceEvent) {
        match event.kind {
            TraceKind::Request { agent } => self.order.on_request(agent.index()),
            TraceKind::ArbitrationStart { winner, .. } => {
                self.grants += 1;
                let Some(seq) = self.order.on_grant(winner.index()) else {
                    return;
                };
                let mut bypassed_here = 0u64;
                for (idx, slot) in self.order.pending_seq.iter().enumerate() {
                    if matches!(slot, Some(other) if *other < seq) {
                        self.bypassed[idx] += 1;
                        bypassed_here += 1;
                    }
                }
                self.bypassed_per_grant.record(bypassed_here as f64);
                if bypassed_here > 0 {
                    self.bypass_events += 1;
                    self.bypassed_total += bypassed_here;
                }
            }
            TraceKind::TransferStart { .. }
            | TraceKind::TransferEnd { .. }
            | TraceKind::Coherence { .. } => {}
        }
    }

    fn report(&self) -> AdapterReport {
        AdapterReport {
            adapter: "assured-bypass".to_string(),
            metrics: vec![
                AdapterMetric {
                    name: "bypass_events".to_string(),
                    value: self.bypass_events as f64,
                },
                AdapterMetric {
                    name: "bypassed_total".to_string(),
                    value: self.bypassed_total as f64,
                },
                AdapterMetric {
                    name: "bypass_fraction".to_string(),
                    value: if self.grants == 0 {
                        0.0
                    } else {
                        self.bypass_events as f64 / self.grants as f64
                    },
                },
            ],
            counts_label: "times each agent was bypassed".to_string(),
            counts: self.bypassed.clone(),
            histogram: HistogramSnapshot::of(&self.bypassed_per_grant),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use busarb_types::{AgentId, Time};

    fn req(at: f64, agent: u32) -> TraceEvent {
        TraceEvent {
            at: Time::from(at),
            kind: TraceKind::Request {
                agent: AgentId::new(agent).unwrap(),
            },
        }
    }

    fn grant(at: f64, winner: u32) -> TraceEvent {
        TraceEvent {
            at: Time::from(at),
            kind: TraceKind::ArbitrationStart {
                winner: AgentId::new(winner).unwrap(),
                completes: Time::from(at + 0.5),
            },
        }
    }

    #[test]
    fn rr_rotation_tracks_step_distances() {
        let mut a: Box<dyn ProtocolAdapter> = adapter_for("rr", 4);
        // Winners 1, 2, 3, 1: steps 1, 1, 2.
        for (t, w) in [(0.0, 1), (1.0, 2), (2.0, 3), (3.0, 1)] {
            a.on_event(&grant(t, w));
        }
        let r = a.report();
        assert_eq!(r.adapter, "rr-rotation");
        assert_eq!(r.counts, vec![0, 2, 1, 0]);
        assert_eq!(r.histogram.count, 3);
        let by_name = |n: &str| {
            r.metrics
                .iter()
                .find(|m| m.name == n)
                .map(|m| m.value)
                .unwrap()
        };
        assert!((by_name("mean_step") - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(by_name("max_step"), 2.0);
        assert_eq!(by_name("repeat_grants"), 0.0);
    }

    #[test]
    fn fcfs_lag_counts_overtaken_requests() {
        let mut a: Box<dyn ProtocolAdapter> = adapter_for("fcfs-1", 3);
        // Agent 1 arrives first, then 2; agent 2 wins first: lag 1.
        a.on_event(&req(0.0, 1));
        a.on_event(&req(0.1, 2));
        a.on_event(&grant(0.2, 2));
        a.on_event(&grant(0.3, 1));
        let r = a.report();
        assert_eq!(r.adapter, "fcfs-lag");
        assert_eq!(r.histogram.count, 2);
        assert_eq!(r.histogram.max, 1.0);
        assert_eq!(r.counts, vec![0, 1, 0]); // agent 2 (index 1) overtook
        let in_order = r.metrics.iter().find(|m| m.name == "in_order_fraction");
        assert_eq!(in_order.map(|m| m.value), Some(0.5));
    }

    #[test]
    fn bypass_counts_attribute_to_the_jumped_agent() {
        let mut a: Box<dyn ProtocolAdapter> = adapter_for("aap-2", 3);
        a.on_event(&req(0.0, 1));
        a.on_event(&req(0.1, 2));
        a.on_event(&req(0.2, 3));
        // Agent 3 (youngest) wins: bypasses agents 1 and 2.
        a.on_event(&grant(0.3, 3));
        let r = a.report();
        assert_eq!(r.adapter, "assured-bypass");
        assert_eq!(r.counts, vec![1, 1, 0]);
        assert_eq!(r.histogram.max, 2.0);
        let total = r.metrics.iter().find(|m| m.name == "bypassed_total");
        assert_eq!(total.map(|m| m.value), Some(2.0));
    }

    #[test]
    fn every_protocol_slug_selects_an_adapter_family() {
        let families: Vec<(&str, &str)> = [
            ("rr", "rr-rotation"),
            ("central-rr", "rr-rotation"),
            ("rotating-rr", "rr-rotation"),
            ("fcfs-1", "fcfs-lag"),
            ("fcfs-2", "fcfs-lag"),
            ("central-fcfs", "fcfs-lag"),
            ("ticket-fcfs", "fcfs-lag"),
            ("aap-1", "assured-bypass"),
            ("aap-2", "assured-bypass"),
            ("aap-2m", "assured-bypass"),
            ("fixed-priority", "assured-bypass"),
            ("hybrid", "assured-bypass"),
            ("adaptive", "assured-bypass"),
            ("some-future-protocol", "assured-bypass"),
        ]
        .to_vec();
        for (slug, family) in families {
            let r = adapter_for(slug, 2).report();
            assert_eq!(r.adapter, family, "slug {slug}");
        }
    }
}
