//! Bus-usage classification: splitting simulated time into busy /
//! backpressure / free / idle.
//!
//! This is the bus-arbitration analogue of a CPU-profiler's cycle
//! accounting. Every interval between consecutive trace events lands in
//! exactly one of four classes:
//!
//! * **busy** — a transfer occupied the bus (useful work);
//! * **backpressure** — no transfer, but an arbitration was still
//!   resolving (protocol overhead: the paper's `2L/B`-style arbitration
//!   cost shows up here);
//! * **free** — no transfer and no arbitration in flight, yet at least
//!   one request was pending (bandwidth lost to protocol rules, e.g.
//!   transaction-aligned grant timing);
//! * **idle** — nothing pending (no demand; not the protocol's fault).
//!
//! The classes are disjoint and sum to the trace's time span, so their
//! fractions read directly as a utilization breakdown. Alongside the
//! time split the analyzer histograms per-transaction delays (the `wait`
//! carried by completion records) and burst lengths (consecutive
//! completions with no idle gap), both on the log-bucketed resolution
//! shared with the live metrics registry.

use busarb_obs::{HistogramSnapshot, LogHistogram};
use busarb_types::{TraceEvent, TraceKind};
use serde::Serialize;

/// Frozen results of [`BusUsage`]: the four-way time split plus delay
/// and burst-length distributions.
#[derive(Clone, Debug, Serialize)]
pub struct UsageReport {
    /// Simulated time spanned by the trace (first event is implicitly at
    /// the time origin).
    pub span: f64,
    /// Time a transfer occupied the bus.
    pub busy: f64,
    /// Transfer-free time spent resolving arbitration.
    pub backpressure: f64,
    /// Time the bus sat unused while requests were pending.
    pub free: f64,
    /// Time with no demand at all.
    pub idle: f64,
    /// Completed transfers.
    pub transfers: u64,
    /// Bursts (maximal runs of completions without an idle gap).
    pub bursts: u64,
    /// Per-transaction delay distribution (completion `wait` values, in
    /// transfer times).
    pub delay: HistogramSnapshot,
    /// Burst-length distribution (completions per burst).
    pub burst_len: HistogramSnapshot,
}

impl UsageReport {
    /// An all-zero report: the identity element of [`merge`].
    ///
    /// [`merge`]: UsageReport::merge
    #[must_use]
    pub fn empty() -> Self {
        UsageReport {
            span: 0.0,
            busy: 0.0,
            backpressure: 0.0,
            free: 0.0,
            idle: 0.0,
            transfers: 0,
            bursts: 0,
            delay: HistogramSnapshot::of(&LogHistogram::new()),
            burst_len: HistogramSnapshot::of(&LogHistogram::new()),
        }
    }

    /// Fraction of the span classified busy (0 on an empty span).
    #[must_use]
    pub fn busy_fraction(&self) -> f64 {
        if self.span > 0.0 {
            self.busy / self.span
        } else {
            0.0
        }
    }

    /// Folds another stream's usage into this one (times and counts add,
    /// histograms merge bucketwise). Used by serve-mode aggregation;
    /// fold in tag-sorted stream order for deterministic float sums.
    pub fn merge(&mut self, other: &UsageReport) {
        self.span += other.span;
        self.busy += other.busy;
        self.backpressure += other.backpressure;
        self.free += other.free;
        self.idle += other.idle;
        self.transfers += other.transfers;
        self.bursts += other.bursts;
        self.delay.merge(&other.delay);
        self.burst_len.merge(&other.burst_len);
    }
}

/// Streaming bus-usage analyzer. Fixed-size state: feed any number of
/// events through [`BusUsage::push`] without memory growth.
#[derive(Clone, Debug)]
pub struct BusUsage {
    last_at: f64,
    transfer_active: bool,
    /// Time at which the most recent arbitration settles.
    arb_until: f64,
    /// Requests asserted and not yet granted bus mastership.
    pending: u32,
    busy: f64,
    backpressure: f64,
    free: f64,
    idle: f64,
    transfers: u64,
    bursts: u64,
    burst_len: u64,
    delay: LogHistogram,
    burst_hist: LogHistogram,
}

impl Default for BusUsage {
    fn default() -> Self {
        BusUsage::new()
    }
}

impl BusUsage {
    /// Creates an analyzer with the time origin at 0.
    #[must_use]
    pub fn new() -> Self {
        BusUsage {
            last_at: 0.0,
            transfer_active: false,
            arb_until: f64::NEG_INFINITY,
            pending: 0,
            busy: 0.0,
            backpressure: 0.0,
            free: 0.0,
            idle: 0.0,
            transfers: 0,
            bursts: 0,
            burst_len: 0,
            delay: LogHistogram::new(),
            burst_hist: LogHistogram::new(),
        }
    }

    /// Classifies the interval since the previous event, then folds the
    /// event into the bus state. Allocation-free.
    pub fn push(&mut self, event: &TraceEvent) {
        let at = event.at.as_f64();
        self.account(at);
        match event.kind {
            TraceKind::Request { .. } => self.pending += 1,
            TraceKind::ArbitrationStart { completes, .. } => {
                let completes = completes.as_f64();
                if completes > self.arb_until {
                    self.arb_until = completes;
                }
            }
            TraceKind::TransferStart { .. } => {
                self.pending = self.pending.saturating_sub(1);
                self.transfer_active = true;
            }
            TraceKind::TransferEnd { wait, .. } => {
                self.transfer_active = false;
                self.transfers += 1;
                self.burst_len += 1;
                self.delay.record(wait);
            }
            // Coherence events annotate the completion that precedes
            // them at the same timestamp; they do not change bus state.
            TraceKind::Coherence { .. } => {}
        }
    }

    /// Splits `[self.last_at, at)` across the four classes.
    fn account(&mut self, at: f64) {
        let mut from = self.last_at;
        if at <= from {
            return;
        }
        self.last_at = at;
        if self.transfer_active {
            self.busy += at - from;
            return;
        }
        // An unresolved arbitration may end inside the interval: charge
        // the prefix to backpressure and re-classify the remainder.
        if from < self.arb_until {
            let until = if at < self.arb_until { at } else { self.arb_until };
            self.backpressure += until - from;
            from = until;
            if from >= at {
                return;
            }
        }
        if self.pending > 0 {
            self.free += at - from;
        } else {
            self.idle += at - from;
            self.close_burst();
        }
    }

    /// Ends the current burst (if any) and records its length.
    fn close_burst(&mut self) {
        if self.burst_len > 0 {
            self.bursts += 1;
            self.burst_hist.record(self.burst_len as f64);
            self.burst_len = 0;
        }
    }

    /// Freezes the analyzer into a [`UsageReport`], closing any burst
    /// still open at end-of-trace.
    #[must_use]
    pub fn finish(mut self) -> UsageReport {
        self.close_burst();
        UsageReport {
            span: self.last_at,
            busy: self.busy,
            backpressure: self.backpressure,
            free: self.free,
            idle: self.idle,
            transfers: self.transfers,
            bursts: self.bursts,
            delay: HistogramSnapshot::of(&self.delay),
            burst_len: HistogramSnapshot::of(&self.burst_hist),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use busarb_types::{AgentId, Time};

    fn ev(at: f64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            at: Time::from(at),
            kind,
        }
    }

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    #[test]
    fn classifies_all_four_interval_kinds() {
        let mut u = BusUsage::new();
        // 0..1: idle (no demand). Request at 1.
        u.push(&ev(1.0, TraceKind::Request { agent: id(1) }));
        // 1..1.5: free (pending, no arbitration recorded yet). Arb wins
        // at 1.5, settling at 2.0.
        u.push(&ev(
            1.5,
            TraceKind::ArbitrationStart {
                winner: id(1),
                completes: Time::from(2.0),
            },
        ));
        // 1.5..2.0: backpressure; 2.0..2.5: free (granted, bus idle).
        u.push(&ev(2.5, TraceKind::TransferStart { agent: id(1) }));
        // 2.5..3.5: busy.
        u.push(&ev(
            3.5,
            TraceKind::TransferEnd {
                agent: id(1),
                wait: 2.5,
            },
        ));
        let r = u.finish();
        assert_eq!(r.span, 3.5);
        assert_eq!(r.idle, 1.0);
        assert_eq!(r.free, 1.0);
        assert_eq!(r.backpressure, 0.5);
        assert_eq!(r.busy, 1.0);
        assert_eq!(r.transfers, 1);
        assert_eq!(r.bursts, 1);
        assert_eq!(r.delay.count, 1);
        assert_eq!(r.delay.sum, 2.5);
        assert!((r.busy_fraction() - 1.0 / 3.5).abs() < 1e-12);
    }

    #[test]
    fn idle_gap_splits_bursts() {
        let mut u = BusUsage::new();
        for (start, end) in [(0.0, 1.0), (1.0, 2.0), (5.0, 6.0)] {
            u.push(&ev(start, TraceKind::Request { agent: id(1) }));
            u.push(&ev(start, TraceKind::TransferStart { agent: id(1) }));
            u.push(&ev(
                end,
                TraceKind::TransferEnd {
                    agent: id(1),
                    wait: end - start,
                },
            ));
        }
        let r = u.finish();
        // Transfers at 0-1, 1-2 form one burst; the idle gap 2..5 closes
        // it; the last transfer is its own burst.
        assert_eq!(r.bursts, 2);
        assert_eq!(r.burst_len.count, 2);
        assert_eq!(r.burst_len.min, 1.0);
        assert_eq!(r.burst_len.max, 2.0);
        assert_eq!(r.idle, 3.0);
        assert_eq!(r.busy, 3.0);
    }

    #[test]
    fn merge_adds_components() {
        let mut u = BusUsage::new();
        u.push(&ev(1.0, TraceKind::Request { agent: id(1) }));
        let mut a = u.clone().finish();
        let b = u.finish();
        a.merge(&b);
        assert_eq!(a.span, 2.0);
        assert_eq!(a.idle, 2.0);
        let empty = UsageReport::empty();
        let mut c = a.clone();
        c.merge(&empty);
        assert_eq!(c.span, a.span);
        assert_eq!(c.transfers, a.transfers);
    }
}
