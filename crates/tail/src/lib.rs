//! Streaming trace analytics for `busarb-trace/1` exports.
//!
//! The observability layer (`busarb-obs`) can *export* a lossless trace
//! of every simulated bus event; this crate is the other half of that
//! story — a bounded-memory analytics engine that consumes those traces
//! incrementally, in either framing (JSONL or BTRC binary,
//! auto-detected), without ever materializing the event list. Traces
//! from production-scale runs are far larger than RAM; every analyzer
//! here keeps state that is O(agents + histogram buckets), so peak
//! memory is independent of trace length and throughput is bounded by
//! parsing, not analysis (see `BENCH_analyze.json`).
//!
//! A [`Pipeline`] fans each decoded event out to four analyzers:
//!
//! * **replay** (`busarb_obs::ReplayBuilder`) — the simulator's own
//!   accounting arithmetic, reproducing the live run's mean wait,
//!   confidence interval, and utilization bit-for-bit;
//! * **usage** ([`BusUsage`]) — profiler-style time classification into
//!   busy / backpressure / free / idle, plus delay and burst-length
//!   histograms on the shared log-bucket resolution;
//! * **fairness** ([`FairnessTracker`]) — per-agent grant shares and
//!   Jain's index over a sliding window of grants;
//! * **a protocol adapter** ([`adapter_for`]) — the family-specific
//!   quantity: round-robin rotation-step occupancy, FCFS counter lag,
//!   or assured-access bypass counts.
//!
//! Three front doors drive the pipeline: `busarb analyze FILE...` (one
//! deterministic report per trace, text or JSON), `repro inspect` (the
//! experiments harness's cross-check, rewired onto this streaming
//! path), and `busarb serve` ([`serve`]) — a long-running process that
//! ingests several trace streams concurrently and answers aggregate
//! queries over a line-oriented protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapters;
mod fairness;
pub mod serve;
pub mod synth;
mod usage;

pub use adapters::{
    adapter_for, AdapterMetric, AdapterReport, BypassCounts, FcfsLag, ProtocolAdapter, RrRotation,
};
pub use fairness::{FairnessReport, FairnessTracker, FAIRNESS_STRIDE, FAIRNESS_WINDOW};
pub use usage::{BusUsage, UsageReport};

use std::io::Read;
use std::path::Path;

use busarb_obs::{ReplayBuilder, TraceFormat, TraceHeader, TraceReader};
use busarb_types::{TraceEvent, TraceKind};
use serde::Serialize;

/// Schema tag written into every analysis report.
pub const ANALYSIS_SCHEMA: &str = "busarb-analysis/1";

/// Replay-derived aggregates in serializable form: the fields of
/// `busarb_obs::Replay` that the report exposes.
#[derive(Clone, Debug, Serialize)]
pub struct ReplaySummary {
    /// Batch-means point estimate of the mean wait (absent when the
    /// trace has too few post-warm-up completions to fill every batch).
    pub mean_wait: Option<f64>,
    /// Half-width of the batch-means confidence interval.
    pub halfwidth: Option<f64>,
    /// Measured (post-warm-up, within-budget) completions.
    pub samples: u64,
    /// Bus utilization over the measurement interval.
    pub utilization: f64,
    /// Simulated time spanned by the measurement interval.
    pub measured_time: f64,
    /// Request-line assertions (whole trace).
    pub requests: u64,
    /// Grants (whole trace).
    pub grants: u64,
    /// Transfer starts (whole trace).
    pub transfers: u64,
    /// Completions (whole trace).
    pub completions: u64,
    /// Completions consumed by the warm-up discard.
    pub warmup_consumed: u64,
    /// Measured completions per agent, by roster index.
    pub per_agent_samples: Vec<u64>,
}

impl ReplaySummary {
    fn of(replay: &busarb_obs::Replay) -> Self {
        ReplaySummary {
            mean_wait: replay.mean_wait.as_ref().map(|e| e.mean),
            halfwidth: replay.mean_wait.as_ref().map(|e| e.halfwidth),
            samples: replay.samples(),
            utilization: replay.utilization,
            measured_time: replay.measured_time,
            requests: replay.requests,
            grants: replay.grants,
            transfers: replay.transfers,
            completions: replay.completions,
            warmup_consumed: replay.warmup_consumed,
            per_agent_samples: replay.per_agent_samples.clone(),
        }
    }
}

/// The complete analysis of one trace stream.
#[derive(Clone, Debug, Serialize)]
pub struct AnalysisReport {
    /// Schema tag ([`ANALYSIS_SCHEMA`]).
    pub schema: String,
    /// Stream name (file path or serve-mode stream tag).
    pub source: String,
    /// On-disk framing the stream used (`jsonl` or `binary`).
    pub format: String,
    /// Protocol slug from the trace header.
    pub protocol: String,
    /// Agents in the roster.
    pub agents: u32,
    /// Trace events consumed.
    pub events: u64,
    /// Replay-derived aggregates (matches the live run bit-for-bit).
    pub replay: ReplaySummary,
    /// Busy/backpressure/free/idle time split and distributions.
    pub usage: UsageReport,
    /// Grant-share fairness over sliding windows.
    pub fairness: FairnessReport,
    /// Protocol-family-specific view.
    pub adapter: AdapterReport,
}

impl AnalysisReport {
    /// Renders the report as compact JSON (one line).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }

    /// Renders the report as a deterministic human-readable block.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: protocol={} agents={} format={} events={}",
            self.source, self.protocol, self.agents, self.format, self.events
        );
        match (self.replay.mean_wait, self.replay.halfwidth) {
            (Some(mean), Some(hw)) => {
                let _ = writeln!(
                    out,
                    "  replay   mean_wait={mean:.6} ±{hw:.6} utilization={:.6} samples={}",
                    self.replay.utilization, self.replay.samples
                );
            }
            _ => {
                let _ = writeln!(
                    out,
                    "  replay   mean_wait=n/a (incomplete batches) utilization={:.6} samples={}",
                    self.replay.utilization, self.replay.samples
                );
            }
        }
        let _ = writeln!(
            out,
            "  counts   requests={} grants={} transfers={} completions={}",
            self.replay.requests, self.replay.grants, self.replay.transfers,
            self.replay.completions
        );
        let span = if self.usage.span > 0.0 {
            self.usage.span
        } else {
            1.0
        };
        let _ = writeln!(
            out,
            "  usage    busy={:.1}% backpressure={:.1}% free={:.1}% idle={:.1}% (span {:.1})",
            100.0 * self.usage.busy / span,
            100.0 * self.usage.backpressure / span,
            100.0 * self.usage.free / span,
            100.0 * self.usage.idle / span,
            self.usage.span
        );
        let _ = writeln!(
            out,
            "  delay    mean={:.6} max={:.6} n={}   bursts n={} mean_len={:.2}",
            self.usage.delay.mean(),
            if self.usage.delay.count == 0 {
                0.0
            } else {
                self.usage.delay.max
            },
            self.usage.delay.count,
            self.usage.bursts,
            self.usage.burst_len.mean()
        );
        let _ = writeln!(
            out,
            "  fairness jain_overall={:.4} jain_min={:.4} jain_mean={:.4} windows={} (w={})",
            self.fairness.jain_overall,
            self.fairness.jain_min,
            self.fairness.jain_mean,
            self.fairness.jain_windows,
            self.fairness.window
        );
        let _ = write!(out, "  {:8}", self.adapter.adapter);
        for m in &self.adapter.metrics {
            let _ = write!(out, " {}={:.4}", m.name, m.value);
        }
        let _ = writeln!(out);
        out
    }
}

/// The streaming analysis pipeline: replay + usage + fairness + the
/// protocol adapter, fed one event at a time.
pub struct Pipeline {
    header: TraceHeader,
    replay: ReplayBuilder,
    usage: BusUsage,
    fairness: FairnessTracker,
    adapter: Box<dyn ProtocolAdapter>,
    events: u64,
}

impl Pipeline {
    /// Builds the pipeline for one trace stream from its header.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::ErrorKind::InvalidData`] when the header's
    /// batch-means configuration is invalid.
    pub fn new(header: &TraceHeader) -> std::io::Result<Self> {
        Ok(Pipeline {
            header: header.clone(),
            replay: ReplayBuilder::new(header)?,
            usage: BusUsage::new(),
            fairness: FairnessTracker::new(header.agents),
            adapter: adapter_for(&header.protocol, header.agents),
            events: 0,
        })
    }

    /// Folds one event into every analyzer. Allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::ErrorKind::InvalidData`] when the event names
    /// an agent outside the header's roster.
    pub fn push(&mut self, event: &TraceEvent) -> std::io::Result<()> {
        self.replay.push(event)?;
        self.usage.push(event);
        if let TraceKind::ArbitrationStart { winner, .. } = event.kind {
            self.fairness.on_grant(winner.index());
        }
        self.adapter.on_event(event);
        self.events += 1;
        Ok(())
    }

    /// Events consumed so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Snapshots the current state into a report without consuming the
    /// pipeline (serve mode publishes these while ingest continues).
    #[must_use]
    pub fn report(&self, source: &str, format: TraceFormat) -> AnalysisReport {
        AnalysisReport {
            schema: ANALYSIS_SCHEMA.to_string(),
            source: source.to_string(),
            format: format.to_string(),
            protocol: self.header.protocol.clone(),
            agents: self.header.agents,
            events: self.events,
            replay: ReplaySummary::of(&self.replay.clone().finish()),
            usage: self.usage.clone().finish(),
            fairness: self.fairness.clone().finish(),
            adapter: self.adapter.report(),
        }
    }
}

/// Drives a [`TraceReader`] to exhaustion through a [`Pipeline`].
///
/// # Errors
///
/// Propagates structured stream errors (`busarb_obs::StreamError`,
/// carrying the byte offset of the failure) wrapped in
/// [`std::io::Error`], and `InvalidData` errors from the analyzers.
pub fn analyze<R: Read>(
    source: &str,
    reader: &mut TraceReader<R>,
) -> std::io::Result<AnalysisReport> {
    let mut pipeline = Pipeline::new(reader.header())?;
    while let Some(event) = reader.next_event()? {
        pipeline.push(&event)?;
    }
    Ok(pipeline.report(source, reader.format()))
}

/// Opens a trace file and analyzes it end to end, streaming.
///
/// # Errors
///
/// Propagates open/parse errors; parse failures carry the byte offset
/// (recover it with `busarb_obs::stream_error`).
pub fn analyze_path(path: &Path) -> std::io::Result<AnalysisReport> {
    let mut reader = busarb_obs::open_trace(path)?;
    analyze(&path.display().to_string(), &mut reader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use busarb_obs::{JsonlSink, TraceSink, TRACE_SCHEMA};
    use busarb_types::{AgentId, Time};

    fn header(protocol: &str, agents: u32) -> TraceHeader {
        TraceHeader {
            schema: TRACE_SCHEMA.to_string(),
            protocol: protocol.to_string(),
            agents,
            seed: 7,
            warmup_samples: 2,
            batches: 2,
            samples_per_batch: 2,
            confidence: 0.9,
        }
    }

    /// A saturated alternating two-agent trace with `n` transactions.
    fn synthetic(n: usize) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        for i in 0..n {
            let t = i as f64;
            let agent = AgentId::new(1 + (i as u32) % 2).unwrap();
            events.push(TraceEvent {
                at: Time::from(t),
                kind: TraceKind::Request { agent },
            });
            events.push(TraceEvent {
                at: Time::from(t),
                kind: TraceKind::ArbitrationStart {
                    winner: agent,
                    completes: Time::from(t + 0.25),
                },
            });
            events.push(TraceEvent {
                at: Time::from(t + 0.25),
                kind: TraceKind::TransferStart { agent },
            });
            events.push(TraceEvent {
                at: Time::from(t + 1.0),
                kind: TraceKind::TransferEnd { agent, wait: 0.75 },
            });
        }
        events
    }

    #[test]
    fn pipeline_matches_whole_file_replay() {
        let h = header("rr", 2);
        let events = synthetic(10);
        let whole = busarb_obs::replay(&h, &events).unwrap();
        let mut p = Pipeline::new(&h).unwrap();
        for e in &events {
            p.push(e).unwrap();
        }
        let r = p.report("synthetic", TraceFormat::Jsonl);
        assert_eq!(r.replay.samples, whole.samples());
        assert_eq!(r.replay.utilization, whole.utilization);
        assert_eq!(r.replay.completions, whole.completions);
        assert_eq!(r.events, 40);
        assert_eq!(r.adapter.adapter, "rr-rotation");
        assert!(r.fairness.jain_overall > 0.99);
    }

    #[test]
    fn analyze_streams_a_jsonl_trace() {
        let h = header("fcfs-1", 2);
        let mut sink = JsonlSink::new(Vec::new(), &h).unwrap();
        for e in synthetic(5) {
            sink.record(&e).unwrap();
        }
        sink.finish().unwrap();
        let bytes = sink.into_inner();
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let r = analyze("mem", &mut reader).unwrap();
        assert_eq!(r.protocol, "fcfs-1");
        assert_eq!(r.format, "jsonl");
        assert_eq!(r.events, 20);
        assert_eq!(r.adapter.adapter, "fcfs-lag");
        let json = r.to_json();
        let v = serde_json::from_str(&json).unwrap();
        assert_eq!(
            v.get("schema").and_then(serde::Value::as_str),
            Some(ANALYSIS_SCHEMA)
        );
        let text = r.render_text();
        assert!(text.contains("fcfs-lag"));
        assert!(text.contains("usage"));
    }
}
