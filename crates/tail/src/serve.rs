//! `busarb serve`: a long-running analytics process over several trace
//! streams.
//!
//! One ingest thread per stream drives the same bounded-memory
//! [`Pipeline`] as `busarb analyze`, publishing a progress counter and a
//! partial report every [`PROGRESS_STRIDE`] events into shared state.
//! Queries arrive as single lines (over stdin or a Unix socket) and are
//! answered with single JSON lines:
//!
//! ```text
//! streams            -> status of every stream, tag-sorted
//! report <stream>    -> the stream's latest AnalysisReport
//! aggregate          -> cross-stream aggregate, folded in tag order
//! drain              -> block until every ingest finishes, then status
//! help               -> command list
//! quit               -> close this session (socket: this connection)
//! shutdown           -> stop the server (socket mode)
//! ```
//!
//! Aggregation folds streams in tag-sorted (`BTreeMap`) order — the
//! same merge discipline the experiments harness uses for sweep rollups
//! — so the aggregate is deterministic no matter which ingest thread
//! finished first.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};

use serde::Serialize;

use crate::{AnalysisReport, Pipeline, UsageReport, ANALYSIS_SCHEMA};

/// Events between progress/partial-report publications from an ingest
/// thread.
pub const PROGRESS_STRIDE: u64 = 65_536;

/// One stream's externally visible status.
#[derive(Clone, Debug, Serialize)]
pub struct StreamStatus {
    /// Stream tag.
    pub stream: String,
    /// Events ingested so far (updated every [`PROGRESS_STRIDE`]).
    pub events: u64,
    /// Whether ingest has finished (successfully or not).
    pub done: bool,
    /// Ingest failure, if any (carries the byte offset for parse
    /// errors).
    pub error: Option<String>,
}

/// Cross-stream aggregate: counters sum, usage merges bucketwise.
#[derive(Clone, Debug, Serialize)]
pub struct AggregateReport {
    /// Schema tag ([`ANALYSIS_SCHEMA`]).
    pub schema: String,
    /// Streams being served.
    pub streams: u64,
    /// Streams whose ingest has finished.
    pub done: u64,
    /// Streams whose ingest failed.
    pub errors: u64,
    /// Events ingested across all streams.
    pub events: u64,
    /// Requests across all streams (from published reports).
    pub requests: u64,
    /// Grants across all streams.
    pub grants: u64,
    /// Completions across all streams.
    pub completions: u64,
    /// Distinct protocol slugs observed, sorted.
    pub protocols: Vec<String>,
    /// Merged busy/backpressure/free/idle split and distributions.
    pub usage: UsageReport,
}

struct Slot {
    events: u64,
    done: bool,
    error: Option<String>,
    report: Option<AnalysisReport>,
}

/// Shared server state: one slot per stream plus a condition variable
/// ingest threads signal on completion (`drain` waits on it).
pub struct ServeState {
    slots: Mutex<BTreeMap<String, Slot>>,
    finished: Condvar,
}

impl ServeState {
    /// Creates the state with one empty slot per stream tag.
    #[must_use]
    pub fn new(streams: &[(String, PathBuf)]) -> Self {
        let slots = streams
            .iter()
            .map(|(name, _)| {
                (
                    name.clone(),
                    Slot {
                        events: 0,
                        done: false,
                        error: None,
                        report: None,
                    },
                )
            })
            .collect();
        ServeState {
            slots: Mutex::new(slots),
            finished: Condvar::new(),
        }
    }

    fn publish(&self, name: &str, events: u64, report: Option<AnalysisReport>) {
        let mut slots = self.slots.lock().expect("serve state lock");
        if let Some(slot) = slots.get_mut(name) {
            slot.events = events;
            if report.is_some() {
                slot.report = report;
            }
        }
    }

    fn finish(&self, name: &str, events: u64, report: Option<AnalysisReport>, error: Option<String>) {
        let mut slots = self.slots.lock().expect("serve state lock");
        if let Some(slot) = slots.get_mut(name) {
            slot.events = events;
            slot.done = true;
            slot.error = error;
            if report.is_some() {
                slot.report = report;
            }
        }
        drop(slots);
        self.finished.notify_all();
    }

    fn statuses(slots: &BTreeMap<String, Slot>) -> Vec<StreamStatus> {
        slots
            .iter()
            .map(|(name, slot)| StreamStatus {
                stream: name.clone(),
                events: slot.events,
                done: slot.done,
                error: slot.error.clone(),
            })
            .collect()
    }
}

/// What the query loop should do after answering one line.
enum Outcome {
    /// Keep serving this session.
    Continue,
    /// Close this session (stdin: exit; socket: drop the connection).
    Quit,
    /// Stop the whole server (socket mode).
    Shutdown,
}

/// Answers one query line against the shared state.
fn handle(state: &ServeState, line: &str) -> (String, Outcome) {
    let mut parts = line.split_whitespace();
    let cmd = parts.next().unwrap_or("");
    let arg = parts.next();
    match (cmd, arg) {
        ("streams", None) => {
            let slots = state.slots.lock().expect("serve state lock");
            (json(&ServeState::statuses(&slots)), Outcome::Continue)
        }
        ("report", Some(name)) => {
            let slots = state.slots.lock().expect("serve state lock");
            let reply = match slots.get(name) {
                Some(slot) => match &slot.report {
                    Some(report) => report.to_json(),
                    None => error_json(&format!("stream `{name}` has no report yet")),
                },
                None => error_json(&format!("unknown stream `{name}`")),
            };
            (reply, Outcome::Continue)
        }
        ("aggregate", None) => {
            let slots = state.slots.lock().expect("serve state lock");
            (json(&aggregate(&slots)), Outcome::Continue)
        }
        ("drain", None) => {
            let mut slots = state.slots.lock().expect("serve state lock");
            while slots.values().any(|s| !s.done) {
                slots = state.finished.wait(slots).expect("serve state lock");
            }
            (json(&ServeState::statuses(&slots)), Outcome::Continue)
        }
        ("help", None) => (
            "{\"commands\":[\"streams\",\"report <stream>\",\"aggregate\",\"drain\",\"help\",\"quit\",\"shutdown\"]}"
                .to_string(),
            Outcome::Continue,
        ),
        ("quit", None) => (error_json("bye"), Outcome::Quit),
        ("shutdown", None) => (error_json("shutting down"), Outcome::Shutdown),
        _ => (
            error_json(&format!("unknown command `{line}` (try `help`)")),
            Outcome::Continue,
        ),
    }
}

/// Folds every published report, in tag-sorted order.
fn aggregate(slots: &BTreeMap<String, Slot>) -> AggregateReport {
    let mut agg = AggregateReport {
        schema: ANALYSIS_SCHEMA.to_string(),
        streams: slots.len() as u64,
        done: 0,
        errors: 0,
        events: 0,
        requests: 0,
        grants: 0,
        completions: 0,
        protocols: Vec::new(),
        usage: UsageReport::empty(),
    };
    for slot in slots.values() {
        agg.events += slot.events;
        if slot.done {
            agg.done += 1;
        }
        if slot.error.is_some() {
            agg.errors += 1;
        }
        if let Some(report) = &slot.report {
            agg.requests += report.replay.requests;
            agg.grants += report.replay.grants;
            agg.completions += report.replay.completions;
            agg.usage.merge(&report.usage);
            if !agg.protocols.iter().any(|p| p == &report.protocol) {
                agg.protocols.push(report.protocol.clone());
            }
        }
    }
    agg.protocols.sort();
    agg
}

fn json<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_else(|e| error_json(&format!("serialize: {e}")))
}

fn error_json(message: &str) -> String {
    json(&ErrorReply {
        error: message.to_string(),
    })
}

#[derive(Serialize)]
struct ErrorReply {
    error: String,
}

/// Ingests one stream file through a [`Pipeline`], publishing progress.
fn ingest(state: &ServeState, name: &str, path: &Path) {
    let fail = |events, report, e: std::io::Error| {
        state.finish(name, events, report, Some(e.to_string()));
    };
    let mut reader = match busarb_obs::open_trace(path) {
        Ok(reader) => reader,
        Err(e) => return fail(0, None, e),
    };
    let mut pipeline = match Pipeline::new(reader.header()) {
        Ok(p) => p,
        Err(e) => return fail(0, None, e),
    };
    let format = reader.format();
    loop {
        match reader.next_event() {
            Ok(Some(event)) => {
                if let Err(e) = pipeline.push(&event) {
                    let events = pipeline.events();
                    let report = pipeline.report(name, format);
                    return fail(events, Some(report), e);
                }
                if pipeline.events() % PROGRESS_STRIDE == 0 {
                    state.publish(name, pipeline.events(), Some(pipeline.report(name, format)));
                }
            }
            Ok(None) => {
                let events = pipeline.events();
                let report = pipeline.report(name, format);
                return state.finish(name, events, Some(report), None);
            }
            Err(e) => {
                let events = pipeline.events();
                let report = pipeline.report(name, format);
                return fail(events, Some(report), e.into());
            }
        }
    }
}

/// Runs the server against a line-oriented input/output pair (stdin
/// mode, and the unit tests' in-memory harness).
///
/// Ingest threads for every stream run inside the call; the function
/// returns when the input ends or a `quit`/`shutdown` line arrives,
/// after joining the ingest threads (stream files are finite).
///
/// # Errors
///
/// Propagates I/O errors from the query input/output.
pub fn serve_streams<I: BufRead, O: Write>(
    streams: &[(String, PathBuf)],
    input: I,
    mut output: O,
) -> std::io::Result<()> {
    let state = ServeState::new(streams);
    std::thread::scope(|scope| {
        for (name, path) in streams {
            let state = &state;
            scope.spawn(move || ingest(state, name, path));
        }
        for line in input.lines() {
            let line = line?;
            let query = line.trim();
            if query.is_empty() {
                continue;
            }
            let (reply, outcome) = handle(&state, query);
            writeln!(output, "{reply}")?;
            output.flush()?;
            if matches!(outcome, Outcome::Quit | Outcome::Shutdown) {
                break;
            }
        }
        Ok(())
    })
}

/// Runs the server on a Unix domain socket at `socket_path`.
///
/// Connections are served one at a time (queries are cheap reads over
/// shared state; ingest parallelism is what matters). `quit` closes the
/// current connection; `shutdown` stops the server.
///
/// # Errors
///
/// Propagates socket bind/accept/read/write errors.
pub fn serve_socket(streams: &[(String, PathBuf)], socket_path: &Path) -> std::io::Result<()> {
    use std::os::unix::net::UnixListener;
    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(socket_path);
    let listener = UnixListener::bind(socket_path)?;
    let state = ServeState::new(streams);
    std::thread::scope(|scope| {
        for (name, path) in streams {
            let state = &state;
            scope.spawn(move || ingest(state, name, path));
        }
        'serve: loop {
            let (connection, _) = listener.accept()?;
            let reader = std::io::BufReader::new(connection.try_clone()?);
            let mut writer = connection;
            for line in reader.lines() {
                let Ok(line) = line else { break };
                let query = line.trim();
                if query.is_empty() {
                    continue;
                }
                let (reply, outcome) = handle(&state, query);
                if writeln!(writer, "{reply}").is_err() {
                    break;
                }
                match outcome {
                    Outcome::Continue => {}
                    Outcome::Quit => break,
                    Outcome::Shutdown => break 'serve,
                }
            }
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use busarb_obs::{BinarySink, JsonlSink, TraceHeader, TraceSink, TRACE_SCHEMA};
    use busarb_types::{AgentId, Time, TraceEvent, TraceKind};
    use std::io::Cursor;

    fn header(protocol: &str) -> TraceHeader {
        TraceHeader {
            schema: TRACE_SCHEMA.to_string(),
            protocol: protocol.to_string(),
            agents: 2,
            seed: 1,
            warmup_samples: 0,
            batches: 2,
            samples_per_batch: 2,
            confidence: 0.9,
        }
    }

    fn transactions(n: usize) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        for i in 0..n {
            let t = i as f64;
            let agent = AgentId::new(1 + (i as u32) % 2).unwrap();
            events.push(TraceEvent {
                at: Time::from(t),
                kind: TraceKind::Request { agent },
            });
            events.push(TraceEvent {
                at: Time::from(t),
                kind: TraceKind::ArbitrationStart {
                    winner: agent,
                    completes: Time::from(t + 0.25),
                },
            });
            events.push(TraceEvent {
                at: Time::from(t + 0.25),
                kind: TraceKind::TransferStart { agent },
            });
            events.push(TraceEvent {
                at: Time::from(t + 1.0),
                kind: TraceKind::TransferEnd { agent, wait: 0.5 },
            });
        }
        events
    }

    fn temp_trace(name: &str, protocol: &str, n: usize, binary: bool) -> PathBuf {
        let path = std::env::temp_dir().join(format!("busarb-serve-test-{name}-{}", std::process::id()));
        let file = std::fs::File::create(&path).unwrap();
        if binary {
            let mut sink = BinarySink::new(file, &header(protocol)).unwrap();
            for e in transactions(n) {
                sink.record(&e).unwrap();
            }
            sink.finish().unwrap();
        } else {
            let mut sink = JsonlSink::new(file, &header(protocol)).unwrap();
            for e in transactions(n) {
                sink.record(&e).unwrap();
            }
            sink.finish().unwrap();
        }
        path
    }

    #[test]
    fn serves_streams_reports_and_aggregate() {
        let a = temp_trace("a", "rr", 8, false);
        let b = temp_trace("b", "fcfs-1", 8, true);
        let streams = vec![("alpha".to_string(), a.clone()), ("beta".to_string(), b.clone())];
        let input = Cursor::new("drain\nstreams\nreport alpha\nreport missing\naggregate\nquit\n");
        let mut output = Vec::new();
        serve_streams(&streams, input, &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        // drain + streams: both done, tag-sorted (alpha before beta).
        let statuses = serde_json::from_str(lines[1]).unwrap();
        let arr = statuses.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("stream").and_then(serde::Value::as_str), Some("alpha"));
        assert_eq!(arr[0].get("done").and_then(serde::Value::as_bool), Some(true));
        assert_eq!(arr[1].get("stream").and_then(serde::Value::as_str), Some("beta"));
        // report alpha is a full analysis report.
        let report = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(report.get("protocol").and_then(serde::Value::as_str), Some("rr"));
        assert_eq!(report.get("events").and_then(serde::Value::as_u64), Some(32));
        // unknown stream is a structured error.
        assert!(lines[3].contains("unknown stream"));
        // aggregate sums both streams, protocols sorted.
        let agg = serde_json::from_str(lines[4]).unwrap();
        assert_eq!(agg.get("events").and_then(serde::Value::as_u64), Some(64));
        assert_eq!(agg.get("done").and_then(serde::Value::as_u64), Some(2));
        assert_eq!(agg.get("grants").and_then(serde::Value::as_u64), Some(16));
        let protocols = agg.get("protocols").unwrap().as_array().unwrap();
        assert_eq!(protocols.len(), 2);
        assert_eq!(protocols[0].as_str(), Some("fcfs-1"));
        let _ = std::fs::remove_file(a);
        let _ = std::fs::remove_file(b);
    }

    #[test]
    fn ingest_failure_is_reported_not_fatal() {
        let missing = ("ghost".to_string(), PathBuf::from("/nonexistent/trace.btrc"));
        let input = Cursor::new("drain\nquit\n");
        let mut output = Vec::new();
        serve_streams(&[missing], input, &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let statuses = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        let arr = statuses.as_array().unwrap();
        assert_eq!(arr[0].get("done").and_then(serde::Value::as_bool), Some(true));
        assert!(arr[0].get("error").and_then(serde::Value::as_str).is_some());
    }

    #[test]
    fn socket_mode_answers_queries() {
        use std::os::unix::net::UnixStream;
        let trace = temp_trace("sock", "aap-2", 4, true);
        let socket = std::env::temp_dir().join(format!("busarb-serve-sock-{}", std::process::id()));
        let streams = vec![("only".to_string(), trace.clone())];
        let socket_path = socket.clone();
        let server = std::thread::spawn(move || serve_socket(&streams, &socket_path));
        // The listener may not be bound yet; retry briefly.
        let mut connection = None;
        for _ in 0..200 {
            match UnixStream::connect(&socket) {
                Ok(c) => {
                    connection = Some(c);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
            }
        }
        let conn = connection.expect("server socket came up");
        let mut reader = std::io::BufReader::new(conn.try_clone().unwrap());
        let mut writer = conn;
        writeln!(writer, "drain").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"done\":true"));
        writeln!(writer, "report only").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("assured-bypass"));
        writeln!(writer, "shutdown").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        server.join().unwrap().unwrap();
        let _ = std::fs::remove_file(trace);
        let _ = std::fs::remove_file(socket);
    }
}
