//! Analytical models of the shared-bus multiprocessor, used to
//! cross-validate the discrete-event simulator.
//!
//! The Section 4.1 system is a **closed queueing network**: `N` customers
//! (the agents) cycle between an infinite-server "think" station (mean
//! time `Z`, the interrequest time) and a single FCFS-equivalent server
//! (the bus, deterministic service `s = 1` plus arbitration overhead
//! `a = 0.5` that is hidden whenever the queue is non-empty). Three
//! results are exact and two are principled approximations:
//!
//! | quantity | status |
//! |----------|--------|
//! | uncontended waiting time `W₀ = a + s` | exact |
//! | saturated waiting time `W_sat = N·s − Z` | exact |
//! | saturated utilization `U = 1` (for offered load > 1) | exact |
//! | utilization below saturation `U ≈ λ_offered` | asymptotically exact |
//! | mid-range `W` via mean value analysis | approximation (MVA assumes a product-form network; the deterministic bus is not product-form, so expect ~10–13% error at the knee of the curve) |
//!
//! The mean waiting time is the same for every work-conserving protocol
//! (the conservation law the paper's footnote 4 invokes), so one model
//! covers RR, FCFS and the assured access protocols alike. The
//! `analysis_validation` integration test drives the simulator across the
//! load range and asserts agreement within documented tolerances.
//!
//! # Examples
//!
//! ```
//! use busarb_analysis::BusModel;
//!
//! # fn main() -> Result<(), busarb_types::Error> {
//! let model = BusModel::paper(10, 5.0)?; // 10 agents, total offered load 5
//! // Deep saturation: the closed form applies.
//! assert!((model.saturated_wait() - 9.0).abs() < 1e-12);
//! assert!((model.mva().mean_wait - 9.0).abs() < 0.2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use busarb_types::Error;
use busarb_workload::load;

/// The closed-network model of one homogeneous bus system.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BusModel {
    /// Number of agents.
    pub agents: u32,
    /// Mean think (interrequest) time `Z`.
    pub think_time: f64,
    /// Bus service time `s` (the unit of time in the paper).
    pub service_time: f64,
    /// Arbitration overhead `a`, hidden under service when the queue is
    /// non-empty.
    pub arbitration_overhead: f64,
}

/// The output of a mean-value-analysis evaluation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MvaSolution {
    /// Predicted mean waiting time (request → completion), including the
    /// arbitration overhead visible at low contention.
    pub mean_wait: f64,
    /// Predicted bus utilization.
    pub utilization: f64,
    /// Predicted system throughput (requests per unit time).
    pub throughput: f64,
    /// Predicted mean number of requests at the bus (queued + in
    /// service).
    pub queue_length: f64,
}

impl BusModel {
    /// Builds the paper's model: service time 1, arbitration overhead
    /// 0.5, think time derived from the total offered load.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] for zero agents and
    /// [`Error::InvalidLoad`] if the per-agent load is outside `(0, 1]`.
    pub fn paper(agents: u32, total_load: f64) -> Result<Self, Error> {
        let share = load::per_agent(total_load, agents)?;
        Ok(BusModel {
            agents,
            think_time: load::mean_interrequest(share)?,
            service_time: 1.0,
            arbitration_overhead: 0.5,
        })
    }

    /// Total offered load (`N · s / (s + Z)` with `s = 1`).
    #[must_use]
    pub fn offered_load(&self) -> f64 {
        f64::from(self.agents) * self.service_time / (self.service_time + self.think_time)
    }

    /// Exact waiting time of a request arriving to an otherwise idle
    /// system: arbitration overhead plus one service.
    #[must_use]
    pub fn uncontended_wait(&self) -> f64 {
        self.arbitration_overhead + self.service_time
    }

    /// Exact mean waiting time at full saturation: each agent completes
    /// exactly once per `N·s` bus cycle, so `Z + W = N·s`.
    ///
    /// Only meaningful when the offered load keeps the bus saturated
    /// (total load comfortably above ~1.5–2, per the paper).
    #[must_use]
    pub fn saturated_wait(&self) -> f64 {
        f64::from(self.agents) * self.service_time - self.think_time
    }

    /// Asymptotic bus utilization: offered load, clipped at 1.
    #[must_use]
    pub fn asymptotic_utilization(&self) -> f64 {
        self.offered_load().min(1.0)
    }

    /// Exact mean-value analysis of the closed network (exact for
    /// product-form networks; an approximation for the deterministic
    /// bus — see the crate docs).
    ///
    /// Recursion over the population `n = 1..=N`:
    ///
    /// ```text
    /// R(n) = s · (1 + Q(n−1))          residence at the bus
    /// X(n) = n / (Z + R(n))            cycle throughput
    /// Q(n) = X(n) · R(n)               bus queue length (Little)
    /// ```
    ///
    /// The returned `mean_wait` is `R(N)` plus the arbitration overhead
    /// weighted by the probability the request finds the bus queue empty
    /// (overhead is fully overlapped otherwise).
    #[must_use]
    pub fn mva(&self) -> MvaSolution {
        let s = self.service_time;
        let z = self.think_time;
        let mut q = 0.0;
        let mut x = 0.0;
        let mut r = s;
        for n in 1..=self.agents {
            r = s * (1.0 + q);
            x = f64::from(n) / (z + r);
            q = x * r;
        }
        let utilization = (x * s).min(1.0);
        // Probability an arriving request must pay visible arbitration
        // overhead ~= probability the bus is idle at arrival.
        let p_idle = (1.0 - utilization).max(0.0);
        MvaSolution {
            mean_wait: r + self.arbitration_overhead * p_idle,
            utilization,
            throughput: x,
            queue_length: q,
        }
    }

    /// The model's best prediction across the whole load range: MVA in
    /// the middle, pinned to the exact limits at the extremes.
    #[must_use]
    pub fn predicted_wait(&self) -> f64 {
        let load = self.offered_load();
        if load >= 2.0 {
            self.saturated_wait()
        } else {
            self.mva().mean_wait.max(self.uncontended_wait())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_shapes() {
        let m = BusModel::paper(10, 2.0).unwrap();
        assert_eq!(m.agents, 10);
        assert!((m.think_time - 4.0).abs() < 1e-12); // load 0.2 -> Z = 4
        assert!((m.offered_load() - 2.0).abs() < 1e-12);
        assert_eq!(m.uncontended_wait(), 1.5);
        assert_eq!(m.saturated_wait(), 6.0);
    }

    #[test]
    fn saturated_wait_matches_paper_table_4_2() {
        // Paper Table 4.2(a): W = 9.00 at load 5.0 and 9.67 at 7.52.
        let m5 = BusModel::paper(10, 5.0).unwrap();
        assert!((m5.saturated_wait() - 9.0).abs() < 1e-12);
        let m752 = BusModel::paper(10, 7.52).unwrap();
        assert!((m752.saturated_wait() - 9.67).abs() < 0.005);
        // And the 30-agent section: W = 25.00 at load 5.0.
        let m30 = BusModel::paper(30, 5.0).unwrap();
        assert!((m30.saturated_wait() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn mva_limits() {
        // Single customer: no queueing at all; R = s, W = s + a.
        let m = BusModel::paper(1, 0.25).unwrap();
        let sol = m.mva();
        assert!((sol.mean_wait - 1.5).abs() < 0.2);
        assert!(sol.queue_length < 0.3);

        // Deep saturation: MVA converges to the exact bound.
        let m = BusModel::paper(10, 7.52).unwrap();
        let sol = m.mva();
        assert!((sol.utilization - 1.0).abs() < 1e-6);
        assert!(
            (sol.mean_wait - m.saturated_wait()).abs() < 0.05,
            "mva {} vs exact {}",
            sol.mean_wait,
            m.saturated_wait()
        );
    }

    #[test]
    fn mva_is_monotone_in_load() {
        let mut last = 0.0;
        for load in [0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 5.0] {
            let w = BusModel::paper(10, load).unwrap().mva().mean_wait;
            assert!(w >= last, "W must grow with load: {w} after {last}");
            last = w;
        }
    }

    #[test]
    fn predicted_wait_is_pinned_to_limits() {
        let low = BusModel::paper(10, 0.01).unwrap();
        assert!((low.predicted_wait() - 1.5).abs() < 0.05);
        let high = BusModel::paper(10, 5.0).unwrap();
        assert_eq!(high.predicted_wait(), 9.0);
    }

    #[test]
    fn utilization_tracks_offered_load_below_saturation() {
        let m = BusModel::paper(30, 0.5).unwrap();
        assert!((m.mva().utilization - 0.5).abs() < 0.03);
        assert_eq!(m.asymptotic_utilization(), 0.5);
        let sat = BusModel::paper(30, 3.0).unwrap();
        assert_eq!(sat.asymptotic_utilization(), 1.0);
    }

    #[test]
    fn validation() {
        assert!(BusModel::paper(0, 1.0).is_err());
        assert!(BusModel::paper(10, 20.0).is_err()); // per-agent load > 1
        assert!(BusModel::paper(10, 0.0).is_err());
    }
}
