//! Workspace call graph over extracted [`FnItem`]s.
//!
//! Call-site extraction walks each function's body tokens and records
//! three call shapes plus macro invocations:
//!
//! * **free calls** — `name(…)`;
//! * **method calls** — `.name(…)`, turbofish tolerated
//!   (`.collect::<AgentSet>(…)` keeps its turbofish text so the
//!   purity check can allow the bit-set case);
//! * **path calls** — `Qual::name(…)`, with the full path retained
//!   (`Vec::new` is an allocation sink even though `Vec` is not a
//!   workspace type);
//! * **macro calls** — `name!(…)` / `name![…]` / `name!{…}`.
//!
//! Resolution is name-based and deliberately over-approximate — this is
//! a lint, not a compiler: a method call `.push(…)` resolves to every
//! workspace `fn push(&self…)` in scope. Three things keep the
//! over-approximation useful: path calls resolve through their
//! qualifier (`FastEngine::refill` only reaches the `FastEngine` impl;
//! `Self::x` stays inside the caller's impl), resolution is restricted
//! to the crates the hot loop can actually link against
//! (`Config::graph_paths`), and anything still spurious is visible in
//! the committed baseline rather than silently ignored.

use crate::items::FnItem;
use crate::lexer::{Token, TokenKind};

/// Primitive-type qualifiers: lowercase like modules, but `u64::from(…)`
/// never resolves to a workspace fn.
const PRIMITIVES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64", "bool", "char", "str",
];

/// The shape of one call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(…)`.
    Free,
    /// `.name(…)`; the `Option` holds turbofish text (`AgentSet` for
    /// `.collect::<AgentSet>()`).
    Method(Option<String>),
    /// `qual::name(…)` — qualifier is the last path segment before the
    /// name; `full` is the whole dotted-out path (`Vec::new`).
    Path {
        /// Last path segment before the called name.
        qual: String,
        /// Full `::`-joined path text.
        full: String,
    },
    /// `name!(…)`.
    Macro,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Called name (method/function/macro name; last path segment).
    pub name: String,
    /// Call shape.
    pub kind: CallKind,
    /// 1-based source line.
    pub line: u32,
}

/// Extracts every call site from the token slice of one function body.
#[must_use]
pub fn call_sites(tokens: &[Token<'_>]) -> Vec<CallSite> {
    let code: Vec<&Token<'_>> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut sites = Vec::new();
    let at = |j: usize| code.get(j).copied();
    let is_pathsep = |j: usize| {
        at(j).is_some_and(|t| t.text == ":") && at(j + 1).is_some_and(|t| t.text == ":")
    };

    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        // Look ahead: optional turbofish `::<…>` then an open delimiter.
        let mut j = i + 1;
        let mut turbofish = None;
        if is_pathsep(j) && at(j + 2).is_some_and(|t| t.text == "<") {
            let mut depth = 0i32;
            let mut text = String::new();
            let mut k = j + 2;
            while let Some(tok) = at(k) {
                match tok.text {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {
                        if depth >= 1 {
                            text.push_str(tok.text);
                        }
                    }
                }
                k += 1;
            }
            turbofish = Some(text);
            j = k + 1;
        }

        let next = at(j);
        let is_macro = turbofish.is_none()
            && next.is_some_and(|t| t.text == "!")
            && at(j + 1).is_some_and(|t| matches!(t.text, "(" | "[" | "{"));
        let is_call = next.is_some_and(|t| t.text == "(");
        if !is_macro && !is_call {
            i += 1;
            continue;
        }

        let name = t.text.to_string();
        let kind = if is_macro {
            CallKind::Macro
        } else if i >= 1 && code[i - 1].text == "." {
            CallKind::Method(turbofish)
        } else if i >= 2 && is_pathsep(i - 2) {
            // Walk the path backwards: `a::b::name(` → qual `b`,
            // full `a::b::name`.
            let mut segs = vec![t.text];
            let mut k = i;
            while k >= 2 && is_pathsep(k - 2) && k >= 3 && code[k - 3].kind == TokenKind::Ident {
                segs.push(code[k - 3].text);
                k -= 3;
            }
            segs.reverse();
            if segs.len() >= 2 {
                CallKind::Path {
                    qual: segs[segs.len() - 2].to_string(),
                    full: segs.join("::"),
                }
            } else {
                // `::name(` with no leading ident (e.g. `<T>::name`).
                CallKind::Free
            }
        } else {
            CallKind::Free
        };
        sites.push(CallSite {
            name,
            kind,
            line: t.line,
        });
        i += 1;
    }
    sites
}

/// A function node in the workspace graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FnId {
    /// Index of the file in the workspace file list.
    pub file: usize,
    /// Index of the item within that file's [`FnItem`] list.
    pub item: usize,
}

/// The resolved workspace call graph.
pub struct CallGraph {
    /// Per-file, per-item call sites (parallel to the items lists).
    pub sites: Vec<Vec<Vec<CallSite>>>,
    /// Resolved edges per node.
    pub edges: std::collections::BTreeMap<FnId, Vec<FnId>>,
}

/// Per-file inputs to graph construction.
pub struct FileFns<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Lexed tokens of the whole file.
    pub tokens: &'a [Token<'a>],
    /// Extracted items.
    pub items: &'a [FnItem],
    /// Whether this file's fns may be *resolution targets* (the hot
    /// loop can link against them). Files outside the graph scope
    /// still get their call sites extracted (so checks can scan them)
    /// but are never resolved *into*.
    pub resolvable: bool,
}

impl CallGraph {
    /// Builds the graph: extracts call sites for every non-test item
    /// and resolves them against the resolvable subset of the
    /// workspace.
    #[must_use]
    pub fn build(files: &[FileFns<'_>]) -> Self {
        // Index resolvable targets by name.
        let mut by_name: std::collections::BTreeMap<&str, Vec<FnId>> =
            std::collections::BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            if !f.resolvable {
                continue;
            }
            for (ii, item) in f.items.iter().enumerate() {
                if item.is_test {
                    continue;
                }
                by_name
                    .entry(item.name.as_str())
                    .or_default()
                    .push(FnId { file: fi, item: ii });
            }
        }
        let item_of = |id: FnId| &files[id.file].items[id.item];

        let mut sites: Vec<Vec<Vec<CallSite>>> = Vec::with_capacity(files.len());
        let mut edges: std::collections::BTreeMap<FnId, Vec<FnId>> =
            std::collections::BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            let mut file_sites = Vec::with_capacity(f.items.len());
            for (ii, item) in f.items.iter().enumerate() {
                let body = &f.tokens[item.body.clone()];
                let item_sites = call_sites(body);
                if !item.is_test {
                    let id = FnId { file: fi, item: ii };
                    let mut out = Vec::new();
                    for site in &item_sites {
                        let candidates = by_name.get(site.name.as_str());
                        let Some(candidates) = candidates else {
                            continue;
                        };
                        match &site.kind {
                            CallKind::Macro => {}
                            CallKind::Method(_) => {
                                out.extend(
                                    candidates
                                        .iter()
                                        .filter(|&&c| item_of(c).has_self)
                                        .copied(),
                                );
                            }
                            CallKind::Free => {
                                out.extend(
                                    candidates
                                        .iter()
                                        .filter(|&&c| !item_of(c).has_self)
                                        .copied(),
                                );
                            }
                            CallKind::Path { qual, .. } => {
                                let qual: &str = if qual == "Self" {
                                    item.impl_type.as_deref().unwrap_or("Self")
                                } else {
                                    qual
                                };
                                let is_type_qual =
                                    qual.chars().next().is_some_and(char::is_uppercase);
                                if is_type_qual {
                                    // `Type::assoc(…)` — only that
                                    // impl's items.
                                    out.extend(
                                        candidates
                                            .iter()
                                            .filter(|&&c| {
                                                item_of(c).impl_type.as_deref() == Some(qual)
                                            })
                                            .copied(),
                                    );
                                } else if !PRIMITIVES.contains(&qual) {
                                    // Module-qualified free call
                                    // (`plane::word_of(…)`). A module
                                    // path cannot name an inherent
                                    // associated fn, so impl members are
                                    // excluded — otherwise `u64::from(x)`
                                    // would link every `impl From` in
                                    // the workspace.
                                    out.extend(
                                        candidates
                                            .iter()
                                            .filter(|&&c| {
                                                let it = item_of(c);
                                                !it.has_self && it.impl_type.is_none()
                                            })
                                            .copied(),
                                    );
                                }
                            }
                        }
                    }
                    out.sort_unstable();
                    out.dedup();
                    edges.insert(id, out);
                }
                file_sites.push(item_sites);
            }
            sites.push(file_sites);
        }
        CallGraph { sites, edges }
    }

    /// BFS from `roots`; returns every reachable node mapped to its
    /// predecessor on one shortest path (roots map to themselves).
    #[must_use]
    pub fn reachable(&self, roots: &[FnId]) -> std::collections::BTreeMap<FnId, FnId> {
        let mut parent: std::collections::BTreeMap<FnId, FnId> =
            std::collections::BTreeMap::new();
        let mut queue: std::collections::VecDeque<FnId> = std::collections::VecDeque::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(r) {
                e.insert(r);
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            if let Some(next) = self.edges.get(&n) {
                for &m in next {
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(m) {
                        e.insert(n);
                        queue.push_back(m);
                    }
                }
            }
        }
        parent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::lexer::lex;

    #[test]
    fn call_shapes_are_classified() {
        let toks = lex("{ helper(); x.method(); Vec::new(); plane::word_of(i); fmt!(\"x\"); it.collect::<AgentSet>(); }");
        let sites = call_sites(&toks);
        let find = |n: &str| sites.iter().find(|s| s.name == n).expect(n);
        assert_eq!(find("helper").kind, CallKind::Free);
        assert_eq!(find("method").kind, CallKind::Method(None));
        assert_eq!(
            find("new").kind,
            CallKind::Path {
                qual: "Vec".into(),
                full: "Vec::new".into()
            }
        );
        assert_eq!(
            find("word_of").kind,
            CallKind::Path {
                qual: "plane".into(),
                full: "plane::word_of".into()
            }
        );
        assert_eq!(find("fmt").kind, CallKind::Macro);
        assert_eq!(
            find("collect").kind,
            CallKind::Method(Some("AgentSet".into()))
        );
    }

    #[test]
    fn commented_calls_are_invisible() {
        let toks = lex("{ // Vec::new()\n /* helper() */ real(); }");
        let sites = call_sites(&toks);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].name, "real");
    }

    fn graph_of(files: &[(&str, &str)]) -> (Vec<Vec<crate::items::FnItem>>, CallGraph) {
        let lexed: Vec<_> = files.iter().map(|(_, src)| lex(src)).collect();
        let items: Vec<_> = lexed.iter().map(|t| parse_items(t)).collect();
        let fns: Vec<FileFns<'_>> = files
            .iter()
            .zip(&lexed)
            .zip(&items)
            .map(|(((path, _), tokens), items)| FileFns {
                path,
                tokens,
                items,
                resolvable: true,
            })
            .collect();
        let graph = CallGraph::build(&fns);
        (items, graph)
    }

    #[test]
    fn transitive_reachability_through_helpers() {
        let (items, graph) = graph_of(&[
            ("a.rs", "fn root() { helper(); }"),
            ("b.rs", "fn helper() { deep(); }\nfn deep() {}\nfn unrelated() {}"),
        ]);
        let root = FnId { file: 0, item: 0 };
        let reach = graph.reachable(&[root]);
        let names: Vec<&str> = reach
            .keys()
            .map(|id| items[id.file][id.item].name.as_str())
            .collect();
        assert!(names.contains(&"root") && names.contains(&"helper") && names.contains(&"deep"));
        assert!(!names.contains(&"unrelated"));
    }

    #[test]
    fn path_qualifier_scopes_resolution_to_one_impl() {
        let (items, graph) = graph_of(&[(
            "e.rs",
            "impl Fast { fn go(&self) { Fast::inner(); } fn inner() {} }\n\
             impl Slow { fn inner() { } }",
        )]);
        let go = FnId { file: 0, item: 0 };
        let reach = graph.reachable(&[go]);
        let quals: Vec<String> = reach
            .keys()
            .map(|id| items[id.file][id.item].qualified_name())
            .collect();
        assert!(quals.contains(&"Fast::inner".to_string()));
        assert!(!quals.contains(&"Slow::inner".to_string()));
    }

    #[test]
    fn self_calls_stay_in_their_impl() {
        let (items, graph) = graph_of(&[(
            "e.rs",
            "impl Fast { fn go(&self) { Self::inner(); } fn inner() {} }\n\
             impl Slow { fn inner() {} }",
        )]);
        let reach = graph.reachable(&[FnId { file: 0, item: 0 }]);
        let quals: Vec<String> = reach
            .keys()
            .map(|id| items[id.file][id.item].qualified_name())
            .collect();
        assert!(quals.contains(&"Fast::inner".to_string()));
        assert!(!quals.contains(&"Slow::inner".to_string()));
    }

    #[test]
    fn unresolvable_files_are_not_targets() {
        let lexed_a = lex("fn root() { helper(); }");
        let lexed_b = lex("fn helper() { }");
        let items_a = parse_items(&lexed_a);
        let items_b = parse_items(&lexed_b);
        let graph = CallGraph::build(&[
            FileFns {
                path: "a.rs",
                tokens: &lexed_a,
                items: &items_a,
                resolvable: true,
            },
            FileFns {
                path: "b.rs",
                tokens: &lexed_b,
                items: &items_b,
                resolvable: false,
            },
        ]);
        let reach = graph.reachable(&[FnId { file: 0, item: 0 }]);
        assert_eq!(reach.len(), 1, "helper outside graph scope is not reached");
    }

    #[test]
    fn test_items_do_not_resolve_or_emit_edges() {
        let (_, graph) = graph_of(&[(
            "a.rs",
            "fn root() { helper(); }\n#[cfg(test)]\nmod t { fn helper() {} }",
        )]);
        let reach = graph.reachable(&[FnId { file: 0, item: 0 }]);
        assert_eq!(reach.len(), 1);
    }
}
