//! The committed suppression file (`lint-baseline.json`).
//!
//! A suppression matches findings by `(check, file, symbol)` — no line
//! numbers, so unrelated edits to a file do not churn the baseline.
//! Every suppression carries a mandatory human-readable `reason`;
//! unsuppressed findings fail the lint, and suppressions that no longer
//! match anything fail it too (`baseline-unused`), so the file can only
//! shrink once a violation is fixed.

use serde::Value;

use crate::checks::Finding;

/// One baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Check id the entry suppresses.
    pub check: String,
    /// Workspace-relative file.
    pub file: String,
    /// Symbol the finding anchors to.
    pub symbol: String,
    /// Why this finding is accepted.
    pub reason: String,
}

/// The parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// All suppressions, in file order.
    pub suppressions: Vec<Suppression>,
}

/// The format tag the baseline file must carry.
pub const BASELINE_FORMAT: &str = "busarb-lint-baseline/1";

impl Baseline {
    /// An empty baseline (strict mode).
    #[must_use]
    pub fn empty() -> Self {
        Baseline::default()
    }

    /// Parses the baseline JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a wrong/missing format tag,
    /// or an entry missing one of its four required string fields.
    pub fn parse(text: &str) -> Result<Self, String> {
        let value = serde_json::from_str(text).map_err(|e| format!("baseline: {e}"))?;
        let format = value.get("format").and_then(Value::as_str);
        if format != Some(BASELINE_FORMAT) {
            return Err(format!(
                "baseline: format must be \"{BASELINE_FORMAT}\", got {format:?}"
            ));
        }
        let entries = value
            .get("suppressions")
            .and_then(Value::as_array)
            .ok_or("baseline: missing `suppressions` array")?;
        let mut suppressions = Vec::with_capacity(entries.len());
        for (i, entry) in entries.iter().enumerate() {
            let field = |name: &str| -> Result<String, String> {
                entry
                    .get(name)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or(format!("baseline: suppression #{i} missing string `{name}`"))
            };
            suppressions.push(Suppression {
                check: field("check")?,
                file: field("file")?,
                symbol: field("symbol")?,
                reason: field("reason")?,
            });
        }
        Ok(Baseline { suppressions })
    }

    /// Whether `finding` is suppressed.
    #[must_use]
    pub fn matches(&self, finding: &Finding) -> bool {
        self.suppressions.iter().any(|s| {
            s.check == finding.check && s.file == finding.file && s.symbol == finding.symbol
        })
    }

    /// Splits findings into (unsuppressed, suppressed) and appends a
    /// `baseline-unused` finding per suppression that matched nothing.
    #[must_use]
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
        let (suppressed, mut open): (Vec<Finding>, Vec<Finding>) =
            findings.into_iter().partition(|f| self.matches(f));
        for s in &self.suppressions {
            let used = suppressed
                .iter()
                .any(|f| s.check == f.check && s.file == f.file && s.symbol == f.symbol);
            if !used {
                open.push(Finding {
                    check: "baseline-unused",
                    file: "lint-baseline.json".to_string(),
                    line: 0,
                    symbol: format!("{}:{}:{}", s.check, s.file, s.symbol),
                    message: format!(
                        "suppression `{}` for `{}` in `{}` matches nothing — the violation was fixed; delete the entry",
                        s.check, s.symbol, s.file
                    ),
                });
            }
        }
        (open, suppressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(check: &'static str, file: &str, symbol: &str) -> Finding {
        Finding {
            check,
            file: file.to_string(),
            line: 7,
            symbol: symbol.to_string(),
            message: String::new(),
        }
    }

    const DOC: &str = r#"{
        "format": "busarb-lint-baseline/1",
        "suppressions": [
            {"check": "hot-panic", "file": "crates/sim/src/event.rs",
             "symbol": "CalendarQueue::schedule", "reason": "guard asserts"}
        ]
    }"#;

    #[test]
    fn parses_and_matches() {
        let b = Baseline::parse(DOC).expect("parse");
        assert_eq!(b.suppressions.len(), 1);
        assert!(b.matches(&finding(
            "hot-panic",
            "crates/sim/src/event.rs",
            "CalendarQueue::schedule"
        )));
        assert!(!b.matches(&finding(
            "hot-alloc",
            "crates/sim/src/event.rs",
            "CalendarQueue::schedule"
        )));
    }

    #[test]
    fn apply_partitions_and_reports_rot() {
        let b = Baseline::parse(DOC).expect("parse");
        // No findings at all: the suppression is rot.
        let (open, suppressed) = b.apply(vec![]);
        assert!(suppressed.is_empty());
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].check, "baseline-unused");

        // The matching finding is suppressed, the other stays open.
        let (open, suppressed) = b.apply(vec![
            finding("hot-panic", "crates/sim/src/event.rs", "CalendarQueue::schedule"),
            finding("hot-alloc", "crates/core/src/fcfs.rs", "arbitrate"),
        ]);
        assert_eq!(suppressed.len(), 1);
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].check, "hot-alloc");
    }

    #[test]
    fn format_tag_is_required() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse(r#"{"format": "wrong/9", "suppressions": []}"#).is_err());
        let missing = r#"{"format": "busarb-lint-baseline/1",
                          "suppressions": [{"check": "x", "file": "y", "symbol": "z"}]}"#;
        assert!(Baseline::parse(missing).is_err(), "reason is mandatory");
    }
}
