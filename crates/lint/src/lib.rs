//! `busarb-lint` — the workspace static-analysis engine.
//!
//! The paper's guarantees (fair, bounded-bypass arbitration) hold in
//! this reproduction only while the hot loop stays allocation-free,
//! panic-poor, and bit-for-bit deterministic. PRs 2–8 enforced those
//! properties with string-grep heuristics that missed violations hidden
//! behind helper calls, string literals, or comments. This crate
//! replaces them with a real pipeline:
//!
//! ```text
//! lexer (raw strings, nested comments, char/lifetime)
//!   → items (fns with impl context, self-ness, test regions)
//!     → call graph (free/method/path/macro sites, name-scoped resolution)
//!       → checks (purity · determinism · dispatch · panic surface)
//!         → baseline (committed suppressions with reasons)
//!           → report (text + busarb-lint/1 JSON)
//! ```
//!
//! Everything below the file-loading layer is pure (`&[SourceFile]` in,
//! [`Report`] out), so the mutation self-tests can feed scratch source
//! trees through the identical code path `cargo xtask lint` runs over
//! the real workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod checks;
pub mod config;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod report;

use std::fs;
use std::path::Path;

pub use baseline::{Baseline, Suppression, BASELINE_FORMAT};
pub use checks::{Finding, PanicSite, CHECKS};
pub use config::{busarb_config, Config};
pub use report::{Report, Stats, REPORT_FORMAT};

/// One source file: workspace-relative path plus contents.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path (`crates/sim/src/event.rs`).
    pub path: String,
    /// Full file text.
    pub text: String,
}

/// The set of files the engine analyzes.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// All files, sorted by path.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// An in-memory workspace (tests, mutation harnesses).
    #[must_use]
    pub fn from_files(mut files: Vec<SourceFile>) -> Self {
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Workspace { files }
    }

    /// Loads every `.rs` file under `crates/*/src`, `shims/*/src`, and
    /// `src/` of the workspace rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than a missing directory (which is
    /// skipped, so partial checkouts still lint).
    pub fn load(root: &Path) -> std::io::Result<Self> {
        let mut files = Vec::new();
        for group in ["crates", "shims"] {
            let dir = root.join(group);
            let Ok(entries) = fs::read_dir(&dir) else {
                continue;
            };
            for entry in entries.flatten() {
                if entry.path().is_dir() {
                    let rel = format!("{group}/{}/src", entry.file_name().to_string_lossy());
                    collect_rs(root, &rel, &mut files)?;
                }
            }
        }
        collect_rs(root, "src", &mut files)?;
        Ok(Workspace::from_files(files))
    }
}

fn collect_rs(root: &Path, rel: &str, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    let dir = root.join(rel);
    let Ok(entries) = fs::read_dir(&dir) else {
        return Ok(());
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let child = format!("{rel}/{name}");
        if entry.path().is_dir() {
            collect_rs(root, &child, out)?;
        } else if name.ends_with(".rs") {
            out.push(SourceFile {
                path: child,
                text: fs::read_to_string(entry.path())?,
            });
        }
    }
    Ok(())
}

/// Runs the full engine: lex, parse, graph, all four check families,
/// then the baseline. `baseline` is [`Baseline::empty`] in strict mode.
#[must_use]
pub fn run(ws: &Workspace, cfg: &Config, baseline: &Baseline) -> Report {
    // Lex and parse every file once.
    let lexed: Vec<Vec<lexer::Token<'_>>> =
        ws.files.iter().map(|f| lexer::lex(&f.text)).collect();
    let parsed: Vec<Vec<items::FnItem>> =
        lexed.iter().map(|t| items::parse_items(t)).collect();
    let file_fns: Vec<graph::FileFns<'_>> = ws
        .files
        .iter()
        .zip(&lexed)
        .zip(&parsed)
        .map(|((f, tokens), items)| graph::FileFns {
            path: &f.path,
            tokens,
            items,
            resolvable: cfg.graph_paths.iter().any(|p| f.path.starts_with(p)),
        })
        .collect();
    let call_graph = graph::CallGraph::build(&file_fns);

    let mut findings = Vec::new();
    checks::check_purity(
        &file_fns,
        &call_graph,
        &cfg.hot_roots,
        &cfg.fast_math_roots,
        &mut findings,
    );
    checks::check_determinism(&file_fns, &cfg.determinism_paths, &mut findings);
    checks::check_policy(&file_fns, &mut findings);
    checks::check_dispatch_tokens(
        &file_fns,
        &cfg.enum_name,
        &cfg.variants,
        &cfg.variant_sites,
        &cfg.slugs,
        &cfg.slug_sites,
        &mut findings,
    );
    checks::check_dispatch_matches(
        &file_fns,
        &cfg.enum_name,
        &cfg.variants,
        &cfg.match_sites,
        &mut findings,
    );
    let panic_surface =
        checks::check_panic_surface(&file_fns, &call_graph, &cfg.runner_roots, &mut findings);

    // Deterministic output order: file, then line, then check id.
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.check, &a.symbol).cmp(&(&b.file, b.line, b.check, &b.symbol))
    });
    findings.dedup();

    let hot_roots: Vec<graph::FnId> = cfg
        .hot_roots
        .iter()
        .flat_map(|spec| resolve_for_stats(&file_fns, spec))
        .collect();
    let runner_roots: Vec<graph::FnId> = cfg
        .runner_roots
        .iter()
        .flat_map(|spec| resolve_for_stats(&file_fns, spec))
        .collect();
    let stats = Stats {
        files: ws.files.len(),
        functions: parsed.iter().map(Vec::len).sum(),
        hot_reachable: call_graph.reachable(&hot_roots).len(),
        runner_reachable: call_graph.reachable(&runner_roots).len(),
    };

    let (open, suppressed) = baseline.apply(findings);
    Report {
        open,
        suppressed,
        panic_surface,
        stats,
    }
}

fn resolve_for_stats(files: &[graph::FileFns<'_>], spec: &checks::RootSpec) -> Vec<graph::FnId> {
    let mut out = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        if !f.path.ends_with(spec.file) {
            continue;
        }
        for (ii, item) in f.items.iter().enumerate() {
            if !item.is_test
                && item.name == spec.name
                && spec
                    .impl_type
                    .is_none_or(|ty| item.impl_type.as_deref() == Some(ty))
            {
                out.push(graph::FnId { file: fi, item: ii });
            }
        }
    }
    out
}
