//! A small, honest Rust lexer.
//!
//! The string-grep heuristics this crate replaces miscounted braces
//! inside string literals and comments, counted dispatch tokens that
//! only appeared in documentation, and could not tell a lifetime from a
//! char literal. This lexer classifies every byte of a source file into
//! exactly one token so the rest of the engine can reason about *code*
//! and ignore the rest:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`, `/**`, `/*!`);
//! * string literals, including raw strings with any number of `#`
//!   guards (`r"…"`, `r#"…"#`, `br##"…"##`) and byte strings;
//! * char literals vs lifetimes (`'a'` vs `'a`), including escaped
//!   chars (`'\''`, `'\u{1F600}'`) and byte chars (`b'x'`);
//! * identifiers/keywords, numbers, and single-character punctuation.
//!
//! The lexer is total: it never fails, and the concatenation of all
//! token texts (plus skipped whitespace) is the input. Unterminated
//! literals and comments extend to end of input.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `match`, `HashMap`, …).
    Ident,
    /// A lifetime (`'a`, `'static`) — leading quote included.
    Lifetime,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// A numeric literal (`0x1F`, `1_000`, `2.5e-3`).
    Number,
    /// A `//` comment (doc comments included), newline excluded.
    LineComment,
    /// A `/* … */` comment, nesting respected, delimiters included.
    BlockComment,
    /// A single punctuation byte (`{`, `:`, `!`, …).
    Punct,
}

/// One lexed token: classification plus exact source span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'s> {
    /// Token class.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: &'s str,
    /// Byte offset of the token start in the input.
    pub start: usize,
    /// 1-based line number of the token start.
    pub line: u32,
}

impl Token<'_> {
    /// Whether this token is a comment of either flavor.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// The literal content of a [`TokenKind::Str`] token: quotes, raw
    /// guards, and prefix stripped (escape sequences are left as
    /// written). Returns the raw text for non-string tokens.
    #[must_use]
    pub fn str_content(&self) -> &str {
        if self.kind != TokenKind::Str {
            return self.text;
        }
        let mut s = self.text;
        s = s.strip_prefix('b').unwrap_or(s);
        s = s.strip_prefix('r').unwrap_or(s);
        let guards = s.bytes().take_while(|&b| b == b'#').count();
        s = &s[guards..];
        s = s.strip_prefix('"').unwrap_or(s);
        let end_len = 1 + guards;
        if s.len() >= end_len && s.ends_with(&"\"#########"[..=guards.min(9)]) {
            &s[..s.len() - end_len]
        } else {
            // Unterminated literal: everything after the open quote.
            s
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into a token stream (whitespace skipped).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let at = |j: usize| bytes.get(j).copied();

    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        let start_line = line;

        // Whitespace.
        if b.is_ascii_whitespace() {
            if b == b'\n' {
                line += 1;
            }
            i += 1;
            continue;
        }

        // Comments.
        if b == b'/' && at(i + 1) == Some(b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::LineComment,
                text: &src[start..i],
                start,
                line: start_line,
            });
            continue;
        }
        if b == b'/' && at(i + 1) == Some(b'*') {
            let mut depth = 1usize;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if bytes[i] == b'/' && at(i + 1) == Some(b'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && at(i + 1) == Some(b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            tokens.push(Token {
                kind: TokenKind::BlockComment,
                text: &src[start..i],
                start,
                line: start_line,
            });
            continue;
        }

        // Raw / byte / plain string families. The prefix grammar is
        // `b? r? #* "` where `#` guards only follow an `r`.
        let (is_raw, prefix_len) = match (b, at(i + 1), at(i + 2)) {
            (b'r', Some(b'"' | b'#'), _) => (true, 1),
            (b'b', Some(b'r'), Some(b'"' | b'#')) => (true, 2),
            (b'"', ..) => (false, 0),
            (b'b', Some(b'"'), _) => (false, 1),
            _ => (false, usize::MAX),
        };
        if prefix_len != usize::MAX {
            i += prefix_len;
            let guards = if is_raw {
                let g = bytes[i..].iter().take_while(|&&c| c == b'#').count();
                i += g;
                g
            } else {
                0
            };
            if at(i) == Some(b'"') {
                i += 1;
                loop {
                    match at(i) {
                        None => break,
                        Some(b'\n') => {
                            line += 1;
                            i += 1;
                        }
                        Some(b'\\') if !is_raw => i += 2,
                        Some(b'"') => {
                            i += 1;
                            if !is_raw {
                                break;
                            }
                            let close = bytes[i..].iter().take_while(|&&c| c == b'#').count();
                            if close >= guards {
                                i += guards;
                                break;
                            }
                        }
                        Some(_) => i += 1,
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: &src[start..i.min(bytes.len())],
                    start,
                    line: start_line,
                });
                continue;
            }
            // `r` / `b` not followed by a quote after all: rewind and
            // fall through to the identifier path.
            i = start;
        }

        // Lifetimes vs char literals. After a `'`: an escape or a
        // single non-identifier char closed by `'` is a char literal; a
        // run of identifier chars closed by `'` is a char literal only
        // if it is exactly one char (`'a'`), otherwise it is a lifetime
        // (`'static`). `b'x'` byte chars ride the same path.
        let quote_at = if b == b'\'' {
            Some(i)
        } else if b == b'b' && at(i + 1) == Some(b'\'') {
            Some(i + 1)
        } else {
            None
        };
        if let Some(q) = quote_at {
            let mut j = q + 1;
            let kind = if at(j) == Some(b'\\') {
                // Escaped char literal: scan to the closing quote.
                j += 2; // skip backslash + escaped byte
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                j = (j + 1).min(bytes.len());
                TokenKind::Char
            } else {
                let ident_run = bytes[j..]
                    .iter()
                    .take_while(|&&c| is_ident_continue(c))
                    .count();
                if ident_run > 0 && at(j + ident_run) == Some(b'\'') && ident_run == 1 {
                    j += ident_run + 1;
                    TokenKind::Char
                } else if ident_run > 0 && at(j + ident_run) != Some(b'\'') {
                    j += ident_run;
                    TokenKind::Lifetime
                } else if ident_run == 0 && at(j).is_some() && at(j + 1) == Some(b'\'') {
                    // Non-identifier char like '(' or '.'.
                    j += 2;
                    TokenKind::Char
                } else {
                    // 'abc' (malformed) or trailing quote: consume the
                    // quote alone as punctuation.
                    j = q + 1;
                    TokenKind::Punct
                }
            };
            i = j;
            tokens.push(Token {
                kind,
                text: &src[start..i],
                start,
                line: start_line,
            });
            continue;
        }

        // Identifiers and keywords.
        if is_ident_start(b) {
            while i < bytes.len() && is_ident_continue(bytes[i]) {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: &src[start..i],
                start,
                line: start_line,
            });
            continue;
        }

        // Numbers (simplified: enough to keep digits out of the ident
        // and punct streams; exponent signs split into separate tokens,
        // which no check here cares about).
        if b.is_ascii_digit() {
            while i < bytes.len()
                && (is_ident_continue(bytes[i])
                    || (bytes[i] == b'.' && at(i + 1).is_some_and(|c| c.is_ascii_digit())))
            {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Number,
                text: &src[start..i],
                start,
                line: start_line,
            });
            continue;
        }

        // Everything else: one punctuation byte.
        i += 1;
        tokens.push(Token {
            kind: TokenKind::Punct,
            text: &src[start..i],
            start,
            line: start_line,
        });
    }
    tokens
}

/// Returns `src` with every comment and string/char literal replaced by
/// spaces (newlines preserved), so byte offsets and line numbers are
/// unchanged. This is the bridge for legacy substring heuristics: a
/// grep over the blanked text cannot be fooled by a `"{"` literal or a
/// commented-out token.
#[must_use]
pub fn blank_noncode(src: &str) -> String {
    let mut out = src.as_bytes().to_vec();
    for token in lex(src) {
        if matches!(
            token.kind,
            TokenKind::LineComment | TokenKind::BlockComment | TokenKind::Str | TokenKind::Char
        ) {
            for b in &mut out[token.start..token.start + token.text.len()] {
                if *b != b'\n' {
                    *b = b' ';
                }
            }
        }
    }
    String::from_utf8(out).unwrap_or_else(|_| {
        // Blanking only ever rewrites bytes inside literal/comment
        // spans to ASCII spaces; if that produced invalid UTF-8 the
        // lexer mis-spanned, and falling back to a fully blanked string
        // keeps callers safe (no phantom tokens).
        src.chars().map(|c| if c == '\n' { '\n' } else { ' ' }).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_punct() {
        assert_eq!(
            kinds("fn foo(x: u32) -> u32 { x + 0x1F }"),
            vec![
                (TokenKind::Ident, "fn"),
                (TokenKind::Ident, "foo"),
                (TokenKind::Punct, "("),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct, ":"),
                (TokenKind::Ident, "u32"),
                (TokenKind::Punct, ")"),
                (TokenKind::Punct, "-"),
                (TokenKind::Punct, ">"),
                (TokenKind::Ident, "u32"),
                (TokenKind::Punct, "{"),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct, "+"),
                (TokenKind::Number, "0x1F"),
                (TokenKind::Punct, "}"),
            ]
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "a"),
                (TokenKind::BlockComment, "/* outer /* inner */ still outer */"),
                (TokenKind::Ident, "b"),
            ]
        );
    }

    #[test]
    fn raw_strings_with_guards() {
        let src = r####"let s = r#"has "quotes" and { braces }"#; done"####;
        let toks = lex(src);
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).expect("str");
        assert_eq!(s.text, r###"r#"has "quotes" and { braces }"#"###);
        assert_eq!(s.str_content(), r#"has "quotes" and { braces }"#);
        assert_eq!(toks.last().expect("last").text, "done");
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r##"b"x" br#"y"# r"z""##);
        assert_eq!(
            toks,
            vec![
                (TokenKind::Str, "b\"x\""),
                (TokenKind::Str, "br#\"y\"#"),
                (TokenKind::Str, "r\"z\""),
            ]
        );
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let s = 'static_ident; }");
        assert!(toks.contains(&(TokenKind::Lifetime, "'a")));
        assert!(toks.contains(&(TokenKind::Char, "'x'")));
        assert!(toks.contains(&(TokenKind::Lifetime, "'static_ident")));
    }

    #[test]
    fn escaped_char_literals() {
        let toks = kinds(r"let a = '\''; let b = '\u{1F600}'; let c = b'\n';");
        assert!(toks.contains(&(TokenKind::Char, r"'\''")));
        assert!(toks.contains(&(TokenKind::Char, r"'\u{1F600}'")));
        assert!(toks.contains(&(TokenKind::Char, r"b'\n'")));
    }

    #[test]
    fn non_ident_char_literal() {
        let toks = kinds("let dot = '.'; let open = '{';");
        assert!(toks.contains(&(TokenKind::Char, "'.'")));
        assert!(toks.contains(&(TokenKind::Char, "'{'")));
    }

    #[test]
    fn string_escapes_do_not_end_early() {
        let toks = kinds(r#"let s = "a \" b { c"; x"#);
        assert!(toks.contains(&(TokenKind::Str, r#""a \" b { c""#)));
        assert_eq!(toks.last().expect("last").1, "x");
    }

    #[test]
    fn line_numbers_advance_through_all_token_kinds() {
        let src = "a\n/* c1\nc2 */\n\"s1\ns2\"\nb";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.text == "b").expect("b");
        assert_eq!(b.line, 6);
    }

    #[test]
    fn lexing_is_total_on_unterminated_input() {
        for src in ["\"unterminated", "/* unterminated", "r#\"unterminated", "'"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src:?}");
        }
    }

    #[test]
    fn blank_noncode_preserves_layout() {
        let src = "let a = \"{ hidden }\"; // { also hidden }\nlet b = 1;";
        let blanked = blank_noncode(src);
        assert_eq!(blanked.len(), src.len());
        assert!(!blanked.contains("hidden"));
        assert!(blanked.contains("let b = 1;"));
        assert_eq!(
            blanked.lines().count(),
            src.lines().count(),
            "newlines preserved"
        );
        assert!(!blanked.contains('{'), "brace in string is blanked");
    }
}
