//! The four check families and their sink tables.
//!
//! Every check consumes the lexed/parsed/graphed workspace and emits
//! [`Finding`]s. Check identifiers are stable — they key the baseline
//! file and the `busarb-lint/1` JSON report:
//!
//! | id                      | family      | what it proves                         |
//! |-------------------------|-------------|----------------------------------------|
//! | `hot-alloc`             | purity      | no allocation reachable from hot roots |
//! | `hot-panic`             | purity      | no panic/unwrap/expect from hot roots  |
//! | `hot-lock`              | purity      | no `Mutex` lock from hot roots         |
//! | `hot-slow-math`         | purity      | no libm `.ln()`-class calls in fast-math closure |
//! | `det-collections`       | determinism | no `HashMap`/`HashSet` in report-feeding crates |
//! | `det-time`              | determinism | no `std::time` in report-feeding crates |
//! | `det-os-random`         | determinism | no OS entropy in report-feeding crates |
//! | `dispatch-token`        | dispatch    | lexer-accurate variant/slug occurrence counts |
//! | `dispatch-match`        | dispatch    | every registered `ProtocolKind` match names every variant |
//! | `panic-surface`         | panics      | catalog of panic sites reachable from the mono runner (informational) |
//! | `unwrap-policy`         | panics      | no bare `.unwrap()` in non-test library code |
//! | `forbid-unsafe`         | policy      | every crate root carries `#![forbid(unsafe_code)]` |
//! | `root-missing`          | engine      | a configured root fn no longer exists  |
//! | `baseline-unused`       | engine      | a suppression matches nothing (rot)    |

use crate::graph::{CallGraph, CallKind, CallSite, FileFns, FnId};
use crate::items::FnItem;
use crate::lexer::{Token, TokenKind};

/// Static description of one registered check (for `--list` and the
/// JSON report header).
#[derive(Debug, Clone, Copy)]
pub struct CheckInfo {
    /// Stable identifier (baseline key).
    pub id: &'static str,
    /// Family grouping.
    pub family: &'static str,
    /// One-line description.
    pub description: &'static str,
}

/// Every registered check.
pub const CHECKS: &[CheckInfo] = &[
    CheckInfo {
        id: "hot-alloc",
        family: "purity",
        description: "no allocation (Vec/Box/String/format!/collect except AgentSet) reachable from a hot root",
    },
    CheckInfo {
        id: "hot-panic",
        family: "purity",
        description: "no panic!/unwrap/expect/unreachable! reachable from a hot root",
    },
    CheckInfo {
        id: "hot-lock",
        family: "purity",
        description: "no Mutex/RwLock acquisition reachable from a hot root",
    },
    CheckInfo {
        id: "hot-slow-math",
        family: "purity",
        description: "no libm slow-math (.ln/.log2/.exp/.powf) reachable from a fast-math root",
    },
    CheckInfo {
        id: "det-collections",
        family: "determinism",
        description: "no HashMap/HashSet (randomized iteration order) in report-feeding crates",
    },
    CheckInfo {
        id: "det-time",
        family: "determinism",
        description: "no std::time (wall-clock) in report-feeding crates",
    },
    CheckInfo {
        id: "det-os-random",
        family: "determinism",
        description: "no OS entropy (thread_rng/OsRng/from_entropy) in report-feeding crates",
    },
    CheckInfo {
        id: "dispatch-token",
        family: "dispatch",
        description: "every ProtocolKind variant/slug occurs often enough at each dispatch surface, counting code tokens only",
    },
    CheckInfo {
        id: "dispatch-match",
        family: "dispatch",
        description: "registered ProtocolKind matches name every variant explicitly (wildcards do not count)",
    },
    CheckInfo {
        id: "panic-surface",
        family: "panics",
        description: "machine-readable catalog of every panic site reachable from the mono runner (informational, never fails)",
    },
    CheckInfo {
        id: "unwrap-policy",
        family: "panics",
        description: "no bare `.unwrap()` in non-test library code (binaries and main.rs are exempt)",
    },
    CheckInfo {
        id: "forbid-unsafe",
        family: "policy",
        description: "every crate root (src/lib.rs) carries #![forbid(unsafe_code)]",
    },
    CheckInfo {
        id: "root-missing",
        family: "engine",
        description: "every configured root function still exists (renames cannot disarm the engine)",
    },
    CheckInfo {
        id: "baseline-unused",
        family: "engine",
        description: "every baseline suppression still matches a finding (suppression rot)",
    },
];

/// One finding: check id, location, symbol, and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which check fired.
    pub check: &'static str,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line (0 when the finding is file-scoped).
    pub line: u32,
    /// The symbol the finding anchors to (function name, variant, …) —
    /// the baseline suppression key, so it must be stable across
    /// unrelated edits.
    pub symbol: String,
    /// Human-readable explanation.
    pub message: String,
}

impl core::fmt::Display for Finding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.line == 0 {
            write!(f, "{} [{}] {}", self.file, self.check, self.message)
        } else {
            write!(f, "{}:{} [{}] {}", self.file, self.line, self.check, self.message)
        }
    }
}

/// Where a root function lives.
#[derive(Debug, Clone)]
pub struct RootSpec {
    /// Workspace-relative path suffix (`crates/bus/src/contention.rs`).
    pub file: &'static str,
    /// Required impl type, when the name alone is ambiguous in the file.
    pub impl_type: Option<&'static str>,
    /// Function name.
    pub name: &'static str,
}

/// One entry of the reachable panic-site catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Containing function (qualified).
    pub function: String,
    /// Construct: `panic!`, `assert!`, `.unwrap()`, `.expect()`, ….
    pub construct: String,
}

const ALLOC_PATHS: &[&str] = &[
    "Vec::new",
    "Vec::with_capacity",
    "Box::new",
    "Box::pin",
    "String::new",
    "String::with_capacity",
    "String::from",
    "Rc::new",
    "Arc::new",
    "BTreeMap::new",
    "VecDeque::new",
    "VecDeque::with_capacity",
];
const ALLOC_MACROS: &[&str] = &["vec", "format"];
const ALLOC_METHODS: &[&str] = &["to_vec", "to_string", "to_owned", "into_boxed_slice"];
/// Panic constructs banned outright on hot paths. `assert!` guards and
/// `debug_assert!` are *not* here: asserts are the workspace's approved
/// cheap invariant guards and are tracked by the panic-surface catalog
/// instead; `debug_assert!` compiles out of release builds entirely.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
/// Catalog-only panic constructs (reported in the panic surface, not as
/// `hot-panic` findings).
const GUARD_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];
const LOCK_METHODS: &[&str] = &["lock"];
const SLOW_MATH_METHODS: &[&str] = &["ln", "log", "log2", "log10", "exp", "exp2", "exp_m1", "ln_1p", "powf"];

/// Scans one function body for purity violations, pushing findings
/// anchored at the containing function.
#[allow(clippy::too_many_arguments)]
fn scan_purity(
    path: &str,
    item: &FnItem,
    sites: &[CallSite],
    via: &str,
    slow_math: bool,
    findings: &mut Vec<Finding>,
) {
    let symbol = item.qualified_name();
    for site in sites {
        match &site.kind {
            CallKind::Macro => {
                if ALLOC_MACROS.contains(&site.name.as_str()) {
                    findings.push(Finding {
                        check: "hot-alloc",
                        file: path.to_string(),
                        line: site.line,
                        symbol: symbol.clone(),
                        message: format!("`{}!` in `{symbol}`{via}", site.name),
                    });
                }
                if PANIC_MACROS.contains(&site.name.as_str()) {
                    findings.push(Finding {
                        check: "hot-panic",
                        file: path.to_string(),
                        line: site.line,
                        symbol: symbol.clone(),
                        message: format!("`{}!` in `{symbol}`{via}", site.name),
                    });
                }
            }
            CallKind::Path { full, .. } => {
                if ALLOC_PATHS.contains(&full.as_str())
                    || full.ends_with("::to_string")
                    || (full.ends_with("::with_capacity") && !full.starts_with("AgentSet"))
                {
                    findings.push(Finding {
                        check: "hot-alloc",
                        file: path.to_string(),
                        line: site.line,
                        symbol: symbol.clone(),
                        message: format!("`{full}` in `{symbol}`{via}"),
                    });
                }
                if full == "Mutex::new" || full.ends_with("Mutex::lock") {
                    findings.push(Finding {
                        check: "hot-lock",
                        file: path.to_string(),
                        line: site.line,
                        symbol: symbol.clone(),
                        message: format!("`{full}` in `{symbol}`{via}"),
                    });
                }
            }
            CallKind::Method(turbofish) => {
                let name = site.name.as_str();
                if ALLOC_METHODS.contains(&name) {
                    findings.push(Finding {
                        check: "hot-alloc",
                        file: path.to_string(),
                        line: site.line,
                        symbol: symbol.clone(),
                        message: format!("`.{name}()` in `{symbol}`{via}"),
                    });
                }
                if name == "collect" && turbofish.as_deref() != Some("AgentSet") {
                    findings.push(Finding {
                        check: "hot-alloc",
                        file: path.to_string(),
                        line: site.line,
                        symbol: symbol.clone(),
                        message: format!(
                            "`.collect()` in `{symbol}` (only `.collect::<AgentSet>()` is allocation-free){via}"
                        ),
                    });
                }
                if PANIC_METHODS.contains(&name) {
                    findings.push(Finding {
                        check: "hot-panic",
                        file: path.to_string(),
                        line: site.line,
                        symbol: symbol.clone(),
                        message: format!("`.{name}()` in `{symbol}`{via}"),
                    });
                }
                if LOCK_METHODS.contains(&name) {
                    findings.push(Finding {
                        check: "hot-lock",
                        file: path.to_string(),
                        line: site.line,
                        symbol: symbol.clone(),
                        message: format!("`.{name}()` in `{symbol}`{via}"),
                    });
                }
                if slow_math && SLOW_MATH_METHODS.contains(&name) {
                    findings.push(Finding {
                        check: "hot-slow-math",
                        file: path.to_string(),
                        line: site.line,
                        symbol: symbol.clone(),
                        message: format!(
                            "`.{name}()` in `{symbol}` — route through the table-based fast_ln family{via}"
                        ),
                    });
                }
            }
            CallKind::Free => {}
        }
    }
}

/// Resolves a [`RootSpec`] against the workspace.
fn resolve_root(files: &[FileFns<'_>], spec: &RootSpec) -> Vec<FnId> {
    let mut out = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        if !f.path.ends_with(spec.file) {
            continue;
        }
        for (ii, item) in f.items.iter().enumerate() {
            if item.is_test || item.name != spec.name {
                continue;
            }
            if let Some(ty) = spec.impl_type {
                if item.impl_type.as_deref() != Some(ty) {
                    continue;
                }
            }
            out.push(FnId { file: fi, item: ii });
        }
    }
    out
}

/// Renders a `reachable via root → … → here` suffix for messages.
fn via_chain(
    files: &[FileFns<'_>],
    parents: &std::collections::BTreeMap<FnId, FnId>,
    id: FnId,
) -> String {
    let mut chain = vec![id];
    let mut cur = id;
    while let Some(&p) = parents.get(&cur) {
        if p == cur {
            break;
        }
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    if chain.len() <= 1 {
        return String::new();
    }
    let names: Vec<String> = chain
        .iter()
        .map(|&n| files[n.file].items[n.item].name.clone())
        .collect();
    format!(" (reachable via {})", names.join(" → "))
}

/// Runs the transitive purity family: `hot-alloc`/`hot-panic`/`hot-lock`
/// over everything reachable from `hot_roots`, `hot-slow-math` over
/// everything reachable from `fast_math_roots`.
pub fn check_purity(
    files: &[FileFns<'_>],
    graph: &CallGraph,
    hot_roots: &[RootSpec],
    fast_math_roots: &[RootSpec],
    findings: &mut Vec<Finding>,
) {
    for (specs, slow_math) in [(hot_roots, false), (fast_math_roots, true)] {
        let mut roots = Vec::new();
        for spec in specs {
            let resolved = resolve_root(files, spec);
            if resolved.is_empty() {
                findings.push(Finding {
                    check: "root-missing",
                    file: spec.file.to_string(),
                    line: 0,
                    symbol: spec.name.to_string(),
                    message: format!(
                        "configured root `{}` not found in `{}` (renamed? update the lint config)",
                        spec.name, spec.file
                    ),
                });
            }
            roots.extend(resolved);
        }
        let parents = graph.reachable(&roots);
        for &id in parents.keys() {
            let f = &files[id.file];
            let item = &f.items[id.item];
            let sites = &graph.sites[id.file][id.item];
            let via = via_chain(files, &parents, id);
            if slow_math {
                // Fast-math closure: only the slow-math sink class.
                let mut slow_only = Vec::new();
                scan_purity(f.path, item, sites, &via, true, &mut slow_only);
                findings.extend(slow_only.into_iter().filter(|f| f.check == "hot-slow-math"));
            } else {
                scan_purity(f.path, item, sites, &via, false, findings);
            }
        }
    }
}

const DET_COLLECTION_IDENTS: &[&str] = &["HashMap", "HashSet"];
const DET_RANDOM_IDENTS: &[&str] = &["thread_rng", "OsRng", "from_entropy", "getrandom"];

/// Token-level determinism scan over files under `paths` prefixes;
/// `cfg(test)` regions are exempt.
pub fn check_determinism(files: &[FileFns<'_>], paths: &[&str], findings: &mut Vec<Finding>) {
    for f in files {
        if !paths.iter().any(|p| f.path.starts_with(p)) {
            continue;
        }
        // Token-index spans of test regions, via the parsed items.
        let test_spans: Vec<core::ops::Range<usize>> = f
            .items
            .iter()
            .filter(|i| i.is_test)
            .map(|i| i.body.clone())
            .collect();
        let enclosing_fn = |idx: usize| -> String {
            f.items
                .iter()
                .find(|i| i.body.contains(&idx))
                .map_or_else(|| "(file scope)".to_string(), FnItem::qualified_name)
        };
        for (ti, t) in f.tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident || test_spans.iter().any(|r| r.contains(&ti)) {
                continue;
            }
            let (check, what): (&'static str, &str) =
                if DET_COLLECTION_IDENTS.contains(&t.text) {
                    ("det-collections", "randomized iteration order")
                } else if DET_RANDOM_IDENTS.contains(&t.text) {
                    ("det-os-random", "OS entropy")
                } else if matches!(t.text, "SystemTime" | "Instant")
                    || (t.text == "time"
                        && ti >= 3
                        && f.tokens[ti - 1].text == ":"
                        && f.tokens[ti - 2].text == ":"
                        && f.tokens[ti - 3].text == "std")
                {
                    ("det-time", "wall-clock time")
                } else {
                    continue;
                };
            findings.push(Finding {
                check,
                file: f.path.to_string(),
                line: t.line,
                symbol: format!("{}::{}", enclosing_fn(ti), t.text),
                message: format!(
                    "`{}` ({what}) in a crate feeding RunReport/sweep merge/serve aggregation",
                    t.text
                ),
            });
        }
    }
}

/// Workspace panic/unsafe policy, migrated from the pre-engine string
/// heuristics in `cargo xtask lint` (which this check retires):
///
/// * **`unwrap-policy`** — a bare `.unwrap()` in library code must
///   justify itself as `.expect("why this cannot fail")`. Binaries and
///   `main.rs` roots may panic on bad input; `#[cfg(test)]` regions and
///   `#[test]` fns are exempt (doc comments never lex as code).
/// * **`forbid-unsafe`** — every crate root (`src/lib.rs`, shims
///   included) must carry `#![forbid(unsafe_code)]`.
pub fn check_policy(files: &[FileFns<'_>], findings: &mut Vec<Finding>) {
    for f in files {
        if !f.path.contains("/bin/") && !f.path.ends_with("/main.rs") {
            let test_spans: Vec<core::ops::Range<usize>> = f
                .items
                .iter()
                .filter(|i| i.is_test)
                .map(|i| i.body.clone())
                .collect();
            let enclosing_fn = |idx: usize| -> String {
                f.items
                    .iter()
                    .find(|i| i.body.contains(&idx))
                    .map_or_else(|| "(file scope)".to_string(), FnItem::qualified_name)
            };
            for i in 0..f.tokens.len().saturating_sub(3) {
                let is = |k: usize, text: &str| f.tokens[i + k].text == text;
                if f.tokens[i].kind == TokenKind::Punct
                    && is(0, ".")
                    && is(1, "unwrap")
                    && is(2, "(")
                    && is(3, ")")
                    && !test_spans.iter().any(|r| r.contains(&i))
                {
                    findings.push(Finding {
                        check: "unwrap-policy",
                        file: f.path.to_string(),
                        line: f.tokens[i].line,
                        symbol: enclosing_fn(i),
                        message: "bare `.unwrap()` in library code — use `.expect(\"why this cannot fail\")`"
                            .to_string(),
                    });
                }
            }
        }
        if f.path.ends_with("src/lib.rs") {
            let has_forbid = (0..f.tokens.len().saturating_sub(3)).any(|i| {
                f.tokens[i].text == "forbid"
                    && f.tokens[i + 1].text == "("
                    && f.tokens[i + 2].text == "unsafe_code"
                    && f.tokens[i + 3].text == ")"
            });
            if !has_forbid {
                findings.push(Finding {
                    check: "forbid-unsafe",
                    file: f.path.to_string(),
                    line: 0,
                    symbol: "(crate root)".to_string(),
                    message: "missing `#![forbid(unsafe_code)]`".to_string(),
                });
            }
        }
    }
}

/// Counts **code** occurrences of `Enum::Variant` path tokens in a file
/// (comments and strings never count — the sharpening over the old
/// substring heuristic).
#[must_use]
pub fn count_variant_paths(tokens: &[Token<'_>], enum_name: &str, variant: &str) -> usize {
    let code: Vec<&Token<'_>> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut n = 0;
    for i in 0..code.len() {
        if code[i].kind == TokenKind::Ident
            && code[i].text == variant
            && i >= 3
            && code[i - 1].text == ":"
            && code[i - 2].text == ":"
            && code[i - 3].kind == TokenKind::Ident
            && code[i - 3].text == enum_name
        {
            n += 1;
        }
    }
    n
}

/// Counts occurrences of `slug` inside string-literal tokens, at word
/// boundaries: the characters on either side must not extend the slug,
/// so `rr` inside `central-rr` (or inside prose like `borrow`) does not
/// count, but `rr` in a usage string listing the protocols does.
/// Comments never count — that is the whole point over the old raw
/// substring heuristic.
#[must_use]
pub fn count_slug_literals(tokens: &[Token<'_>], slug: &str) -> usize {
    let extends = |c: char| c.is_ascii_alphanumeric() || c == '-';
    tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Str)
        .map(|t| {
            let content = t.str_content();
            content
                .match_indices(slug)
                .filter(|(at, _)| {
                    let before = content[..*at].chars().next_back();
                    let after = content[at + slug.len()..].chars().next();
                    before.is_none_or(|c| !extends(c)) && after.is_none_or(|c| !extends(c))
                })
                .count()
        })
        .sum()
}

/// A dispatch surface: file plus minimum per-variant occurrence count.
#[derive(Debug, Clone, Copy)]
pub struct TokenSite {
    /// Workspace-relative path suffix.
    pub file: &'static str,
    /// Minimum occurrences per variant/slug.
    pub min_count: usize,
}

/// Lexer-accurate variant/slug occurrence counting at registered
/// dispatch surfaces.
#[allow(clippy::too_many_arguments)]
pub fn check_dispatch_tokens(
    files: &[FileFns<'_>],
    enum_name: &str,
    variants: &[String],
    variant_sites: &[TokenSite],
    slugs: &[String],
    slug_sites: &[TokenSite],
    findings: &mut Vec<Finding>,
) {
    for (sites, tokens, kind) in [(variant_sites, variants, "variant"), (slug_sites, slugs, "slug")]
    {
        for site in sites {
            let Some(f) = files.iter().find(|f| f.path.ends_with(site.file)) else {
                findings.push(Finding {
                    check: "dispatch-token",
                    file: site.file.to_string(),
                    line: 0,
                    symbol: site.file.to_string(),
                    message: "registered dispatch surface not found (moved? update the lint config)"
                        .to_string(),
                });
                continue;
            };
            for token in tokens {
                let n = if kind == "variant" {
                    count_variant_paths(f.tokens, enum_name, token)
                } else {
                    count_slug_literals(f.tokens, token)
                };
                if n < site.min_count {
                    findings.push(Finding {
                        check: "dispatch-token",
                        file: f.path.to_string(),
                        line: 0,
                        symbol: token.clone(),
                        message: format!(
                            "{kind} `{token}` occurs {n}x in code (needs ≥{}) — every protocol must be wired into this dispatch surface",
                            site.min_count
                        ),
                    });
                }
            }
        }
    }
}

/// One `match` expression's coverage of an enum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchCoverage {
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// Variants named in arm patterns (deduped, source order).
    pub covered: Vec<String>,
    /// Whether any arm is a wildcard (`_`) or a binding catch-all.
    pub has_wildcard: bool,
}

/// Finds every `match` in `tokens` whose arm patterns name
/// `Enum::Variant` paths, and reports which variants each covers.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn match_coverages(tokens: &[Token<'_>], enum_name: &str) -> Vec<MatchCoverage> {
    let code: Vec<&Token<'_>> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !(code[i].kind == TokenKind::Ident && code[i].text == "match") {
            i += 1;
            continue;
        }
        let match_line = code[i].line;
        // Scrutinee runs to the `{` at depth 0 (struct literals cannot
        // appear unparenthesized in a scrutinee).
        let mut j = i + 1;
        let mut pdepth = 0i32;
        while j < code.len() {
            match code[j].text {
                "(" | "[" => pdepth += 1,
                ")" | "]" => pdepth -= 1,
                "{" if pdepth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= code.len() {
            break;
        }
        let open = j;
        // Parse arms at depth 1: pattern tokens until `=>`, then skip
        // the arm value.
        let mut covered: Vec<String> = Vec::new();
        let mut has_wildcard = false;
        let mut saw_any_variant = false;
        let mut k = open + 1;
        'arms: while k < code.len() && code[k].text != "}" {
            // --- pattern ---
            let mut pat: Vec<usize> = Vec::new();
            let mut depth = 0i32;
            while k < code.len() {
                let t = code[k];
                if depth == 0 && t.text == "=" && code.get(k + 1).is_some_and(|n| n.text == ">") {
                    k += 2;
                    break;
                }
                if depth == 0 && t.text == "}" {
                    break 'arms;
                }
                match t.text {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    _ => {}
                }
                pat.push(k);
                k += 1;
            }
            // Pattern analysis: `Enum::V` paths; a lone `_` (or `_` as
            // the whole pattern before a guard) is a wildcard.
            let mut m = 0usize;
            let mut pattern_names_variant = false;
            while m < pat.len() {
                let t = code[pat[m]];
                if t.kind == TokenKind::Ident
                    && m >= 3
                    && code[pat[m - 1]].text == ":"
                    && code[pat[m - 2]].text == ":"
                    && code[pat[m - 3]].text == enum_name
                {
                    pattern_names_variant = true;
                    if !covered.contains(&t.text.to_string()) {
                        covered.push(t.text.to_string());
                    }
                }
                m += 1;
            }
            if pattern_names_variant {
                saw_any_variant = true;
            }
            // Wildcard: the pattern (up to any `if` guard) is exactly `_`.
            let guard_at = pat
                .iter()
                .position(|&x| code[x].kind == TokenKind::Ident && code[x].text == "if");
            let effective = &pat[..guard_at.unwrap_or(pat.len())];
            if effective.len() == 1 && code[effective[0]].text == "_" {
                has_wildcard = true;
            }
            // --- arm value ---
            if k < code.len() && code[k].text == "{" {
                let mut depth = 0i32;
                while k < code.len() {
                    match code[k].text {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                k += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                // Optional trailing comma after a braced arm.
                if k < code.len() && code[k].text == "," {
                    k += 1;
                }
            } else {
                let mut depth = 0i32;
                while k < code.len() {
                    let t = code[k];
                    if depth == 0 && t.text == "," {
                        k += 1;
                        break;
                    }
                    if depth == 0 && t.text == "}" {
                        break;
                    }
                    match t.text {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
        if saw_any_variant {
            out.push(MatchCoverage {
                line: match_line,
                covered,
                has_wildcard,
            });
        }
        i = open + 1;
    }
    out
}

/// A registered exhaustive-match site: every `ProtocolKind` match
/// inside `fn_name` must name every variant explicitly.
#[derive(Debug, Clone, Copy)]
pub struct MatchSite {
    /// Workspace-relative path suffix.
    pub file: &'static str,
    /// Required impl self-type, when several fns share the name
    /// (`ProtocolKind::fmt` vs `Grant::fmt`).
    pub impl_type: Option<&'static str>,
    /// Function whose matches must be exhaustive.
    pub fn_name: &'static str,
}

/// Match-arm exhaustiveness at registered sites. The compiler cannot
/// enforce this: `ProtocolKind` is `#[non_exhaustive]`, so every match
/// outside `busarb-core` legally carries a wildcard arm — which is
/// exactly how a dropped variant keeps compiling. Here the wildcard
/// earns nothing: each registered match must *name* every variant.
pub fn check_dispatch_matches(
    files: &[FileFns<'_>],
    enum_name: &str,
    variants: &[String],
    sites: &[MatchSite],
    findings: &mut Vec<Finding>,
) {
    for site in sites {
        let Some(f) = files.iter().find(|f| f.path.ends_with(site.file)) else {
            findings.push(Finding {
                check: "dispatch-match",
                file: site.file.to_string(),
                line: 0,
                symbol: site.fn_name.to_string(),
                message: "registered match site file not found (moved? update the lint config)"
                    .to_string(),
            });
            continue;
        };
        let matching: Vec<&FnItem> = f
            .items
            .iter()
            .filter(|i| {
                !i.is_test
                    && i.name == site.fn_name
                    && site
                        .impl_type
                        .is_none_or(|ty| i.impl_type.as_deref() == Some(ty))
            })
            .collect();
        if matching.is_empty() {
            findings.push(Finding {
                check: "dispatch-match",
                file: f.path.to_string(),
                line: 0,
                symbol: site.fn_name.to_string(),
                message: format!(
                    "registered match fn `{}` not found (renamed? update the lint config)",
                    site.fn_name
                ),
            });
            continue;
        }
        let coverages: Vec<MatchCoverage> = matching
            .iter()
            .flat_map(|item| match_coverages(&f.tokens[item.body.clone()], enum_name))
            .collect();
        if coverages.is_empty() {
            findings.push(Finding {
                check: "dispatch-match",
                file: f.path.to_string(),
                line: matching[0].line,
                symbol: site.fn_name.to_string(),
                message: format!(
                    "no `{enum_name}` match found in `{}` — dispatch moved? update the lint config",
                    site.fn_name
                ),
            });
            continue;
        }
        for cov in coverages {
            for v in variants {
                if !cov.covered.contains(v) {
                    findings.push(Finding {
                        check: "dispatch-match",
                        file: f.path.to_string(),
                        line: cov.line,
                        symbol: format!("{}::{v}", site.fn_name),
                        message: format!(
                            "match in `{}` does not name `{enum_name}::{v}`{}",
                            site.fn_name,
                            if cov.has_wildcard {
                                " (the wildcard arm would silently swallow it)"
                            } else {
                                ""
                            }
                        ),
                    });
                }
            }
        }
    }
}

/// Builds the panic-surface catalog: everything panic-shaped reachable
/// from the runner roots. The catalog is informational — it goes into
/// the report (text and JSON) but never fails the lint; its job is to
/// make the runner's panic surface *visible* so reviews and the
/// workspace snapshot test can pin it. Only an unresolvable runner root
/// is a finding (`root-missing`): that means the inventory itself has
/// silently lost its anchor.
pub fn check_panic_surface(
    files: &[FileFns<'_>],
    graph: &CallGraph,
    runner_roots: &[RootSpec],
    findings: &mut Vec<Finding>,
) -> Vec<PanicSite> {
    let mut roots = Vec::new();
    for spec in runner_roots {
        let resolved = resolve_root(files, spec);
        if resolved.is_empty() {
            findings.push(Finding {
                check: "root-missing",
                file: spec.file.to_string(),
                line: 0,
                symbol: spec.name.to_string(),
                message: format!(
                    "configured runner root `{}` not found in `{}` (renamed? update the lint config)",
                    spec.name, spec.file
                ),
            });
        }
        roots.extend(resolved);
    }
    let parents = graph.reachable(&roots);
    let mut catalog = Vec::new();
    for &id in parents.keys() {
        let f = &files[id.file];
        let item = &f.items[id.item];
        for site in &graph.sites[id.file][id.item] {
            let construct = match &site.kind {
                CallKind::Macro
                    if PANIC_MACROS.contains(&site.name.as_str())
                        || GUARD_MACROS.contains(&site.name.as_str()) =>
                {
                    format!("{}!", site.name)
                }
                CallKind::Method(_) if PANIC_METHODS.contains(&site.name.as_str()) => {
                    format!(".{}()", site.name)
                }
                _ => continue,
            };
            catalog.push(PanicSite {
                file: f.path.to_string(),
                line: site.line,
                function: item.qualified_name(),
                construct,
            });
        }
    }
    catalog.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    catalog
}
