//! Item extraction over a lexed token stream.
//!
//! Produces every `fn` item in a file together with the context the
//! call-graph needs: the surrounding `impl` type (so `FastEngine::refill`
//! and `ReferenceEngine::think_time` are distinct nodes even though both
//! impl blocks define `think_time`), whether the function takes `self`
//! (method-call resolution), whether it lives in test code
//! (`#[cfg(test)]` modules/items and `#[test]` functions are excluded
//! from every production check), and the exact token range of its body.
//!
//! Because the stream comes from the real lexer, a `"{"` inside a string
//! literal or a commented-out `fn` cannot derail brace matching — the
//! failure mode of the old `fn_bodies` heuristic.

use crate::lexer::{Token, TokenKind};

/// One extracted `fn` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` self-type (first path segment), if any.
    pub impl_type: Option<String>,
    /// Whether the first parameter is (some form of) `self`.
    pub has_self: bool,
    /// Whether the item is test-only code (`#[cfg(test)]` region or a
    /// `#[test]` function).
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body, **braces included** — empty for
    /// bodiless trait method declarations.
    pub body: core::ops::Range<usize>,
}

impl FnItem {
    /// `Type::name` when inside an impl block, otherwise just `name`.
    #[must_use]
    pub fn qualified_name(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Skips a balanced `{ … }` starting at `open` (which must index a `{`
/// token); returns the index one past the matching `}`. Tolerates
/// unbalanced input by running to the end of the stream.
fn skip_braces(tokens: &[Token<'_>], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Punct {
            match tokens[i].text {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Parses the attribute starting at `i` (which must index a `#`);
/// returns `(end_index, attribute_text)`.
fn parse_attribute(tokens: &[Token<'_>], i: usize) -> (usize, String) {
    let mut j = i + 1;
    // Optional inner-attribute bang.
    if tokens.get(j).is_some_and(|t| t.text == "!") {
        j += 1;
    }
    let mut text = String::new();
    if tokens.get(j).is_some_and(|t| t.text == "[") {
        let mut depth = 0usize;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.kind == TokenKind::Punct {
                match t.text {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            return (j + 1, text);
                        }
                    }
                    _ => {}
                }
            }
            if depth >= 1 && !(depth == 1 && t.text == "[") {
                text.push_str(t.text);
            }
            j += 1;
        }
    }
    (j, text)
}

/// The impl self-type: first identifier of the type after `impl`
/// generics (and after `for`, when the block is a trait impl).
fn impl_self_type(tokens: &[Token<'_>], impl_idx: usize, open_brace: usize) -> Option<String> {
    let mut i = impl_idx + 1;
    // Skip `<…>` generic parameters directly after `impl`.
    if tokens.get(i).is_some_and(|t| t.text == "<") {
        let mut depth = 0i32;
        while i < open_brace {
            match tokens[i].text {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // If a `for` appears before the brace, the self type follows it.
    let for_idx = (i..open_brace)
        .find(|&j| tokens[j].kind == TokenKind::Ident && tokens[j].text == "for");
    let from = for_idx.map_or(i, |j| j + 1);
    (from..open_brace)
        .find(|&j| tokens[j].kind == TokenKind::Ident)
        .map(|j| {
            // Take the *last* segment of a path like `crate::plane::AgentMask`.
            let mut seg = j;
            let mut k = j + 1;
            while k + 1 < open_brace && tokens[k].text == ":" && tokens[k + 1].text == ":" {
                if let Some(t) = tokens.get(k + 2) {
                    if t.kind == TokenKind::Ident {
                        seg = k + 2;
                        k += 3;
                        continue;
                    }
                }
                break;
            }
            tokens[seg].text.to_string()
        })
}

/// Whether the parameter list opening at `open_paren` starts with a
/// `self` parameter (`self`, `&self`, `&mut self`, `mut self`,
/// `self: Pin<&mut Self>`).
fn first_param_is_self(tokens: &[Token<'_>], open_paren: usize) -> bool {
    let mut i = open_paren + 1;
    let mut depth = 1usize;
    while i < tokens.len() && depth > 0 {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct {
            match t.text {
                "(" => depth += 1,
                ")" => depth -= 1,
                "," if depth == 1 => return false,
                _ => {}
            }
        }
        if depth == 1 && t.kind == TokenKind::Ident && t.text != "mut" {
            return t.text == "self";
        }
        i += 1;
    }
    false
}

/// Token-index spans covered by `#[cfg(test)]` braced items or `#[test]`
/// functions — the regions the workspace panic policy exempts. Exposed
/// for `cargo xtask lint`'s unwrap scan, which needs the *regions*
/// rather than per-fn classification (a test module can hold unwraps
/// outside any fn, e.g. in a `const` table).
#[must_use]
pub fn test_spans(tokens: &[Token<'_>]) -> Vec<core::ops::Range<usize>> {
    let mut spans = Vec::new();
    let mut pending: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct && t.text == "#" {
            let (end, text) = parse_attribute(tokens, i);
            pending.push(text);
            i = end;
            continue;
        }
        if t.kind == TokenKind::Ident {
            match t.text {
                "impl" | "mod" | "struct" | "enum" | "trait" | "union" | "fn" => {
                    let test = pending.iter().any(|a| a.contains("cfg(test)"))
                        || (t.text == "fn"
                            && pending
                                .iter()
                                .any(|a| a == "test" || a.starts_with("test(")));
                    pending.clear();
                    if test {
                        let mut j = i;
                        while j < tokens.len() && tokens[j].text != "{" && tokens[j].text != ";" {
                            j += 1;
                        }
                        if tokens.get(j).is_some_and(|t| t.text == "{") {
                            let end = skip_braces(tokens, j);
                            spans.push(i..end);
                            i = end;
                            continue;
                        }
                    }
                }
                "use" | "static" | "const" | "let" | "macro_rules" => pending.clear(),
                _ => {}
            }
        }
        i += 1;
    }
    spans
}

/// Extracts every `fn` item from `tokens`.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn parse_items(tokens: &[Token<'_>]) -> Vec<FnItem> {
    let mut items = Vec::new();
    // Stack of (close_token_index, impl_type) for impl blocks we are
    // inside of, plus test-region spans by token index.
    let mut impl_stack: Vec<(usize, Option<String>)> = Vec::new();
    let mut test_regions: Vec<core::ops::Range<usize>> = Vec::new();
    let mut pending_attrs: Vec<String> = Vec::new();
    let mut i = 0usize;

    let in_test = |regions: &[core::ops::Range<usize>], idx: usize| {
        regions.iter().any(|r| r.contains(&idx))
    };

    while i < tokens.len() {
        let t = &tokens[i];
        impl_stack.retain(|(close, _)| *close > i);

        if t.kind == TokenKind::Punct && t.text == "#" {
            let (end, text) = parse_attribute(tokens, i);
            pending_attrs.push(text);
            i = end;
            continue;
        }

        if t.kind == TokenKind::Ident {
            match t.text {
                "impl" => {
                    // Find the block's open brace: first `{` at
                    // angle/paren-agnostic scan (an impl header contains
                    // no braces).
                    let open = (i..tokens.len()).find(|&j| tokens[j].text == "{");
                    if let Some(open) = open {
                        let close = skip_braces(tokens, open);
                        let ty = impl_self_type(tokens, i, open);
                        if pending_attrs.iter().any(|a| a.contains("cfg(test)")) {
                            test_regions.push(i..close);
                        }
                        impl_stack.push((close, ty));
                        pending_attrs.clear();
                        i = open + 1;
                        continue;
                    }
                }
                "mod" | "struct" | "enum" | "trait" | "union" => {
                    // A `#[cfg(test)]` on any braced item marks the whole
                    // item as a test region. (Braceless `mod name;` and
                    // tuple structs end at `;`.)
                    if pending_attrs.iter().any(|a| a.contains("cfg(test)")) {
                        let mut j = i;
                        while j < tokens.len() && tokens[j].text != "{" && tokens[j].text != ";" {
                            j += 1;
                        }
                        if tokens.get(j).is_some_and(|t| t.text == "{") {
                            test_regions.push(i..skip_braces(tokens, j));
                        }
                    }
                    pending_attrs.clear();
                }
                "fn" => {
                    let is_test_attr = pending_attrs
                        .iter()
                        .any(|a| a.contains("cfg(test)") || a == "test" || a.starts_with("test("));
                    let Some(name_tok) = tokens.get(i + 1) else {
                        break;
                    };
                    if name_tok.kind != TokenKind::Ident {
                        pending_attrs.clear();
                        i += 1;
                        continue;
                    }
                    // Signature: runs to the first `{` (body) or `;`
                    // (bodiless trait declaration) at paren depth 0.
                    let mut j = i + 2;
                    let mut paren_depth = 0usize;
                    let mut open_paren = None;
                    let mut body_open = None;
                    while j < tokens.len() {
                        let s = &tokens[j];
                        if s.kind == TokenKind::Punct {
                            match s.text {
                                "(" => {
                                    if paren_depth == 0 && open_paren.is_none() {
                                        open_paren = Some(j);
                                    }
                                    paren_depth += 1;
                                }
                                ")" => paren_depth = paren_depth.saturating_sub(1),
                                ";" if paren_depth == 0 => break,
                                "{" if paren_depth == 0 => {
                                    body_open = Some(j);
                                    break;
                                }
                                _ => {}
                            }
                        }
                        j += 1;
                    }
                    let body = match body_open {
                        Some(open) => open..skip_braces(tokens, open),
                        None => j..j,
                    };
                    let region_test = is_test_attr || in_test(&test_regions, i);
                    if is_test_attr && !body.is_empty() {
                        test_regions.push(i..body.end);
                    }
                    items.push(FnItem {
                        name: name_tok.text.to_string(),
                        impl_type: impl_stack.last().and_then(|(_, ty)| ty.clone()),
                        has_self: open_paren
                            .is_some_and(|p| first_param_is_self(tokens, p)),
                        is_test: region_test,
                        line: t.line,
                        body,
                    });
                    pending_attrs.clear();
                    // Continue scanning *inside* the body too: nested
                    // fns and closures containing fns are still items.
                    i += 2;
                    continue;
                }
                _ => {
                    // Any other item-ish token consumes pending attrs
                    // (`use`, `static`, `const`, `let`, …) so a stray
                    // `#[cfg(test)]` cannot leak onto a later fn.
                    if matches!(t.text, "use" | "static" | "const" | "let" | "pub" | "macro_rules")
                        && !pending_attrs.is_empty()
                        && t.text != "pub"
                    {
                        pending_attrs.clear();
                    }
                }
            }
        }
        i += 1;
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Vec<FnItem> {
        parse_items(&lex(src))
    }

    #[test]
    fn brace_in_string_does_not_derail_body_extraction() {
        let src = r#"
fn hot() -> &'static str { let s = "{"; s }
fn next() { vec![1]; }
"#;
        let its = items(src);
        assert_eq!(its.len(), 2);
        assert_eq!(its[0].name, "hot");
        assert_eq!(its[1].name, "next");
        // `hot`'s body must end before `next` begins.
        assert!(its[0].body.end <= its[1].body.start);
    }

    #[test]
    fn impl_context_disambiguates_same_named_methods() {
        let src = "
impl FastEngine { fn think_time(&mut self) {} }
impl ReferenceEngine { fn think_time(&mut self) {} }
";
        let its = items(src);
        assert_eq!(its.len(), 2);
        assert_eq!(its[0].qualified_name(), "FastEngine::think_time");
        assert_eq!(its[1].qualified_name(), "ReferenceEngine::think_time");
        assert!(its[0].has_self && its[1].has_self);
    }

    #[test]
    fn trait_impl_and_generic_impl_self_types() {
        let src = "
impl<A: Arbiter + ?Sized> Arbiter for Box<A> { fn name(&self) {} }
impl<const W: usize> CalendarQueue<W> { fn pop(&mut self) {} }
impl crate::plane::AgentMask { fn words(&self) {} }
";
        let its = items(src);
        assert_eq!(its[0].impl_type.as_deref(), Some("Box"));
        assert_eq!(its[1].impl_type.as_deref(), Some("CalendarQueue"));
        assert_eq!(its[2].impl_type.as_deref(), Some("AgentMask"));
    }

    #[test]
    fn cfg_test_module_marks_fns_as_test() {
        let src = "
fn prod() {}
#[cfg(test)]
mod tests {
    fn helper() {}
    #[test]
    fn case() {}
}
fn prod2() {}
";
        let its = items(src);
        let by_name = |n: &str| its.iter().find(|i| i.name == n).expect(n);
        assert!(!by_name("prod").is_test);
        assert!(by_name("helper").is_test);
        assert!(by_name("case").is_test);
        assert!(!by_name("prod2").is_test);
    }

    #[test]
    fn test_attribute_alone_marks_fn_as_test() {
        let src = "#[test]\nfn case() {}\nfn prod() {}";
        let its = items(src);
        assert!(its[0].is_test);
        assert!(!its[1].is_test);
    }

    #[test]
    fn cfg_test_in_comment_or_string_is_inert() {
        let src = "
// #[cfg(test)] — documentation only
fn prod() { let s = \"#[cfg(test)]\"; drop(s); }
fn also_prod() {}
";
        let its = items(src);
        assert!(its.iter().all(|i| !i.is_test));
    }

    #[test]
    fn bodiless_trait_declaration_has_empty_body() {
        let src = "trait T { fn on_event(&mut self, e: &E); }\nfn factory() { Box::new(1); }";
        let its = items(src);
        let decl = its.iter().find(|i| i.name == "on_event").expect("decl");
        assert!(decl.body.is_empty());
        let factory = its.iter().find(|i| i.name == "factory").expect("factory");
        assert!(!factory.body.is_empty());
    }

    #[test]
    fn has_self_detection() {
        let src = "
impl X {
    fn a(&self) {}
    fn b(&mut self, n: u32) {}
    fn c(mut self) {}
    fn d(n: u32) {}
    fn e() {}
}
";
        let its = items(src);
        let f = |n: &str| its.iter().find(|i| i.name == n).expect(n).has_self;
        assert!(f("a") && f("b") && f("c"));
        assert!(!f("d") && !f("e"));
    }

    #[test]
    fn commented_out_fn_is_not_an_item() {
        let src = "// fn ghost() { Vec::new(); }\nfn real() {}";
        let its = items(src);
        assert_eq!(its.len(), 1);
        assert_eq!(its[0].name, "real");
    }

    #[test]
    fn where_clause_and_return_type_before_body() {
        let src = "fn f<T>(x: T) -> Vec<T> where T: Clone { vec![x] }";
        let its = items(src);
        assert_eq!(its.len(), 1);
        assert!(!its[0].body.is_empty());
    }
}
