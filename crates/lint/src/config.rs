//! The busarb workspace's lint configuration: hot roots, fast-math
//! roots, runner roots, determinism scope, and dispatch surfaces.
//!
//! This is deliberately *data*, kept in one place: growing the system
//! (a new arbiter, a new analyzer, a new dispatch surface) means adding
//! a row here, and the `root-missing` check guarantees a rename cannot
//! silently disarm a row that already exists.

use crate::checks::{MatchSite, RootSpec, TokenSite};

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Enum whose dispatch must stay exhaustive.
    pub enum_name: String,
    /// Variant names (`FixedPriority`, …).
    pub variants: Vec<String>,
    /// CLI slugs (`fixed-priority`, …).
    pub slugs: Vec<String>,
    /// Path prefixes whose `fn` items are call-graph resolution targets
    /// (the crates the hot loop can actually link against).
    pub graph_paths: Vec<&'static str>,
    /// Hot entry points: allocation/panic/lock-free transitively.
    pub hot_roots: Vec<RootSpec>,
    /// Fast-draw entry points: libm-slow-math-free transitively.
    pub fast_math_roots: Vec<RootSpec>,
    /// Mono-runner entry points: the panic-surface catalog scope.
    pub runner_roots: Vec<RootSpec>,
    /// Path prefixes of crates feeding `RunReport`/sweep merge/serve
    /// aggregation (determinism scope).
    pub determinism_paths: Vec<&'static str>,
    /// Variant-path token-count surfaces.
    pub variant_sites: Vec<TokenSite>,
    /// Slug string-literal token-count surfaces.
    pub slug_sites: Vec<TokenSite>,
    /// Exhaustive match-arm surfaces.
    pub match_sites: Vec<MatchSite>,
}

fn root(file: &'static str, impl_type: Option<&'static str>, name: &'static str) -> RootSpec {
    RootSpec {
        file,
        impl_type,
        name,
    }
}

/// The configuration for this workspace. `variants` and `slugs` come
/// from `busarb_core::ProtocolKind` at the call site (`xtask` and the
/// self-tests) so this crate stays dependency-free.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn busarb_config(variants: Vec<String>, slugs: Vec<String>) -> Config {
    let mut hot_roots = vec![
        // The word-parallel contention settle loop.
        root("crates/bus/src/contention.rs", None, "settle"),
        // The slot-calendar event queue (and the legacy heap oracle
        // sharing these names): once per event in the steady state.
        root("crates/sim/src/event.rs", None, "schedule"),
        root("crates/sim/src/event.rs", None, "schedule_arrival"),
        root("crates/sim/src/event.rs", None, "pop"),
        root("crates/sim/src/event.rs", None, "peek_time"),
        // Draw engines: per-event think times and uniforms.
        root("crates/workload/src/engine.rs", Some("ReferenceEngine"), "think_time"),
        root("crates/workload/src/engine.rs", Some("ReferenceEngine"), "uniform"),
        root("crates/workload/src/engine.rs", Some("FastEngine"), "think_time"),
        root("crates/workload/src/engine.rs", Some("FastEngine"), "uniform"),
        root("crates/workload/src/engine.rs", Some("AgentStream"), "refill"),
        // Closed-loop MESI model: miss classification on every grant
        // completion, and the reference-stream scan that enqueues the
        // next miss.
        root("crates/mem/src/lib.rs", Some("CoherenceSystem"), "next_miss"),
        root("crates/mem/src/lib.rs", Some("CoherenceSystem"), "complete"),
        // Always-on metrics registry, updated on every transition.
        root("crates/obs/src/registry.rs", None, "on_event"),
        root("crates/obs/src/registry.rs", None, "on_request"),
        root("crates/obs/src/registry.rs", None, "on_grant"),
        root("crates/obs/src/registry.rs", None, "on_transfer_start"),
        root("crates/obs/src/registry.rs", None, "on_completion"),
        root("crates/obs/src/registry.rs", None, "on_coherence"),
        root("crates/obs/src/registry.rs", None, "on_invalidation"),
        root("crates/obs/src/metrics.rs", None, "record"),
        // Streaming analyzers: once per trace event.
        root("crates/tail/src/usage.rs", None, "push"),
        root("crates/tail/src/usage.rs", None, "account"),
        root("crates/tail/src/fairness.rs", None, "on_grant"),
        root("crates/tail/src/adapters.rs", None, "on_event"),
    ];
    // Every scheduling-level arbiter: request intake + winner scan.
    for file in [
        "crates/core/src/fcfs.rs",
        "crates/core/src/hybrid.rs",
        "crates/core/src/adaptive.rs",
        "crates/core/src/central.rs",
        "crates/core/src/ticket.rs",
        "crates/core/src/round_robin.rs",
        "crates/core/src/rotating.rs",
        "crates/core/src/fixed_priority.rs",
        "crates/core/src/assured_access.rs",
    ] {
        hot_roots.push(root(file, None, "arbitrate"));
        hot_roots.push(root(file, None, "on_request"));
    }
    // Every signal-level register system.
    for file in [
        "crates/bus/src/signal/rr1.rs",
        "crates/bus/src/signal/rr2.rs",
        "crates/bus/src/signal/rr3.rs",
        "crates/bus/src/signal/fcfs1.rs",
        "crates/bus/src/signal/fcfs2.rs",
        "crates/bus/src/signal/aap.rs",
    ] {
        hot_roots.push(root(file, None, "arbitrate"));
    }
    hot_roots.push(root("crates/bus/src/signal/rr3.rs", None, "arbitrate_below"));

    Config {
        enum_name: "ProtocolKind".to_string(),
        variants,
        slugs,
        graph_paths: vec![
            "crates/types/",
            "crates/bus/",
            "crates/core/",
            "crates/sim/",
            "crates/workload/",
            "crates/mem/",
            "crates/obs/",
            "crates/tail/",
            "crates/stats/",
            // Only the shims the hot loop can actually link against:
            // proptest and criterion are test/bench-only, and their
            // `sample`/`from` fns would otherwise soak up method-call
            // resolution from the draw engines.
            "shims/rand/",
            "shims/serde/",
            "shims/serde_json/",
        ],
        hot_roots,
        // The fast engine exists to avoid libm on the draw path; the
        // reference engine deliberately keeps exact `.ln()` and is not
        // in this closure.
        fast_math_roots: vec![
            root("crates/workload/src/engine.rs", Some("FastEngine"), "think_time"),
            root("crates/workload/src/engine.rs", Some("FastEngine"), "uniform"),
            root("crates/workload/src/engine.rs", Some("AgentStream"), "refill"),
            root("crates/workload/src/engine.rs", Some("AgentStream"), "next_normal"),
            root("crates/workload/src/engine.rs", Some("AgentStream"), "next_u64"),
        ],
        runner_roots: vec![
            root("crates/sim/src/system.rs", None, "run_mono"),
            root("crates/sim/src/system.rs", None, "run_kind"),
        ],
        determinism_paths: vec![
            "crates/sim/",
            "crates/mem/",
            "crates/obs/",
            "crates/tail/",
            "crates/stats/",
            "crates/workload/",
            "crates/experiments/",
            "src/",
        ],
        variant_sites: vec![
            // Enum-adjacent: `build`, `all`, and the `Display` impl.
            TokenSite {
                file: "crates/core/src/arbiter.rs",
                min_count: 3,
            },
            TokenSite {
                file: "crates/sim/src/system.rs",
                min_count: 1,
            },
            TokenSite {
                file: "crates/verify/src/model.rs",
                min_count: 1,
            },
            TokenSite {
                file: "crates/verify/src/spec.rs",
                min_count: 1,
            },
            TokenSite {
                file: "crates/experiments/src/common.rs",
                min_count: 1,
            },
            TokenSite {
                file: "crates/bench/src/bin/bench_run.rs",
                min_count: 1,
            },
        ],
        slug_sites: vec![
            TokenSite {
                file: "crates/experiments/src/bin/simulate.rs",
                min_count: 1,
            },
            // The streaming analyzers' protocol-family dispatch: every
            // slug must map to an adapter (its wildcard arm is for
            // *future* protocols, not an excuse to skip present ones).
            TokenSite {
                file: "crates/tail/src/adapters.rs",
                min_count: 1,
            },
        ],
        match_sites: vec![
            MatchSite {
                file: "crates/core/src/arbiter.rs",
                impl_type: Some("ProtocolKind"),
                fn_name: "build",
            },
            MatchSite {
                file: "crates/core/src/arbiter.rs",
                impl_type: Some("ProtocolKind"),
                fn_name: "fmt",
            },
            MatchSite {
                file: "crates/sim/src/system.rs",
                impl_type: None,
                fn_name: "run_kind",
            },
            MatchSite {
                file: "crates/experiments/src/common.rs",
                impl_type: None,
                fn_name: "protocol_slug",
            },
            MatchSite {
                file: "crates/verify/src/spec.rs",
                impl_type: Some("Spec"),
                fn_name: "for_kind",
            },
            MatchSite {
                file: "crates/verify/src/model.rs",
                impl_type: None,
                fn_name: "build_group",
            },
        ],
    }
}
