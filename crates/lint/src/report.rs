//! Report assembly and rendering (text and `busarb-lint/1` JSON).

use serde::Value;

use crate::checks::{Finding, PanicSite, CHECKS};

/// The format tag of the JSON report.
pub const REPORT_FORMAT: &str = "busarb-lint/1";

/// A full engine run's output.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Findings not covered by the baseline (these fail the lint).
    pub open: Vec<Finding>,
    /// Findings covered by the baseline.
    pub suppressed: Vec<Finding>,
    /// Inventory of every panic site reachable from the mono runner.
    pub panic_surface: Vec<PanicSite>,
    /// Scanned-workspace statistics.
    pub stats: Stats,
}

/// Scan statistics for the report header.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Files scanned.
    pub files: usize,
    /// Functions extracted.
    pub functions: usize,
    /// Functions reachable from the hot roots.
    pub hot_reachable: usize,
    /// Functions reachable from the runner roots.
    pub runner_reachable: usize,
}

impl Report {
    /// Whether the run is clean (no unsuppressed findings).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.open.is_empty()
    }

    /// Renders the human-readable text form.
    #[must_use]
    pub fn to_text(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        for f in &self.open {
            let _ = writeln!(out, "busarb-lint: {f}");
        }
        let _ = writeln!(
            out,
            "busarb-lint: {} file(s), {} function(s), {} hot-reachable, {} runner-reachable; {} finding(s) open, {} baselined, {} panic site(s) cataloged",
            self.stats.files,
            self.stats.functions,
            self.stats.hot_reachable,
            self.stats.runner_reachable,
            self.open.len(),
            self.suppressed.len(),
            self.panic_surface.len(),
        );
        out
    }

    /// Renders the `busarb-lint/1` JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let finding_value = |f: &Finding, baselined: bool| {
            Value::Object(vec![
                ("check".into(), Value::Str(f.check.to_string())),
                ("file".into(), Value::Str(f.file.clone())),
                ("line".into(), Value::UInt(u64::from(f.line))),
                ("symbol".into(), Value::Str(f.symbol.clone())),
                ("message".into(), Value::Str(f.message.clone())),
                ("baselined".into(), Value::Bool(baselined)),
            ])
        };
        let checks = CHECKS
            .iter()
            .map(|c| {
                Value::Object(vec![
                    ("id".into(), Value::Str(c.id.to_string())),
                    ("family".into(), Value::Str(c.family.to_string())),
                    ("description".into(), Value::Str(c.description.to_string())),
                ])
            })
            .collect();
        let findings = self
            .open
            .iter()
            .map(|f| finding_value(f, false))
            .chain(self.suppressed.iter().map(|f| finding_value(f, true)))
            .collect();
        let panic_surface = self
            .panic_surface
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("file".into(), Value::Str(s.file.clone())),
                    ("line".into(), Value::UInt(u64::from(s.line))),
                    ("function".into(), Value::Str(s.function.clone())),
                    ("construct".into(), Value::Str(s.construct.clone())),
                ])
            })
            .collect();
        let summary = Value::Object(vec![
            ("files".into(), Value::UInt(self.stats.files as u64)),
            ("functions".into(), Value::UInt(self.stats.functions as u64)),
            (
                "hot_reachable".into(),
                Value::UInt(self.stats.hot_reachable as u64),
            ),
            (
                "runner_reachable".into(),
                Value::UInt(self.stats.runner_reachable as u64),
            ),
            ("open".into(), Value::UInt(self.open.len() as u64)),
            ("baselined".into(), Value::UInt(self.suppressed.len() as u64)),
            (
                "panic_sites".into(),
                Value::UInt(self.panic_surface.len() as u64),
            ),
        ]);
        let doc = Value::Object(vec![
            ("format".into(), Value::Str(REPORT_FORMAT.to_string())),
            ("checks".into(), Value::Array(checks)),
            ("findings".into(), Value::Array(findings)),
            ("panic_surface".into(), Value::Array(panic_surface)),
            ("summary".into(), summary),
        ]);
        serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_through_the_shim_parser() {
        let report = Report {
            open: vec![Finding {
                check: "hot-alloc",
                file: "crates/x/src/lib.rs".to_string(),
                line: 3,
                symbol: "settle".to_string(),
                message: "`Vec::new` in `settle`".to_string(),
            }],
            suppressed: vec![],
            panic_surface: vec![PanicSite {
                file: "crates/x/src/lib.rs".to_string(),
                line: 9,
                function: "Q::schedule".to_string(),
                construct: "assert!".to_string(),
            }],
            stats: Stats {
                files: 2,
                functions: 5,
                hot_reachable: 3,
                runner_reachable: 4,
            },
        };
        let doc = serde_json::from_str(&report.to_json()).expect("valid JSON");
        assert_eq!(doc.get("format").and_then(serde::Value::as_str), Some(REPORT_FORMAT));
        let findings = doc
            .get("findings")
            .and_then(serde::Value::as_array)
            .expect("findings");
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].get("check").and_then(serde::Value::as_str),
            Some("hot-alloc")
        );
        assert_eq!(
            doc.get("summary")
                .and_then(|s| s.get("panic_sites"))
                .and_then(serde::Value::as_u64),
            Some(1)
        );
        assert!(!report.is_clean());
    }
}
