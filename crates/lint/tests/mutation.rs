//! Mutation self-tests: feed the engine scratch source trees seeded
//! with exactly the violations each check family exists to catch, and
//! assert the finding comes back with the right check id, file, and
//! line. Each scenario also has a clean twin, so a check that fires
//! unconditionally (or never) fails here rather than in CI triage.
//!
//! These go through [`busarb_lint::run`] — the identical pipeline
//! `cargo xtask lint` runs over the real workspace — not through the
//! check functions in isolation.

use busarb_lint::checks::{MatchSite, RootSpec, TokenSite};
use busarb_lint::{run, Baseline, Config, Finding, SourceFile, Workspace};

/// A config with no roots/sites/scopes; tests switch on one family.
fn empty_config() -> Config {
    Config {
        enum_name: "Proto".to_string(),
        variants: vec![],
        slugs: vec![],
        graph_paths: vec!["crates/toy/"],
        hot_roots: vec![],
        fast_math_roots: vec![],
        runner_roots: vec![],
        determinism_paths: vec![],
        variant_sites: vec![],
        slug_sites: vec![],
        match_sites: vec![],
    }
}

fn ws(files: &[(&str, &str)]) -> Workspace {
    Workspace::from_files(
        files
            .iter()
            .map(|(path, text)| SourceFile {
                path: (*path).to_string(),
                text: (*text).to_string(),
            })
            .collect(),
    )
}

fn open_findings(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    run(ws, cfg, &Baseline::empty()).open
}

fn root(file: &'static str, name: &'static str) -> RootSpec {
    RootSpec {
        file,
        impl_type: None,
        name,
    }
}

// --- family 1: transitive hot-path purity ---------------------------

#[test]
fn allocation_behind_a_helper_call_is_caught() {
    // The allocation is NOT in the hot root; it hides one call away.
    // The old per-fn body grep scanned only `settle` and missed this.
    let src = "\
pub fn settle(x: u32) -> u32 {
    helper(x)
}
fn helper(x: u32) -> u32 {
    let v = Vec::new();
    drop(v);
    x
}
";
    let mut cfg = empty_config();
    cfg.hot_roots = vec![root("crates/toy/src/hot.rs", "settle")];
    let findings = open_findings(&ws(&[("crates/toy/src/hot.rs", src)]), &cfg);
    assert_eq!(findings.len(), 1, "exactly the seeded violation: {findings:?}");
    let f = &findings[0];
    assert_eq!(f.check, "hot-alloc");
    assert_eq!(f.file, "crates/toy/src/hot.rs");
    assert_eq!(f.line, 5, "anchored at the `Vec::new` line");
    assert_eq!(f.symbol, "helper");
    assert!(
        f.message.contains("settle → helper"),
        "message names the reachability chain: {}",
        f.message
    );
}

#[test]
fn panic_behind_a_helper_call_is_caught() {
    let src = "\
pub fn settle(x: u32) -> u32 {
    helper(x)
}
fn helper(x: u32) -> u32 {
    let y = checked(x).unwrap();
    y
}
fn checked(x: u32) -> Option<u32> {
    x.checked_add(1)
}
";
    let mut cfg = empty_config();
    cfg.hot_roots = vec![root("crates/toy/src/hot.rs", "settle")];
    let findings = open_findings(&ws(&[("crates/toy/src/hot.rs", src)]), &cfg);
    // The bare unwrap also trips the workspace unwrap policy; the
    // reachability finding is the one under test here.
    assert_eq!(findings.len(), 2, "{findings:?}");
    let hot = findings
        .iter()
        .find(|f| f.check == "hot-panic")
        .expect("hot-panic finding present");
    assert_eq!((hot.line, hot.symbol.as_str()), (5, "helper"));
    assert!(findings.iter().any(|f| f.check == "unwrap-policy"));
}

#[test]
fn lock_acquisition_on_the_hot_path_is_caught() {
    let src = "\
pub fn settle(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}
";
    let mut cfg = empty_config();
    cfg.hot_roots = vec![root("crates/toy/src/hot.rs", "settle")];
    let findings = open_findings(&ws(&[("crates/toy/src/hot.rs", src)]), &cfg);
    let checks: Vec<&str> = findings.iter().map(|f| f.check).collect();
    assert!(checks.contains(&"hot-lock"), "{findings:?}");
    assert!(checks.contains(&"hot-panic"), "the unwrap too: {findings:?}");
}

#[test]
fn slow_math_two_hops_deep_is_caught() {
    // `.ln()` is two calls below the fast-math root, and the middle hop
    // lives in a different file of the same crate.
    let engine = "\
pub fn think_time(x: f64) -> f64 {
    crate::tables::draw(x)
}
";
    let tables = "\
pub fn draw(x: f64) -> f64 {
    transform(x)
}
fn transform(x: f64) -> f64 {
    x.ln()
}
";
    let mut cfg = empty_config();
    cfg.fast_math_roots = vec![root("crates/toy/src/engine.rs", "think_time")];
    let findings = open_findings(
        &ws(&[
            ("crates/toy/src/engine.rs", engine),
            ("crates/toy/src/tables.rs", tables),
        ]),
        &cfg,
    );
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(f.check, "hot-slow-math");
    assert_eq!(f.file, "crates/toy/src/tables.rs");
    assert_eq!(f.line, 5, "anchored at the `.ln()` line");
    assert_eq!(f.symbol, "transform");
    assert!(
        f.message.contains("think_time → draw → transform"),
        "{}",
        f.message
    );
}

#[test]
fn purity_ignores_code_not_reachable_from_a_root() {
    // The same allocation exists, but nothing routes the hot root to it
    // — and allocation tokens inside strings/comments never count.
    let src = "\
pub fn settle(x: u32) -> u32 {
    // never call Vec::new here
    let banned = \"format! and Box::new\";
    drop(banned);
    x
}
pub fn cold_setup() -> Vec<u32> {
    Vec::with_capacity(64)
}
";
    let mut cfg = empty_config();
    cfg.hot_roots = vec![root("crates/toy/src/hot.rs", "settle")];
    let findings = open_findings(&ws(&[("crates/toy/src/hot.rs", src)]), &cfg);
    assert_eq!(findings, vec![], "clean twin must stay clean");
}

#[test]
fn a_renamed_root_is_itself_a_finding() {
    let src = "pub fn settle_v2(x: u32) -> u32 { x }\n";
    let mut cfg = empty_config();
    cfg.hot_roots = vec![root("crates/toy/src/hot.rs", "settle")];
    let findings = open_findings(&ws(&[("crates/toy/src/hot.rs", src)]), &cfg);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].check, "root-missing");
    assert_eq!(findings[0].symbol, "settle");
}

// --- family 2: determinism -------------------------------------------

#[test]
fn hashmap_in_the_merge_path_is_caught() {
    let src = "\
use std::collections::BTreeMap;
pub fn merge(reports: &[u32]) -> BTreeMap<u32, u32> {
    let mut acc = std::collections::HashMap::new();
    for r in reports {
        *acc.entry(*r).or_insert(0) += 1;
    }
    acc.into_iter().collect()
}
";
    let mut cfg = empty_config();
    cfg.determinism_paths = vec!["crates/toy/"];
    let findings = open_findings(&ws(&[("crates/toy/src/merge.rs", src)]), &cfg);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(f.check, "det-collections");
    assert_eq!(f.file, "crates/toy/src/merge.rs");
    assert_eq!(f.line, 3, "anchored at the `HashMap` line");
    assert_eq!(f.symbol, "merge::HashMap");
}

#[test]
fn wall_clock_and_os_entropy_are_caught_outside_tests() {
    let src = "\
pub fn stamp() -> u64 {
    let t = std::time::Instant::now();
    drop(t);
    7
}
#[cfg(test)]
mod tests {
    #[test]
    fn timing_is_fine_in_tests() {
        let _ = std::time::Instant::now();
    }
}
";
    let mut cfg = empty_config();
    cfg.determinism_paths = vec!["crates/toy/"];
    let findings = open_findings(&ws(&[("crates/toy/src/report.rs", src)]), &cfg);
    // Both the `std::time` path and the `Instant` ident fire on line 2;
    // nothing fires inside the `#[cfg(test)]` module.
    assert!(!findings.is_empty());
    assert!(
        findings.iter().all(|f| f.check == "det-time" && f.line == 2),
        "{findings:?}"
    );
}

#[test]
fn determinism_scope_is_path_limited() {
    let src = "pub fn bench() { let _ = std::time::Instant::now(); }\n";
    let mut cfg = empty_config();
    cfg.determinism_paths = vec!["crates/toy/"];
    // Same source outside the scope: clean. (A non-root module, so the
    // crate-root forbid-unsafe policy does not apply either.)
    let findings = open_findings(&ws(&[("crates/bench/src/timing.rs", src)]), &cfg);
    assert_eq!(findings, vec![]);
}

// --- family 3: exhaustive dispatch -----------------------------------

/// A toy three-variant enum with a dispatch fn whose wildcard arm hides
/// the dropped `Gamma` variant from the compiler.
const DROPPED_ARM: &str = "\
pub enum Proto { Alpha, Beta, Gamma }
pub fn dispatch(p: &Proto) -> u32 {
    match p {
        Proto::Alpha => 1,
        Proto::Beta => 2,
        _ => 0,
    }
}
";

#[test]
fn a_dropped_match_arm_behind_a_wildcard_is_caught() {
    let mut cfg = empty_config();
    cfg.variants = vec!["Alpha".into(), "Beta".into(), "Gamma".into()];
    cfg.match_sites = vec![MatchSite {
        file: "crates/toy/src/dispatch.rs",
        impl_type: None,
        fn_name: "dispatch",
    }];
    let findings = open_findings(&ws(&[("crates/toy/src/dispatch.rs", DROPPED_ARM)]), &cfg);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(f.check, "dispatch-match");
    assert_eq!(f.line, 3, "anchored at the `match` line");
    assert_eq!(f.symbol, "dispatch::Gamma");
    assert!(
        f.message.contains("wildcard arm would silently swallow it"),
        "{}",
        f.message
    );
}

#[test]
fn a_fully_named_match_passes_even_with_a_wildcard() {
    let src = "\
pub enum Proto { Alpha, Beta, Gamma }
pub fn dispatch(p: &Proto) -> u32 {
    match p {
        Proto::Alpha => 1,
        Proto::Beta => 2,
        Proto::Gamma => 3,
        _ => 0,
    }
}
";
    let mut cfg = empty_config();
    cfg.variants = vec!["Alpha".into(), "Beta".into(), "Gamma".into()];
    cfg.match_sites = vec![MatchSite {
        file: "crates/toy/src/dispatch.rs",
        impl_type: None,
        fn_name: "dispatch",
    }];
    let findings = open_findings(&ws(&[("crates/toy/src/dispatch.rs", src)]), &cfg);
    assert_eq!(findings, vec![]);
}

#[test]
fn variant_tokens_in_comments_do_not_satisfy_a_dispatch_surface() {
    // `Proto::Gamma` appears only in a comment and a string — the exact
    // blind spot of the old substring heuristic. The engine counts code
    // tokens only, so the surface is short one variant.
    let src = "\
// roster: Proto::Alpha, Proto::Beta, Proto::Gamma
pub fn roster() -> &'static str {
    let a = (Proto::Alpha, Proto::Beta);
    drop(a);
    \"see Proto::Gamma\"
}
";
    let mut cfg = empty_config();
    cfg.variants = vec!["Alpha".into(), "Beta".into(), "Gamma".into()];
    cfg.variant_sites = vec![TokenSite {
        file: "crates/toy/src/roster.rs",
        min_count: 1,
    }];
    let findings = open_findings(&ws(&[("crates/toy/src/roster.rs", src)]), &cfg);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].check, "dispatch-token");
    assert_eq!(findings[0].symbol, "Gamma");
}

#[test]
fn slug_counting_requires_word_boundaries_in_strings() {
    // `rr` inside `central-rr` must not satisfy the `rr` slug; a
    // delimited `rr` must.
    let src = "pub fn usage() -> &'static str { \"central-rr only\" }\n";
    let mut cfg = empty_config();
    cfg.slugs = vec!["central-rr".into(), "rr".into()];
    cfg.slug_sites = vec![TokenSite {
        file: "crates/toy/src/usage.rs",
        min_count: 1,
    }];
    let findings = open_findings(&ws(&[("crates/toy/src/usage.rs", src)]), &cfg);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].symbol, "rr");

    let src = "pub fn usage() -> &'static str { \"central-rr, rr\" }\n";
    let findings = open_findings(&ws(&[("crates/toy/src/usage.rs", src)]), &cfg);
    assert_eq!(findings, vec![]);
}

// --- family 4: panic surface + baseline ------------------------------

#[test]
fn panic_surface_catalogs_reachable_sites_without_failing() {
    let src = "\
pub fn run_mono(n: u32) -> u32 {
    assert!(n > 0, \"need agents\");
    step(n)
}
fn step(n: u32) -> u32 {
    n.checked_mul(2).expect(\"bounded by construction\")
}
fn unrelated() {
    panic!(\"never reached from the runner\");
}
";
    let mut cfg = empty_config();
    cfg.runner_roots = vec![root("crates/toy/src/system.rs", "run_mono")];
    let report = run(
        &ws(&[("crates/toy/src/system.rs", src)]),
        &cfg,
        &Baseline::empty(),
    );
    assert!(report.is_clean(), "the catalog never fails: {:?}", report.open);
    let sites: Vec<(&str, u32)> = report
        .panic_surface
        .iter()
        .map(|s| (s.construct.as_str(), s.line))
        .collect();
    assert!(sites.contains(&("assert!", 2)), "{sites:?}");
    assert!(sites.contains(&(".expect()", 6)), "{sites:?}");
    assert!(
        !report.panic_surface.iter().any(|s| s.function == "unrelated"),
        "only runner-reachable sites belong in the catalog"
    );
    // Keep `unrelated` an honest part of this scenario: it IS a panic
    // site, just not a reachable one.
    drop(report);
}

#[test]
fn baseline_suppresses_exactly_its_key_and_flags_rot() {
    let src = "\
pub fn settle(x: u32) -> u32 {
    helper(x)
}
fn helper(x: u32) -> u32 {
    let v = Vec::new();
    drop(v);
    x
}
";
    let mut cfg = empty_config();
    cfg.hot_roots = vec![root("crates/toy/src/hot.rs", "settle")];
    let baseline = Baseline::parse(
        "{\"format\": \"busarb-lint-baseline/1\", \"suppressions\": [\
           {\"check\": \"hot-alloc\", \"file\": \"crates/toy/src/hot.rs\",\
            \"symbol\": \"helper\", \"reason\": \"seeded for the mutation test\"}]}",
    )
    .expect("baseline parses");
    let workspace = ws(&[("crates/toy/src/hot.rs", src)]);
    let report = run(&workspace, &cfg, &baseline);
    assert!(report.is_clean(), "{:?}", report.open);
    assert_eq!(report.suppressed.len(), 1);

    // Fix the violation but keep the suppression: baseline rot fails.
    let fixed = src.replace("let v = Vec::new();\n    drop(v);\n    ", "");
    let report = run(
        &ws(&[("crates/toy/src/hot.rs", &fixed)]),
        &cfg,
        &baseline,
    );
    assert!(!report.is_clean());
    assert_eq!(report.open.len(), 1);
    assert_eq!(report.open[0].check, "baseline-unused");
}
