//! The clean-workspace snapshot: running the full engine over the real
//! workspace with the committed baseline yields zero open findings.
//! This is the same invocation `cargo xtask lint` performs, so a
//! violation introduced anywhere in the workspace fails `cargo test`
//! even before CI runs the lint job.

use std::path::Path;

use busarb_core::ProtocolKind;
use busarb_lint::{busarb_config, run, Baseline, Config, Workspace};

fn real_config() -> Config {
    let variants: Vec<String> = ProtocolKind::all()
        .iter()
        .map(|k| format!("{k:?}"))
        .collect();
    let slugs: Vec<String> = ProtocolKind::all()
        .iter()
        .map(ToString::to_string)
        .collect();
    busarb_config(variants, slugs)
}

fn real_workspace() -> Workspace {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    Workspace::load(&root).expect("workspace loads")
}

fn committed_baseline() -> Baseline {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let text = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("lint-baseline.json exists at the workspace root");
    Baseline::parse(&text).expect("committed baseline parses")
}

#[test]
fn the_workspace_is_clean_under_the_committed_baseline() {
    let report = run(&real_workspace(), &real_config(), &committed_baseline());
    assert!(
        report.is_clean(),
        "open findings:\n{}",
        report.to_text()
    );
}

#[test]
fn strict_mode_matches_the_committed_baseline_today() {
    // The committed baseline is currently empty: every violation the
    // engine found in PR 9 was fixed, not suppressed. Keep it that way
    // until a suppression earns a written reason.
    let baseline = committed_baseline();
    assert!(
        baseline.suppressions.is_empty(),
        "a suppression was added — drop this assertion only alongside its reason"
    );
    let report = run(&real_workspace(), &real_config(), &Baseline::empty());
    assert!(report.is_clean(), "strict mode:\n{}", report.to_text());
}

#[test]
fn scan_statistics_stay_in_a_sane_band() {
    // Coarse pins so a loader or parser regression (suddenly scanning 3
    // files, or extracting 0 functions) cannot pass silently. Bands are
    // wide on purpose: ordinary growth should not churn this test.
    let report = run(&real_workspace(), &real_config(), &Baseline::empty());
    let s = report.stats;
    assert!(s.files >= 80, "only {} files scanned", s.files);
    assert!(s.functions >= 1000, "only {} functions extracted", s.functions);
    assert!(
        s.hot_reachable >= 100,
        "only {} fns reachable from hot roots — did root resolution break?",
        s.hot_reachable
    );
    assert!(
        s.runner_reachable > s.hot_reachable,
        "the mono runner's closure ({}) must exceed the hot closure ({})",
        s.runner_reachable,
        s.hot_reachable
    );
    assert!(
        !report.panic_surface.is_empty(),
        "the runner catalogs its assert!-guard surface"
    );
}
