//! The panic/unsafe policy checks, migrated from the retired `xtask`
//! string heuristics: bare `.unwrap()` in library code and a missing
//! `#![forbid(unsafe_code)]` crate root are engine findings now, with
//! the same exemptions the heuristics had (binaries, `main.rs`, test
//! regions) — plus the lexer accuracy the heuristics lacked (doc
//! comments and string literals never count).

use busarb_lint::{run, Baseline, Config, Finding, SourceFile, Workspace};

fn findings_for(files: Vec<(&str, &str)>) -> Vec<Finding> {
    let ws = Workspace::from_files(
        files
            .into_iter()
            .map(|(path, text)| SourceFile {
                path: path.to_string(),
                text: text.to_string(),
            })
            .collect(),
    );
    let cfg = Config {
        enum_name: "ProtocolKind".to_string(),
        variants: vec![],
        slugs: vec![],
        graph_paths: vec![],
        hot_roots: vec![],
        fast_math_roots: vec![],
        runner_roots: vec![],
        determinism_paths: vec![],
        variant_sites: vec![],
        slug_sites: vec![],
        match_sites: vec![],
    };
    run(&ws, &cfg, &Baseline::empty()).open
}

#[test]
fn bare_unwrap_in_library_code_is_a_finding() {
    let open = findings_for(vec![(
        "crates/toy/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )]);
    assert_eq!(open.len(), 1, "{open:?}");
    assert_eq!(open[0].check, "unwrap-policy");
    assert_eq!(open[0].line, 2);
    assert_eq!(open[0].symbol, "f");
}

#[test]
fn unwrap_exemptions_match_the_policy() {
    // Binaries, main.rs, test regions, doc comments, and string
    // literals are all exempt; `.expect(...)` always is.
    let open = findings_for(vec![
        (
            "crates/toy/src/bin/tool.rs",
            "fn main() { std::env::args().next().unwrap(); }\n",
        ),
        ("crates/toy/src/main.rs", "fn main() { x().unwrap(); }\n"),
        (
            "crates/toy/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             //! doc: prefer .expect() over .unwrap()\n\
             pub fn f(x: Option<u32>) -> u32 { x.expect(\"caller checked; .unwrap() banned\") }\n\
             #[cfg(test)]\nmod tests { #[test] fn t() { super::f(Some(1)); Some(2).unwrap(); } }\n",
        ),
    ]);
    assert_eq!(open, vec![], "exempt contexts must not fire");
}

#[test]
fn a_crate_root_without_forbid_unsafe_is_a_finding() {
    let open = findings_for(vec![(
        "crates/toy/src/lib.rs",
        "//! A crate that forgot the policy.\npub fn f() {}\n",
    )]);
    assert_eq!(open.len(), 1, "{open:?}");
    assert_eq!(open[0].check, "forbid-unsafe");
    assert_eq!(open[0].line, 0, "file-scoped finding");
    // Mentioning the attribute in a comment is not carrying it.
    let open = findings_for(vec![(
        "crates/toy/src/lib.rs",
        "//! TODO: add #![forbid(unsafe_code)] someday.\npub fn f() {}\n",
    )]);
    assert_eq!(open.len(), 1, "{open:?}");
    assert_eq!(open[0].check, "forbid-unsafe");
    // Non-root modules are out of scope.
    let open = findings_for(vec![(
        "crates/toy/src/inner.rs",
        "pub fn f() {}\n",
    )]);
    assert_eq!(open, vec![]);
}
