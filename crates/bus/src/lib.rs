//! Signal-level model of the **parallel contention arbiter** — the
//! distributed maximum-finding substrate that Vernon & Manber's protocols
//! (ISCA 1988) are built on.
//!
//! The parallel contention arbiter (Computing Devices of Canada, 1966;
//! Taub, 1984) assigns every agent a unique k-bit arbitration number and
//! provides k open-collector **wired-OR** bus lines. During an arbitration
//! every competitor applies its number to the lines and monitors them: if a
//! line carries 1 where the agent applies 0, the agent withdraws the
//! lower-order bits of its number (and reapplies them if the line drops).
//! The lines settle to the **maximum** competing number, and — crucially
//! for the protocols in this workspace — *every* agent then knows the
//! winner's identity.
//!
//! This crate models that machinery:
//!
//! * [`ArbitrationNumber`] / [`NumberLayout`] — composite arbitration
//!   numbers `[priority | rr bit | counter | static id]` with explicit
//!   field layouts.
//! * [`ParallelContention`] — the settle dynamics as synchronous
//!   propagation rounds, with round counting and optional per-round
//!   tracing.
//! * [`LineDiscipline`] — full-broadcast lines vs. Johnson-patent
//!   binary-patterned lines (single-round resolution, but the winner's
//!   identity is *not* broadcast — which is why the RR protocol cannot use
//!   them, paper footnote 2).
//! * [`signal`] — register-level agent state machines for the protocol
//!   implementations discussed in Sections 2–3 (RR-1/2/3, FCFS-1/2 and
//!   both assured access baselines), driven by shared control lines. The
//!   scheduling-level protocols in `busarb-core` are verified
//!   decision-for-decision against these.
//! * [`ArbitrationController`] — the arbitration/handover phase machine
//!   with a monitorable [`MonitorSnapshot`], realizing the paper's §1
//!   observation that the arbiter state is visible on the bus for
//!   initialization and failure diagnosis.
//!
//! # Examples
//!
//! The paper's Section 2.1 example — agents `1010101` and `0011100`
//! competing:
//!
//! ```
//! use busarb_bus::ParallelContention;
//!
//! let arbiter = ParallelContention::new(7);
//! let outcome = arbiter.resolve(&[0b1010101, 0b0011100]);
//! assert_eq!(outcome.winner_value, 0b1010101);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbnum;
mod contention;
mod controller;
pub mod signal;

pub use arbnum::{ArbitrationNumber, NumberLayout};
pub use contention::{LineDiscipline, ParallelContention, Resolution};
pub use controller::{ArbitrationController, BusPhase, MonitorSnapshot};
