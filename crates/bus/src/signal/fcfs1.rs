//! FCFS-1: waiting-time counters incremented per lost arbitration.

use busarb_types::{AgentId, AgentSet, Error};

use crate::signal::{
    check_new_request, validate_agent_count, CounterPolicy, SignalOutcome, SignalProtocol,
};
use crate::{ArbitrationNumber, NumberLayout, ParallelContention};

/// The simpler (coarser) implementation of the FCFS protocol.
///
/// Each agent's arbitration number is the concatenation
/// `[waiting-time counter | static identity]`, counter most significant.
/// The counter is reset to zero when a new request is generated and
/// **incremented each time the agent loses an arbitration**. Requests
/// generated in the same interval between two successive arbitrations end
/// up with equal counters and are served in static-identity order — the
/// source of the residual unfairness quantified in Table 4.1.
///
/// Per-agent hardware: a modulo counter incremented by the arbitration
/// result "lose" and reset by "win" (Section 3.2).
///
/// # Examples
///
/// ```
/// use busarb_bus::signal::{Fcfs1System, SignalProtocol};
/// use busarb_types::AgentId;
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// let mut sys = Fcfs1System::new(4)?;
/// sys.on_requests(&[AgentId::new(2)?, AgentId::new(4)?]);
/// // Same batch: identity order.
/// assert_eq!(sys.arbitrate().unwrap().winner.get(), 4);
/// // Agent 2 lost once, so its counter now beats a fresh request from 3.
/// sys.on_requests(&[AgentId::new(3)?]);
/// assert_eq!(sys.arbitrate().unwrap().winner.get(), 2);
/// assert_eq!(sys.arbitrate().unwrap().winner.get(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Fcfs1System {
    n: u32,
    layout: NumberLayout,
    contention: ParallelContention,
    requesting: AgentSet,
    counters: Vec<u64>,
    policy: CounterPolicy,
    /// Reusable competitor-pattern buffer so steady-state arbitration
    /// performs no heap allocation.
    scratch: Vec<u64>,
}

impl Fcfs1System {
    /// Creates a system of `n` agents with the default counter width
    /// (`ceil(log2(N+1))` bits — enough that the counter can never wrap
    /// when each agent has at most one outstanding request) and the
    /// wrap-on-overflow policy.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] if `n` is 0 or exceeds 128.
    pub fn new(n: u32) -> Result<Self, Error> {
        Self::with_counter(n, AgentId::lines_required(n), CounterPolicy::Wrap)
    }

    /// Creates a system with an explicit counter width and overflow policy
    /// — the knobs for the counter-width ablation study.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] for a bad `n` and
    /// [`Error::ZeroCounterWidth`] if `counter_bits` is 0.
    pub fn with_counter(n: u32, counter_bits: u32, policy: CounterPolicy) -> Result<Self, Error> {
        validate_agent_count(n)?;
        if counter_bits == 0 {
            return Err(Error::ZeroCounterWidth);
        }
        let layout = NumberLayout::for_agents(n)?.with_counter_bits(counter_bits);
        Ok(Fcfs1System {
            n,
            layout,
            contention: ParallelContention::new(layout.width()),
            requesting: AgentSet::new(),
            counters: vec![0; n as usize],
            policy,
            scratch: Vec::new(),
        })
    }

    /// Current counter value of one agent.
    ///
    /// # Panics
    ///
    /// Panics if `id` exceeds the system size.
    #[must_use]
    pub fn counter(&self, id: AgentId) -> u64 {
        self.counters[id.index()]
    }

    /// Appends a normalized fingerprint of the arbitration-relevant state
    /// to `out`: the request set and the counters of requesting agents in
    /// identity order. A non-requesting agent's counter is reset before it
    /// is ever read again, so stale values are excluded.
    #[doc(hidden)]
    pub fn verify_signature(&self, out: &mut Vec<u64>) {
        busarb_types::fingerprint::push_set(out, self.requesting);
        out.extend(self.requesting.iter().map(|id| self.counters[id.index()]));
    }
}

impl SignalProtocol for Fcfs1System {
    fn name(&self) -> &'static str {
        "fcfs-1"
    }

    fn layout(&self) -> NumberLayout {
        self.layout
    }

    fn on_requests(&mut self, ids: &[AgentId]) {
        for &id in ids {
            check_new_request(id, self.n, self.requesting);
            self.requesting.insert(id);
            // The counter is set to 0 when the agent has a new request.
            self.counters[id.index()] = 0;
        }
    }

    fn arbitrate(&mut self) -> Option<SignalOutcome> {
        if self.requesting.is_empty() {
            return None;
        }
        let mut competitors = core::mem::take(&mut self.scratch);
        competitors.clear();
        competitors.extend(self.requesting.iter().map(|id| {
            self.layout
                .compose(ArbitrationNumber::new(id).with_counter(self.counters[id.index()]))
        }));
        let resolution = self.contention.resolve(&competitors);
        self.scratch = competitors;
        // A non-empty competition always decodes to a winner.
        let winner = self.layout.decode_id(resolution.winner_value)?;
        self.requesting.remove(winner);
        // "Lose" increments every remaining competitor's counter.
        let capacity = self.layout.counter_max();
        for loser in self.requesting {
            let c = &mut self.counters[loser.index()];
            *c = self.policy.increment(*c, capacity);
        }
        Some(SignalOutcome {
            winner,
            rounds: resolution.rounds,
            arbitrations: 1,
        })
    }

    fn pending(&self) -> usize {
        self.requesting.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    fn ids(ns: &[u32]) -> Vec<AgentId> {
        ns.iter().map(|&n| id(n)).collect()
    }

    #[test]
    fn serves_distinct_batches_in_arrival_order() {
        let mut sys = Fcfs1System::new(8).unwrap();
        sys.on_requests(&ids(&[3]));
        sys.on_requests(&ids(&[8])); // arrives in the same inter-arbitration gap
                                     // Same interval: identity order, so 8 beats 3 despite arriving later.
        assert_eq!(sys.arbitrate().unwrap().winner, id(8));
        // Now 3 has lost once; a later arrival from 7 cannot overtake it.
        sys.on_requests(&ids(&[7]));
        assert_eq!(sys.arbitrate().unwrap().winner, id(3));
        assert_eq!(sys.arbitrate().unwrap().winner, id(7));
    }

    #[test]
    fn counter_beats_identity() {
        let mut sys = Fcfs1System::new(10).unwrap();
        sys.on_requests(&ids(&[1, 10]));
        assert_eq!(sys.arbitrate().unwrap().winner, id(10));
        assert_eq!(sys.counter(id(1)), 1);
        sys.on_requests(&ids(&[9]));
        // 1 waited one arbitration; 9 is fresh.
        assert_eq!(sys.arbitrate().unwrap().winner, id(1));
    }

    #[test]
    fn bounded_overtaking() {
        // An agent can be overtaken only by requests arriving in its own
        // arrival interval — at most N-1 of them.
        let n = 6u32;
        let mut sys = Fcfs1System::new(n).unwrap();
        sys.on_requests(&ids(&[1])); // the victim, lowest identity
        let mut served_before_victim = 0;
        // Everyone else arrives in the same interval.
        sys.on_requests(&ids(&[2, 3, 4, 5, 6]));
        loop {
            let w = sys.arbitrate().unwrap().winner;
            if w == id(1) {
                break;
            }
            served_before_victim += 1;
            // Immediately re-request to try to starve agent 1.
            sys.on_requests(&[w]);
        }
        assert_eq!(served_before_victim, (n - 1) as usize);
    }

    #[test]
    fn counter_resets_on_new_request() {
        let mut sys = Fcfs1System::new(4).unwrap();
        sys.on_requests(&ids(&[1, 4]));
        sys.arbitrate().unwrap(); // 4 wins; counter(1) = 1
        assert_eq!(sys.counter(id(1)), 1);
        sys.arbitrate().unwrap(); // 1 wins
        sys.on_requests(&ids(&[1]));
        assert_eq!(sys.counter(id(1)), 0);
    }

    #[test]
    fn default_counter_width_never_wraps_with_single_outstanding() {
        let n = 10u32;
        let mut sys = Fcfs1System::new(n).unwrap();
        // Agent 1 waits while all others are served once each: loses
        // n-1 arbitrations, counter must hold n-1 without wrapping.
        sys.on_requests(&ids(&[1]));
        sys.on_requests(&ids(&[2, 3, 4, 5, 6, 7, 8, 9, 10]));
        for _ in 0..9 {
            let w = sys.arbitrate().unwrap().winner;
            assert_ne!(w, id(1));
        }
        assert_eq!(sys.counter(id(1)), 9);
        assert!(sys.layout().counter_max() >= 9);
        assert_eq!(sys.arbitrate().unwrap().winner, id(1));
    }

    #[test]
    fn narrow_wrap_counter_can_invert_order() {
        // 1-bit counter with wrap: after two losses agent 1's counter
        // wraps back to 0 and a fresh higher-identity request overtakes it
        // — losing the FCFS ordering.
        let mut sys = Fcfs1System::with_counter(8, 1, CounterPolicy::Wrap).unwrap();
        sys.on_requests(&ids(&[1, 7, 8]));
        assert_eq!(sys.arbitrate().unwrap().winner, id(8)); // ctr(1): 0 -> 1
        assert_eq!(sys.arbitrate().unwrap().winner, id(7)); // ctr(1): 1 -> wraps to 0
        assert_eq!(sys.counter(id(1)), 0);
        sys.on_requests(&ids(&[6]));
        // Fresh request from 6 (counter 0) overtakes the long-waiting 1.
        assert_eq!(sys.arbitrate().unwrap().winner, id(6));
        assert_eq!(sys.arbitrate().unwrap().winner, id(1));
    }

    #[test]
    fn saturating_narrow_counter_keeps_seniority() {
        let mut sys = Fcfs1System::with_counter(8, 1, CounterPolicy::Saturate).unwrap();
        sys.on_requests(&ids(&[1]));
        for other in [8, 7, 6, 5] {
            sys.on_requests(&ids(&[other]));
            let w = sys.arbitrate().unwrap().winner;
            if w == id(1) {
                return; // seniority held
            }
        }
        // With saturation, agent 1 (counter stuck at 1) beats every fresh
        // request (counter 0), so it must have been served above.
        panic!("agent 1 was starved despite saturating counter");
    }

    #[test]
    fn layout_width_doubles_identity_at_most() {
        let sys = Fcfs1System::new(30).unwrap();
        let k = AgentId::lines_required(30);
        assert_eq!(sys.layout().width(), 2 * k);
        assert_eq!(sys.name(), "fcfs-1");
    }

    #[test]
    fn zero_counter_width_rejected() {
        assert!(matches!(
            Fcfs1System::with_counter(4, 0, CounterPolicy::Wrap),
            Err(Error::ZeroCounterWidth)
        ));
    }

    #[test]
    fn empty_system_returns_none() {
        let mut sys = Fcfs1System::new(2).unwrap();
        assert!(sys.arbitrate().is_none());
        assert_eq!(sys.pending(), 0);
    }
}
