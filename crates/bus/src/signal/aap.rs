//! Register-level models of the two assured access protocols (§2.2).
//!
//! These complete the signal-level protocol family: like the RR and FCFS
//! models, they exist so the scheduling-level implementations in
//! `busarb-core` can be validated decision-for-decision against logic
//! that manipulates the actual shared lines.
//!
//! * [`Aap1System`] — the Fastbus / NuBus / Multibus II *idle-batch*
//!   rule, driven entirely by the wired-OR **bus-request line**: an agent
//!   with a new request asserts the line only if it reads low; each batch
//!   member releases the line at the start of its tenure, and the line
//!   dropping signals deferred requesters to assert and form the next
//!   batch.
//! * [`Aap2System`] — the Futurebus *fairness-release* rule: agents
//!   compete until served, then set a local **inhibited** flip-flop; a
//!   release is an arbitration cycle in which no agent asserts the
//!   request line, which clears every inhibited flag.

use busarb_types::{AgentId, AgentSet, Error};

use crate::signal::{check_new_request, validate_agent_count, SignalOutcome, SignalProtocol};
use crate::{ArbitrationNumber, NumberLayout, ParallelContention};

/// Signal-level idle-batch assured access (AAP-1).
///
/// # Examples
///
/// ```
/// use busarb_bus::signal::{Aap1System, SignalProtocol};
/// use busarb_types::AgentId;
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// let mut sys = Aap1System::new(4)?;
/// sys.on_requests(&[AgentId::new(1)?]); // forms a batch alone
/// sys.on_requests(&[AgentId::new(3)?]); // line is high: defers
/// assert_eq!(sys.arbitrate().unwrap().winner.get(), 1);
/// assert_eq!(sys.arbitrate().unwrap().winner.get(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Aap1System {
    n: u32,
    layout: NumberLayout,
    contention: ParallelContention,
    /// Agents currently asserting the wired-OR request line (the batch).
    asserting: AgentSet,
    /// Agents holding a request, waiting for the line to drop.
    deferred: AgentSet,
    /// Reusable competitor-pattern buffer so steady-state arbitration
    /// performs no heap allocation.
    scratch: Vec<u64>,
}

impl Aap1System {
    /// Creates a system of `n` agents.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] if `n` is 0 or exceeds 128.
    pub fn new(n: u32) -> Result<Self, Error> {
        validate_agent_count(n)?;
        let layout = NumberLayout::for_agents(n)?;
        Ok(Aap1System {
            n,
            layout,
            contention: ParallelContention::new(layout.width()),
            asserting: AgentSet::new(),
            deferred: AgentSet::new(),
            scratch: Vec::new(),
        })
    }

    /// Whether the wired-OR bus-request line currently reads high.
    #[must_use]
    pub fn request_line(&self) -> bool {
        !self.asserting.is_empty()
    }

    /// Appends a normalized fingerprint of the arbitration-relevant state
    /// (asserting and deferred sets) to `out`.
    #[doc(hidden)]
    pub fn verify_signature(&self, out: &mut Vec<u64>) {
        busarb_types::fingerprint::push_set(out, self.asserting);
        busarb_types::fingerprint::push_set(out, self.deferred);
    }
}

impl SignalProtocol for Aap1System {
    fn name(&self) -> &'static str {
        "aap-1"
    }

    fn layout(&self) -> NumberLayout {
        self.layout
    }

    fn on_requests(&mut self, ids: &[AgentId]) {
        for &id in ids {
            check_new_request(id, self.n, self.asserting.union(self.deferred));
            if self.request_line() {
                // A batch is holding the line: wait for it to end.
                self.deferred.insert(id);
            } else {
                self.asserting.insert(id);
            }
        }
    }

    fn arbitrate(&mut self) -> Option<SignalOutcome> {
        if self.asserting.is_empty() {
            return None;
        }
        let mut competitors = core::mem::take(&mut self.scratch);
        competitors.clear();
        competitors.extend(
            self.asserting
                .iter()
                .map(|id| self.layout.compose(ArbitrationNumber::new(id))),
        );
        let resolution = self.contention.resolve(&competitors);
        self.scratch = competitors;
        // The batch is non-empty, so the value decodes.
        let winner = self.layout.decode_id(resolution.winner_value)?;
        // The winner releases the request line at the start of its
        // tenure; if it was the last batch member the line drops and the
        // deferred requesters assert immediately.
        self.asserting.remove(winner);
        if self.asserting.is_empty() {
            core::mem::swap(&mut self.asserting, &mut self.deferred);
        }
        Some(SignalOutcome {
            winner,
            rounds: resolution.rounds,
            arbitrations: 1,
        })
    }

    fn pending(&self) -> usize {
        self.asserting.len() + self.deferred.len()
    }
}

/// Signal-level fairness-release assured access (AAP-2, Futurebus).
///
/// # Examples
///
/// ```
/// use busarb_bus::signal::{Aap2System, SignalProtocol};
/// use busarb_types::AgentId;
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// let mut sys = Aap2System::new(4)?;
/// sys.on_requests(&[AgentId::new(2)?, AgentId::new(4)?]);
/// assert_eq!(sys.arbitrate().unwrap().winner.get(), 4);
/// // 4 re-requests but is inhibited until the batch ends.
/// sys.on_requests(&[AgentId::new(4)?]);
/// assert_eq!(sys.arbitrate().unwrap().winner.get(), 2);
/// let out = sys.arbitrate().unwrap();
/// assert_eq!(out.winner.get(), 4);
/// assert_eq!(out.arbitrations, 2); // fairness-release cycle + arbitration
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Aap2System {
    n: u32,
    layout: NumberLayout,
    contention: ParallelContention,
    /// Agents holding an outstanding request.
    requesting: AgentSet,
    /// Per-agent inhibited flip-flops (set after service, cleared by a
    /// fairness-release cycle).
    inhibited: AgentSet,
    releases: u64,
    /// Reusable competitor-pattern buffer so steady-state arbitration
    /// performs no heap allocation.
    scratch: Vec<u64>,
}

impl Aap2System {
    /// Creates a system of `n` agents.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] if `n` is 0 or exceeds 128.
    pub fn new(n: u32) -> Result<Self, Error> {
        validate_agent_count(n)?;
        let layout = NumberLayout::for_agents(n)?;
        Ok(Aap2System {
            n,
            layout,
            contention: ParallelContention::new(layout.width()),
            requesting: AgentSet::new(),
            inhibited: AgentSet::new(),
            releases: 0,
            scratch: Vec::new(),
        })
    }

    /// Fairness-release cycles performed so far.
    #[must_use]
    pub fn releases(&self) -> u64 {
        self.releases
    }

    /// Appends a normalized fingerprint of the arbitration-relevant state
    /// (request set and inhibited flip-flops) to `out`. The release
    /// statistic is excluded: it never influences a grant decision.
    #[doc(hidden)]
    pub fn verify_signature(&self, out: &mut Vec<u64>) {
        busarb_types::fingerprint::push_set(out, self.requesting);
        busarb_types::fingerprint::push_set(out, self.inhibited);
    }
}

impl SignalProtocol for Aap2System {
    fn name(&self) -> &'static str {
        "aap-2"
    }

    fn layout(&self) -> NumberLayout {
        self.layout
    }

    fn on_requests(&mut self, ids: &[AgentId]) {
        for &id in ids {
            check_new_request(id, self.n, self.requesting);
            self.requesting.insert(id);
        }
    }

    fn arbitrate(&mut self) -> Option<SignalOutcome> {
        if self.requesting.is_empty() {
            // Idle bus: a request-line-low cycle clears inhibition for
            // free.
            self.inhibited.clear();
            return None;
        }
        let mut arbitrations = 1;
        let mut eligible = self.requesting.difference(self.inhibited);
        if eligible.is_empty() {
            // Every requester is inhibited: this arbitration cycle sees
            // the request line low — the fairness release. Inhibition
            // clears and a new arbitration starts.
            self.inhibited.clear();
            self.releases += 1;
            arbitrations = 2;
            eligible = self.requesting;
        }
        let mut competitors = core::mem::take(&mut self.scratch);
        competitors.clear();
        competitors.extend(
            eligible
                .iter()
                .map(|id| self.layout.compose(ArbitrationNumber::new(id))),
        );
        let resolution = self.contention.resolve(&competitors);
        self.scratch = competitors;
        // The eligible set is non-empty, so the value decodes.
        let winner = self.layout.decode_id(resolution.winner_value)?;
        self.requesting.remove(winner);
        self.inhibited.insert(winner);
        Some(SignalOutcome {
            winner,
            rounds: resolution.rounds,
            arbitrations,
        })
    }

    fn pending(&self) -> usize {
        self.requesting.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    fn ids(ns: &[u32]) -> Vec<AgentId> {
        ns.iter().map(|&n| id(n)).collect()
    }

    #[test]
    fn aap1_line_gates_batch_membership() {
        let mut sys = Aap1System::new(8).unwrap();
        assert!(!sys.request_line());
        sys.on_requests(&ids(&[2]));
        assert!(sys.request_line());
        sys.on_requests(&ids(&[5, 7])); // defer
        assert_eq!(sys.arbitrate().unwrap().winner, id(2));
        // Line dropped at 2's grant; {5, 7} assert and serve in identity
        // order.
        assert_eq!(sys.arbitrate().unwrap().winner, id(7));
        assert_eq!(sys.arbitrate().unwrap().winner, id(5));
        assert!(sys.arbitrate().is_none());
    }

    #[test]
    fn aap2_inhibition_and_release() {
        let mut sys = Aap2System::new(4).unwrap();
        sys.on_requests(&ids(&[1, 4]));
        assert_eq!(sys.arbitrate().unwrap().winner, id(4));
        sys.on_requests(&ids(&[4])); // inhibited re-request
        assert_eq!(sys.arbitrate().unwrap().winner, id(1));
        let out = sys.arbitrate().unwrap();
        assert_eq!(out.winner, id(4));
        assert_eq!(out.arbitrations, 2);
        assert_eq!(sys.releases(), 1);
    }

    #[test]
    fn aap2_latecomers_join_running_batch() {
        let mut sys = Aap2System::new(8).unwrap();
        sys.on_requests(&ids(&[2, 5]));
        assert_eq!(sys.arbitrate().unwrap().winner, id(5));
        sys.on_requests(&ids(&[8])); // unserved this batch: joins
        assert_eq!(sys.arbitrate().unwrap().winner, id(8));
        assert_eq!(sys.arbitrate().unwrap().winner, id(2));
    }

    #[test]
    fn aap2_idle_clears_inhibition_for_free() {
        let mut sys = Aap2System::new(4).unwrap();
        sys.on_requests(&ids(&[3]));
        sys.arbitrate().unwrap();
        assert!(sys.arbitrate().is_none());
        sys.on_requests(&ids(&[3]));
        assert_eq!(sys.arbitrate().unwrap().arbitrations, 1);
        assert_eq!(sys.releases(), 0);
    }

    #[test]
    fn layouts_use_plain_identity_lines() {
        assert_eq!(
            Aap1System::new(30).unwrap().layout().width(),
            AgentId::lines_required(30)
        );
        assert_eq!(
            Aap2System::new(30).unwrap().layout().width(),
            AgentId::lines_required(30)
        );
    }

    #[test]
    #[should_panic(expected = "already has an outstanding request")]
    fn aap1_rejects_duplicates_even_when_deferred() {
        let mut sys = Aap1System::new(4).unwrap();
        sys.on_requests(&ids(&[1]));
        sys.on_requests(&ids(&[2]));
        sys.on_requests(&ids(&[2]));
    }
}
