//! FCFS-2: waiting-time counters driven by the `a-incr` line.

use busarb_types::{AgentId, AgentSet, Error};

use crate::signal::{
    check_new_request, validate_agent_count, CounterPolicy, SignalOutcome, SignalProtocol,
};
use crate::{ArbitrationNumber, NumberLayout, ParallelContention};

/// The finer (more accurate) implementation of the FCFS protocol.
///
/// An extra bus line, **`a-incr`**, is pulsed for a few propagation delays
/// by any agent generating a new request. Every *waiting* agent increments
/// its counter on each pulse, so the counters record arrival order at the
/// granularity of the pulse-sensing window rather than at whole-arbitration
/// granularity. Two requests arriving within the same window see a single
/// merged pulse, get equal counters, and fall back to static-identity
/// order; the paper argues this window is far smaller than the interval
/// between arbitrations, making FCFS-2 "nearly perfectly fair".
///
/// Arrivals passed together to [`SignalProtocol::on_requests`] model a
/// same-window tie.
///
/// # Examples
///
/// ```
/// use busarb_bus::signal::{Fcfs2System, SignalProtocol};
/// use busarb_types::AgentId;
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// let mut sys = Fcfs2System::new(8)?;
/// sys.on_requests(&[AgentId::new(3)?]); // arrives first
/// sys.on_requests(&[AgentId::new(8)?]); // later window
/// // Unlike FCFS-1, arrival order wins even without an intervening
/// // arbitration:
/// assert_eq!(sys.arbitrate().unwrap().winner.get(), 3);
/// assert_eq!(sys.arbitrate().unwrap().winner.get(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Fcfs2System {
    n: u32,
    layout: NumberLayout,
    contention: ParallelContention,
    requesting: AgentSet,
    counters: Vec<u64>,
    policy: CounterPolicy,
    /// Reusable competitor-pattern buffer so steady-state arbitration
    /// performs no heap allocation.
    scratch: Vec<u64>,
}

impl Fcfs2System {
    /// Creates a system of `n` agents with the default counter width
    /// (`ceil(log2(N+1))` bits) and wrap-on-overflow policy.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] if `n` is 0 or exceeds 128.
    pub fn new(n: u32) -> Result<Self, Error> {
        Self::with_counter(n, AgentId::lines_required(n), CounterPolicy::Wrap)
    }

    /// Creates a system with an explicit counter width and overflow policy.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] for a bad `n` and
    /// [`Error::ZeroCounterWidth`] if `counter_bits` is 0.
    pub fn with_counter(n: u32, counter_bits: u32, policy: CounterPolicy) -> Result<Self, Error> {
        validate_agent_count(n)?;
        if counter_bits == 0 {
            return Err(Error::ZeroCounterWidth);
        }
        let layout = NumberLayout::for_agents(n)?.with_counter_bits(counter_bits);
        Ok(Fcfs2System {
            n,
            layout,
            contention: ParallelContention::new(layout.width()),
            requesting: AgentSet::new(),
            counters: vec![0; n as usize],
            policy,
            scratch: Vec::new(),
        })
    }

    /// Current counter value of one agent.
    ///
    /// # Panics
    ///
    /// Panics if `id` exceeds the system size.
    #[must_use]
    pub fn counter(&self, id: AgentId) -> u64 {
        self.counters[id.index()]
    }

    /// Appends a normalized fingerprint of the arbitration-relevant state
    /// to `out`: the request set and the counters of requesting agents in
    /// identity order. A non-requesting agent's counter is reset before it
    /// is ever read again, so stale values are excluded.
    #[doc(hidden)]
    pub fn verify_signature(&self, out: &mut Vec<u64>) {
        busarb_types::fingerprint::push_set(out, self.requesting);
        out.extend(self.requesting.iter().map(|id| self.counters[id.index()]));
    }
}

impl SignalProtocol for Fcfs2System {
    fn name(&self) -> &'static str {
        "fcfs-2"
    }

    fn layout(&self) -> NumberLayout {
        self.layout
    }

    fn on_requests(&mut self, ids: &[AgentId]) {
        if ids.is_empty() {
            return;
        }
        // All newcomers pulse a-incr within the same window; the wired-OR
        // merges the pulses, so waiting agents see exactly one increment.
        let capacity = self.layout.counter_max();
        for waiter in self.requesting {
            let c = &mut self.counters[waiter.index()];
            *c = self.policy.increment(*c, capacity);
        }
        for &id in ids {
            check_new_request(id, self.n, self.requesting);
            self.requesting.insert(id);
            self.counters[id.index()] = 0;
        }
    }

    fn arbitrate(&mut self) -> Option<SignalOutcome> {
        if self.requesting.is_empty() {
            return None;
        }
        let mut competitors = core::mem::take(&mut self.scratch);
        competitors.clear();
        competitors.extend(self.requesting.iter().map(|id| {
            self.layout
                .compose(ArbitrationNumber::new(id).with_counter(self.counters[id.index()]))
        }));
        let resolution = self.contention.resolve(&competitors);
        self.scratch = competitors;
        // A non-empty competition always decodes to a winner.
        let winner = self.layout.decode_id(resolution.winner_value)?;
        self.requesting.remove(winner);
        Some(SignalOutcome {
            winner,
            rounds: resolution.rounds,
            arbitrations: 1,
        })
    }

    fn pending(&self) -> usize {
        self.requesting.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    fn ids(ns: &[u32]) -> Vec<AgentId> {
        ns.iter().map(|&n| id(n)).collect()
    }

    #[test]
    fn arrival_order_is_respected_across_windows() {
        let mut sys = Fcfs2System::new(10).unwrap();
        sys.on_requests(&ids(&[2]));
        sys.on_requests(&ids(&[9]));
        sys.on_requests(&ids(&[5]));
        assert_eq!(sys.arbitrate().unwrap().winner, id(2));
        assert_eq!(sys.arbitrate().unwrap().winner, id(9));
        assert_eq!(sys.arbitrate().unwrap().winner, id(5));
    }

    #[test]
    fn same_window_ties_break_by_identity() {
        let mut sys = Fcfs2System::new(10).unwrap();
        sys.on_requests(&ids(&[4, 8])); // merged a-incr pulse
        assert_eq!(sys.counter(id(4)), 0);
        assert_eq!(sys.counter(id(8)), 0);
        assert_eq!(sys.arbitrate().unwrap().winner, id(8));
        assert_eq!(sys.arbitrate().unwrap().winner, id(4));
    }

    #[test]
    fn merged_pulse_increments_waiters_once() {
        let mut sys = Fcfs2System::new(10).unwrap();
        sys.on_requests(&ids(&[1]));
        // Two simultaneous newcomers: waiter 1 sees one pulse, not two.
        sys.on_requests(&ids(&[5, 6]));
        assert_eq!(sys.counter(id(1)), 1);
        assert_eq!(sys.counter(id(5)), 0);
        assert_eq!(sys.counter(id(6)), 0);
    }

    #[test]
    fn counters_track_arrivals_not_arbitrations() {
        let mut sys = Fcfs2System::new(10).unwrap();
        sys.on_requests(&ids(&[1]));
        // Several arbitration-free arrivals accumulate in the counter.
        sys.on_requests(&ids(&[2]));
        sys.on_requests(&ids(&[3]));
        sys.on_requests(&ids(&[4]));
        assert_eq!(sys.counter(id(1)), 3);
        assert_eq!(sys.counter(id(2)), 2);
        assert_eq!(sys.counter(id(3)), 1);
        assert_eq!(sys.counter(id(4)), 0);
        // Service order = arrival order.
        for expect in [1, 2, 3, 4] {
            assert_eq!(sys.arbitrate().unwrap().winner, id(expect));
        }
    }

    #[test]
    fn more_accurate_than_fcfs1_within_a_gap() {
        // Two arrivals in the same inter-arbitration gap but different
        // sensing windows: FCFS-1 serves identity order, FCFS-2 serves
        // arrival order.
        use crate::signal::Fcfs1System;
        let mut coarse = Fcfs1System::new(8).unwrap();
        let mut fine = Fcfs2System::new(8).unwrap();
        for sys in [&mut coarse as &mut dyn SignalProtocol, &mut fine] {
            sys.on_requests(&ids(&[3]));
            sys.on_requests(&ids(&[8]));
        }
        assert_eq!(coarse.arbitrate().unwrap().winner, id(8));
        assert_eq!(fine.arbitrate().unwrap().winner, id(3));
    }

    #[test]
    fn empty_pulse_batch_is_a_no_op() {
        let mut sys = Fcfs2System::new(4).unwrap();
        sys.on_requests(&ids(&[2]));
        sys.on_requests(&[]); // no newcomers: no pulse
        assert_eq!(sys.counter(id(2)), 0);
    }

    #[test]
    fn layout_and_name() {
        let sys = Fcfs2System::new(64).unwrap();
        assert_eq!(sys.layout().width(), 2 * AgentId::lines_required(64));
        assert_eq!(sys.name(), "fcfs-2");
        assert!(Fcfs2System::with_counter(4, 0, CounterPolicy::Wrap).is_err());
    }

    #[test]
    fn wrap_policy_applies_to_pulse_increments() {
        let mut sys = Fcfs2System::with_counter(8, 1, CounterPolicy::Wrap).unwrap();
        sys.on_requests(&ids(&[1]));
        sys.on_requests(&ids(&[2]));
        sys.on_requests(&ids(&[3])); // counter(1) wraps 1 -> 0
        assert_eq!(sys.counter(id(1)), 0);
        assert_eq!(sys.counter(id(2)), 1);
        // Agent 2 now looks "older" than agent 1: order inverted by wrap.
        assert_eq!(sys.arbitrate().unwrap().winner, id(2));
    }
}
