//! RR-3: round-robin with no extra bus line.

use busarb_types::{AgentId, AgentSet, Error};

use crate::signal::{check_new_request, validate_agent_count, SignalOutcome, SignalProtocol};
use crate::{ArbitrationNumber, NumberLayout, ParallelContention};

/// The third implementation of the round-robin protocol.
///
/// No extra bus line is used. Only agents with identities **below** the
/// recorded previous winner compete in an arbitration. Because no agent has
/// identity zero, a winning value of zero reveals that nobody participated;
/// in that case every agent records `N+1` as the winning value and a new
/// arbitration starts immediately, now admitting all requesters. The
/// wraparound therefore costs one extra (empty) arbitration — the paper
/// notes this implementation is "somewhat less efficient than the first
/// two" (Section 3.1); the `ablation.rr3` experiment measures exactly how
/// often the extra arbitration happens.
///
/// # Examples
///
/// ```
/// use busarb_bus::signal::{Rr3System, SignalProtocol};
/// use busarb_types::AgentId;
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// let mut sys = Rr3System::new(4)?;
/// sys.on_requests(&[AgentId::new(2)?]);
/// let out = sys.arbitrate().unwrap();
/// assert_eq!(out.winner.get(), 2);
/// // The very first arbitration needs no wraparound (register starts at
/// // N+1, admitting everyone).
/// assert_eq!(out.arbitrations, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Rr3System {
    n: u32,
    layout: NumberLayout,
    contention: ParallelContention,
    requesting: AgentSet,
    last_winner: u32,
    empty_arbitrations: u64,
    /// Reusable competitor-pattern buffer so steady-state arbitration
    /// performs no heap allocation.
    scratch: Vec<u64>,
}

impl Rr3System {
    /// Creates a system of `n` agents.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] if `n` is 0 or exceeds 128.
    pub fn new(n: u32) -> Result<Self, Error> {
        validate_agent_count(n)?;
        let layout = NumberLayout::for_agents(n)?;
        Ok(Rr3System {
            n,
            layout,
            contention: ParallelContention::new(layout.width()),
            requesting: AgentSet::new(),
            last_winner: n + 1,
            empty_arbitrations: 0,
            scratch: Vec::new(),
        })
    }

    /// Current contents of the (replicated) winner register.
    #[must_use]
    pub fn last_winner(&self) -> u32 {
        self.last_winner
    }

    /// Total empty (wraparound) arbitrations performed so far — the
    /// protocol's extra overhead relative to RR-1/RR-2.
    #[must_use]
    pub fn empty_arbitrations(&self) -> u64 {
        self.empty_arbitrations
    }

    /// Appends a normalized fingerprint of the arbitration-relevant state
    /// (request set and winner register) to `out`. The empty-arbitration
    /// statistic is excluded.
    #[doc(hidden)]
    pub fn verify_signature(&self, out: &mut Vec<u64>) {
        busarb_types::fingerprint::push_set(out, self.requesting);
        out.push(u64::from(self.last_winner));
    }

    /// The empty-arbitration recovery transition (paper §3.1): a winning
    /// value of zero told every agent that nobody competed, so each one
    /// records `N+1` as the winner. All requesters have identities below
    /// `N+1`, so the arbitration that follows this transition admits every
    /// requester and cannot be empty again.
    ///
    /// This is the *only* transition that writes a value other than a real
    /// winner identity into the register.
    fn record_empty_arbitration(&mut self) {
        self.empty_arbitrations += 1;
        self.last_winner = self.n + 1;
    }

    /// Runs one line arbitration among requesters below the register.
    fn arbitrate_below(&mut self) -> (u64, u32) {
        let mut eligible = core::mem::take(&mut self.scratch);
        eligible.clear();
        eligible.extend(
            self.requesting
                .iter()
                .filter(|id| id.get() < self.last_winner)
                .map(|id| self.layout.compose(ArbitrationNumber::new(id))),
        );
        let r = self.contention.resolve(&eligible);
        self.scratch = eligible;
        (r.winner_value, r.rounds)
    }
}

impl SignalProtocol for Rr3System {
    fn name(&self) -> &'static str {
        "rr-3"
    }

    fn layout(&self) -> NumberLayout {
        self.layout
    }

    fn on_requests(&mut self, ids: &[AgentId]) {
        for &id in ids {
            check_new_request(id, self.n, self.requesting);
            self.requesting.insert(id);
        }
    }

    fn arbitrate(&mut self) -> Option<SignalOutcome> {
        if self.requesting.is_empty() {
            return None;
        }
        let (value, rounds) = self.arbitrate_below();
        let (value, total_rounds, arbitrations) = if value == 0 {
            // Nobody below the register competed: take the recovery
            // transition, then start a new arbitration immediately.
            self.record_empty_arbitration();
            let (v2, r2) = self.arbitrate_below();
            (v2, rounds + r2, 2)
        } else {
            (value, rounds, 1)
        };
        // The second arbitration admits all requesters, so the value
        // decodes.
        let winner = self.layout.decode_id(value)?;
        self.last_winner = winner.get();
        self.requesting.remove(winner);
        Some(SignalOutcome {
            winner,
            rounds: total_rounds,
            arbitrations,
        })
    }

    fn pending(&self) -> usize {
        self.requesting.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    fn ids(ns: &[u32]) -> Vec<AgentId> {
        ns.iter().map(|&n| id(n)).collect()
    }

    #[test]
    fn saturated_round_robin_order_with_wraparound() {
        let mut sys = Rr3System::new(3).unwrap();
        sys.on_requests(&ids(&[1, 2, 3]));
        let mut order = Vec::new();
        let mut wraps = 0;
        for _ in 0..7 {
            let out = sys.arbitrate().unwrap();
            order.push(out.winner.get());
            if out.arbitrations == 2 {
                wraps += 1;
            }
            sys.on_requests(&[out.winner]);
        }
        assert_eq!(order, vec![3, 2, 1, 3, 2, 1, 3]);
        // Each arbitration following an agent-1 win starts below register 1,
        // finds nobody, and wraps.
        assert_eq!(wraps, 2);
        assert_eq!(sys.empty_arbitrations(), 2);
    }

    #[test]
    fn wraparound_costs_second_arbitration() {
        let mut sys = Rr3System::new(5).unwrap();
        sys.on_requests(&ids(&[2]));
        assert_eq!(sys.arbitrate().unwrap().arbitrations, 1);
        // Register is 2; agent 4 requests; 4 is not below 2 -> empty
        // arbitration, register := 6, re-arbitrate.
        sys.on_requests(&ids(&[4]));
        let out = sys.arbitrate().unwrap();
        assert_eq!(out.winner, id(4));
        assert_eq!(out.arbitrations, 2);
    }

    #[test]
    fn matches_rr1_grant_sequence() {
        use crate::signal::Rr1System;
        let mut a = Rr1System::new(9).unwrap();
        let mut b = Rr3System::new(9).unwrap();
        let schedule: &[&[u32]] = &[
            &[9, 1],
            &[4],
            &[],
            &[2, 8],
            &[5, 3],
            &[],
            &[7],
            &[1],
            &[6],
            &[],
            &[],
            &[],
        ];
        for batch in schedule {
            let reqs = ids(batch);
            a.on_requests(&reqs);
            b.on_requests(&reqs);
            assert_eq!(
                a.arbitrate().map(|o| o.winner),
                b.arbitrate().map(|o| o.winner)
            );
        }
        loop {
            let wa = a.arbitrate().map(|o| o.winner);
            assert_eq!(wa, b.arbitrate().map(|o| o.winner));
            if wa.is_none() {
                break;
            }
        }
    }

    #[test]
    fn uses_no_extra_lines() {
        let sys = Rr3System::new(64).unwrap();
        assert_eq!(sys.layout().width(), AgentId::lines_required(64));
        assert_eq!(sys.name(), "rr-3");
    }

    #[test]
    fn empty_system_returns_none() {
        let mut sys = Rr3System::new(2).unwrap();
        assert!(sys.arbitrate().is_none());
        assert_eq!(sys.empty_arbitrations(), 0);
    }

    #[test]
    fn recovery_transition_records_sentinel_and_counts() {
        let mut sys = Rr3System::new(4).unwrap();
        sys.on_requests(&ids(&[2]));
        sys.arbitrate().unwrap(); // register = 2
        sys.on_requests(&ids(&[3]));
        // Nobody below the register: the first line arbitration is empty.
        let (value, _) = sys.arbitrate_below();
        assert_eq!(value, 0);
        // The recovery transition records N+1 and counts the overhead.
        sys.record_empty_arbitration();
        assert_eq!(sys.last_winner(), 5);
        assert_eq!(sys.empty_arbitrations(), 1);
        // The arbitration that follows admits every requester.
        let (value, _) = sys.arbitrate_below();
        assert_eq!(sys.layout.decode_id(value).unwrap(), id(3));
    }

    #[test]
    fn recovery_arbitration_is_never_empty() {
        // Exhaustively: for every non-empty request subset and every
        // register value a grant sequence can produce, an empty first
        // arbitration is always followed by a successful one, and the
        // wraparound happens exactly when no requester is below the
        // register.
        let n = 4u32;
        for mask in 1u32..(1 << n) {
            for register in 1..=n + 1 {
                let mut sys = Rr3System::new(n).unwrap();
                sys.last_winner = register;
                let batch: Vec<AgentId> = (1..=n)
                    .filter(|&a| mask & (1 << (a - 1)) != 0)
                    .map(id)
                    .collect();
                sys.on_requests(&batch);
                let expect_wrap = !batch.iter().any(|a| a.get() < register);
                let out = sys.arbitrate().expect("requesters pending");
                assert_eq!(
                    out.arbitrations,
                    if expect_wrap { 2 } else { 1 },
                    "mask {mask:#b} register {register}"
                );
                assert_eq!(sys.empty_arbitrations(), u64::from(expect_wrap));
                assert_eq!(sys.last_winner(), out.winner.get());
            }
        }
    }
}
