//! RR-1: the round-robin priority bit.

use busarb_types::{AgentId, AgentSet, Error};

use crate::signal::{check_new_request, validate_agent_count, SignalOutcome, SignalProtocol};
use crate::{ArbitrationNumber, NumberLayout, ParallelContention};

/// The first (and simplest) implementation of the round-robin protocol.
///
/// One extra bus line — the **round-robin priority bit** — is treated as
/// the most significant bit of the arbitration number. Every agent records
/// the identity of the winner at the end of each arbitration (excluding the
/// round-robin bit). A competitor asserts the bit iff its static identity
/// is smaller than the recorded previous winner, so the maximum-finding
/// lines implement the round-robin scan `j−1, …, 1, N, …, j` after a win
/// by agent `j`.
///
/// Per-agent hardware: a winner register and one comparator (Section 3.1).
///
/// # Examples
///
/// ```
/// use busarb_bus::signal::{Rr1System, SignalProtocol};
/// use busarb_types::AgentId;
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// let mut sys = Rr1System::new(3)?;
/// sys.on_requests(&[AgentId::new(1)?, AgentId::new(3)?]);
/// assert_eq!(sys.arbitrate().unwrap().winner.get(), 3);
/// assert_eq!(sys.arbitrate().unwrap().winner.get(), 1);
/// assert!(sys.arbitrate().is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Rr1System {
    n: u32,
    layout: NumberLayout,
    contention: ParallelContention,
    requesting: AgentSet,
    /// The **replicated** winner registers, one per agent. All agents
    /// observe the same settled lines, so fault-free they are always
    /// identical — and, unlike the rotating-priority scheme's dynamic
    /// numbers, a corrupted copy is overwritten by the very next
    /// arbitration's broadcast winner (the protocol self-heals; see
    /// [`Rr1System::corrupt_register`]).
    winner_registers: Vec<u32>,
    /// Reusable competitor-pattern buffer so steady-state arbitration
    /// performs no heap allocation.
    scratch: Vec<u64>,
}

impl Rr1System {
    /// Creates a system of `n` agents with empty request lines.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] if `n` is 0 or exceeds 128.
    pub fn new(n: u32) -> Result<Self, Error> {
        validate_agent_count(n)?;
        let layout = NumberLayout::for_agents(n)?.with_rr_bit();
        Ok(Rr1System {
            n,
            layout,
            contention: ParallelContention::new(layout.width()),
            requesting: AgentSet::new(),
            // Initial register value N+1: every identity is "below" it, so
            // the first arbitration is a plain maximum among competitors.
            winner_registers: vec![n + 1; n as usize],
            scratch: Vec::new(),
        })
    }

    /// Current contents of the replicated winner register (they are
    /// asserted identical; returns agent 1's copy).
    ///
    /// # Panics
    ///
    /// Panics if the replicas have diverged, which can only happen in the
    /// window between [`Rr1System::corrupt_register`] and the next
    /// arbitration.
    #[must_use]
    pub fn last_winner(&self) -> u32 {
        let first = self.winner_registers[0];
        assert!(
            self.winner_registers.iter().all(|&r| r == first),
            "winner registers have diverged (pending fault)"
        );
        first
    }

    /// One agent's register copy (does not assert convergence).
    ///
    /// # Panics
    ///
    /// Panics if `agent` exceeds the system size.
    #[must_use]
    pub fn register_of(&self, agent: AgentId) -> u32 {
        self.winner_registers[agent.index()]
    }

    /// Fault injection: overwrite one agent's winner-register copy with
    /// an arbitrary value. The paper's robustness argument for static
    /// identities (§3.1) is that this state is *re-learned from the bus
    /// at every arbitration*: the corrupted agent may compete with the
    /// wrong round-robin bit for at most one arbitration, after which its
    /// register is overwritten by the broadcast winner and the system is
    /// fully consistent again — in contrast to the rotating-priority
    /// scheme, where corrupted dynamic numbers persist.
    pub fn corrupt_register(&mut self, agent: AgentId, value: u32) {
        self.winner_registers[agent.index()] = value;
    }

    /// Whether every agent's register copy currently agrees.
    #[must_use]
    pub fn registers_converged(&self) -> bool {
        self.winner_registers.windows(2).all(|w| w[0] == w[1])
    }

    /// Appends a normalized fingerprint of the arbitration-relevant state
    /// (request set and every winner-register replica) to `out`.
    #[doc(hidden)]
    pub fn verify_signature(&self, out: &mut Vec<u64>) {
        busarb_types::fingerprint::push_set(out, self.requesting);
        out.extend(self.winner_registers.iter().map(|&r| u64::from(r)));
    }
}

impl SignalProtocol for Rr1System {
    fn name(&self) -> &'static str {
        "rr-1"
    }

    fn layout(&self) -> NumberLayout {
        self.layout
    }

    fn on_requests(&mut self, ids: &[AgentId]) {
        for &id in ids {
            check_new_request(id, self.n, self.requesting);
            self.requesting.insert(id);
        }
    }

    fn arbitrate(&mut self) -> Option<SignalOutcome> {
        if self.requesting.is_empty() {
            return None;
        }
        let mut competitors = core::mem::take(&mut self.scratch);
        competitors.clear();
        competitors.extend(self.requesting.iter().map(|id| {
            // Each competitor consults ITS OWN register copy.
            let rr = id.get() < self.winner_registers[id.index()];
            self.layout.compose(ArbitrationNumber::new(id).with_rr(rr))
        }));
        let resolution = self.contention.resolve(&competitors);
        self.scratch = competitors;
        // A non-empty competition always decodes to a winner.
        let winner = self.layout.decode_id(resolution.winner_value)?;
        // Every agent latches the broadcast winner identity, excluding
        // the rr bit — this is what re-synchronizes corrupted replicas.
        self.winner_registers.fill(winner.get());
        self.requesting.remove(winner);
        Some(SignalOutcome {
            winner,
            rounds: resolution.rounds,
            arbitrations: 1,
        })
    }

    fn pending(&self) -> usize {
        self.requesting.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    fn ids(ns: &[u32]) -> Vec<AgentId> {
        ns.iter().map(|&n| id(n)).collect()
    }

    #[test]
    fn saturated_system_serves_true_round_robin() {
        let mut sys = Rr1System::new(5).unwrap();
        sys.on_requests(&ids(&[1, 2, 3, 4, 5]));
        let mut order = Vec::new();
        for _ in 0..5 {
            let out = sys.arbitrate().unwrap();
            order.push(out.winner.get());
            // Re-request immediately: keeps the system saturated.
            sys.on_requests(&[out.winner]);
        }
        // After 5 wins at saturation, each agent was served exactly once,
        // scanning downward from the first winner.
        assert_eq!(order, vec![5, 4, 3, 2, 1]);
        // Next full cycle repeats the scan.
        let next: Vec<u32> = (0..5)
            .map(|_| {
                let out = sys.arbitrate().unwrap();
                sys.on_requests(&[out.winner]);
                out.winner.get()
            })
            .collect();
        assert_eq!(next, vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn wraps_from_low_to_high_identities() {
        let mut sys = Rr1System::new(4).unwrap();
        sys.on_requests(&ids(&[2]));
        assert_eq!(sys.arbitrate().unwrap().winner, id(2));
        // Winner register is 2; agent 3 requests; 3 is not below 2, but is
        // the only competitor.
        sys.on_requests(&ids(&[3]));
        assert_eq!(sys.arbitrate().unwrap().winner, id(3));
        // Now 1 (below 3, asserts rr bit) beats 4 (above 3).
        sys.on_requests(&ids(&[1, 4]));
        assert_eq!(sys.arbitrate().unwrap().winner, id(1));
        assert_eq!(sys.arbitrate().unwrap().winner, id(4));
    }

    #[test]
    fn rr_bit_gives_low_ids_priority() {
        let mut sys = Rr1System::new(10).unwrap();
        sys.on_requests(&ids(&[10]));
        sys.arbitrate().unwrap(); // winner register = 10
        sys.on_requests(&ids(&[3, 7]));
        // Both below 10 -> both assert the rr bit -> higher id wins.
        assert_eq!(sys.arbitrate().unwrap().winner, id(7));
        // 3 is below 7 -> asserts rr; nobody else.
        assert_eq!(sys.arbitrate().unwrap().winner, id(3));
    }

    #[test]
    fn layout_uses_one_extra_line() {
        let sys = Rr1System::new(30).unwrap();
        assert_eq!(sys.layout().width(), AgentId::lines_required(30) + 1);
        assert!(sys.layout().has_rr_bit());
        assert_eq!(sys.name(), "rr-1");
    }

    #[test]
    fn empty_arbitration_returns_none() {
        let mut sys = Rr1System::new(3).unwrap();
        assert!(sys.arbitrate().is_none());
        assert_eq!(sys.pending(), 0);
    }

    #[test]
    fn corrupted_register_self_heals_in_one_arbitration() {
        let mut sys = Rr1System::new(6).unwrap();
        sys.on_requests(&ids(&[4]));
        sys.arbitrate().unwrap(); // all registers = 4
        assert!(sys.registers_converged());

        // Corrupt agent 2's copy: it now believes the last winner was 6.
        sys.corrupt_register(id(2), 6);
        assert!(!sys.registers_converged());
        assert_eq!(sys.register_of(id(2)), 6);
        assert_eq!(sys.register_of(id(1)), 4);

        // The next arbitration may be perturbed (agent 2 asserts the rr
        // bit using its stale view), but its broadcast winner overwrites
        // every replica: the system is consistent again.
        sys.on_requests(&ids(&[2, 5]));
        let out = sys.arbitrate().unwrap();
        assert!(sys.registers_converged());
        assert_eq!(sys.register_of(id(1)), out.winner.get());
        // And subsequent behavior is exactly normal round-robin.
        let next = sys.arbitrate().unwrap();
        assert!(sys.registers_converged());
        assert_ne!(out.winner, next.winner);
    }

    #[test]
    fn corruption_window_is_bounded_to_one_decision() {
        // Even an adversarial corrupted value perturbs at most the single
        // next decision: once both systems have re-latched a broadcast
        // winner and their registers coincide, they agree forever after.
        let mut faulted = Rr1System::new(5).unwrap();
        let mut clean = Rr1System::new(5).unwrap();
        for sys in [&mut faulted, &mut clean] {
            sys.on_requests(&ids(&[1, 2, 3, 4, 5]));
            assert_eq!(sys.arbitrate().unwrap().winner, id(5));
        }
        faulted.corrupt_register(id(3), 1);
        // Next arbitration: competitors {1,2,3,4}; agent 3's stale view
        // (register 1) suppresses its rr bit, so 4 still wins in both
        // systems here — but the key point is re-convergence, asserted
        // below regardless of the decision.
        let wf = faulted.arbitrate().unwrap().winner;
        let wc = clean.arbitrate().unwrap().winner;
        assert!(faulted.registers_converged());
        if wf == wc {
            // Registers re-latched the same broadcast value: lockstep
            // from here on.
            loop {
                let a = faulted.arbitrate().map(|o| o.winner);
                let b = clean.arbitrate().map(|o| o.winner);
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "already has an outstanding request")]
    fn duplicate_request_panics() {
        let mut sys = Rr1System::new(3).unwrap();
        sys.on_requests(&ids(&[2, 2]));
    }

    #[test]
    #[should_panic(expected = "exceeds system size")]
    fn oversized_identity_panics() {
        let mut sys = Rr1System::new(3).unwrap();
        sys.on_requests(&ids(&[4]));
    }
}
