//! RR-2: the low-request line.

use busarb_types::{AgentId, AgentSet, Error};

use crate::signal::{check_new_request, validate_agent_count, SignalOutcome, SignalProtocol};
use crate::{ArbitrationNumber, NumberLayout, ParallelContention};

/// The second implementation of the round-robin protocol.
///
/// The extra line is renamed the **low-request** line and used for
/// *inhibition* rather than as an arbitration-number bit: a requesting
/// agent asserts it iff its identity is lower than the recorded previous
/// winner. If the line is asserted at the start of an arbitration, only
/// agents below the previous winner compete; otherwise everyone competes.
/// The grant sequence is identical to [`Rr1System`](crate::signal::Rr1System);
/// the arbitration number itself stays k bits wide.
///
/// # Examples
///
/// ```
/// use busarb_bus::signal::{Rr2System, SignalProtocol};
/// use busarb_types::AgentId;
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// let mut sys = Rr2System::new(8)?;
/// sys.on_requests(&[AgentId::new(2)?, AgentId::new(6)?]);
/// assert_eq!(sys.arbitrate().unwrap().winner.get(), 6);
/// assert_eq!(sys.arbitrate().unwrap().winner.get(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Rr2System {
    n: u32,
    layout: NumberLayout,
    contention: ParallelContention,
    requesting: AgentSet,
    last_winner: u32,
    /// Reusable competitor-pattern buffer so steady-state arbitration
    /// performs no heap allocation.
    scratch: Vec<u64>,
}

impl Rr2System {
    /// Creates a system of `n` agents.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] if `n` is 0 or exceeds 128.
    pub fn new(n: u32) -> Result<Self, Error> {
        validate_agent_count(n)?;
        let layout = NumberLayout::for_agents(n)?;
        Ok(Rr2System {
            n,
            layout,
            contention: ParallelContention::new(layout.width()),
            requesting: AgentSet::new(),
            last_winner: n + 1,
            scratch: Vec::new(),
        })
    }

    /// Current contents of the (replicated) winner register.
    #[must_use]
    pub fn last_winner(&self) -> u32 {
        self.last_winner
    }

    /// Whether the low-request line would read asserted right now.
    #[must_use]
    pub fn low_request_asserted(&self) -> bool {
        self.requesting.iter().any(|id| id.get() < self.last_winner)
    }

    /// Appends a normalized fingerprint of the arbitration-relevant state
    /// (request set and winner register) to `out`.
    #[doc(hidden)]
    pub fn verify_signature(&self, out: &mut Vec<u64>) {
        busarb_types::fingerprint::push_set(out, self.requesting);
        out.push(u64::from(self.last_winner));
    }
}

impl SignalProtocol for Rr2System {
    fn name(&self) -> &'static str {
        "rr-2"
    }

    fn layout(&self) -> NumberLayout {
        self.layout
    }

    fn on_requests(&mut self, ids: &[AgentId]) {
        for &id in ids {
            check_new_request(id, self.n, self.requesting);
            self.requesting.insert(id);
        }
    }

    fn arbitrate(&mut self) -> Option<SignalOutcome> {
        if self.requesting.is_empty() {
            return None;
        }
        let eligible = if self.low_request_asserted() {
            self.requesting
                .iter()
                .filter(|id| id.get() < self.last_winner)
                .collect::<AgentSet>()
        } else {
            self.requesting
        };
        let mut competitors = core::mem::take(&mut self.scratch);
        competitors.clear();
        competitors.extend(
            eligible
                .iter()
                .map(|id| self.layout.compose(ArbitrationNumber::new(id))),
        );
        let resolution = self.contention.resolve(&competitors);
        self.scratch = competitors;
        // The eligible set is non-empty, so the value decodes.
        let winner = self.layout.decode_id(resolution.winner_value)?;
        self.last_winner = winner.get();
        self.requesting.remove(winner);
        Some(SignalOutcome {
            winner,
            rounds: resolution.rounds,
            arbitrations: 1,
        })
    }

    fn pending(&self) -> usize {
        self.requesting.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    fn ids(ns: &[u32]) -> Vec<AgentId> {
        ns.iter().map(|&n| id(n)).collect()
    }

    #[test]
    fn saturated_round_robin_order() {
        let mut sys = Rr2System::new(4).unwrap();
        sys.on_requests(&ids(&[1, 2, 3, 4]));
        let mut order = Vec::new();
        for _ in 0..8 {
            let out = sys.arbitrate().unwrap();
            order.push(out.winner.get());
            sys.on_requests(&[out.winner]);
        }
        assert_eq!(order, vec![4, 3, 2, 1, 4, 3, 2, 1]);
    }

    #[test]
    fn low_request_line_gates_competition() {
        let mut sys = Rr2System::new(8).unwrap();
        sys.on_requests(&ids(&[5]));
        sys.arbitrate().unwrap(); // winner register = 5
        sys.on_requests(&ids(&[3, 7]));
        assert!(sys.low_request_asserted()); // 3 < 5
                                             // Only agent 3 competes; 7 is inhibited despite higher identity.
        assert_eq!(sys.arbitrate().unwrap().winner, id(3));
        // Now winner register = 3; only 7 requests; line not asserted.
        assert!(!sys.low_request_asserted());
        assert_eq!(sys.arbitrate().unwrap().winner, id(7));
    }

    #[test]
    fn no_extra_number_line() {
        let sys = Rr2System::new(30).unwrap();
        assert_eq!(sys.layout().width(), AgentId::lines_required(30));
        assert!(!sys.layout().has_rr_bit());
        assert_eq!(sys.name(), "rr-2");
    }

    #[test]
    fn matches_rr1_decisions_on_a_random_like_schedule() {
        use crate::signal::Rr1System;
        let mut a = Rr1System::new(7).unwrap();
        let mut b = Rr2System::new(7).unwrap();
        // A fixed but irregular request schedule.
        let schedule: &[&[u32]] = &[
            &[3, 5],
            &[],
            &[1, 7, 2],
            &[6],
            &[],
            &[4],
            &[5],
            &[3, 7],
            &[],
            &[],
        ];
        for batch in schedule {
            let reqs = ids(batch);
            a.on_requests(&reqs);
            b.on_requests(&reqs);
            let wa = a.arbitrate().map(|o| o.winner);
            let wb = b.arbitrate().map(|o| o.winner);
            assert_eq!(wa, wb);
        }
        // Drain both.
        loop {
            let wa = a.arbitrate().map(|o| o.winner);
            let wb = b.arbitrate().map(|o| o.winner);
            assert_eq!(wa, wb);
            if wa.is_none() {
                break;
            }
        }
    }

    #[test]
    fn empty_system() {
        let mut sys = Rr2System::new(2).unwrap();
        assert!(sys.arbitrate().is_none());
        assert!(!sys.low_request_asserted());
    }
}
