//! The distributed maximum-finding settle dynamics.

use core::fmt;

/// How the arbitration lines resolve contention.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, Debug)]
pub enum LineDiscipline {
    /// Conventional wired-OR lines carrying every bit of every competitor's
    /// number. Settles in multiple propagation rounds; the winning number is
    /// visible to **all** agents at the end — the property the RR and FCFS
    /// protocols depend on.
    #[default]
    FullBroadcast,
    /// Johnson's binary-patterned lines (US patent 4,375,639): resolution
    /// completes in a single end-to-end propagation, but the winner's
    /// identity is known only to the winner itself. Paper footnote 2: the
    /// RR protocol "cannot use binary patterned arbitration lines easily";
    /// the FCFS protocol can use them for the *static* part of its
    /// identity to reclaim the wider-number overhead (Section 3.3).
    BinaryPatterned,
}

impl fmt::Display for LineDiscipline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LineDiscipline::FullBroadcast => f.write_str("full broadcast"),
            LineDiscipline::BinaryPatterned => f.write_str("binary patterned"),
        }
    }
}

/// Outcome of one arbitration on the shared lines.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Resolution {
    /// The value the lines settled to — the maximum competing number, or 0
    /// if nobody competed.
    pub winner_value: u64,
    /// Synchronous propagation rounds taken to settle (1 for binary
    /// patterned lines).
    pub rounds: u32,
    /// Whether the winning number is visible to every agent on the bus
    /// (`true` for full-broadcast lines). Protocols that need the winner's
    /// identity (all three RR implementations) require this.
    pub winner_broadcast: bool,
}

/// A k-line parallel contention arbiter.
///
/// The settle dynamics are modeled as **synchronous propagation rounds**:
/// in each round every competitor observes the wired-OR of the patterns
/// applied in the previous round and recomputes its applied pattern by the
/// paper's rule — *"if the value carried by line i is 1, but the agent is
/// applying 0 to it, then the agent removes the lower-order bits of its
/// identity [below i]; if line i drops back to 0, the agent reapplies
/// them"*. The iteration reaches a fixpoint carrying the maximum competing
/// number.
///
/// Taub proved a bound of k/2 end-to-end propagation delays for the analog,
/// worst-case-placement formulation; the synchronous model used here
/// settles in at most k rounds (measured distributions are far smaller —
/// see the `settle_rounds` bench).
///
/// # Examples
///
/// ```
/// use busarb_bus::ParallelContention;
///
/// let arbiter = ParallelContention::new(4);
/// let r = arbiter.resolve(&[0b0101, 0b1001, 0b0110]);
/// assert_eq!(r.winner_value, 0b1001);
/// assert!(r.rounds <= 4);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ParallelContention {
    width: u32,
    discipline: LineDiscipline,
}

/// The most competitors one resolve can host: every agent of a maximal
/// 128-agent system applying a pattern at once. Keeping the bound static
/// lets `settle` hold the per-competitor applied-pattern plane in a stack
/// array — `settle` is the innermost loop of every simulated arbitration,
/// and both a per-resolve `Vec` and the `Mutex<Vec>` scratch buffer that
/// replaced it were measurable there.
const MAX_COMPETITORS: usize = 128;

impl ParallelContention {
    /// Creates an arbiter with `width` arbitration lines and full-broadcast
    /// discipline.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 63.
    #[must_use]
    pub fn new(width: u32) -> Self {
        assert!(
            width > 0 && width < 64,
            "arbitration width must be in 1..=63"
        );
        ParallelContention {
            width,
            discipline: LineDiscipline::FullBroadcast,
        }
    }

    /// Selects the line discipline.
    #[must_use]
    pub fn with_discipline(mut self, discipline: LineDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Number of arbitration lines.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The configured line discipline.
    #[must_use]
    pub fn discipline(&self) -> LineDiscipline {
        self.discipline
    }

    /// Mask of valid line bits (consulted only by the debug-build
    /// competitor validation in `resolve_inner`).
    #[cfg(debug_assertions)]
    fn mask(&self) -> u64 {
        (1u64 << self.width) - 1
    }

    /// Runs one arbitration among `competitors` (each entry is the raw
    /// pattern one agent applies).
    ///
    /// # Panics
    ///
    /// In debug builds, panics if any competitor value does not fit in the
    /// configured width. (Patterns are produced by the signal systems'
    /// number layouts, which are width-checked at construction; re-checking
    /// every pattern on every resolve was measurable in the simulation hot
    /// loop, so release builds trust the layout invariant.)
    #[must_use]
    pub fn resolve(&self, competitors: &[u64]) -> Resolution {
        self.resolve_inner(competitors, None)
    }

    /// Like [`Self::resolve`], but also records the wired-OR line state
    /// after every propagation round (for tracing and visualization).
    #[must_use]
    pub fn resolve_traced(&self, competitors: &[u64]) -> (Resolution, Vec<u64>) {
        let mut trace = Vec::new();
        let r = self.resolve_inner(competitors, Some(&mut trace));
        (r, trace)
    }

    fn resolve_inner(&self, competitors: &[u64], mut trace: Option<&mut Vec<u64>>) -> Resolution {
        #[cfg(debug_assertions)]
        for &c in competitors {
            assert!(
                c <= self.mask(),
                "competitor {c:#b} exceeds arbitration width {}",
                self.width
            );
        }
        match self.discipline {
            LineDiscipline::BinaryPatterned => {
                // Architectural model: single-round resolution, winner not
                // broadcast.
                let winner = competitors.iter().copied().max().unwrap_or(0);
                if let Some(t) = trace.as_deref_mut() {
                    t.push(winner);
                }
                Resolution {
                    winner_value: winner,
                    rounds: 1,
                    winner_broadcast: false,
                }
            }
            LineDiscipline::FullBroadcast => self.settle(competitors, trace),
        }
    }

    /// Iterates the withdraw/reapply dynamics to a fixpoint.
    fn settle(&self, competitors: &[u64], mut trace: Option<&mut Vec<u64>>) -> Resolution {
        // With 0 or 1 competitors the lines settle in the initial
        // application round — there is no conflicting bit to withdraw from
        // — so skip the scratch-buffer lock and the fixpoint iteration
        // entirely. Uncontended arbitrations dominate low-load cells, which
        // makes this the most common resolve shape in a sweep.
        if competitors.len() <= 1 {
            let winner = competitors.first().copied().unwrap_or(0);
            if let Some(t) = trace.as_deref_mut() {
                t.push(winner);
            }
            return Resolution {
                winner_value: winner,
                rounds: 1,
                winner_broadcast: true,
            };
        }
        assert!(
            competitors.len() <= MAX_COMPETITORS,
            "at most {MAX_COMPETITORS} agents can compete in one arbitration"
        );
        // Round 0: every competitor applies its full pattern into the
        // stack-resident applied plane. Each fixpoint iteration below is a
        // single pass of word ops over the plane — the recomputed pattern,
        // an XOR against the previous round for change detection, and the
        // OR-reduction for the next line state all fuse into one loop.
        let mut plane = [0u64; MAX_COMPETITORS];
        let applied = &mut plane[..competitors.len()];
        applied.copy_from_slice(competitors);
        let mut lines: u64 = applied.iter().fold(0, |acc, &p| acc | p);
        if let Some(t) = trace.as_deref_mut() {
            t.push(lines);
        }
        let mut rounds = 1; // the initial application is one propagation
        loop {
            let mut diff = 0u64;
            let mut next_lines = 0u64;
            for (pattern, slot) in competitors.iter().zip(applied.iter_mut()) {
                let next = Self::apply_rule(*pattern, lines);
                diff |= next ^ *slot;
                *slot = next;
                next_lines |= next;
            }
            if diff == 0 {
                break;
            }
            lines = next_lines;
            if let Some(t) = trace.as_deref_mut() {
                t.push(lines);
            }
            rounds += 1;
            assert!(
                rounds <= 4 * self.width + 4,
                "settle dynamics failed to converge"
            );
        }
        Resolution {
            winner_value: lines,
            rounds,
            winner_broadcast: true,
        }
    }

    /// One agent's combinational monitoring rule: find the highest line
    /// carrying 1 where this agent's pattern has 0, and withdraw all bits
    /// below it.
    fn apply_rule(pattern: u64, lines: u64) -> u64 {
        let conflicts = lines & !pattern;
        if conflicts == 0 {
            pattern
        } else {
            let top = 63 - conflicts.leading_zeros();
            // Keep bits at positions > top (bit `top` itself is 0 in this
            // agent's pattern); withdraw everything below.
            pattern & !((1u64 << (top + 1)) - 1) | (pattern & (1u64 << top))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // Section 2.1: agents 1010101 and 0011100.
        let arbiter = ParallelContention::new(7);
        let (r, trace) = arbiter.resolve_traced(&[0b1010101, 0b0011100]);
        assert_eq!(r.winner_value, 0b1010101);
        assert!(r.winner_broadcast);
        // First propagation round: OR of the full patterns.
        assert_eq!(trace[0], 0b1011101);
        // Settled state carries the winner.
        assert_eq!(*trace.last().unwrap(), 0b1010101);
    }

    #[test]
    fn resolves_to_maximum_for_various_sets() {
        let arbiter = ParallelContention::new(7);
        let cases: &[&[u64]] = &[
            &[1],
            &[127],
            &[1, 2, 3, 4, 5],
            &[0b1000000, 0b0111111],
            &[5, 5], // duplicate identities still settle
            &[0b0101010, 0b1010101, 0b0110011],
        ];
        for &set in cases {
            let r = arbiter.resolve(set);
            assert_eq!(r.winner_value, *set.iter().max().unwrap(), "{set:?}");
        }
    }

    #[test]
    fn empty_competition_settles_to_zero() {
        // RR-3 relies on "a winning identity of zero indicates that no
        // agent participated".
        let arbiter = ParallelContention::new(5);
        let r = arbiter.resolve(&[]);
        assert_eq!(r.winner_value, 0);
    }

    #[test]
    fn rounds_bounded_by_width() {
        let width = 7;
        let arbiter = ParallelContention::new(width);
        // Exhaustive pairs over a subrange plus structured worst cases.
        for a in 1..64u64 {
            for b in 1..64u64 {
                let r = arbiter.resolve(&[a, b]);
                assert_eq!(r.winner_value, a.max(b));
                assert!(
                    r.rounds <= width + 1,
                    "a={a:#b} b={b:#b} rounds={}",
                    r.rounds
                );
            }
        }
    }

    #[test]
    fn alternating_patterns_need_multiple_rounds() {
        // Alternating bit patterns are the classic slow case for the
        // withdraw/reapply dynamics.
        let arbiter = ParallelContention::new(8);
        let r = arbiter.resolve(&[0b10101010, 0b01010101]);
        assert_eq!(r.winner_value, 0b10101010);
        assert!(r.rounds >= 2);
    }

    #[test]
    fn single_competitor_settles_immediately() {
        let arbiter = ParallelContention::new(6);
        let r = arbiter.resolve(&[0b101010]);
        assert_eq!(r.winner_value, 0b101010);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn binary_patterned_discipline() {
        let arbiter = ParallelContention::new(6).with_discipline(LineDiscipline::BinaryPatterned);
        let r = arbiter.resolve(&[9, 33, 17]);
        assert_eq!(r.winner_value, 33);
        assert_eq!(r.rounds, 1);
        assert!(!r.winner_broadcast);
        assert_eq!(arbiter.discipline(), LineDiscipline::BinaryPatterned);
    }

    #[test]
    fn full_broadcast_publishes_winner() {
        let arbiter = ParallelContention::new(6);
        assert!(arbiter.resolve(&[1, 2]).winner_broadcast);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "exceeds arbitration width")]
    fn oversized_competitor_panics() {
        let arbiter = ParallelContention::new(3);
        let _ = arbiter.resolve(&[8]);
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn zero_width_panics() {
        let _ = ParallelContention::new(0);
    }

    #[test]
    fn discipline_display() {
        assert_eq!(LineDiscipline::FullBroadcast.to_string(), "full broadcast");
        assert_eq!(
            LineDiscipline::BinaryPatterned.to_string(),
            "binary patterned"
        );
    }

    #[test]
    fn trace_is_monotone_towards_winner_value() {
        let arbiter = ParallelContention::new(7);
        let (r, trace) = arbiter.resolve_traced(&[0b1010101, 0b0011100, 0b1000011]);
        assert_eq!(r.winner_value, 0b1010101);
        assert_eq!(trace.len() as u32, r.rounds);
        // Every traced state contains the eventual winner's surviving MSBs.
        assert!(trace.iter().all(|&l| l & 0b1000000 != 0));
    }
}
