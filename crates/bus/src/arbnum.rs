//! Composite arbitration numbers.

use core::fmt;

use busarb_types::{AgentId, Error, Priority};

/// Field layout of a composite arbitration number.
///
/// From least to most significant, an arbitration number concatenates:
///
/// 1. the **static identity** (`id_bits` lines — `ceil(log2(N+1))`),
/// 2. an optional **waiting-time counter** (`counter_bits` lines — the
///    dynamic, most-significant part of the FCFS protocol's identity),
/// 3. an optional **round-robin priority bit** (the RR-1 implementation),
/// 4. an optional **priority bit** (urgent requests beat everything).
///
/// The paper's protocols use subsets of these fields:
///
/// | protocol | priority | rr bit | counter | id |
/// |----------|----------|--------|---------|----|
/// | fixed priority | – | – | – | ✓ |
/// | RR-1     | optional | ✓ | – | ✓ |
/// | RR-2 / RR-3 | optional | – | – | ✓ |
/// | FCFS-1 / FCFS-2 | optional | – | ✓ | ✓ |
///
/// # Examples
///
/// ```
/// use busarb_bus::NumberLayout;
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// // Futurebus-sized system: 63 agents, 6 identity lines.
/// let layout = NumberLayout::for_agents(63)?.with_rr_bit();
/// assert_eq!(layout.width(), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NumberLayout {
    id_bits: u32,
    counter_bits: u32,
    rr_bit: bool,
    priority_bit: bool,
}

impl NumberLayout {
    /// Layout with just enough identity bits for `n` agents and no dynamic
    /// fields.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAgentCount`] if `n` is 0 or exceeds 128.
    pub fn for_agents(n: u32) -> Result<Self, Error> {
        if n == 0 || n > 128 {
            return Err(Error::InvalidAgentCount {
                requested: n,
                max: 128,
            });
        }
        Ok(NumberLayout {
            id_bits: AgentId::lines_required(n),
            counter_bits: 0,
            rr_bit: false,
            priority_bit: false,
        })
    }

    /// Adds a waiting-time counter field of `bits` lines (FCFS protocols).
    #[must_use]
    pub fn with_counter_bits(mut self, bits: u32) -> Self {
        self.counter_bits = bits;
        self
    }

    /// Adds the round-robin priority bit (RR-1).
    #[must_use]
    pub fn with_rr_bit(mut self) -> Self {
        self.rr_bit = true;
        self
    }

    /// Adds the urgent-priority bit.
    #[must_use]
    pub fn with_priority_bit(mut self) -> Self {
        self.priority_bit = true;
        self
    }

    /// Number of identity lines.
    #[must_use]
    pub fn id_bits(&self) -> u32 {
        self.id_bits
    }

    /// Number of counter lines.
    #[must_use]
    pub fn counter_bits(&self) -> u32 {
        self.counter_bits
    }

    /// Whether the layout has a round-robin bit.
    #[must_use]
    pub fn has_rr_bit(&self) -> bool {
        self.rr_bit
    }

    /// Whether the layout has an urgent-priority bit.
    #[must_use]
    pub fn has_priority_bit(&self) -> bool {
        self.priority_bit
    }

    /// Total bus lines used by the arbitration number — the paper's
    /// hardware-cost metric for each protocol.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.id_bits + self.counter_bits + u32::from(self.rr_bit) + u32::from(self.priority_bit)
    }

    /// Largest storable counter value.
    #[must_use]
    pub fn counter_max(&self) -> u64 {
        if self.counter_bits == 0 {
            0
        } else {
            (1u64 << self.counter_bits) - 1
        }
    }

    /// Bit position of the counter field.
    fn counter_shift(&self) -> u32 {
        self.id_bits
    }

    /// Bit position of the round-robin bit.
    fn rr_shift(&self) -> u32 {
        self.id_bits + self.counter_bits
    }

    /// Bit position of the priority bit.
    fn priority_shift(&self) -> u32 {
        self.rr_shift() + u32::from(self.rr_bit)
    }

    /// Composes a raw line pattern.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if a field value exceeds its width, if a
    /// counter is supplied without counter bits, or if `rr`/`priority` are
    /// used without the corresponding bit in the layout.
    #[must_use]
    pub fn compose(&self, number: ArbitrationNumber) -> u64 {
        debug_assert!(
            u64::from(number.id.get()) < (1u64 << self.id_bits),
            "identity {} does not fit in {} bits",
            number.id,
            self.id_bits
        );
        debug_assert!(
            number.counter <= self.counter_max(),
            "counter {} exceeds field capacity {}",
            number.counter,
            self.counter_max()
        );
        debug_assert!(self.rr_bit || !number.rr, "layout has no rr bit");
        debug_assert!(
            self.priority_bit || !number.priority.is_urgent(),
            "layout has no priority bit"
        );
        let mut v = u64::from(number.id.get());
        v |= number.counter << self.counter_shift();
        if number.rr {
            v |= 1u64 << self.rr_shift();
        }
        if number.priority.is_urgent() {
            v |= 1u64 << self.priority_shift();
        }
        v
    }

    /// Decodes a raw line pattern back into its fields. Returns `None` if
    /// the identity field is zero (no competitor).
    #[must_use]
    pub fn decode(&self, value: u64) -> Option<ArbitrationNumber> {
        let id_mask = (1u64 << self.id_bits) - 1;
        let id = (value & id_mask) as u32;
        let id = AgentId::new(id).ok()?;
        let counter = (value >> self.counter_shift()) & self.counter_max();
        let rr = self.rr_bit && value & (1u64 << self.rr_shift()) != 0;
        let urgent = self.priority_bit && value & (1u64 << self.priority_shift()) != 0;
        Some(ArbitrationNumber {
            id,
            counter,
            rr,
            priority: if urgent {
                Priority::Urgent
            } else {
                Priority::Ordinary
            },
        })
    }

    /// Extracts just the identity field, ignoring dynamic fields — what an
    /// agent's winner register latches at the end of an arbitration
    /// ("excluding the round-robin priority bit").
    #[must_use]
    pub fn decode_id(&self, value: u64) -> Option<AgentId> {
        let id_mask = (1u64 << self.id_bits) - 1;
        AgentId::new((value & id_mask) as u32).ok()
    }
}

/// The decoded fields of a composite arbitration number.
///
/// # Examples
///
/// ```
/// use busarb_bus::{ArbitrationNumber, NumberLayout};
/// use busarb_types::AgentId;
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// let layout = NumberLayout::for_agents(10)?.with_counter_bits(4);
/// let n = ArbitrationNumber::new(AgentId::new(5)?).with_counter(3);
/// let raw = layout.compose(n);
/// assert_eq!(layout.decode(raw), Some(n));
/// // Counter is more significant than identity:
/// let m = ArbitrationNumber::new(AgentId::new(9)?).with_counter(2);
/// assert!(raw > layout.compose(m));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ArbitrationNumber {
    /// Static identity (least significant field).
    pub id: AgentId,
    /// Waiting-time counter (FCFS protocols).
    pub counter: u64,
    /// Round-robin priority bit (RR-1).
    pub rr: bool,
    /// Urgent-priority bit (most significant field).
    pub priority: Priority,
}

impl ArbitrationNumber {
    /// A plain static-identity number with all dynamic fields clear.
    #[must_use]
    pub fn new(id: AgentId) -> Self {
        ArbitrationNumber {
            id,
            counter: 0,
            rr: false,
            priority: Priority::Ordinary,
        }
    }

    /// Sets the waiting-time counter.
    #[must_use]
    pub fn with_counter(mut self, counter: u64) -> Self {
        self.counter = counter;
        self
    }

    /// Sets the round-robin bit.
    #[must_use]
    pub fn with_rr(mut self, rr: bool) -> Self {
        self.rr = rr;
        self
    }

    /// Sets the priority class.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

impl fmt::Display for ArbitrationNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}|rr={}|ctr={}|id={}]",
            self.priority,
            u8::from(self.rr),
            self.counter,
            self.id
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    #[test]
    fn layout_width_accounting() {
        let base = NumberLayout::for_agents(10).unwrap();
        assert_eq!(base.width(), 4);
        assert_eq!(base.with_rr_bit().width(), 5);
        assert_eq!(base.with_counter_bits(4).width(), 8);
        assert_eq!(base.with_counter_bits(4).with_priority_bit().width(), 9);
        assert!(base.with_priority_bit().has_priority_bit());
        assert!(!base.has_rr_bit());
        assert_eq!(base.id_bits(), 4);
        assert_eq!(base.with_counter_bits(3).counter_bits(), 3);
    }

    #[test]
    fn fcfs_doubles_identity_size_at_most() {
        // Paper Section 3.2: "at most we need to double the size of the
        // identities" — counter needs ceil(log2 N) bits.
        let n = 64;
        let id_bits = AgentId::lines_required(n);
        let layout = NumberLayout::for_agents(n)
            .unwrap()
            .with_counter_bits(AgentId::lines_required(n));
        assert!(layout.width() <= 2 * id_bits);
    }

    #[test]
    fn layout_validation() {
        assert!(NumberLayout::for_agents(0).is_err());
        assert!(NumberLayout::for_agents(129).is_err());
        assert!(NumberLayout::for_agents(128).is_ok());
    }

    #[test]
    fn compose_decode_roundtrip() {
        let layout = NumberLayout::for_agents(30)
            .unwrap()
            .with_counter_bits(5)
            .with_rr_bit()
            .with_priority_bit();
        for agent in [1u32, 7, 30] {
            for counter in [0u64, 1, 31] {
                for rr in [false, true] {
                    for pri in [Priority::Ordinary, Priority::Urgent] {
                        let n = ArbitrationNumber::new(id(agent))
                            .with_counter(counter)
                            .with_rr(rr)
                            .with_priority(pri);
                        let raw = layout.compose(n);
                        assert_eq!(layout.decode(raw), Some(n));
                        assert_eq!(layout.decode_id(raw), Some(id(agent)));
                    }
                }
            }
        }
    }

    #[test]
    fn decode_of_zero_identity_is_none() {
        let layout = NumberLayout::for_agents(10).unwrap().with_counter_bits(4);
        assert_eq!(layout.decode(0), None);
        // Counter bits set but empty identity: still no competitor.
        assert_eq!(layout.decode(0b0011_0000), None);
        assert_eq!(layout.decode_id(0b0011_0000), None);
    }

    #[test]
    fn field_significance_ordering() {
        let layout = NumberLayout::for_agents(10)
            .unwrap()
            .with_counter_bits(4)
            .with_rr_bit()
            .with_priority_bit();
        let low_id_high_counter = layout.compose(ArbitrationNumber::new(id(1)).with_counter(5));
        let high_id_low_counter = layout.compose(ArbitrationNumber::new(id(10)).with_counter(4));
        assert!(low_id_high_counter > high_id_low_counter);

        let rr_beats_counter = layout.compose(ArbitrationNumber::new(id(1)).with_rr(true));
        let max_counter =
            layout.compose(ArbitrationNumber::new(id(10)).with_counter(layout.counter_max()));
        assert!(rr_beats_counter > max_counter);

        let urgent = layout.compose(ArbitrationNumber::new(id(1)).with_priority(Priority::Urgent));
        let rr_and_counter = layout.compose(
            ArbitrationNumber::new(id(10))
                .with_rr(true)
                .with_counter(layout.counter_max()),
        );
        assert!(urgent > rr_and_counter);
    }

    #[test]
    fn counter_max() {
        let layout = NumberLayout::for_agents(10).unwrap().with_counter_bits(4);
        assert_eq!(layout.counter_max(), 15);
        assert_eq!(NumberLayout::for_agents(10).unwrap().counter_max(), 0);
    }

    #[test]
    fn ties_in_counter_resolve_by_identity() {
        // Section 3.2: equal counters fall back to static identity order.
        let layout = NumberLayout::for_agents(10).unwrap().with_counter_bits(4);
        let a = layout.compose(ArbitrationNumber::new(id(3)).with_counter(2));
        let b = layout.compose(ArbitrationNumber::new(id(8)).with_counter(2));
        assert!(b > a);
    }

    #[test]
    fn display_shows_fields() {
        let n = ArbitrationNumber::new(id(4)).with_counter(7).with_rr(true);
        let s = format!("{n}");
        assert!(s.contains("id=4"));
        assert!(s.contains("ctr=7"));
        assert!(s.contains("rr=1"));
    }
}
