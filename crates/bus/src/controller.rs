//! The overall arbitration control: phases, handover, and bus
//! monitoring.
//!
//! Section 2.1 of the paper: *"The overall control of the arbitration,
//! including starting an arbitration and handing over control to the
//! winner, is synchronized by the clock in synchronous buses, or occurs
//! in a self-timed fashion in asynchronous buses."* The paper abstracts
//! this away; this module models it as an explicit phase machine so that
//! the substrate also realizes the third advantage the paper claims for
//! the parallel contention arbiter (§1): *"the state of the arbiter is
//! available and can be monitored on the bus. This is useful for
//! software initialization of the system and for diagnosing system
//! failures."*
//!
//! The controller validates every control event against the current
//! phase — an out-of-order handover or a settle with no arbitration in
//! flight is a protocol violation, reported as
//! [`Error::PhaseViolation`] — and exposes a [`MonitorSnapshot`] of
//! exactly the state a diagnostic device could read off the lines.

use core::fmt;

use busarb_types::{AgentId, Error};

/// The bus control phase, as observable on the control lines.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, Debug)]
pub enum BusPhase {
    /// No transfer and no arbitration in progress.
    #[default]
    Idle,
    /// The arbitration lines are settling.
    Arbitrating,
    /// The lines have settled; the winner is waiting for the bus.
    Settled,
    /// A data transfer is in progress (possibly with an overlapped
    /// arbitration, tracked separately).
    Transfer,
}

impl BusPhase {
    fn name(self) -> &'static str {
        match self {
            BusPhase::Idle => "idle",
            BusPhase::Arbitrating => "arbitrating",
            BusPhase::Settled => "settled",
            BusPhase::Transfer => "transfer",
        }
    }
}

impl fmt::Display for BusPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a bus monitor (a diagnostic slave) can read at any instant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MonitorSnapshot {
    /// Current control phase.
    pub phase: BusPhase,
    /// The current bus master, if a transfer is in progress.
    pub master: Option<AgentId>,
    /// Winner of the most recently settled arbitration (the value the RR
    /// protocol's winner registers latch).
    pub last_winner: Option<AgentId>,
    /// Completed transfers since reset.
    pub transfers: u64,
    /// Completed arbitrations since reset.
    pub arbitrations: u64,
}

/// The arbitration/handover phase machine.
///
/// Overlapped arbitration (the paper's §4.1 timing assumption) is
/// expressed by starting an arbitration *during* [`BusPhase::Transfer`]:
/// the controller tracks the in-flight arbitration alongside the
/// transfer and moves its result into place at handover.
///
/// # Examples
///
/// ```
/// use busarb_bus::{ArbitrationController, BusPhase};
/// use busarb_types::AgentId;
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// let mut ctl = ArbitrationController::new();
/// ctl.start_arbitration()?;               // a request hit an idle bus
/// ctl.settle(AgentId::new(3)?)?;          // the lines settled
/// ctl.handover()?;                        // winner becomes master
/// assert_eq!(ctl.phase(), BusPhase::Transfer);
/// ctl.start_arbitration()?;               // overlapped with the transfer
/// ctl.settle(AgentId::new(1)?)?;
/// ctl.transfer_complete()?;               // back-to-back handover
/// ctl.handover()?;
/// assert_eq!(ctl.snapshot().master, Some(AgentId::new(1)?));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct ArbitrationController {
    phase: BusPhase,
    master: Option<AgentId>,
    /// Winner of an arbitration that has settled but not yet taken over.
    elected: Option<AgentId>,
    /// An arbitration running overlapped with the current transfer.
    overlapped: bool,
    last_winner: Option<AgentId>,
    transfers: u64,
    arbitrations: u64,
}

impl ArbitrationController {
    /// Creates an idle controller.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current phase.
    #[must_use]
    pub fn phase(&self) -> BusPhase {
        self.phase
    }

    /// Reads the monitorable state.
    #[must_use]
    pub fn snapshot(&self) -> MonitorSnapshot {
        MonitorSnapshot {
            phase: self.phase,
            master: self.master,
            last_winner: self.last_winner,
            transfers: self.transfers,
            arbitrations: self.arbitrations,
        }
    }

    fn violation(&self, event: &'static str) -> Error {
        Error::PhaseViolation {
            phase: self.phase.name(),
            event,
        }
    }

    /// A start-arbitration strobe: legal on an idle bus, or overlapped
    /// during a transfer when no other arbitration is pending.
    ///
    /// # Errors
    ///
    /// [`Error::PhaseViolation`] if an arbitration is already in flight
    /// or settled-and-waiting.
    pub fn start_arbitration(&mut self) -> Result<(), Error> {
        match self.phase {
            BusPhase::Idle => {
                self.phase = BusPhase::Arbitrating;
                Ok(())
            }
            BusPhase::Transfer if !self.overlapped && self.elected.is_none() => {
                self.overlapped = true;
                Ok(())
            }
            _ => Err(self.violation("start-arbitration")),
        }
    }

    /// The arbitration lines settle on `winner`.
    ///
    /// # Errors
    ///
    /// [`Error::PhaseViolation`] if no arbitration is in flight.
    pub fn settle(&mut self, winner: AgentId) -> Result<(), Error> {
        let in_flight = self.phase == BusPhase::Arbitrating
            || (self.phase == BusPhase::Transfer && self.overlapped);
        if !in_flight {
            return Err(self.violation("settle"));
        }
        self.arbitrations += 1;
        self.last_winner = Some(winner);
        self.elected = Some(winner);
        if self.phase == BusPhase::Arbitrating {
            self.phase = BusPhase::Settled;
        } else {
            self.overlapped = false;
        }
        Ok(())
    }

    /// The elected winner takes mastership and its transfer begins.
    ///
    /// # Errors
    ///
    /// [`Error::PhaseViolation`] unless a winner is elected and the bus
    /// is free (settled phase, or idle immediately after a transfer
    /// completed with an elected winner waiting).
    pub fn handover(&mut self) -> Result<(), Error> {
        if self.phase != BusPhase::Settled && self.phase != BusPhase::Idle {
            return Err(self.violation("handover"));
        }
        let Some(winner) = self.elected.take() else {
            return Err(self.violation("handover"));
        };
        self.master = Some(winner);
        self.phase = BusPhase::Transfer;
        Ok(())
    }

    /// The current transfer completes; the master releases the bus.
    ///
    /// # Errors
    ///
    /// [`Error::PhaseViolation`] if no transfer is in progress or an
    /// overlapped arbitration is still settling (the bus must wait for
    /// it before anything else can be signalled).
    pub fn transfer_complete(&mut self) -> Result<(), Error> {
        if self.phase != BusPhase::Transfer {
            return Err(self.violation("transfer-complete"));
        }
        self.transfers += 1;
        self.master = None;
        self.phase = if self.overlapped {
            // The overlapped arbitration is still settling: the bus idles
            // until its settle event arrives.
            self.overlapped = false;
            BusPhase::Arbitrating
        } else {
            BusPhase::Idle
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> AgentId {
        AgentId::new(n).unwrap()
    }

    #[test]
    fn full_cycle_with_overlap() {
        let mut ctl = ArbitrationController::new();
        assert_eq!(ctl.phase(), BusPhase::Idle);
        ctl.start_arbitration().unwrap();
        assert_eq!(ctl.phase(), BusPhase::Arbitrating);
        ctl.settle(id(5)).unwrap();
        assert_eq!(ctl.phase(), BusPhase::Settled);
        ctl.handover().unwrap();
        assert_eq!(ctl.phase(), BusPhase::Transfer);
        assert_eq!(ctl.snapshot().master, Some(id(5)));

        // Overlapped arbitration during the transfer.
        ctl.start_arbitration().unwrap();
        ctl.settle(id(2)).unwrap();
        ctl.transfer_complete().unwrap();
        // Elected winner waiting: handover from idle.
        ctl.handover().unwrap();
        let snap = ctl.snapshot();
        assert_eq!(snap.master, Some(id(2)));
        assert_eq!(snap.transfers, 1);
        assert_eq!(snap.arbitrations, 2);
        assert_eq!(snap.last_winner, Some(id(2)));
    }

    #[test]
    fn illegal_events_are_phase_violations() {
        let mut ctl = ArbitrationController::new();
        // Nothing elected: no handover.
        assert!(matches!(
            ctl.handover(),
            Err(Error::PhaseViolation {
                event: "handover",
                ..
            })
        ));
        // No transfer: no completion.
        assert!(ctl.transfer_complete().is_err());
        // No arbitration: no settle.
        assert!(ctl.settle(id(1)).is_err());
        // Double start.
        ctl.start_arbitration().unwrap();
        assert!(ctl.start_arbitration().is_err());
        // Settle, then settle again without a new start.
        ctl.settle(id(1)).unwrap();
        assert!(ctl.settle(id(1)).is_err());
        // Start while one arbitration is settled-and-waiting.
        assert!(ctl.start_arbitration().is_err());
    }

    #[test]
    fn unsettled_overlap_makes_the_bus_wait() {
        let mut ctl = ArbitrationController::new();
        ctl.start_arbitration().unwrap();
        ctl.settle(id(4)).unwrap();
        ctl.handover().unwrap();
        ctl.start_arbitration().unwrap(); // overlapped, not yet settled
        ctl.transfer_complete().unwrap();
        // The bus is in Arbitrating, waiting for the in-flight settle.
        assert_eq!(ctl.phase(), BusPhase::Arbitrating);
        assert!(ctl.handover().is_err());
        ctl.settle(id(1)).unwrap();
        ctl.handover().unwrap();
        assert_eq!(ctl.snapshot().master, Some(id(1)));
    }

    #[test]
    fn drives_a_signal_system_consistently() {
        use crate::signal::{Rr1System, SignalProtocol};
        // The controller and a signal-level protocol agree on the event
        // order for a saturated burst.
        let mut ctl = ArbitrationController::new();
        let mut sys = Rr1System::new(4).unwrap();
        let all: Vec<AgentId> = (1..=4).map(id).collect();
        sys.on_requests(&all);
        // First arbitration on the idle bus.
        ctl.start_arbitration().unwrap();
        let out = sys.arbitrate().unwrap();
        ctl.settle(out.winner).unwrap();
        ctl.handover().unwrap();
        for _ in 0..3 {
            // Overlapped arbitration during each transfer.
            ctl.start_arbitration().unwrap();
            let out = sys.arbitrate().unwrap();
            ctl.settle(out.winner).unwrap();
            ctl.transfer_complete().unwrap();
            ctl.handover().unwrap();
            assert_eq!(ctl.snapshot().master, Some(out.winner));
        }
        ctl.transfer_complete().unwrap();
        assert_eq!(ctl.snapshot().transfers, 4);
        assert_eq!(ctl.snapshot().arbitrations, 4);
        assert_eq!(ctl.phase(), BusPhase::Idle);
    }

    #[test]
    fn random_event_sequences_never_corrupt_state() {
        // Drive the controller with arbitrary event streams; rejected
        // events must leave the state untouched, and the invariants
        // (master set iff Transfer; counters monotone) must always hold.
        let mut lcg = 0x1234_5678_u64;
        let mut next = move || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            (lcg >> 33) as u32
        };
        let mut ctl = ArbitrationController::new();
        let mut last_transfers = 0;
        for _ in 0..10_000 {
            let before = ctl.snapshot();
            let result = match next() % 4 {
                0 => ctl.start_arbitration(),
                1 => ctl.settle(id(next() % 8 + 1)),
                2 => ctl.handover(),
                _ => ctl.transfer_complete(),
            };
            let after = ctl.snapshot();
            if result.is_err() {
                assert_eq!(before, after, "rejected event mutated state");
            }
            assert_eq!(
                after.master.is_some(),
                after.phase == BusPhase::Transfer,
                "master/phase inconsistency"
            );
            assert!(after.transfers >= last_transfers);
            last_transfers = after.transfers;
        }
    }

    #[test]
    fn display_and_snapshot_defaults() {
        assert_eq!(BusPhase::Idle.to_string(), "idle");
        assert_eq!(BusPhase::Transfer.to_string(), "transfer");
        let ctl = ArbitrationController::new();
        let snap = ctl.snapshot();
        assert_eq!(snap.phase, BusPhase::Idle);
        assert_eq!(snap.master, None);
        assert_eq!(snap.last_winner, None);
        assert_eq!(snap.transfers, 0);
    }
}
