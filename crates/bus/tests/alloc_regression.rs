//! Allocation regression: steady-state arbitration must not touch the
//! heap.
//!
//! `ParallelContention::settle` and every signal system's competitor
//! collection run once per simulated arbitration — the hot path of the
//! whole simulator. Each keeps a reusable scratch buffer that grows to
//! the competitor count once and is then reused, so after a warm-up
//! resolve the steady-state path performs zero heap allocations. This
//! test pins that with a counting global allocator.
//!
//! All checks live in ONE `#[test]` function: the test harness runs tests
//! on separate threads, and a concurrently running test would perturb the
//! process-wide allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use busarb_bus::signal::{
    Aap1System, Aap2System, Fcfs1System, Fcfs2System, Rr1System, Rr2System, Rr3System,
    SignalProtocol,
};
use busarb_bus::ParallelContention;
use busarb_types::AgentId;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Minimum allocation count of `f` over a few repetitions. The counter is
/// process-wide, so a test-harness thread allocating concurrently can leak
/// a spurious count into one window; a genuine steady-state allocation in
/// `f` shows up in **every** window, so the minimum isolates it.
fn steady_allocations_in(mut f: impl FnMut()) -> usize {
    (0..3)
        .map(|_| {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            f();
            ALLOCATIONS.load(Ordering::Relaxed) - before
        })
        .min()
        .expect("non-empty repetition count")
}

/// Warms a signal system (the scratch buffer grows to the largest
/// competitor set it sees — for the AAP systems that takes a full batch
/// cycle, since the first batch can be a single agent), then counts
/// allocations across a saturated grant loop in which every winner
/// immediately re-requests.
fn steady_state_allocations(sys: &mut dyn SignalProtocol, n: u32, grants: usize) -> usize {
    let ids: Vec<AgentId> = AgentId::all(n).collect();
    sys.on_requests(&ids);
    for _ in 0..2 * n {
        let out = sys.arbitrate().expect("saturated system grants");
        sys.on_requests(&[out.winner]);
    }
    steady_allocations_in(|| {
        for _ in 0..grants {
            let out = sys.arbitrate().expect("saturated system grants");
            sys.on_requests(&[out.winner]);
        }
    })
}

#[test]
fn steady_state_arbitration_does_not_allocate() {
    // Raw settle dynamics: after one warm-up resolve the scratch buffer
    // holds enough capacity for any same-size competitor set.
    let arbiter = ParallelContention::new(7);
    let sets: Vec<Vec<u64>> = (0..64u64)
        .map(|i| vec![i & 0x7f, (i * 37) & 0x7f, (i * 91) & 0x7f])
        .collect();
    let _ = arbiter.resolve(&sets[0]);
    let allocs = steady_allocations_in(|| {
        for set in &sets {
            let _ = arbiter.resolve(set);
        }
    });
    assert_eq!(allocs, 0, "ParallelContention::resolve allocated");

    // Every signal-level protocol system, saturated at 32 agents.
    let n = 32;
    let mut systems: Vec<Box<dyn SignalProtocol>> = vec![
        Box::new(Rr1System::new(n).unwrap()),
        Box::new(Rr2System::new(n).unwrap()),
        Box::new(Rr3System::new(n).unwrap()),
        Box::new(Fcfs1System::new(n).unwrap()),
        Box::new(Fcfs2System::new(n).unwrap()),
        Box::new(Aap1System::new(n).unwrap()),
        Box::new(Aap2System::new(n).unwrap()),
    ];
    for sys in &mut systems {
        let name = sys.name();
        let allocs = steady_state_allocations(sys.as_mut(), n, 256);
        assert_eq!(allocs, 0, "{name}: steady-state arbitration allocated");
    }
}
