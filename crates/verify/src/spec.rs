//! Per-protocol invariant specifications.
//!
//! The bounds mirror the catalogue proved in the paper and pinned by the
//! randomized liveness suite (`tests/liveness.rs`); here they are checked
//! *exhaustively* over every reachable state instead of sampled.

use busarb_core::ProtocolKind;

/// FIFO discipline an FCFS-family protocol must obey, expressed against
/// the checker's own arrival bookkeeping.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fifo {
    /// No ordering guarantee beyond the bypass bound.
    None,
    /// The winner must come from the earliest-arrival cohort; within the
    /// cohort the highest identity wins (FCFS-2, central FCFS: same-window
    /// ties fall back to static-identity maximum).
    EarliestBatchDescId,
    /// The winner must come from the earliest-arrival cohort; within the
    /// cohort the lowest identity wins (ticket FCFS: tickets are drawn in
    /// injection order, which is ascending identity).
    EarliestBatchAscId,
    /// The winner must come from the earliest-arrival cohort, in any order
    /// (hybrid: FCFS across windows, round robin within one).
    EarliestBatchOnly,
}

/// The invariants checked for one protocol.
#[derive(Clone, Debug)]
pub struct Spec {
    /// Maximum number of grants to other agents while one request waits
    /// (`None` = the protocol is allowed to starve, e.g. fixed priority).
    pub bypass_bound: Option<u64>,
    /// FIFO discipline, if any.
    pub fifo: Fifo,
    /// Check the FCFS-1 coarse-counter semantics: the counter equals the
    /// number of arbitrations lost since arrival, never wraps at one
    /// outstanding request per agent, and the winner maximizes
    /// `(counter, identity)`.
    pub fcfs1_counters: bool,
    /// Check the RR-3 empty-arbitration recovery: the wraparound happens
    /// exactly when no requester is below the winner register, and the
    /// register always ends at the broadcast winner.
    pub rr3_recovery: bool,
}

impl Spec {
    /// The invariant set for `kind` at `n` agents.
    #[must_use]
    pub fn for_kind(kind: ProtocolKind, n: u32) -> Spec {
        let scan = Some(u64::from(n - 1));
        match kind {
            ProtocolKind::FixedPriority => Spec {
                bypass_bound: None,
                fifo: Fifo::None,
                fcfs1_counters: false,
                rr3_recovery: false,
            },
            ProtocolKind::AssuredAccessIdleBatch
            | ProtocolKind::AssuredAccessFairnessRelease
            | ProtocolKind::AssuredAccessClosedBatch => Spec {
                // The victim may just miss one batch, then waits out one
                // full batch of everyone else.
                bypass_bound: Some(2 * u64::from(n - 1)),
                fifo: Fifo::None,
                fcfs1_counters: false,
                rr3_recovery: false,
            },
            ProtocolKind::RoundRobin => Spec {
                bypass_bound: scan,
                fifo: Fifo::None,
                fcfs1_counters: false,
                rr3_recovery: true,
            },
            ProtocolKind::Fcfs1 => Spec {
                bypass_bound: scan,
                fifo: Fifo::None,
                fcfs1_counters: true,
                rr3_recovery: false,
            },
            ProtocolKind::Fcfs2 | ProtocolKind::CentralFcfs => Spec {
                bypass_bound: scan,
                fifo: Fifo::EarliestBatchDescId,
                fcfs1_counters: false,
                rr3_recovery: false,
            },
            ProtocolKind::TicketFcfs => Spec {
                bypass_bound: scan,
                fifo: Fifo::EarliestBatchAscId,
                fcfs1_counters: false,
                rr3_recovery: false,
            },
            ProtocolKind::Hybrid => Spec {
                bypass_bound: scan,
                fifo: Fifo::EarliestBatchOnly,
                fcfs1_counters: false,
                rr3_recovery: false,
            },
            ProtocolKind::CentralRoundRobin
            | ProtocolKind::Adaptive
            | ProtocolKind::RotatingRr => Spec {
                bypass_bound: scan,
                fifo: Fifo::None,
                fcfs1_counters: false,
                rr3_recovery: false,
            },
            // `ProtocolKind` is non-exhaustive; a kind added without an
            // invariant set here must fail loudly.
            other => unimplemented!("no invariant spec for {other}"),
        }
    }
}
