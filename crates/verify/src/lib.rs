//! Exhaustive bounded model checking for the arbitration protocol family.
//!
//! For each [`ProtocolKind`](busarb_core::ProtocolKind) the checker builds
//! a *lockstep group* — the scheduling-level arbiter(s) from `busarb-core`
//! plus the signal-level register model(s) from `busarb_bus::signal` where
//! they exist — and explores every reachable state of the group under
//! every request-arrival pattern up to a configurable depth. Per
//! transition it checks:
//!
//! * **grant safety** — the winner was an actual competitor;
//! * **work conservation** — pending requests always produce a grant;
//! * **abstract/signal equivalence** — every group member grants the same
//!   agent;
//! * **bounded bypass** — a waiting request is overtaken at most `N − 1`
//!   times (round robin, FCFS family) or `2(N − 1)` times (assured
//!   access); fixed priority is exempt (it is allowed to starve);
//! * **FIFO order** — FCFS-2/central FCFS/ticket FCFS serve the earliest
//!   cohort with their respective hardware tie rules;
//! * **FCFS-1 counter semantics** — the waiting-time counter equals the
//!   arbitrations lost since arrival and never wraps at the default width;
//! * **RR-3 recovery** — the empty-arbitration wraparound happens exactly
//!   when no requester is below the winner register.
//!
//! States are deduplicated on normalized fingerprints (see
//! `busarb_types::fingerprint` and the `verify_signature` methods on each
//! protocol type), so the search covers behaviors, not schedules. The
//! first counterexample found is minimal in schedule length thanks to BFS
//! order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod export;
pub mod model;
pub mod spec;

pub use checker::{CheckConfig, CheckReport, TraceStep, Violation};
pub use export::{violation_to_value, COUNTEREXAMPLE_SCHEMA};
pub use model::{build_group, ModelGrant, VerifyTarget};
pub use spec::{Fifo, Spec};

use busarb_core::ProtocolKind;
use busarb_types::Error;

/// Checks one protocol kind at system size `n`.
///
/// # Errors
///
/// Propagates model construction errors (e.g. invalid agent counts).
pub fn check_kind(kind: ProtocolKind, n: u32, cfg: &CheckConfig) -> Result<CheckReport, Error> {
    let group = model::build_group(kind, n)?;
    let spec = Spec::for_kind(kind, n);
    Ok(checker::check_group(
        &kind.to_string(),
        n,
        group,
        &spec,
        cfg,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use busarb_types::{AgentId, AgentSet, Time};

    /// A deliberately unfair mutant: claims to be round robin but always
    /// grants the highest requesting identity (fixed-priority behavior).
    /// The checker must refute it with a minimal trace.
    #[derive(Clone)]
    struct MutantRr {
        requesting: AgentSet,
    }

    impl VerifyTarget for MutantRr {
        fn label(&self) -> &'static str {
            "mutant-rr"
        }

        fn inject(&mut self, _now: Time, batch: &[AgentId]) {
            for &a in batch {
                self.requesting.insert(a);
            }
        }

        fn arbitrate(&mut self, _now: Time) -> Option<ModelGrant> {
            let winner = self.requesting.iter().max_by_key(|a| a.get())?;
            self.requesting.remove(winner);
            Some(ModelGrant {
                winner,
                arbitrations: 1,
            })
        }

        fn signature(&self, out: &mut Vec<u64>) {
            busarb_types::fingerprint::push_set(out, self.requesting);
        }

        fn clone_box(&self) -> Box<dyn VerifyTarget> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn injected_fairness_bug_is_caught_with_minimal_trace() {
        let n = 3;
        let spec = Spec {
            bypass_bound: Some(u64::from(n - 1)),
            fifo: Fifo::None,
            fcfs1_counters: false,
            rr3_recovery: false,
        };
        let group: Vec<Box<dyn VerifyTarget>> = vec![Box::new(MutantRr {
            requesting: AgentSet::new(),
        })];
        let report = checker::check_group("mutant-rr", n, group, &spec, &CheckConfig::default());
        let violation = report.violation.expect("the mutant must be refuted");
        assert_eq!(violation.invariant, "bounded bypass");
        // Minimal schedule: everyone requests, then agent 3 re-requests
        // and wins twice more — agent 1 is bypassed 3 > 2 times. That
        // takes exactly 3 steps; BFS must not return a longer trace.
        assert_eq!(violation.trace.len(), 3, "{violation}");
        assert!(violation.trace.iter().all(|s| s.arbitrated));
        // The rendered trace carries the bus-line state.
        assert_eq!(violation.trace[0].request_lines, 0b111);
    }

    #[test]
    fn real_round_robin_passes_where_the_mutant_fails() {
        let cfg = CheckConfig {
            depth: 4,
            ..CheckConfig::default()
        };
        let report = check_kind(busarb_core::ProtocolKind::RoundRobin, 3, &cfg)
            .expect("valid system size");
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(!report.truncated);
        assert!(report.states > 1);
        assert!(report.grants > 0);
    }
}
