//! Lockstep model wrappers.
//!
//! The checker explores one *group* of models per protocol: the
//! scheduling-level arbiter(s) from `busarb-core` plus, where one exists,
//! the signal-level register model from `busarb_bus::signal`. Every member
//! of a group sees the identical injection/arbitration schedule and must
//! produce the identical grant sequence; the group's concatenated state
//! fingerprints form the node identity in the reachability graph.

use busarb_bus::signal::{
    Aap1System, Aap2System, Fcfs1System, Fcfs2System, Rr1System, Rr2System, Rr3System,
    SignalProtocol,
};
use busarb_core::{
    AdaptiveArbiter, Arbiter, AssuredAccess, BatchingRule, CentralFcfs, CentralRoundRobin,
    CounterStrategy, DistributedFcfs, DistributedRoundRobin, FixedPriority, HybridRrFcfs,
    ProtocolKind, RotatingPriority, RrImplementation, TicketFcfs,
};
use busarb_types::{AgentId, Error, Priority, Time};

/// One grant as reported by a model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ModelGrant {
    /// The agent granted bus mastership.
    pub winner: AgentId,
    /// Line arbitrations consumed (2 on an RR-3 wraparound or an AAP-2
    /// fairness release).
    pub arbitrations: u32,
}

/// A protocol implementation the checker can drive and fingerprint.
///
/// The optional observation methods expose protocol-internal registers to
/// the protocol-specific invariants; a model returns `None` for registers
/// it does not have.
pub trait VerifyTarget {
    /// Display label used in counterexample traces.
    fn label(&self) -> &'static str;

    /// Injects one batch of same-window requests at `now`.
    fn inject(&mut self, now: Time, batch: &[AgentId]);

    /// Resolves one arbitration at `now`.
    fn arbitrate(&mut self, now: Time) -> Option<ModelGrant>;

    /// Appends this model's normalized state fingerprint to `out`.
    fn signature(&self, out: &mut Vec<u64>);

    /// Clones the model behind the trait object.
    fn clone_box(&self) -> Box<dyn VerifyTarget>;

    /// The round-robin winner register, if the protocol has one.
    fn last_winner(&self) -> Option<u32> {
        None
    }

    /// Empty (wraparound) arbitrations performed so far, for RR-3 models.
    fn empty_arbitrations(&self) -> Option<u64> {
        None
    }

    /// One agent's waiting-time counter, for FCFS models.
    fn counter_of(&self, _agent: AgentId) -> Option<u64> {
        None
    }
}

impl Clone for Box<dyn VerifyTarget> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Wraps a scheduling-level [`Arbiter`] as a [`VerifyTarget`].
macro_rules! arbiter_model {
    ($name:ident, $inner:ty $(, $extra:item)*) => {
        #[doc = concat!("Lockstep wrapper driving [`", stringify!($inner), "`].")]
        #[derive(Clone)]
        pub struct $name {
            inner: $inner,
            label: &'static str,
        }

        impl $name {
            /// Wraps `inner`; `label` names it in counterexample traces.
            pub fn new(inner: $inner, label: &'static str) -> Self {
                Self { inner, label }
            }
        }

        impl VerifyTarget for $name {
            fn label(&self) -> &'static str {
                self.label
            }

            fn inject(&mut self, now: Time, batch: &[AgentId]) {
                for &a in batch {
                    self.inner.on_request(now, a, Priority::Ordinary);
                }
            }

            fn arbitrate(&mut self, now: Time) -> Option<ModelGrant> {
                self.inner.arbitrate(now).map(|g| ModelGrant {
                    winner: g.agent,
                    arbitrations: g.arbitrations,
                })
            }

            fn signature(&self, out: &mut Vec<u64>) {
                self.inner.verify_signature(out);
            }

            fn clone_box(&self) -> Box<dyn VerifyTarget> {
                Box::new(self.clone())
            }

            $($extra)*
        }
    };
}

/// Wraps a signal-level [`SignalProtocol`] as a [`VerifyTarget`].
macro_rules! signal_model {
    ($name:ident, $inner:ty $(, $extra:item)*) => {
        #[doc = concat!("Lockstep wrapper driving [`", stringify!($inner), "`].")]
        #[derive(Clone)]
        pub struct $name {
            inner: $inner,
            label: &'static str,
        }

        impl $name {
            /// Wraps `inner`; `label` names it in counterexample traces.
            pub fn new(inner: $inner, label: &'static str) -> Self {
                Self { inner, label }
            }
        }

        impl VerifyTarget for $name {
            fn label(&self) -> &'static str {
                self.label
            }

            fn inject(&mut self, _now: Time, batch: &[AgentId]) {
                self.inner.on_requests(batch);
            }

            fn arbitrate(&mut self, _now: Time) -> Option<ModelGrant> {
                self.inner.arbitrate().map(|o| ModelGrant {
                    winner: o.winner,
                    arbitrations: o.arbitrations,
                })
            }

            fn signature(&self, out: &mut Vec<u64>) {
                self.inner.verify_signature(out);
            }

            fn clone_box(&self) -> Box<dyn VerifyTarget> {
                Box::new(self.clone())
            }

            $($extra)*
        }
    };
}

arbiter_model!(FixedPriorityModel, FixedPriority);
arbiter_model!(AssuredAccessModel, AssuredAccess);
arbiter_model!(
    RoundRobinModel,
    DistributedRoundRobin,
    fn last_winner(&self) -> Option<u32> {
        Some(self.inner.last_winner())
    },
    fn empty_arbitrations(&self) -> Option<u64> {
        (self.inner.implementation() == RrImplementation::NoExtraLine)
            .then(|| self.inner.empty_arbitrations())
    }
);
arbiter_model!(
    FcfsModel,
    DistributedFcfs,
    fn counter_of(&self, agent: AgentId) -> Option<u64> {
        self.inner.counter(agent)
    }
);
arbiter_model!(CentralRrModel, CentralRoundRobin);
arbiter_model!(CentralFcfsModel, CentralFcfs);
arbiter_model!(
    HybridModel,
    HybridRrFcfs,
    fn last_winner(&self) -> Option<u32> {
        Some(self.inner.last_winner())
    }
);
arbiter_model!(AdaptiveModel, AdaptiveArbiter);
arbiter_model!(RotatingModel, RotatingPriority);
arbiter_model!(TicketModel, TicketFcfs);

signal_model!(
    Rr1Model,
    Rr1System,
    fn last_winner(&self) -> Option<u32> {
        Some(self.inner.last_winner())
    }
);
signal_model!(
    Rr2Model,
    Rr2System,
    fn last_winner(&self) -> Option<u32> {
        Some(self.inner.last_winner())
    }
);
signal_model!(
    Rr3Model,
    Rr3System,
    fn last_winner(&self) -> Option<u32> {
        Some(self.inner.last_winner())
    },
    fn empty_arbitrations(&self) -> Option<u64> {
        Some(self.inner.empty_arbitrations())
    }
);
signal_model!(
    Fcfs1SignalModel,
    Fcfs1System,
    fn counter_of(&self, agent: AgentId) -> Option<u64> {
        Some(self.inner.counter(agent))
    }
);
signal_model!(
    Fcfs2SignalModel,
    Fcfs2System,
    fn counter_of(&self, agent: AgentId) -> Option<u64> {
        Some(self.inner.counter(agent))
    }
);
signal_model!(Aap1Model, Aap1System);
signal_model!(Aap2Model, Aap2System);

/// Builds the lockstep model group for one protocol kind.
///
/// Protocols with a signal-level implementation get every level in the
/// group (the distributed round robin gets all three implementations at
/// both levels); the rest are checked at the scheduling level only.
///
/// # Errors
///
/// Propagates construction errors (e.g. invalid agent counts).
pub fn build_group(kind: ProtocolKind, n: u32) -> Result<Vec<Box<dyn VerifyTarget>>, Error> {
    Ok(match kind {
        ProtocolKind::FixedPriority => vec![Box::new(FixedPriorityModel::new(
            FixedPriority::new(n)?,
            "fixed-priority",
        ))],
        ProtocolKind::AssuredAccessIdleBatch => vec![
            Box::new(AssuredAccessModel::new(
                AssuredAccess::new(n, BatchingRule::IdleBatch)?,
                "aap-1 (abstract)",
            )),
            Box::new(Aap1Model::new(Aap1System::new(n)?, "aap-1 (signal)")),
        ],
        ProtocolKind::AssuredAccessFairnessRelease => vec![
            Box::new(AssuredAccessModel::new(
                AssuredAccess::new(n, BatchingRule::FairnessRelease)?,
                "aap-2 (abstract)",
            )),
            Box::new(Aap2Model::new(Aap2System::new(n)?, "aap-2 (signal)")),
        ],
        ProtocolKind::AssuredAccessClosedBatch => vec![Box::new(AssuredAccessModel::new(
            AssuredAccess::new(n, BatchingRule::ClosedBatch)?,
            "aap-2m (abstract)",
        ))],
        ProtocolKind::RoundRobin => vec![
            Box::new(RoundRobinModel::new(
                DistributedRoundRobin::new(n)?,
                "rr-1 (abstract)",
            )),
            Box::new(RoundRobinModel::new(
                DistributedRoundRobin::with_implementation(n, RrImplementation::LowRequestLine)?,
                "rr-2 (abstract)",
            )),
            Box::new(RoundRobinModel::new(
                DistributedRoundRobin::with_implementation(n, RrImplementation::NoExtraLine)?,
                "rr-3 (abstract)",
            )),
            Box::new(Rr1Model::new(Rr1System::new(n)?, "rr-1 (signal)")),
            Box::new(Rr2Model::new(Rr2System::new(n)?, "rr-2 (signal)")),
            Box::new(Rr3Model::new(Rr3System::new(n)?, "rr-3 (signal)")),
        ],
        ProtocolKind::Fcfs1 => vec![
            Box::new(FcfsModel::new(
                DistributedFcfs::new(n, CounterStrategy::PerLostArbitration)?,
                "fcfs-1 (abstract)",
            )),
            Box::new(Fcfs1SignalModel::new(
                Fcfs1System::new(n)?,
                "fcfs-1 (signal)",
            )),
        ],
        ProtocolKind::Fcfs2 => vec![
            Box::new(FcfsModel::new(
                DistributedFcfs::new(n, CounterStrategy::PerArrival)?,
                "fcfs-2 (abstract)",
            )),
            Box::new(Fcfs2SignalModel::new(
                Fcfs2System::new(n)?,
                "fcfs-2 (signal)",
            )),
        ],
        ProtocolKind::CentralRoundRobin => vec![Box::new(CentralRrModel::new(
            CentralRoundRobin::new(n)?,
            "central-rr",
        ))],
        ProtocolKind::CentralFcfs => vec![Box::new(CentralFcfsModel::new(
            CentralFcfs::new(n)?,
            "central-fcfs",
        ))],
        ProtocolKind::Hybrid => vec![Box::new(HybridModel::new(HybridRrFcfs::new(n)?, "hybrid"))],
        ProtocolKind::Adaptive => vec![Box::new(AdaptiveModel::new(
            AdaptiveArbiter::new(n)?,
            "adaptive",
        ))],
        ProtocolKind::RotatingRr => vec![Box::new(RotatingModel::new(
            RotatingPriority::new(n)?,
            "rotating-rr",
        ))],
        ProtocolKind::TicketFcfs => vec![Box::new(TicketModel::new(
            TicketFcfs::new(n)?,
            "ticket-fcfs",
        ))],
        // `ProtocolKind` is non-exhaustive; a kind added without a model
        // group here must fail loudly, not silently skip verification.
        other => unimplemented!("no verifier model group for {other}"),
    })
}
