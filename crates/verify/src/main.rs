//! Command-line driver for the bounded model checker.
//!
//! ```text
//! cargo run -p verify --release -- --all
//! cargo run -p verify --release -- --protocol rr --protocol fcfs-2 --agents 4 --depth 8
//! cargo run -p verify --release -- --all --bench-out BENCH_verify.json
//! ```
//!
//! Exit code 0 means every requested check passed exhaustively; 1 means a
//! violation was found (the minimal counterexample is printed) or a state
//! cap truncated a search; 2 means bad usage.

use std::process::ExitCode;
use std::time::Instant;

use busarb_core::ProtocolKind;
use serde::Serialize;
use verify::{check_kind, CheckConfig};

struct Args {
    kinds: Vec<ProtocolKind>,
    min_agents: u32,
    max_agents: u32,
    depth: usize,
    max_states: usize,
    bench_out: Option<std::path::PathBuf>,
    trace_out: Option<std::path::PathBuf>,
}

fn usage() -> String {
    let slugs: Vec<String> = ProtocolKind::all().iter().map(ToString::to_string).collect();
    format!(
        "usage: verify [--all | --protocol SLUG ...] [options]\n\
         \n\
         options:\n\
         \x20 --all               check every protocol\n\
         \x20 --protocol SLUG     check one protocol (repeatable)\n\
         \x20 --agents N          check a single system size N\n\
         \x20 --max-agents N      check sizes 1..=N (default 4)\n\
         \x20 --depth D           schedule length bound (default 6)\n\
         \x20 --max-states S      state cap per check (default 4000000)\n\
         \x20 --bench-out PATH    write per-protocol wall-clock results as JSON\n\
         \x20 --trace-out DIR     write each counterexample trace to\n\
         \x20                     DIR/<protocol>-n<agents>.json (busarb-counterexample/1)\n\
         \x20 --list              list protocol slugs\n\
         \n\
         protocols: {}",
        slugs.join(", ")
    )
}

fn parse_kind(slug: &str) -> Option<ProtocolKind> {
    ProtocolKind::all()
        .iter()
        .copied()
        .find(|k| k.to_string() == slug)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        kinds: Vec::new(),
        min_agents: 1,
        max_agents: 4,
        depth: 6,
        max_states: 4_000_000,
        bench_out: None,
        trace_out: None,
    };
    let mut all = false;
    let mut single_size = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--all" => all = true,
            "--protocol" => {
                let slug = value("--protocol")?;
                let kind =
                    parse_kind(&slug).ok_or_else(|| format!("unknown protocol '{slug}'"))?;
                args.kinds.push(kind);
            }
            "--agents" => {
                single_size = Some(
                    value("--agents")?
                        .parse::<u32>()
                        .map_err(|e| format!("--agents: {e}"))?,
                );
            }
            "--max-agents" => {
                args.max_agents = value("--max-agents")?
                    .parse()
                    .map_err(|e| format!("--max-agents: {e}"))?;
            }
            "--depth" => {
                args.depth = value("--depth")?
                    .parse()
                    .map_err(|e| format!("--depth: {e}"))?;
            }
            "--max-states" => {
                args.max_states = value("--max-states")?
                    .parse()
                    .map_err(|e| format!("--max-states: {e}"))?;
            }
            "--bench-out" => args.bench_out = Some(value("--bench-out")?.into()),
            "--trace-out" => args.trace_out = Some(value("--trace-out")?.into()),
            "--list" => {
                for kind in ProtocolKind::all() {
                    println!("{kind}");
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if all {
        args.kinds = ProtocolKind::all().to_vec();
    }
    if args.kinds.is_empty() {
        return Err("nothing to check: pass --all or --protocol".to_string());
    }
    if let Some(n) = single_size {
        args.min_agents = n;
        args.max_agents = n;
    }
    if args.min_agents == 0 || args.max_agents < args.min_agents {
        return Err("bad agent range".to_string());
    }
    Ok(args)
}

#[derive(Serialize)]
struct BenchRow {
    protocol: String,
    agents: u32,
    depth: usize,
    states: usize,
    transitions: u64,
    grants: u64,
    millis: f64,
}

#[derive(Serialize)]
struct BenchReport {
    description: &'static str,
    max_agents: u32,
    depth: usize,
    rows: Vec<BenchRow>,
}

fn export_counterexample(
    dir: &std::path::Path,
    report: &verify::CheckReport,
    violation: &verify::Violation,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}-n{}.json", report.protocol, report.agents));
    let value = verify::violation_to_value(report, violation);
    let json = serde_json::to_string_pretty(&value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&path, json + "\n")?;
    eprintln!("  counterexample written to {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let cfg = CheckConfig {
        depth: args.depth,
        max_states: args.max_states,
    };
    let mut rows = Vec::new();
    let mut failed = false;
    for &kind in &args.kinds {
        for n in args.min_agents..=args.max_agents {
            let start = Instant::now();
            let report = match check_kind(kind, n, &cfg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {kind} at n={n}: {e}");
                    failed = true;
                    continue;
                }
            };
            let millis = start.elapsed().as_secs_f64() * 1e3;
            println!(
                "{:<14} n={n} depth={} states={:<8} transitions={:<9} grants={:<8} {millis:.1}ms",
                report.protocol, report.depth, report.states, report.transitions, report.grants,
            );
            if report.truncated {
                eprintln!(
                    "  TRUNCATED: state cap {} reached; the check is not exhaustive",
                    cfg.max_states
                );
                failed = true;
            }
            if let Some(v) = &report.violation {
                eprintln!("{v}");
                failed = true;
                if let Some(dir) = &args.trace_out {
                    if let Err(e) = export_counterexample(dir, &report, v) {
                        eprintln!("error: cannot export counterexample: {e}");
                    }
                }
            }
            rows.push(BenchRow {
                protocol: report.protocol,
                agents: n,
                depth: report.depth,
                states: report.states,
                transitions: report.transitions,
                grants: report.grants,
                millis,
            });
        }
    }
    if let Some(path) = &args.bench_out {
        let report = BenchReport {
            description: "bounded model checker wall-clock per protocol \
                          (cargo run -p verify --release)",
            max_agents: args.max_agents,
            depth: args.depth,
            rows,
        };
        match serde_json::to_string_pretty(&report) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json + "\n") {
                    eprintln!("error: cannot write {}: {e}", path.display());
                    return ExitCode::from(1);
                }
                println!("wrote {}", path.display());
            }
            Err(e) => {
                eprintln!("error: serializing bench report: {e}");
                return ExitCode::from(1);
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
