//! The bounded model checker.
//!
//! Breadth-first search over every reachable arbitration state. One *step*
//! of the transition system injects a batch of requests from some subset
//! of the currently idle agents (all within the same sensing window) and
//! then runs zero or one arbitrations; pure no-op steps (empty batch, no
//! arbitration) are skipped. States are deduplicated on the concatenated
//! normalized fingerprints of every model in the group plus the checker's
//! own invariant bookkeeping, so the search is exhaustive over *behaviors*
//! rather than schedules. BFS order makes the first counterexample found
//! minimal in the number of steps.

use std::collections::{HashSet, VecDeque};

use busarb_types::fingerprint::{push_ranks, push_set};
use busarb_types::{AgentId, AgentSet, Time};

use crate::model::VerifyTarget;
use crate::spec::{Fifo, Spec};

/// A successfully applied action: the advanced model group, the updated
/// invariant bookkeeping, and the grants produced this step.
type Applied = (Vec<Box<dyn VerifyTarget>>, Book, u64);

/// An invariant breach before trace reconstruction: the invariant's name
/// and the human-readable detail.
type Breach = (&'static str, String);

/// Search limits.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    /// Maximum schedule length (steps) explored.
    pub depth: usize,
    /// Hard cap on distinct states, as an out-of-memory guard. Hitting it
    /// marks the report as truncated (the search is no longer exhaustive).
    pub max_states: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            depth: 6,
            max_states: 4_000_000,
        }
    }
}

/// Outcome of checking one protocol at one system size.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Protocol slug.
    pub protocol: String,
    /// System size.
    pub agents: u32,
    /// Depth explored.
    pub depth: usize,
    /// Distinct reachable states visited.
    pub states: usize,
    /// Transitions taken (edges explored, including those reaching an
    /// already-visited state).
    pub transitions: u64,
    /// Grants observed across all transitions.
    pub grants: u64,
    /// True when the state cap stopped the search early.
    pub truncated: bool,
    /// The first (minimal) invariant violation, if any.
    pub violation: Option<Violation>,
}

/// A failed invariant plus the minimal schedule reproducing it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: &'static str,
    /// Human-readable description of the failure.
    pub detail: String,
    /// The schedule, step by step, ending at the violating transition.
    pub trace: Vec<TraceStep>,
}

/// One step of a counterexample schedule.
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// Step index (also the injection time).
    pub step: usize,
    /// Identities injected this step (one same-window batch).
    pub injected: Vec<u32>,
    /// Request-line state after injection: bit `i` set means identity
    /// `i + 1` is asserting its bus-request line.
    pub request_lines: u128,
    /// Whether an arbitration ran this step.
    pub arbitrated: bool,
    /// Per-model winner of that arbitration (`None` = model reported no
    /// grant). On an equivalence violation these disagree.
    pub outcomes: Vec<(String, Option<u32>)>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation of {}: {}", self.invariant, self.detail)?;
        writeln!(f, "minimal counterexample ({} steps):", self.trace.len())?;
        for s in &self.trace {
            write!(f, "  step {}: inject {{", s.step)?;
            for (i, a) in s.injected.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, "}} req-lines {:#b}", s.request_lines)?;
            if s.arbitrated {
                write!(f, " arbitrate ->")?;
                for (label, w) in &s.outcomes {
                    match w {
                        Some(w) => write!(f, " {label}: {w};")?,
                        None => write!(f, " {label}: none;")?,
                    }
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Checker-side bookkeeping carried alongside the models. Everything here
/// that can influence a *future* invariant check is folded into the state
/// signature, so deduplication never merges states with different
/// obligations.
#[derive(Clone)]
struct Book {
    outstanding: AgentSet,
    /// Arrival step of each agent's outstanding request (stale once
    /// served; only consulted while outstanding).
    arrival: Vec<u64>,
    /// Grants to other agents since this agent's arrival.
    bypasses: Vec<u64>,
    /// Arbitrations lost since this agent's arrival (the FCFS-1 counter
    /// reference).
    losses: Vec<u64>,
}

impl Book {
    fn new(n: u32) -> Book {
        Book {
            outstanding: AgentSet::new(),
            arrival: vec![0; n as usize],
            bypasses: vec![0; n as usize],
            losses: vec![0; n as usize],
        }
    }
}

struct ArenaEntry {
    parent: usize,
    mask: u128,
    arbitrate: bool,
}

struct State {
    models: Vec<Box<dyn VerifyTarget>>,
    book: Book,
    step: usize,
    node: usize,
}

/// Checks one lockstep model group against `spec`, exploring every
/// request-arrival pattern up to `cfg.depth` steps.
pub fn check_group(
    protocol: &str,
    n: u32,
    group: Vec<Box<dyn VerifyTarget>>,
    spec: &Spec,
    cfg: &CheckConfig,
) -> CheckReport {
    let pristine: Vec<Box<dyn VerifyTarget>> = group.iter().map(|m| m.clone_box()).collect();
    let book0 = Book::new(n);
    let mut report = CheckReport {
        protocol: protocol.to_string(),
        agents: n,
        depth: cfg.depth,
        states: 1,
        transitions: 0,
        grants: 0,
        truncated: false,
        violation: None,
    };

    let mut visited: HashSet<Vec<u64>> = HashSet::new();
    visited.insert(state_signature(&group, &book0, spec));
    let mut arena = vec![ArenaEntry {
        parent: usize::MAX,
        mask: 0,
        arbitrate: false,
    }];
    let mut queue = VecDeque::new();
    queue.push_back(State {
        models: group,
        book: book0,
        step: 0,
        node: 0,
    });

    let full: u128 = if n == 128 { u128::MAX } else { (1u128 << n) - 1 };
    while let Some(st) = queue.pop_front() {
        if st.step >= cfg.depth {
            continue;
        }
        let idle = full & !st.book.outstanding.bits();
        let mut sub = idle;
        loop {
            for arbitrate in [false, true] {
                if sub == 0 && !arbitrate {
                    continue; // pure no-op step
                }
                report.transitions += 1;
                let models = st.models.clone();
                let book = st.book.clone();
                match apply(models, book, st.step, sub, arbitrate, spec, n) {
                    Err((invariant, detail)) => {
                        report.violation = Some(Violation {
                            invariant,
                            detail,
                            trace: rebuild_trace(&pristine, &arena, st.node, sub, arbitrate, n),
                        });
                        return report;
                    }
                    Ok((models, book, granted)) => {
                        report.grants += granted;
                        let sig = state_signature(&models, &book, spec);
                        if visited.insert(sig) {
                            if report.states >= cfg.max_states {
                                report.truncated = true;
                            } else {
                                arena.push(ArenaEntry {
                                    parent: st.node,
                                    mask: sub,
                                    arbitrate,
                                });
                                report.states += 1;
                                queue.push_back(State {
                                    models,
                                    book,
                                    step: st.step + 1,
                                    node: arena.len() - 1,
                                });
                            }
                        }
                    }
                }
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & idle;
        }
    }
    report
}

fn batch_of(mask: u128, n: u32) -> Vec<AgentId> {
    AgentId::all(n)
        .filter(|a| mask & (1 << (a.get() - 1)) != 0)
        .collect()
}

/// Applies one transition, checking every invariant along the way.
#[allow(clippy::too_many_lines)]
fn apply(
    mut models: Vec<Box<dyn VerifyTarget>>,
    mut book: Book,
    step: usize,
    mask: u128,
    arbitrate: bool,
    spec: &Spec,
    n: u32,
) -> Result<Applied, Breach> {
    let now = Time::from(step as f64);
    let batch = batch_of(mask, n);
    for m in &mut models {
        m.inject(now, &batch);
    }
    for &a in &batch {
        book.outstanding.insert(a);
        book.arrival[a.index()] = step as u64;
        book.bypasses[a.index()] = 0;
        book.losses[a.index()] = 0;
    }
    let mut granted = 0;
    if arbitrate {
        let pre_registers: Vec<Option<u32>> = models.iter().map(|m| m.last_winner()).collect();
        let outcomes: Vec<Option<crate::model::ModelGrant>> =
            models.iter_mut().map(|m| m.arbitrate(now)).collect();

        // Cross-level equivalence: every member of the group must report
        // the same winner (or all report no grant).
        let reference = outcomes[0].map(|g| g.winner);
        for (i, o) in outcomes.iter().enumerate().skip(1) {
            if o.map(|g| g.winner) != reference {
                return Err((
                    "abstract/signal equivalence",
                    format!(
                        "{} granted {:?} but {} granted {:?}",
                        models[0].label(),
                        reference.map(AgentId::get),
                        models[i].label(),
                        o.map(|g| g.winner.get()),
                    ),
                ));
            }
        }

        match outcomes[0] {
            None => {
                // Work conservation: an arbitration with pending requests
                // always produces a grant.
                if !book.outstanding.is_empty() {
                    return Err((
                        "work conservation",
                        format!(
                            "no grant produced with {} request(s) pending",
                            book.outstanding.len()
                        ),
                    ));
                }
            }
            Some(grant) => {
                granted = 1;
                let winner = grant.winner;

                // Grant safety: the winner was an actual competitor.
                if !book.outstanding.contains(winner) {
                    return Err((
                        "grant safety",
                        format!("winner {winner} has no outstanding request"),
                    ));
                }

                check_fifo(spec, &book, winner)?;
                if spec.fcfs1_counters {
                    check_fcfs1_order(&book, winner)?;
                }
                if spec.rr3_recovery {
                    check_rr3_recovery(&models, &pre_registers, &outcomes, &book, winner)?;
                }
                check_empty_arbitration_stats(&models)?;

                // Update bookkeeping and enforce the bypass bound.
                book.outstanding.remove(winner);
                for a in book.outstanding {
                    book.bypasses[a.index()] += 1;
                    book.losses[a.index()] += 1;
                    if let Some(bound) = spec.bypass_bound {
                        if book.bypasses[a.index()] > bound {
                            return Err((
                                "bounded bypass",
                                format!(
                                    "agent {a} (arrived step {}) bypassed {} times, bound {bound}",
                                    book.arrival[a.index()],
                                    book.bypasses[a.index()],
                                ),
                            ));
                        }
                    }
                }
                if spec.fcfs1_counters {
                    check_fcfs1_counters(&models, &book, n)?;
                }
            }
        }
    }
    Ok((models, book, granted))
}

/// The FIFO disciplines: the winner must come from the earliest-arrival
/// cohort, with the tie rule the protocol's hardware implements.
fn check_fifo(spec: &Spec, book: &Book, winner: AgentId) -> Result<(), (&'static str, String)> {
    if spec.fifo == Fifo::None {
        return Ok(());
    }
    let oldest = book
        .outstanding
        .iter()
        .map(|a| book.arrival[a.index()])
        .min()
        .expect("winner is outstanding");
    let cohort = || {
        book.outstanding
            .iter()
            .filter(|a| book.arrival[a.index()] == oldest)
    };
    let expected = match spec.fifo {
        Fifo::EarliestBatchDescId => cohort().max_by_key(|a| a.get()),
        Fifo::EarliestBatchAscId => cohort().min_by_key(|a| a.get()),
        Fifo::EarliestBatchOnly => {
            if cohort().any(|a| a == winner) {
                Some(winner)
            } else {
                cohort().next()
            }
        }
        Fifo::None => unreachable!(),
    };
    if expected != Some(winner) {
        return Err((
            "FIFO order",
            format!(
                "winner {} but the earliest cohort (arrived step {oldest}) requires {:?}",
                winner.get(),
                expected.map(AgentId::get),
            ),
        ));
    }
    Ok(())
}

/// FCFS-1 grant order: the winner maximizes `(lost arbitrations, id)`.
fn check_fcfs1_order(book: &Book, winner: AgentId) -> Result<(), (&'static str, String)> {
    let best = book
        .outstanding
        .iter()
        .max_by_key(|a| (book.losses[a.index()], a.get()))
        .expect("winner is outstanding");
    if best != winner {
        return Err((
            "fcfs-1 coarse-counter order",
            format!(
                "winner {} but (counter, id) maximum is {} with {} loss(es)",
                winner.get(),
                best.get(),
                book.losses[best.index()],
            ),
        ));
    }
    Ok(())
}

/// FCFS-1 counter semantics: after the losers increment, every counter
/// equals the arbitrations lost since arrival and stays below `n` — the
/// default width never wraps at one outstanding request per agent.
fn check_fcfs1_counters(
    models: &[Box<dyn VerifyTarget>],
    book: &Book,
    n: u32,
) -> Result<(), (&'static str, String)> {
    for m in models {
        for a in book.outstanding {
            let Some(counter) = m.counter_of(a) else {
                continue;
            };
            let losses = book.losses[a.index()];
            if counter != losses {
                return Err((
                    "fcfs-1 counter reset/increment",
                    format!(
                        "{}: agent {} counter {counter} but lost {losses} arbitration(s) \
                         since arrival",
                        m.label(),
                        a.get(),
                    ),
                ));
            }
            if counter >= u64::from(n) {
                return Err((
                    "fcfs-1 counter wrap",
                    format!(
                        "{}: agent {} counter {counter} reached the wrap range at system \
                         size {n}",
                        m.label(),
                        a.get(),
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// RR-3 recovery: the extra (empty) arbitration happens exactly when no
/// requester sits below the winner register, and the register always ends
/// at the broadcast winner.
fn check_rr3_recovery(
    models: &[Box<dyn VerifyTarget>],
    pre_registers: &[Option<u32>],
    outcomes: &[Option<crate::model::ModelGrant>],
    book: &Book,
    winner: AgentId,
) -> Result<(), (&'static str, String)> {
    for (i, m) in models.iter().enumerate() {
        if !m.label().contains("rr-3") {
            continue;
        }
        let register = pre_registers[i].expect("rr-3 models expose the winner register");
        let wrap = !book.outstanding.iter().any(|a| a.get() < register);
        let expected = 1 + u32::from(wrap);
        let got = outcomes[i].expect("equivalence already checked").arbitrations;
        if got != expected {
            return Err((
                "rr-3 empty-arbitration recovery",
                format!(
                    "{}: register {register}, requesters {:?}: expected {expected} \
                     arbitration(s), got {got}",
                    m.label(),
                    book.outstanding.iter().map(AgentId::get).collect::<Vec<_>>(),
                ),
            ));
        }
        if m.last_winner() != Some(winner.get()) {
            return Err((
                "rr-3 empty-arbitration recovery",
                format!(
                    "{}: register holds {:?} after a grant to {}",
                    m.label(),
                    m.last_winner(),
                    winner.get(),
                ),
            ));
        }
    }
    Ok(())
}

/// RR-3 wraparound statistics must agree across levels.
fn check_empty_arbitration_stats(
    models: &[Box<dyn VerifyTarget>],
) -> Result<(), (&'static str, String)> {
    let mut reference: Option<(&'static str, u64)> = None;
    for m in models {
        let Some(count) = m.empty_arbitrations() else {
            continue;
        };
        match reference {
            None => reference = Some((m.label(), count)),
            Some((label, expected)) if expected != count => {
                return Err((
                    "empty-arbitration statistics",
                    format!(
                        "{label} counted {expected} wraparound(s) but {} counted {count}",
                        m.label()
                    ),
                ));
            }
            Some(_) => {}
        }
    }
    Ok(())
}

/// The node identity: every model's normalized fingerprint plus the
/// bookkeeping that feeds future invariant checks.
fn state_signature(models: &[Box<dyn VerifyTarget>], book: &Book, spec: &Spec) -> Vec<u64> {
    let mut sig = Vec::new();
    for m in models {
        m.signature(&mut sig);
        sig.push(u64::MAX); // separator between members
    }
    push_set(&mut sig, book.outstanding);
    if spec.fifo != Fifo::None || spec.fcfs1_counters {
        let arrivals: Vec<u64> = book
            .outstanding
            .iter()
            .map(|a| book.arrival[a.index()])
            .collect();
        push_ranks(&mut sig, &arrivals);
    }
    if spec.bypass_bound.is_some() {
        sig.extend(book.outstanding.iter().map(|a| book.bypasses[a.index()]));
    }
    if spec.fcfs1_counters {
        sig.extend(book.outstanding.iter().map(|a| book.losses[a.index()]));
    }
    sig
}

/// Replays the action chain recorded in the arena to render the trace.
fn rebuild_trace(
    pristine: &[Box<dyn VerifyTarget>],
    arena: &[ArenaEntry],
    node: usize,
    final_mask: u128,
    final_arbitrate: bool,
    n: u32,
) -> Vec<TraceStep> {
    let mut actions = vec![(final_mask, final_arbitrate)];
    let mut cur = node;
    while cur != 0 {
        let e = &arena[cur];
        actions.push((e.mask, e.arbitrate));
        cur = e.parent;
    }
    actions.reverse();

    let mut models: Vec<Box<dyn VerifyTarget>> = pristine.iter().map(|m| m.clone_box()).collect();
    let mut outstanding = AgentSet::new();
    let mut trace = Vec::with_capacity(actions.len());
    for (step, (mask, arbitrate)) in actions.into_iter().enumerate() {
        let now = Time::from(step as f64);
        let batch = batch_of(mask, n);
        for m in &mut models {
            m.inject(now, &batch);
        }
        for &a in &batch {
            outstanding.insert(a);
        }
        let request_lines = outstanding.bits();
        let mut outcomes = Vec::new();
        if arbitrate {
            for m in &mut models {
                let won = m.arbitrate(now).map(|g| g.winner);
                outcomes.push((m.label().to_string(), won.map(AgentId::get)));
            }
            // Track the group's consensus removal so later batches stay
            // legal; on the final (violating) step this no longer matters.
            if let Some((_, Some(w))) = outcomes.first() {
                if let Ok(w) = AgentId::new(*w) {
                    outstanding.remove(w);
                }
            }
        }
        trace.push(TraceStep {
            step,
            injected: batch.iter().map(|a| a.get()).collect(),
            request_lines,
            arbitrated: arbitrate,
            outcomes,
        });
    }
    trace
}
