//! Structured export of counterexample traces.
//!
//! A refuted invariant produces a minimal schedule ([`Violation`]); this
//! module renders it in the same self-describing JSON style as the
//! simulator's `busarb-trace/1` export, so counterexamples can be
//! archived as CI artifacts and diffed across runs. The schema:
//!
//! ```json
//! {"schema":"busarb-counterexample/1","protocol":"rr","agents":3,
//!  "depth":6,"invariant":"bounded bypass","detail":"...",
//!  "trace":[{"step":0,"injected":[1,2,3],"request_lines":"7",
//!            "arbitrated":true,
//!            "outcomes":[{"model":"rr","winner":3}]}]}
//! ```
//!
//! `request_lines` is a `u128` bitmask and JSON numbers are only safe to
//! 2^53, so it is exported as a decimal **string**.
//!
//! The values are hand-assembled (rather than derived) because
//! [`TraceStep::outcomes`] holds tuples with `Option` winners, which the
//! derive surface does not cover; the test below pins the layout by
//! parsing the rendered JSON back.

use crate::checker::{CheckReport, TraceStep, Violation};
use serde::Value;

/// Schema tag of the counterexample export format.
pub const COUNTEREXAMPLE_SCHEMA: &str = "busarb-counterexample/1";

fn step_to_value(step: &TraceStep) -> Value {
    let outcomes = step
        .outcomes
        .iter()
        .map(|(model, winner)| {
            Value::Object(vec![
                ("model".to_string(), Value::Str(model.clone())),
                (
                    "winner".to_string(),
                    winner.map_or(Value::Null, |w| Value::UInt(u64::from(w))),
                ),
            ])
        })
        .collect();
    let injected = step
        .injected
        .iter()
        .map(|&a| Value::UInt(u64::from(a)))
        .collect();
    Value::Object(vec![
        ("step".to_string(), Value::UInt(step.step as u64)),
        ("injected".to_string(), Value::Array(injected)),
        (
            "request_lines".to_string(),
            Value::Str(step.request_lines.to_string()),
        ),
        ("arbitrated".to_string(), Value::Bool(step.arbitrated)),
        ("outcomes".to_string(), Value::Array(outcomes)),
    ])
}

/// Renders a check's violation as a schema-tagged JSON value.
#[must_use]
pub fn violation_to_value(report: &CheckReport, violation: &Violation) -> Value {
    Value::Object(vec![
        (
            "schema".to_string(),
            Value::Str(COUNTEREXAMPLE_SCHEMA.to_string()),
        ),
        ("protocol".to_string(), Value::Str(report.protocol.clone())),
        ("agents".to_string(), Value::UInt(u64::from(report.agents))),
        ("depth".to_string(), Value::UInt(report.depth as u64)),
        (
            "invariant".to_string(),
            Value::Str(violation.invariant.to_string()),
        ),
        ("detail".to_string(), Value::Str(violation.detail.clone())),
        (
            "trace".to_string(),
            Value::Array(violation.trace.iter().map(step_to_value).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (CheckReport, Violation) {
        let violation = Violation {
            invariant: "bounded bypass",
            detail: "agent 1 bypassed 3 times".to_string(),
            trace: vec![TraceStep {
                step: 0,
                injected: vec![1, 2, 3],
                request_lines: u128::MAX,
                arbitrated: true,
                outcomes: vec![("rr".to_string(), Some(3)), ("rr-signal".to_string(), None)],
            }],
        };
        let report = CheckReport {
            protocol: "rr".to_string(),
            agents: 3,
            depth: 6,
            states: 10,
            transitions: 20,
            grants: 5,
            truncated: false,
            violation: Some(violation.clone()),
        };
        (report, violation)
    }

    #[test]
    fn export_round_trips_through_json() {
        let (report, violation) = sample();
        let value = violation_to_value(&report, &violation);
        let json = serde_json::to_string_pretty(&value).expect("serializable");
        let parsed = serde_json::from_str(&json).expect("well-formed");
        assert_eq!(
            parsed.get("schema").and_then(Value::as_str),
            Some(COUNTEREXAMPLE_SCHEMA)
        );
        assert_eq!(parsed.get("protocol").and_then(Value::as_str), Some("rr"));
        assert_eq!(parsed.get("agents").and_then(Value::as_u64), Some(3));
        let trace = parsed
            .get("trace")
            .and_then(Value::as_array)
            .expect("trace array");
        assert_eq!(trace.len(), 1);
        let step = &trace[0];
        // The full 128-bit mask survives as a decimal string — the whole
        // point of not using a JSON number.
        assert_eq!(
            step.get("request_lines").and_then(Value::as_str),
            Some(u128::MAX.to_string().as_str())
        );
        let outcomes = step
            .get("outcomes")
            .and_then(Value::as_array)
            .expect("outcomes");
        assert_eq!(outcomes[0].get("winner").and_then(Value::as_u64), Some(3));
        assert!(matches!(outcomes[1].get("winner"), Some(Value::Null)));
    }
}
