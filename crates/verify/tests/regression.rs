//! Pinned verifier runs: one known-good, counterexample-free check per
//! protocol at N = 3, depth 6.
//!
//! The state/transition/grant counts are exact: the BFS is deterministic,
//! so any drift means either a protocol's reachable behavior changed or a
//! fingerprint lost (or gained) information. Both deserve a deliberate
//! re-pin, not a silent pass.

use busarb_core::ProtocolKind;
use verify::{check_kind, CheckConfig};

const N: u32 = 3;
const DEPTH: usize = 6;

fn pinned(kind: ProtocolKind, states: usize, transitions: u64, grants: u64) {
    let cfg = CheckConfig {
        depth: DEPTH,
        ..CheckConfig::default()
    };
    let report = check_kind(kind, N, &cfg).expect("valid system size");
    assert!(
        report.violation.is_none(),
        "{kind}: {}",
        report.violation.expect("just checked")
    );
    assert!(!report.truncated, "{kind}: state cap reached");
    assert_eq!(report.states, states, "{kind}: distinct states drifted");
    assert_eq!(
        report.transitions, transitions,
        "{kind}: transition count drifted"
    );
    assert_eq!(report.grants, grants, "{kind}: grant count drifted");
}

#[test]
fn fixed_priority_pinned() {
    pinned(ProtocolKind::FixedPriority, 8, 46, 26);
}

#[test]
fn aap1_pinned() {
    pinned(ProtocolKind::AssuredAccessIdleBatch, 67, 205, 133);
}

#[test]
fn aap2_pinned() {
    pinned(ProtocolKind::AssuredAccessFairnessRelease, 220, 827, 513);
}

#[test]
fn aap2m_pinned() {
    pinned(ProtocolKind::AssuredAccessClosedBatch, 152, 646, 391);
}

#[test]
fn round_robin_pinned() {
    pinned(ProtocolKind::RoundRobin, 80, 334, 203);
}

#[test]
fn fcfs1_pinned() {
    pinned(ProtocolKind::Fcfs1, 92, 231, 160);
}

#[test]
fn fcfs2_pinned() {
    pinned(ProtocolKind::Fcfs2, 92, 232, 161);
}

#[test]
fn central_rr_pinned() {
    pinned(ProtocolKind::CentralRoundRobin, 80, 334, 203);
}

#[test]
fn central_fcfs_pinned() {
    pinned(ProtocolKind::CentralFcfs, 92, 232, 161);
}

#[test]
fn hybrid_pinned() {
    pinned(ProtocolKind::Hybrid, 206, 552, 373);
}

#[test]
fn adaptive_pinned() {
    pinned(ProtocolKind::Adaptive, 3404, 6210, 3879);
}

#[test]
fn rotating_rr_pinned() {
    pinned(ProtocolKind::RotatingRr, 72, 288, 177);
}

#[test]
fn ticket_fcfs_pinned() {
    pinned(ProtocolKind::TicketFcfs, 92, 232, 161);
}

/// The abstract round robin and the central reference arbiter reach
/// behaviorally identical state graphs — a cross-protocol sanity check of
/// the fingerprints themselves.
#[test]
fn rr_and_central_rr_graphs_coincide() {
    let cfg = CheckConfig {
        depth: DEPTH,
        ..CheckConfig::default()
    };
    let rr = check_kind(ProtocolKind::RoundRobin, N, &cfg).expect("valid size");
    let central = check_kind(ProtocolKind::CentralRoundRobin, N, &cfg).expect("valid size");
    assert_eq!(rr.states, central.states);
    assert_eq!(rr.transitions, central.transitions);
    assert_eq!(rr.grants, central.grants);
}
