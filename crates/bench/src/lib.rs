//! Shared helpers for the `busarb` criterion benches.
//!
//! The benches live in `benches/`:
//!
//! * `tables` — one benchmark per paper table/figure, each running the
//!   representative simulation kernel of that experiment at smoke scale.
//! * `protocols` — arbitration-decision throughput of every protocol.
//! * `contention` — wired-OR settle dynamics and signal-level systems.
//! * `engine` — discrete-event engine throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use busarb_core::{Arbiter, ProtocolKind};
use busarb_types::{AgentId, Priority, Time};

/// Builds an arbiter of `kind` with all `n` agents already requesting.
///
/// # Panics
///
/// Panics if `n` is not a valid system size.
#[must_use]
pub fn saturated_arbiter(kind: ProtocolKind, n: u32) -> Box<dyn Arbiter> {
    let mut arbiter = kind.build(n).expect("valid size");
    for agent in AgentId::all(n) {
        arbiter.on_request(Time::ZERO, agent, Priority::Ordinary);
    }
    arbiter
}

/// Performs `grants` arbitration decisions on a saturated system,
/// re-requesting after every grant; returns a checksum of winners so the
/// optimizer cannot discard the work.
pub fn drive_saturated(arbiter: &mut dyn Arbiter, grants: usize) -> u64 {
    let mut checksum = 0u64;
    for i in 0..grants {
        let now = Time::from(i as f64);
        let grant = arbiter.arbitrate(now).expect("saturated system");
        checksum = checksum
            .wrapping_mul(31)
            .wrapping_add(u64::from(grant.agent.get()));
        arbiter.on_request(now, grant.agent, Priority::Ordinary);
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_saturated_is_deterministic() {
        let mut a = saturated_arbiter(ProtocolKind::RoundRobin, 8);
        let mut b = saturated_arbiter(ProtocolKind::RoundRobin, 8);
        assert_eq!(
            drive_saturated(a.as_mut(), 100),
            drive_saturated(b.as_mut(), 100)
        );
    }
}
