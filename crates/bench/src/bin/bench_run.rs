//! `bench_run` — times one simulation cell per protocol through both
//! dispatch paths and writes the results to `BENCH_run.json`.
//!
//! ```text
//! bench_run [--out PATH] [--reps N] [--smoke]
//! ```
//!
//! Each protocol runs the same Quick-scale cell (30 agents, load 2.0,
//! deterministic per-protocol seed) through the monomorphized entry
//! ([`Simulation::run_kind`]) and the boxed `dyn Arbiter` entry. The JSON
//! records, per protocol, the event count, minimum wall-clock of `reps`
//! runs per path, the derived events/sec and ns/arbitration figures, and
//! the static-over-dynamic dispatch speedup. Both paths produce
//! bit-for-bit identical reports (pinned by the `dispatch_equivalence`
//! regression test), so only the timings differ.
//!
//! `--smoke` drops to the Smoke scale with a single rep — a CI-friendly
//! end-to-end check that the binary runs, not a measurement.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use busarb_core::ProtocolKind;
use busarb_experiments::common::seed_for;
use busarb_obs::MetricsSnapshot;
use busarb_experiments::Scale;
use busarb_sim::{RunReport, Simulation, SystemConfig};
use busarb_workload::Scenario;
use serde::Serialize;

const AGENTS: u32 = 30;
const LOAD: f64 = 2.0;

/// The protocols timed — every [`ProtocolKind`], so the report covers the
/// full dispatch surface (`cargo xtask lint` checks this roster stays
/// complete).
const PROTOCOLS: [ProtocolKind; 13] = [
    ProtocolKind::FixedPriority,
    ProtocolKind::AssuredAccessIdleBatch,
    ProtocolKind::AssuredAccessFairnessRelease,
    ProtocolKind::AssuredAccessClosedBatch,
    ProtocolKind::RoundRobin,
    ProtocolKind::Fcfs1,
    ProtocolKind::Fcfs2,
    ProtocolKind::CentralRoundRobin,
    ProtocolKind::CentralFcfs,
    ProtocolKind::Hybrid,
    ProtocolKind::Adaptive,
    ProtocolKind::RotatingRr,
    ProtocolKind::TicketFcfs,
];

#[derive(Serialize)]
struct ProtocolTiming {
    protocol: String,
    events: u64,
    arbitrations: u64,
    mono_min_seconds: f64,
    dyn_min_seconds: f64,
    mono_events_per_sec: f64,
    dyn_events_per_sec: f64,
    mono_ns_per_arbitration: f64,
    dyn_ns_per_arbitration: f64,
    mono_speedup_vs_dyn: f64,
    /// Whole-run registry snapshot of the (monomorphized) timed cell, so
    /// a benchmark artifact also documents what the run *did* — grant and
    /// completion counts, wait/queue-depth histograms, event rates.
    metrics: MetricsSnapshot,
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    scale: String,
    agents: u32,
    load: f64,
    reps: usize,
    timings: Vec<ProtocolTiming>,
}

struct Args {
    out: PathBuf,
    reps: usize,
    scale: Scale,
}

fn parse_args() -> Result<Args, String> {
    let mut out = PathBuf::from("BENCH_run.json");
    let mut reps = 7usize;
    let mut scale = Scale::Quick;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(args.next().ok_or("--out needs a path")?),
            "--reps" => {
                reps = args
                    .next()
                    .ok_or("--reps needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --reps: {e}"))?;
            }
            "--smoke" => {
                scale = Scale::Smoke;
                reps = 1;
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if reps == 0 {
        return Err("--reps must be at least 1".to_string());
    }
    Ok(Args { out, reps, scale })
}

fn cell_config(kind: ProtocolKind, scale: Scale) -> SystemConfig {
    let scenario = Scenario::equal_load(AGENTS, LOAD, 1.0).expect("valid scenario");
    SystemConfig::new(scenario)
        .with_batches(scale.batches())
        .with_warmup(scale.warmup())
        .with_seed(seed_for(&format!("bench-run/{kind}")))
}

/// Minimum wall-clock of `reps` runs of `f`, after one untimed warm-up.
fn time_min(reps: usize, mut f: impl FnMut() -> RunReport) -> (f64, RunReport) {
    let mut report = f();
    let mut min = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        report = f();
        min = min.min(start.elapsed().as_secs_f64());
    }
    (min, report)
}

fn time_protocol(kind: ProtocolKind, scale: Scale, reps: usize) -> ProtocolTiming {
    let sim = Simulation::new(cell_config(kind, scale)).expect("valid config");
    let (mono_min, mono_report) = time_min(reps, || sim.run_kind(kind).expect("valid system size"));
    let (dyn_min, dyn_report) = time_min(reps, || sim.run(kind.build(AGENTS).expect("valid size")));
    assert_eq!(
        mono_report.events, dyn_report.events,
        "{kind}: dispatch paths disagree on event count"
    );
    let events = mono_report.events;
    let arbitrations = mono_report.arbitrations;
    ProtocolTiming {
        protocol: kind.to_string(),
        events,
        arbitrations,
        mono_min_seconds: mono_min,
        dyn_min_seconds: dyn_min,
        mono_events_per_sec: events as f64 / mono_min,
        dyn_events_per_sec: events as f64 / dyn_min,
        mono_ns_per_arbitration: mono_min * 1e9 / arbitrations as f64,
        dyn_ns_per_arbitration: dyn_min * 1e9 / arbitrations as f64,
        mono_speedup_vs_dyn: dyn_min / mono_min,
        metrics: mono_report.metrics,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}\nusage: bench_run [--out PATH] [--reps N] [--smoke]");
            return ExitCode::FAILURE;
        }
    };

    let mut timings = Vec::new();
    for &kind in &PROTOCOLS {
        let t = time_protocol(kind, args.scale, args.reps);
        eprintln!(
            "{:>14}: mono {:.4}s ({:.2}M events/s, {:.0} ns/arb)  dyn {:.4}s  mono/dyn {:.2}x",
            t.protocol,
            t.mono_min_seconds,
            t.mono_events_per_sec / 1e6,
            t.mono_ns_per_arbitration,
            t.dyn_min_seconds,
            t.mono_speedup_vs_dyn
        );
        timings.push(t);
    }

    let report = BenchReport {
        bench: "single_cell_by_protocol".to_string(),
        scale: args.scale.to_string(),
        agents: AGENTS,
        load: LOAD,
        reps: args.reps,
        timings,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&args.out, json + "\n") {
                eprintln!("error: cannot write {}: {e}", args.out.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", args.out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot serialize report: {e}");
            ExitCode::FAILURE
        }
    }
}
