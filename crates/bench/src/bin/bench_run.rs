//! `bench_run` — times one simulation cell per protocol through both
//! dispatch paths and both draw engines, and writes the results to
//! `BENCH_run.json`.
//!
//! ```text
//! bench_run [--out PATH] [--reps N] [--smoke] [--floor PATH]
//!           [--engine reference|fast|both]
//! ```
//!
//! Each protocol runs the same Quick-scale cell (30 agents, load 2.0,
//! deterministic per-protocol seed) through the monomorphized entry
//! ([`Simulation::run_kind`]) and the boxed `dyn Arbiter` entry, once
//! per selected draw engine. The JSON records, per (protocol, engine),
//! the event count, minimum wall-clock of `reps` runs per path, the
//! derived events/sec and ns/arbitration figures, and the
//! static-over-dynamic dispatch speedup. Both dispatch paths produce
//! bit-for-bit identical reports within one engine (pinned by the
//! `dispatch_equivalence` regression test), so only the timings differ.
//!
//! When both engines are selected (the default), the report also carries
//! a `draw_bound` section: the same cell at CV = 0.1 (Erlang k = 100
//! interrequest times, 100 uniforms per draw on the reference path),
//! timed under each engine with the fast-over-reference speedup per
//! protocol. This is the draw-dominated regime the fast engine exists
//! for; the CV = 1.0 table above is arbitration-dominated and moves far
//! less.
//!
//! `--smoke` drops to the Smoke scale with a single rep — a CI-friendly
//! end-to-end check that the binary runs, not a measurement.
//!
//! `--floor PATH` turns the run into a perf gate: after timing, each
//! protocol's monomorphized events/sec is compared against the matching
//! entry in the committed `BENCH_run.json` at PATH, and the process
//! fails if any protocol lands more than [`FLOOR_DROP`] below its
//! committed figure. Two mechanisms keep the comparison meaningful
//! across machines and runner load:
//!
//! - **Scale matching.** The gate refuses a floor file recorded at a
//!   different scale: a Smoke cell finishes in well under a millisecond,
//!   so its events/sec is dominated by cold caches and first-touch of
//!   the state planes and sits structurally ~2x below the Quick figure.
//!   CI gates at the Quick scale (a few seconds for all 13 protocols).
//! - **Speed calibration.** Every run times a frozen synthetic integer
//!   kernel ([`calibration_kernel`]) and records its ops/sec in the
//!   report. The gate scales each committed floor by the ratio of the
//!   measured to the committed calibration, clamped at 1.0 — a slower
//!   or more loaded runner lowers the bar proportionally, while a
//!   faster one still only has to clear the committed figure. A real
//!   regression cannot hide behind this: the kernel is independent of
//!   the simulator, so protocol changes move the protocol figures and
//!   not the calibration.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use busarb_core::ProtocolKind;
use busarb_experiments::common::seed_for;
use busarb_obs::MetricsSnapshot;
use busarb_experiments::Scale;
use busarb_sim::{RunReport, Simulation, SystemConfig};
use busarb_workload::{DrawEngineKind, Scenario};
use serde::Serialize;

const AGENTS: u32 = 30;
const LOAD: f64 = 2.0;

/// Largest tolerated drop below the committed per-protocol events/sec
/// before `--floor` fails the run (0.25 = fail below 75% of committed),
/// after calibration scaling.
const FLOOR_DROP: f64 = 0.25;

/// Iterations of the calibration kernel per timing window (~10ms on the
/// reference machine — long enough to ride out scheduler jitter, short
/// enough that the minimum over [`CALIBRATION_REPS`] windows lands in a
/// quiet one).
const CALIBRATION_ITERS: u64 = 20_000_000;

/// Timing windows per calibration; the minimum elapsed is used.
const CALIBRATION_REPS: usize = 15;

/// The protocols timed — every [`ProtocolKind`], so the report covers the
/// full dispatch surface (`cargo xtask lint` checks this roster stays
/// complete).
const PROTOCOLS: [ProtocolKind; 13] = [
    ProtocolKind::FixedPriority,
    ProtocolKind::AssuredAccessIdleBatch,
    ProtocolKind::AssuredAccessFairnessRelease,
    ProtocolKind::AssuredAccessClosedBatch,
    ProtocolKind::RoundRobin,
    ProtocolKind::Fcfs1,
    ProtocolKind::Fcfs2,
    ProtocolKind::CentralRoundRobin,
    ProtocolKind::CentralFcfs,
    ProtocolKind::Hybrid,
    ProtocolKind::Adaptive,
    ProtocolKind::RotatingRr,
    ProtocolKind::TicketFcfs,
];

/// The CV used for the draw-bound comparison cells: 0.1 maps to Erlang
/// shape k = 100, so every interrequest draw costs the reference engine
/// one hundred uniforms and a `ln`.
const DRAW_BOUND_CV: f64 = 0.1;

#[derive(Serialize)]
struct ProtocolTiming {
    protocol: String,
    /// Which draw engine produced this row ("reference" or "fast").
    engine: String,
    events: u64,
    arbitrations: u64,
    mono_min_seconds: f64,
    dyn_min_seconds: f64,
    mono_events_per_sec: f64,
    dyn_events_per_sec: f64,
    mono_ns_per_arbitration: f64,
    dyn_ns_per_arbitration: f64,
    mono_speedup_vs_dyn: f64,
    /// Whole-run registry snapshot of the (monomorphized) timed cell, so
    /// a benchmark artifact also documents what the run *did* — grant and
    /// completion counts, wait/queue-depth histograms, event rates.
    metrics: MetricsSnapshot,
}

/// One protocol's reference-vs-fast comparison in the draw-bound
/// (CV = 0.1, Erlang k = 100) regime. Monomorphized dispatch only.
#[derive(Serialize)]
struct DrawBoundTiming {
    protocol: String,
    reference_events: u64,
    fast_events: u64,
    reference_events_per_sec: f64,
    fast_events_per_sec: f64,
    /// `fast_events_per_sec / reference_events_per_sec`.
    fast_speedup: f64,
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    scale: String,
    agents: u32,
    load: f64,
    reps: usize,
    /// The draw engines this report carries figures for.
    engines: Vec<String>,
    /// Ops/sec of the frozen [`calibration_kernel`] on this runner —
    /// the machine-speed reference the `--floor` gate scales by.
    calibration_ops_per_sec: f64,
    timings: Vec<ProtocolTiming>,
    /// CV of the `draw_bound` cells (see [`DRAW_BOUND_CV`]).
    draw_bound_cv: f64,
    /// Reference-vs-fast comparison in the draw-dominated regime; empty
    /// when `--engine` restricts the run to a single engine.
    draw_bound: Vec<DrawBoundTiming>,
}

/// Frozen synthetic integer kernel (xor-multiply mixing, the same
/// instruction mix the simulator leans on): `iters` rounds over a
/// running state, returned so the optimizer cannot elide the loop. This
/// function must never change — committed calibration figures would
/// silently lose their meaning.
fn calibration_kernel(iters: u64) -> u64 {
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for i in 0..iters {
        x = (x ^ i).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
    }
    x
}

/// Machine-speed reference: best ops/sec of the calibration kernel over
/// [`CALIBRATION_REPS`] windows.
fn calibrate() -> f64 {
    let mut min = f64::INFINITY;
    for _ in 0..CALIBRATION_REPS {
        let start = Instant::now();
        std::hint::black_box(calibration_kernel(std::hint::black_box(CALIBRATION_ITERS)));
        min = min.min(start.elapsed().as_secs_f64());
    }
    CALIBRATION_ITERS as f64 / min
}

struct Args {
    out: PathBuf,
    reps: usize,
    scale: Scale,
    floor: Option<PathBuf>,
    /// `None` = time both engines (and the draw-bound comparison);
    /// `Some` restricts the dispatch table to one engine.
    engine: Option<DrawEngineKind>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = PathBuf::from("BENCH_run.json");
    let mut reps = 7usize;
    let mut scale = Scale::Quick;
    let mut floor = None;
    let mut engine = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(args.next().ok_or("--out needs a path")?),
            "--reps" => {
                reps = args
                    .next()
                    .ok_or("--reps needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --reps: {e}"))?;
            }
            "--smoke" => {
                scale = Scale::Smoke;
                reps = 1;
            }
            "--floor" => floor = Some(PathBuf::from(args.next().ok_or("--floor needs a path")?)),
            "--engine" => {
                let value = args.next().ok_or("--engine needs a value")?;
                engine = match value.as_str() {
                    "both" => None,
                    other => Some(
                        DrawEngineKind::parse(other)
                            .ok_or_else(|| format!("unknown engine '{other}' (reference|fast|both)"))?,
                    ),
                };
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if reps == 0 {
        return Err("--reps must be at least 1".to_string());
    }
    Ok(Args {
        out,
        reps,
        scale,
        floor,
        engine,
    })
}

/// One committed floor entry: `(protocol, engine, mono events/sec)`.
type FloorRate = (String, String, f64);

/// Committed per-(protocol, engine) events/sec figures pulled out of a
/// `BENCH_run.json`, after checking the file was recorded at `scale`
/// (cross-scale throughput is not comparable — see the module docs).
/// Only `scale`, `timings[].protocol`, `timings[].engine`, and
/// `timings[].mono_events_per_sec` are read; every other field
/// (metrics, derived figures) is ignored. Floor files written before
/// the engine dimension existed lack the `engine` field; those entries
/// are treated as reference-engine figures.
fn load_floor(path: &std::path::Path, scale: Scale) -> Result<(f64, Vec<FloorRate>), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read floor file {}: {e}", path.display()))?;
    let floor = serde_json::from_str(&text)
        .map_err(|e| format!("cannot parse floor file {}: {e}", path.display()))?;
    let floor_scale = floor
        .get("scale")
        .and_then(serde::Value::as_str)
        .ok_or_else(|| format!("floor file {} has no scale field", path.display()))?;
    if floor_scale != scale.to_string() {
        return Err(format!(
            "floor file {} was recorded at the {floor_scale} scale but this run measures {scale} — \
             throughput is only comparable within one scale",
            path.display()
        ));
    }
    let calibration = floor
        .get("calibration_ops_per_sec")
        .and_then(serde::Value::as_f64)
        .ok_or_else(|| {
            format!(
                "floor file {} has no calibration_ops_per_sec — regenerate it with this bench_run",
                path.display()
            )
        })?;
    let timings = floor
        .get("timings")
        .and_then(serde::Value::as_array)
        .ok_or_else(|| format!("floor file {} has no timings array", path.display()))?;
    let rates = timings
        .iter()
        .map(|entry| {
            let protocol = entry
                .get("protocol")
                .and_then(serde::Value::as_str)
                .ok_or_else(|| "floor timing entry lacks a protocol name".to_string())?;
            let engine = entry
                .get("engine")
                .and_then(serde::Value::as_str)
                .unwrap_or("reference");
            let rate = entry
                .get("mono_events_per_sec")
                .and_then(serde::Value::as_f64)
                .ok_or_else(|| format!("floor entry {protocol} lacks mono_events_per_sec"))?;
            Ok((protocol.to_string(), engine.to_string(), rate))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok((calibration, rates))
}

/// Compares measured per-protocol throughput against the committed
/// figures at `path`. Returns the list of violations (empty = pass).
/// Protocols missing from the floor file are reported but not failed,
/// so adding a protocol does not require regenerating the floor first.
fn check_floor(
    timings: &[ProtocolTiming],
    path: &std::path::Path,
    scale: Scale,
    calibration: f64,
) -> Result<Vec<String>, String> {
    let (committed_calibration, floor) = load_floor(path, scale)?;
    // A slower or busier runner lowers every floor proportionally; a
    // faster one still only has to clear the committed figures.
    let speed = (calibration / committed_calibration).min(1.0);
    eprintln!(
        "perf floor: calibration {:.2}G ops/s vs committed {:.2}G -> floors scaled by {speed:.2}",
        calibration / 1e9,
        committed_calibration / 1e9
    );
    let mut violations = Vec::new();
    for t in timings {
        let Some((_, _, committed)) = floor
            .iter()
            .find(|(name, engine, _)| *name == t.protocol && *engine == t.engine)
        else {
            eprintln!(
                "perf floor: {} ({}) absent from {}, skipped",
                t.protocol,
                t.engine,
                path.display()
            );
            continue;
        };
        let limit = committed * speed * (1.0 - FLOOR_DROP);
        if t.mono_events_per_sec < limit {
            violations.push(format!(
                "{} ({}): {:.2}M events/s is below the floor of {:.2}M (committed {:.2}M - {:.0}%)",
                t.protocol,
                t.engine,
                t.mono_events_per_sec / 1e6,
                limit / 1e6,
                committed / 1e6,
                FLOOR_DROP * 100.0
            ));
        } else {
            eprintln!(
                "perf floor: {:>14} ({:>9}) ok ({:.2}M >= {:.2}M)",
                t.protocol,
                t.engine,
                t.mono_events_per_sec / 1e6,
                limit / 1e6
            );
        }
    }
    Ok(violations)
}

fn cell_config(kind: ProtocolKind, scale: Scale, engine: DrawEngineKind, cv: f64) -> SystemConfig {
    let scenario = Scenario::equal_load(AGENTS, LOAD, cv).expect("valid scenario");
    SystemConfig::new(scenario)
        .with_batches(scale.batches())
        .with_warmup(scale.warmup())
        .with_seed(seed_for(&format!("bench-run/{kind}")))
        .with_draw_engine(engine)
}

/// One timed run of `f`, returning (elapsed seconds, report).
fn time_once(f: impl FnOnce() -> RunReport) -> (f64, RunReport) {
    let start = Instant::now();
    let report = f();
    (start.elapsed().as_secs_f64(), report)
}

fn time_protocol(
    kind: ProtocolKind,
    scale: Scale,
    reps: usize,
    engine: DrawEngineKind,
) -> ProtocolTiming {
    let sim = Simulation::new(cell_config(kind, scale, engine, 1.0)).expect("valid config");
    let run_mono = || sim.run_kind(kind).expect("valid system size");
    let run_dyn = || sim.run(kind.build(AGENTS).expect("valid size"));
    // Untimed warm-up of both paths, then `reps` *interleaved* timing
    // pairs: alternating mono and dyn inside each rep exposes both paths
    // to the same slice of machine noise, so the reported speedup ratio
    // is not an artifact of load drifting between two timing blocks.
    let (mut mono_report, mut dyn_report) = (run_mono(), run_dyn());
    let (mut mono_min, mut dyn_min) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let (s, r) = time_once(run_mono);
        mono_min = mono_min.min(s);
        mono_report = r;
        let (s, r) = time_once(run_dyn);
        dyn_min = dyn_min.min(s);
        dyn_report = r;
    }
    assert_eq!(
        mono_report.events, dyn_report.events,
        "{kind}: dispatch paths disagree on event count"
    );
    let events = mono_report.events;
    let arbitrations = mono_report.arbitrations;
    ProtocolTiming {
        protocol: kind.to_string(),
        engine: engine.to_string(),
        events,
        arbitrations,
        mono_min_seconds: mono_min,
        dyn_min_seconds: dyn_min,
        mono_events_per_sec: events as f64 / mono_min,
        dyn_events_per_sec: events as f64 / dyn_min,
        mono_ns_per_arbitration: mono_min * 1e9 / arbitrations as f64,
        dyn_ns_per_arbitration: dyn_min * 1e9 / arbitrations as f64,
        mono_speedup_vs_dyn: dyn_min / mono_min,
        metrics: mono_report.metrics,
    }
}

/// Times the CV = 0.1 (Erlang k = 100) cell under both engines through
/// the monomorphized path. The two engines draw different interrequest
/// streams, so event counts differ slightly; each rate uses its own
/// count. Reference and fast runs interleave inside each rep so both
/// see the same slice of machine noise.
fn time_draw_bound(kind: ProtocolKind, scale: Scale, reps: usize) -> DrawBoundTiming {
    let reference = Simulation::new(cell_config(kind, scale, DrawEngineKind::Reference, DRAW_BOUND_CV))
        .expect("valid config");
    let fast = Simulation::new(cell_config(kind, scale, DrawEngineKind::Fast, DRAW_BOUND_CV))
        .expect("valid config");
    let run_reference = || reference.run_kind(kind).expect("valid system size");
    let run_fast = || fast.run_kind(kind).expect("valid system size");
    let (mut reference_report, mut fast_report) = (run_reference(), run_fast());
    let (mut reference_min, mut fast_min) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let (s, r) = time_once(run_reference);
        reference_min = reference_min.min(s);
        reference_report = r;
        let (s, r) = time_once(run_fast);
        fast_min = fast_min.min(s);
        fast_report = r;
    }
    let reference_rate = reference_report.events as f64 / reference_min;
    let fast_rate = fast_report.events as f64 / fast_min;
    DrawBoundTiming {
        protocol: kind.to_string(),
        reference_events: reference_report.events,
        fast_events: fast_report.events,
        reference_events_per_sec: reference_rate,
        fast_events_per_sec: fast_rate,
        fast_speedup: fast_rate / reference_rate,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(v) => v,
        Err(msg) => {
            eprintln!(
                "error: {msg}\nusage: bench_run [--out PATH] [--reps N] [--smoke] [--floor PATH] \
                 [--engine reference|fast|both]"
            );
            return ExitCode::FAILURE;
        }
    };

    let calibration = calibrate();
    eprintln!("calibration: {:.2}G ops/s", calibration / 1e9);

    let engines: Vec<DrawEngineKind> = match args.engine {
        Some(one) => vec![one],
        None => vec![DrawEngineKind::Reference, DrawEngineKind::Fast],
    };
    let mut timings = Vec::new();
    for &engine in &engines {
        for &kind in &PROTOCOLS {
            let t = time_protocol(kind, args.scale, args.reps, engine);
            eprintln!(
                "{:>14} ({:>9}): mono {:.4}s ({:.2}M events/s, {:.0} ns/arb)  dyn {:.4}s  mono/dyn {:.2}x",
                t.protocol,
                t.engine,
                t.mono_min_seconds,
                t.mono_events_per_sec / 1e6,
                t.mono_ns_per_arbitration,
                t.dyn_min_seconds,
                t.mono_speedup_vs_dyn
            );
            timings.push(t);
        }
    }

    let draw_bound: Vec<DrawBoundTiming> = if args.engine.is_none() {
        PROTOCOLS
            .iter()
            .map(|&kind| {
                let t = time_draw_bound(kind, args.scale, args.reps);
                eprintln!(
                    "{:>14} (cv {DRAW_BOUND_CV}): reference {:.2}M events/s  fast {:.2}M  speedup {:.2}x",
                    t.protocol,
                    t.reference_events_per_sec / 1e6,
                    t.fast_events_per_sec / 1e6,
                    t.fast_speedup
                );
                t
            })
            .collect()
    } else {
        eprintln!("draw-bound comparison skipped (--engine restricts the run to one engine)");
        Vec::new()
    };

    if let Some(path) = &args.floor {
        match check_floor(&timings, path, args.scale, calibration) {
            Ok(violations) if violations.is_empty() => {
                eprintln!(
                    "perf floor: all protocols within {:.0}% of committed figures",
                    FLOOR_DROP * 100.0
                );
            }
            Ok(violations) => {
                for v in &violations {
                    eprintln!("perf floor VIOLATION: {v}");
                }
                return ExitCode::FAILURE;
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = BenchReport {
        bench: "single_cell_by_protocol".to_string(),
        scale: args.scale.to_string(),
        agents: AGENTS,
        load: LOAD,
        reps: args.reps,
        engines: engines.iter().map(ToString::to_string).collect(),
        calibration_ops_per_sec: calibration,
        timings,
        draw_bound_cv: DRAW_BOUND_CV,
        draw_bound,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&args.out, json + "\n") {
                eprintln!("error: cannot write {}: {e}", args.out.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", args.out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot serialize report: {e}");
            ExitCode::FAILURE
        }
    }
}
