//! `bench_sweep` — times the Smoke-scale grid sweep at several worker
//! counts and writes the results to `BENCH_sweep.json`.
//!
//! ```text
//! bench_sweep [--out PATH] [--reps N] [--engine reference|fast]
//! ```
//!
//! The JSON records, per worker count, the minimum and mean wall-clock of
//! `reps` full sweeps, plus the speedup of the minimum over the 1-worker
//! (serial) minimum. Because every cell is independently seeded, the
//! sweep output is identical at every worker count — the timings below
//! are the only thing that changes.
//!
//! Worker counts above the host's available parallelism are **skipped**
//! (listed in the JSON's `skipped_workers`): oversubscribed workers on a
//! constrained host only time-slice one another, so their "speedups"
//! come out just below 1.0 and misread as a parallelism defect rather
//! than the scheduling overhead they actually are.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use busarb_experiments::common::{paper_loads, PAPER_SIZES};
use busarb_experiments::{grid::Grid, run_cells_with, Scale};
use busarb_workload::DrawEngineKind;
use serde::Serialize;

#[derive(Serialize)]
struct WorkerTiming {
    workers: usize,
    reps: usize,
    min_seconds: f64,
    mean_seconds: f64,
    speedup_vs_serial: f64,
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    scale: String,
    /// The workload draw engine every timed cell ran under.
    engine: String,
    cells: usize,
    host_parallelism: usize,
    /// Worker counts not timed because they exceed `host_parallelism`
    /// (oversubscription measures scheduler time-slicing, not sweep
    /// scaling).
    skipped_workers: Vec<usize>,
    timings: Vec<WorkerTiming>,
}

fn parse_args() -> Result<(PathBuf, usize, DrawEngineKind), String> {
    let mut out = PathBuf::from("BENCH_sweep.json");
    let mut reps = 3usize;
    let mut engine = DrawEngineKind::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(args.next().ok_or("--out needs a path")?),
            "--reps" => {
                reps = args
                    .next()
                    .ok_or("--reps needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --reps: {e}"))?;
            }
            "--engine" => {
                let value = args.next().ok_or("--engine needs a value")?;
                engine = DrawEngineKind::parse(&value)
                    .ok_or_else(|| format!("unknown engine '{value}' (reference|fast)"))?;
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if reps == 0 {
        return Err("--reps must be at least 1".to_string());
    }
    Ok((out, reps, engine))
}

fn time_sweep(workers: usize, points: &[(u32, f64)]) -> f64 {
    let start = Instant::now();
    let cells = run_cells_with(workers, points.to_vec(), |(n, load)| {
        Grid::compute_cell(n, load, Scale::Smoke)
    });
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(cells.len(), points.len());
    elapsed
}

fn main() -> ExitCode {
    let (out, reps, engine) = match parse_args() {
        Ok(v) => v,
        Err(msg) => {
            eprintln!(
                "error: {msg}\nusage: bench_sweep [--out PATH] [--reps N] [--engine reference|fast]"
            );
            return ExitCode::FAILURE;
        }
    };
    busarb_experiments::set_engine(engine);
    eprintln!("engine: {engine}");
    let points: Vec<(u32, f64)> = PAPER_SIZES
        .iter()
        .flat_map(|&n| paper_loads(n).into_iter().map(move |load| (n, load)))
        .collect();
    let host_parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    // One untimed warm-up sweep so first-touch costs (page faults, lazy
    // statics) don't land on the serial baseline.
    let _ = time_sweep(1, &points);

    let mut timings = Vec::new();
    let mut skipped_workers = Vec::new();
    let mut serial_min = f64::NAN;
    for workers in [1usize, 2, 4, 8] {
        if workers > host_parallelism {
            eprintln!("workers {workers:>2}: skipped (host parallelism is {host_parallelism})");
            skipped_workers.push(workers);
            continue;
        }
        let samples: Vec<f64> = (0..reps).map(|_| time_sweep(workers, &points)).collect();
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        if workers == 1 {
            serial_min = min;
        }
        let timing = WorkerTiming {
            workers,
            reps,
            min_seconds: min,
            mean_seconds: mean,
            speedup_vs_serial: serial_min / min,
        };
        eprintln!(
            "workers {:>2}: min {:.3}s mean {:.3}s speedup {:.2}x",
            workers, timing.min_seconds, timing.mean_seconds, timing.speedup_vs_serial
        );
        timings.push(timing);
    }

    let report = BenchReport {
        bench: "grid_sweep_smoke".to_string(),
        scale: "smoke".to_string(),
        engine: engine.to_string(),
        cells: points.len(),
        host_parallelism,
        skipped_workers,
        timings,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&out, json + "\n") {
                eprintln!("error: cannot write {}: {e}", out.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {}", out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot serialize report: {e}");
            ExitCode::FAILURE
        }
    }
}
