//! `bench_analyze` — measures streaming trace-analytics throughput and
//! writes the results to `BENCH_analyze.json`.
//!
//! ```text
//! bench_analyze [--out PATH] [--events N] [--streams K] [--reps N] [--smoke]
//! ```
//!
//! The workload is a synthetic BTRC stream (`busarb_tail::synth`),
//! generated on the fly so the numbers measure parsing + analysis, not
//! disk. Two configurations are timed:
//!
//! * **single** — one stream of `--events` events (default 10M) through
//!   the full `busarb analyze` pipeline (replay + usage + fairness +
//!   protocol adapter);
//! * **multi** — `--streams` (default 4) threads each analyzing its own
//!   stream of `events / streams` events concurrently, the serve-mode
//!   ingest shape.
//!
//! The report records events/sec overall and per stream, the process's
//! peak resident set (`VmHWM` from `/proc/self/status`, where readable)
//! to document that a 10M-event pass stays flat, and a `meets_target`
//! flag for the ISSUE-level floor of 1M events/sec per stream.
//!
//! `--smoke` drops to 200k events and one rep — a CI-friendly check
//! that the binary runs, not a measurement.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use busarb_obs::{TraceHeader, TraceReader, TRACE_SCHEMA};
use busarb_tail::synth::SyntheticBtrc;
use serde::Serialize;

/// Throughput floor per stream the ISSUE's acceptance criterion sets.
const TARGET_EVENTS_PER_SEC: f64 = 1e6;
const AGENTS: u32 = 16;

#[derive(Serialize)]
struct SingleTiming {
    events: u64,
    min_seconds: f64,
    events_per_sec: f64,
}

#[derive(Serialize)]
struct MultiTiming {
    streams: usize,
    events_total: u64,
    min_seconds: f64,
    events_per_sec_total: f64,
    events_per_sec_per_stream: f64,
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    smoke: bool,
    reps: usize,
    agents: u32,
    single: SingleTiming,
    multi: MultiTiming,
    /// Peak resident set in kB (`VmHWM`), if the platform exposes it.
    vm_hwm_kb: Option<u64>,
    /// Whether every configuration sustained [`TARGET_EVENTS_PER_SEC`]
    /// per stream.
    meets_target: bool,
}

struct Args {
    out: PathBuf,
    events: u64,
    streams: usize,
    reps: usize,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut out = PathBuf::from("BENCH_analyze.json");
    let mut events = 10_000_000u64;
    let mut streams = 4usize;
    let mut reps = 3usize;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(args.next().ok_or("--out needs a path")?),
            "--events" => {
                events = args
                    .next()
                    .ok_or("--events needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --events: {e}"))?;
            }
            "--streams" => {
                streams = args
                    .next()
                    .ok_or("--streams needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --streams: {e}"))?;
            }
            "--reps" => {
                reps = args
                    .next()
                    .ok_or("--reps needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --reps: {e}"))?;
            }
            "--smoke" => {
                smoke = true;
                events = 200_000;
                reps = 1;
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if reps == 0 || streams == 0 || events < 4 {
        return Err("--reps/--streams must be >= 1 and --events >= 4".to_string());
    }
    Ok(Args {
        out,
        events,
        streams,
        reps,
        smoke,
    })
}

fn header() -> TraceHeader {
    TraceHeader {
        schema: TRACE_SCHEMA.to_string(),
        protocol: "rr".to_string(),
        agents: AGENTS,
        seed: 11,
        warmup_samples: 1000,
        batches: 10,
        samples_per_batch: 100,
        confidence: 0.9,
    }
}

/// Analyzes one synthetic stream of `transactions`; returns events read.
fn analyze_one(transactions: u64) -> u64 {
    let h = header();
    let stream = SyntheticBtrc::new(&h, transactions);
    let mut reader = TraceReader::new(stream).expect("synthetic stream is valid");
    let report = busarb_tail::analyze("bench", &mut reader).expect("synthetic stream analyzes");
    report.events
}

/// Minimum wall-clock of `reps` runs of `f` (no warm-up discard: each
/// rep streams tens of millions of events, dwarfing cold-start noise).
fn time_min(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut min = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        min = min.min(start.elapsed().as_secs_f64());
    }
    min
}

/// `VmHWM` (peak resident set, kB) from `/proc/self/status`.
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(v) => v,
        Err(msg) => {
            eprintln!(
                "error: {msg}\nusage: bench_analyze [--out PATH] [--events N] [--streams K] [--reps N] [--smoke]"
            );
            return ExitCode::FAILURE;
        }
    };

    // --- Single stream. ---
    let transactions = args.events / 4;
    let events = 4 * transactions;
    let single_min = time_min(args.reps, || {
        let read = analyze_one(transactions);
        assert_eq!(read, events, "short read in single-stream pass");
    });
    let single = SingleTiming {
        events,
        min_seconds: single_min,
        events_per_sec: events as f64 / single_min,
    };
    eprintln!(
        "single: {} events in {:.3}s = {:.2}M events/s",
        single.events,
        single.min_seconds,
        single.events_per_sec / 1e6
    );

    // --- Multi stream: serve-mode ingest shape. ---
    let per_stream_tx = (args.events / args.streams as u64 / 4).max(1);
    let per_stream_events = 4 * per_stream_tx;
    let total_events = per_stream_events * args.streams as u64;
    let multi_min = time_min(args.reps, || {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..args.streams)
                .map(|_| scope.spawn(move || analyze_one(per_stream_tx)))
                .collect();
            for handle in handles {
                let read = handle.join().expect("ingest thread");
                assert_eq!(read, per_stream_events, "short read in multi-stream pass");
            }
        });
    });
    let multi = MultiTiming {
        streams: args.streams,
        events_total: total_events,
        min_seconds: multi_min,
        events_per_sec_total: total_events as f64 / multi_min,
        events_per_sec_per_stream: total_events as f64 / multi_min / args.streams as f64,
    };
    eprintln!(
        "multi:  {} streams x {} events in {:.3}s = {:.2}M events/s total ({:.2}M/stream)",
        multi.streams,
        per_stream_events,
        multi.min_seconds,
        multi.events_per_sec_total / 1e6,
        multi.events_per_sec_per_stream / 1e6
    );

    let meets_target = single.events_per_sec >= TARGET_EVENTS_PER_SEC
        && multi.events_per_sec_per_stream >= TARGET_EVENTS_PER_SEC;
    let report = BenchReport {
        bench: "streaming_analyze".to_string(),
        smoke: args.smoke,
        reps: args.reps,
        agents: AGENTS,
        single,
        multi,
        vm_hwm_kb: vm_hwm_kb(),
        meets_target,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&args.out, json + "\n") {
                eprintln!("error: cannot write {}: {e}", args.out.display());
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {} (meets 1M events/s/stream target: {})",
                args.out.display(),
                report.meets_target
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot serialize report: {e}");
            ExitCode::FAILURE
        }
    }
}
