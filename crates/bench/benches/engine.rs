//! Discrete-event engine throughput: simulated bus transactions per
//! second of wall-clock time, across system sizes and protocols.

use busarb_core::ProtocolKind;
use busarb_sim::{Simulation, SystemConfig};
use busarb_stats::BatchMeansConfig;
use busarb_workload::Scenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const SAMPLES: usize = 200;

fn run_once(kind: ProtocolKind, n: u32, seed: u64) -> f64 {
    let scenario = Scenario::equal_load(n, 2.0, 1.0).expect("valid scenario");
    let config = SystemConfig::new(scenario)
        .with_batches(BatchMeansConfig::quick(SAMPLES))
        .with_warmup(100)
        .with_seed(seed);
    Simulation::new(config)
        .expect("valid config")
        .run(kind.build(n).expect("valid size"))
        .mean_wait
        .mean
}

fn bench_engine_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_transactions");
    group.throughput(Throughput::Elements((10 * SAMPLES) as u64));
    for n in [10u32, 30, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(run_once(ProtocolKind::RoundRobin, n, 1)));
        });
    }
    group.finish();
}

fn bench_engine_by_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_by_protocol_30_agents");
    group.throughput(Throughput::Elements((10 * SAMPLES) as u64));
    for kind in [
        ProtocolKind::RoundRobin,
        ProtocolKind::Fcfs1,
        ProtocolKind::Fcfs2,
        ProtocolKind::AssuredAccessIdleBatch,
        ProtocolKind::CentralFcfs,
        ProtocolKind::Hybrid,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.to_string()),
            &kind,
            |b, &kind| {
                b.iter(|| black_box(run_once(kind, 30, 2)));
            },
        );
    }
    group.finish();
}

criterion_group!(engine, bench_engine_by_size, bench_engine_by_protocol);
criterion_main!(engine);
