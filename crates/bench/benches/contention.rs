//! Wired-OR substrate benches: settle dynamics cost by line width and
//! competitor count, full-broadcast vs binary-patterned disciplines, and
//! the signal-level protocol systems. Also reports the measured settle
//! round distribution against the synchronous bound.

use busarb_bus::signal::{Fcfs2System, Rr1System, SignalProtocol};
use busarb_bus::{LineDiscipline, ParallelContention};
use busarb_types::AgentId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn competitor_sets(width: u32, sets: usize, per_set: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mask = (1u64 << width) - 1;
    (0..sets)
        .map(|_| (0..per_set).map(|_| rng.gen::<u64>() & mask).collect())
        .collect()
}

fn bench_settle_by_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("settle_by_width");
    for width in [4u32, 7, 10, 14] {
        let sets = competitor_sets(width, 64, 8, u64::from(width));
        group.throughput(Throughput::Elements(sets.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &width| {
            let arbiter = ParallelContention::new(width);
            b.iter(|| {
                let mut rounds = 0u32;
                for set in &sets {
                    rounds += arbiter.resolve(black_box(set)).rounds;
                }
                black_box(rounds)
            });
        });
    }
    group.finish();
}

fn bench_disciplines(c: &mut Criterion) {
    let sets = competitor_sets(7, 64, 10, 99);
    let mut group = c.benchmark_group("line_discipline");
    for (name, discipline) in [
        ("full_broadcast", LineDiscipline::FullBroadcast),
        ("binary_patterned", LineDiscipline::BinaryPatterned),
    ] {
        group.bench_function(name, |b| {
            let arbiter = ParallelContention::new(7).with_discipline(discipline);
            b.iter(|| {
                let mut acc = 0u64;
                for set in &sets {
                    acc ^= arbiter.resolve(black_box(set)).winner_value;
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn bench_signal_systems(c: &mut Criterion) {
    let mut group = c.benchmark_group("signal_system_saturated_grant");
    const GRANTS: usize = 256;
    group.throughput(Throughput::Elements(GRANTS as u64));
    group.bench_function("rr1", |b| {
        b.iter_batched(
            || {
                let mut sys = Rr1System::new(32).unwrap();
                let ids: Vec<AgentId> = AgentId::all(32).collect();
                sys.on_requests(&ids);
                sys
            },
            |mut sys| {
                for _ in 0..GRANTS {
                    let out = sys.arbitrate().unwrap();
                    sys.on_requests(&[out.winner]);
                }
                black_box(sys.last_winner())
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("fcfs2", |b| {
        b.iter_batched(
            || {
                let mut sys = Fcfs2System::new(32).unwrap();
                let ids: Vec<AgentId> = AgentId::all(32).collect();
                sys.on_requests(&ids);
                sys
            },
            |mut sys| {
                for _ in 0..GRANTS {
                    let out = sys.arbitrate().unwrap();
                    sys.on_requests(&[out.winner]);
                }
                black_box(sys.pending())
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// Not a timing bench: prints the measured settle-round distribution so
/// bench runs double as a bound check (rounds <= width + 1).
fn report_round_distribution(c: &mut Criterion) {
    c.bench_function("settle_round_bound_check", |b| {
        let width = 7;
        let arbiter = ParallelContention::new(width);
        let sets = competitor_sets(width, 256, 6, 7);
        b.iter(|| {
            let mut max_rounds = 0;
            for set in &sets {
                let r = arbiter.resolve(set);
                assert!(r.rounds <= width + 1);
                max_rounds = max_rounds.max(r.rounds);
            }
            black_box(max_rounds)
        });
    });
}

criterion_group!(
    contention,
    bench_settle_by_width,
    bench_disciplines,
    bench_signal_systems,
    report_round_distribution
);
criterion_main!(contention);
