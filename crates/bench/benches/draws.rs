//! Draw-engine sampling microbenches: the cost of one Erlang k = 100
//! (CV = 0.1) interrequest draw under the fast engine's batched
//! Marsaglia–Tsang path versus the reference path's k-fold `ln` loop,
//! plus the CV = 1 exponential case for scale.
//!
//! The k-fold loop is the reference engine's algorithm (an Erlang is the
//! sum of k exponentials, each `-θ ln u`); the fast engine draws the
//! same distribution in O(1) per sample. Criterion reports time per
//! sample, so the speedup here is exactly the per-draw cost ratio that
//! `bench_run`'s `draw_bound` table measures end-to-end.

use busarb_types::AgentId;
use busarb_workload::{DrawEngine, FastEngine, InterrequestTime, ReferenceEngine, Scenario};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const MEAN: f64 = 10.0;
const DRAWS: u64 = 4096;

fn erlang_scenario(cv: f64) -> Scenario {
    let dist = InterrequestTime::from_mean_cv(MEAN, cv).expect("valid distribution");
    assert!(
        matches!(
            (cv, &dist),
            (1.0, InterrequestTime::Exponential { .. })
                | (_, InterrequestTime::Erlang { shape: 100, .. })
        ),
        "unexpected distribution family for cv {cv}: {dist:?}"
    );
    Scenario::from_workloads(
        vec![busarb_workload::AgentWorkload { interrequest: dist }; 2],
        "draw-bench",
    )
    .expect("valid scenario")
}

fn bench_interrequest_draws(c: &mut Criterion) {
    let agent = AgentId::new(1).expect("valid identity");
    let mut group = c.benchmark_group("interrequest_draw");
    group.throughput(Throughput::Elements(DRAWS));
    for (name, cv) in [("erlang_k100", 0.1), ("exponential", 1.0)] {
        let scenario = erlang_scenario(cv);
        group.bench_function(format!("reference/{name}"), |b| {
            let mut engine = ReferenceEngine::for_scenario(42, &scenario);
            b.iter(|| {
                let mut acc = 0.0;
                for _ in 0..DRAWS {
                    acc += engine.think_time(black_box(agent)).as_f64();
                }
                black_box(acc)
            });
        });
        group.bench_function(format!("fast/{name}"), |b| {
            let mut engine = FastEngine::for_scenario(42, &scenario);
            b.iter(|| {
                let mut acc = 0.0;
                for _ in 0..DRAWS {
                    acc += engine.think_time(black_box(agent)).as_f64();
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interrequest_draws);
criterion_main!(benches);
