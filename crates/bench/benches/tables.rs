//! One benchmark per paper table/figure: each runs the representative
//! simulation kernel of that experiment at smoke scale, so `cargo bench`
//! regenerates a miniature of the full evaluation and reports how long
//! the real one costs per cell.

use busarb_experiments::{ablations, figure4_1, grid::Grid, table4_4, table4_5, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table4_1(c: &mut Criterion) {
    // Table 4.1 and 4.2 share the grid kernel: one (n, load) cell runs
    // matched RR and FCFS simulations.
    c.bench_function("table4_1_cell_10_agents", |b| {
        b.iter(|| black_box(Grid::compute_cell(10, 2.0, Scale::Smoke)));
    });
}

fn bench_table4_2(c: &mut Criterion) {
    c.bench_function("table4_2_cell_30_agents", |b| {
        b.iter(|| {
            let cell = Grid::compute_cell(30, 2.0, Scale::Smoke);
            black_box((
                cell.rr.wait_summary.std_dev(),
                cell.fcfs.wait_summary.std_dev(),
            ))
        });
    });
}

fn bench_figure4_1(c: &mut Criterion) {
    c.bench_function("figure4_1_cdf", |b| {
        b.iter(|| black_box(figure4_1::run(Scale::Smoke)));
    });
}

fn bench_table4_3(c: &mut Criterion) {
    c.bench_function("table4_3_overlap_cell", |b| {
        b.iter(|| {
            let cell = Grid::compute_cell(10, 2.5, Scale::Smoke);
            let overlap = 7.0;
            black_box((
                cell.rr.mean_overlapped_wait(overlap),
                cell.fcfs.mean_overlapped_wait(overlap),
            ))
        });
    });
}

fn bench_table4_4(c: &mut Criterion) {
    use busarb_core::ProtocolKind;
    use busarb_experiments::common::run_cell;
    use busarb_types::AgentId;
    use busarb_workload::Scenario;
    c.bench_function("table4_4_unequal_rates_cell", |b| {
        b.iter(|| {
            let scenario =
                Scenario::rate_multiplied(30, 1.0, AgentId::new(1).unwrap(), 2.0, 1.0).unwrap();
            black_box(run_cell(
                scenario,
                ProtocolKind::RoundRobin.build(30).unwrap(),
                Scale::Smoke,
                "bench-t44",
                false,
            ))
        });
    });
    // Guard: the full table construction stays functional.
    let _ = table4_4::BASE_LOADS;
}

fn bench_table4_5(c: &mut Criterion) {
    use busarb_core::ProtocolKind;
    use busarb_experiments::common::run_cell;
    use busarb_types::AgentId;
    use busarb_workload::Scenario;
    c.bench_function("table4_5_worst_case_cell", |b| {
        b.iter(|| {
            let scenario = Scenario::worst_case_rr(10, AgentId::new(1).unwrap(), 0.0).unwrap();
            black_box(run_cell(
                scenario,
                ProtocolKind::RoundRobin.build(10).unwrap(),
                Scale::Smoke,
                "bench-t45",
                false,
            ))
        });
    });
    let _ = table4_5::CV_SWEEP_10;
}

fn bench_ablations(c: &mut Criterion) {
    c.bench_function("ablation_rr3_overhead", |b| {
        b.iter(|| black_box(ablations::rr3_overhead(Scale::Smoke)));
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = bench_table4_1, bench_table4_2, bench_figure4_1,
              bench_table4_3, bench_table4_4, bench_table4_5,
              bench_ablations
}
criterion_main!(tables);
