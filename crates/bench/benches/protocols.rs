//! Arbitration-decision throughput of every protocol, on a saturated
//! system — the per-arbitration software cost of each scheduling policy.

use busarb_bench::{drive_saturated, saturated_arbiter};
use busarb_core::ProtocolKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const GRANTS_PER_ITER: usize = 1024;

fn bench_protocol_decisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("arbitrate_saturated_64_agents");
    group.throughput(Throughput::Elements(GRANTS_PER_ITER as u64));
    for &kind in ProtocolKind::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.to_string()),
            &kind,
            |b, &kind| {
                b.iter_batched(
                    || saturated_arbiter(kind, 64),
                    |mut arbiter| black_box(drive_saturated(arbiter.as_mut(), GRANTS_PER_ITER)),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_system_size_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("rr_arbitrate_by_size");
    group.throughput(Throughput::Elements(GRANTS_PER_ITER as u64));
    for n in [8u32, 16, 32, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || saturated_arbiter(ProtocolKind::RoundRobin, n),
                |mut arbiter| black_box(drive_saturated(arbiter.as_mut(), GRANTS_PER_ITER)),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    protocols,
    bench_protocol_decisions,
    bench_system_size_scaling
);
criterion_main!(protocols);
