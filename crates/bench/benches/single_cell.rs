//! Single-cell engine throughput, per protocol: one Smoke-scale
//! simulation cell through the monomorphized entry point
//! ([`Simulation::run_kind`]) versus the boxed `dyn Arbiter` entry.
//!
//! This is the criterion sibling of the `bench_run` binary (which writes
//! `BENCH_run.json`); use this one for statistically-driven A/B runs and
//! `bench_run` for the committed snapshot numbers.

use busarb_core::ProtocolKind;
use busarb_experiments::common::seed_for;
use busarb_experiments::Scale;
use busarb_sim::{Simulation, SystemConfig};
use busarb_workload::Scenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const AGENTS: u32 = 30;
const LOAD: f64 = 2.0;

const PROTOCOLS: [ProtocolKind; 7] = [
    ProtocolKind::FixedPriority,
    ProtocolKind::AssuredAccessIdleBatch,
    ProtocolKind::RoundRobin,
    ProtocolKind::Fcfs1,
    ProtocolKind::Fcfs2,
    ProtocolKind::CentralFcfs,
    ProtocolKind::Hybrid,
];

fn cell(kind: ProtocolKind) -> Simulation {
    let scenario = Scenario::equal_load(AGENTS, LOAD, 1.0).expect("valid scenario");
    let config = SystemConfig::new(scenario)
        .with_batches(Scale::Smoke.batches())
        .with_warmup(Scale::Smoke.warmup())
        .with_seed(seed_for(&format!("bench-run/{kind}")));
    Simulation::new(config).expect("valid config")
}

fn bench_single_cell_mono(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_cell_mono");
    for &kind in &PROTOCOLS {
        let sim = cell(kind);
        let events = sim.run_kind(kind).expect("valid size").events;
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.to_string()),
            &kind,
            |b, &kind| {
                b.iter(|| black_box(sim.run_kind(kind).expect("valid size")));
            },
        );
    }
    group.finish();
}

fn bench_single_cell_dyn(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_cell_dyn");
    for &kind in &PROTOCOLS {
        let sim = cell(kind);
        let events = sim.run_kind(kind).expect("valid size").events;
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.to_string()),
            &kind,
            |b, &kind| {
                b.iter(|| black_box(sim.run(kind.build(AGENTS).expect("valid size"))));
            },
        );
    }
    group.finish();
}

criterion_group!(single_cell, bench_single_cell_mono, bench_single_cell_dyn);
criterion_main!(single_cell);
