//! Parallel sweep executor bench: the Smoke-scale grid sweep (the kernel
//! behind Tables 4.1–4.3 and Figure 4.1) run through `run_cells_with` at
//! several worker-pool sizes. The 1-worker case is the serial baseline;
//! the multi-worker cases measure the fan-out speedup on this host. The
//! results are byte-identical at every pool size (see the determinism
//! regression test in `busarb-experiments`), so this bench measures pure
//! scheduling overhead/speedup.

use busarb_experiments::common::{paper_loads, PAPER_SIZES};
use busarb_experiments::{grid::Grid, run_cells_with, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn grid_points() -> Vec<(u32, f64)> {
    PAPER_SIZES
        .iter()
        .flat_map(|&n| paper_loads(n).into_iter().map(move |load| (n, load)))
        .collect()
}

fn bench_grid_sweep(c: &mut Criterion) {
    let points = grid_points();
    let mut group = c.benchmark_group("grid_sweep_smoke");
    group.throughput(Throughput::Elements(points.len() as u64));
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    black_box(run_cells_with(workers, points.clone(), |(n, load)| {
                        Grid::compute_cell(n, load, Scale::Smoke)
                    }))
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = sweep;
    config = Criterion::default().sample_size(10);
    targets = bench_grid_sweep
}
criterion_main!(sweep);
