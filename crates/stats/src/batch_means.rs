//! The method of batch means.

use busarb_types::Error;

use crate::student_t;
use crate::Summary;

/// Configuration for a [`BatchMeans`] analysis.
///
/// The paper's setting is 10 batches of 8000 samples at 90% confidence
/// ([`BatchMeansConfig::paper`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchMeansConfig {
    /// Number of batches.
    pub batches: usize,
    /// Samples per batch.
    pub samples_per_batch: usize,
    /// Confidence level for the interval, e.g. `0.90`.
    pub confidence: f64,
}

impl BatchMeansConfig {
    /// The paper's configuration: 10 batches × 8000 samples, 90% CI.
    #[must_use]
    pub fn paper() -> Self {
        BatchMeansConfig {
            batches: 10,
            samples_per_batch: 8000,
            confidence: 0.90,
        }
    }

    /// A scaled-down configuration for quick runs and benches, keeping the
    /// batch structure but with `samples_per_batch` reduced.
    #[must_use]
    pub fn quick(samples_per_batch: usize) -> Self {
        BatchMeansConfig {
            samples_per_batch,
            ..BatchMeansConfig::paper()
        }
    }

    /// Total number of samples needed to fill every batch.
    #[must_use]
    pub fn total_samples(&self) -> usize {
        self.batches * self.samples_per_batch
    }

    fn validate(&self) -> Result<(), Error> {
        if self.batches < 2 || self.samples_per_batch == 0 {
            return Err(Error::InvalidBatchConfig {
                batches: self.batches,
                samples_per_batch: self.samples_per_batch,
            });
        }
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(Error::InvalidBatchConfig {
                batches: self.batches,
                samples_per_batch: self.samples_per_batch,
            });
        }
        Ok(())
    }
}

impl Default for BatchMeansConfig {
    fn default() -> Self {
        BatchMeansConfig::paper()
    }
}

/// A point estimate with a confidence interval, as reported throughout the
/// paper's tables (`value ± halfwidth`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// The point estimate (mean of the batch means).
    pub mean: f64,
    /// Half-width of the confidence interval.
    pub halfwidth: f64,
    /// The confidence level the interval was built at.
    pub confidence: f64,
}

impl Estimate {
    /// Lower end of the interval.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.mean - self.halfwidth
    }

    /// Upper end of the interval.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.mean + self.halfwidth
    }

    /// Returns `true` if `value` lies inside the interval.
    #[must_use]
    pub fn covers(&self, value: f64) -> bool {
        value >= self.lo() && value <= self.hi()
    }

    /// Relative half-width (`halfwidth / |mean|`); infinite for a zero mean.
    #[must_use]
    pub fn relative_halfwidth(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.halfwidth / self.mean.abs()
        }
    }

    /// Builds an estimate from a slice of batch statistics (one value per
    /// batch) at the given confidence.
    ///
    /// This is the general entry point used for derived statistics such as
    /// throughput ratios: compute the statistic within each batch, then form
    /// the interval over the per-batch values.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two batch values are supplied.
    #[must_use]
    pub fn from_batch_values(values: &[f64], confidence: f64) -> Estimate {
        assert!(values.len() >= 2, "need at least two batches");
        let summary: Summary = values.iter().copied().collect();
        let t = student_t::two_sided(confidence, (values.len() - 1) as u64);
        Estimate {
            mean: summary.mean(),
            halfwidth: t * summary.std_dev() / (values.len() as f64).sqrt(),
            confidence,
        }
    }
}

impl core::fmt::Display for Estimate {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.2} \u{b1} {:.2}", self.mean, self.halfwidth)
    }
}

/// Batch-means accumulator for one scalar output measure.
///
/// Samples are assigned to consecutive fixed-size batches; when all batches
/// are full, [`BatchMeans::estimate`] returns the mean of the batch means
/// with a Student-t confidence interval. Samples beyond the configured total
/// are ignored (the run has collected enough output).
///
/// Warm-up handling is the caller's responsibility: the simulator discards
/// an initial transient before routing samples here.
#[derive(Clone, Debug)]
pub struct BatchMeans {
    config: BatchMeansConfig,
    batch_sums: Vec<f64>,
    batch_counts: Vec<usize>,
    current: usize,
    overall: Summary,
}

impl BatchMeans {
    /// Creates an accumulator for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidBatchConfig`] if fewer than 2 batches, zero
    /// samples per batch, or a confidence outside (0, 1) is requested.
    pub fn new(config: BatchMeansConfig) -> Result<Self, Error> {
        config.validate()?;
        Ok(BatchMeans {
            config,
            batch_sums: vec![0.0; config.batches],
            batch_counts: vec![0; config.batches],
            current: 0,
            overall: Summary::new(),
        })
    }

    /// The configuration this accumulator was built with.
    #[must_use]
    pub fn config(&self) -> &BatchMeansConfig {
        &self.config
    }

    /// Records one sample. Samples arriving after all batches are full are
    /// ignored.
    pub fn record(&mut self, x: f64) {
        if self.is_complete() {
            return;
        }
        self.batch_sums[self.current] += x;
        self.batch_counts[self.current] += 1;
        self.overall.record(x);
        if self.batch_counts[self.current] == self.config.samples_per_batch {
            self.current += 1;
        }
    }

    /// Returns `true` once every batch has its full complement of samples.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.current == self.config.batches
    }

    /// Total samples recorded so far (capped at the configured total).
    #[must_use]
    pub fn samples_recorded(&self) -> usize {
        self.overall.count() as usize
    }

    /// Summary over all recorded samples (for std-dev measures such as
    /// Table 4.2's σ_W, which is a property of the sample stream, not of the
    /// batch means).
    #[must_use]
    pub fn overall(&self) -> &Summary {
        &self.overall
    }

    /// Per-batch means computed so far (only full batches).
    #[must_use]
    pub fn batch_means(&self) -> Vec<f64> {
        self.batch_sums
            .iter()
            .zip(&self.batch_counts)
            .filter(|&(_, &n)| n == self.config.samples_per_batch)
            .map(|(&s, &n)| s / n as f64)
            .collect()
    }

    /// The batch-means estimate, or `None` until every batch is full.
    #[must_use]
    pub fn estimate(&self) -> Option<Estimate> {
        if !self.is_complete() {
            return None;
        }
        Some(Estimate::from_batch_values(
            &self.batch_means(),
            self.config.confidence,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(BatchMeans::new(BatchMeansConfig {
            batches: 1,
            samples_per_batch: 10,
            confidence: 0.9
        })
        .is_err());
        assert!(BatchMeans::new(BatchMeansConfig {
            batches: 10,
            samples_per_batch: 0,
            confidence: 0.9
        })
        .is_err());
        assert!(BatchMeans::new(BatchMeansConfig {
            batches: 10,
            samples_per_batch: 10,
            confidence: 1.0
        })
        .is_err());
        assert!(BatchMeans::new(BatchMeansConfig::paper()).is_ok());
    }

    #[test]
    fn paper_config_shape() {
        let c = BatchMeansConfig::paper();
        assert_eq!(c.batches, 10);
        assert_eq!(c.samples_per_batch, 8000);
        assert_eq!(c.total_samples(), 80_000);
        assert_eq!(c.confidence, 0.90);
        assert_eq!(BatchMeansConfig::default(), c);
    }

    #[test]
    fn incomplete_returns_none() {
        let mut bm = BatchMeans::new(BatchMeansConfig {
            batches: 2,
            samples_per_batch: 3,
            confidence: 0.9,
        })
        .unwrap();
        for _ in 0..5 {
            bm.record(1.0);
        }
        assert!(!bm.is_complete());
        assert!(bm.estimate().is_none());
        bm.record(1.0);
        assert!(bm.is_complete());
        assert!(bm.estimate().is_some());
    }

    #[test]
    fn extra_samples_are_ignored() {
        let mut bm = BatchMeans::new(BatchMeansConfig {
            batches: 2,
            samples_per_batch: 2,
            confidence: 0.9,
        })
        .unwrap();
        for _ in 0..4 {
            bm.record(2.0);
        }
        bm.record(1000.0); // ignored
        assert_eq!(bm.samples_recorded(), 4);
        let est = bm.estimate().unwrap();
        assert_eq!(est.mean, 2.0);
        assert_eq!(est.halfwidth, 0.0);
    }

    #[test]
    fn constant_stream_gives_zero_halfwidth() {
        let mut bm = BatchMeans::new(BatchMeansConfig {
            batches: 10,
            samples_per_batch: 100,
            confidence: 0.9,
        })
        .unwrap();
        for _ in 0..1000 {
            bm.record(7.5);
        }
        let est = bm.estimate().unwrap();
        assert_eq!(est.mean, 7.5);
        assert!(est.halfwidth < 1e-12);
        assert!(est.covers(7.5));
    }

    #[test]
    fn interval_uses_t_critical_value() {
        // Batch means will be 0,1,0,1,... — known spread.
        let mut bm = BatchMeans::new(BatchMeansConfig {
            batches: 10,
            samples_per_batch: 1,
            confidence: 0.90,
        })
        .unwrap();
        for i in 0..10 {
            bm.record((i % 2) as f64);
        }
        let means = bm.batch_means();
        let s: Summary = means.iter().copied().collect();
        let expected = student_t::two_sided(0.90, 9) * s.std_dev() / 10f64.sqrt();
        let est = bm.estimate().unwrap();
        assert!((est.halfwidth - expected).abs() < 1e-12);
        assert_eq!(est.mean, 0.5);
    }

    #[test]
    fn ci_covers_true_mean_for_iid_uniform() {
        // Deterministic LCG so the test is reproducible without rand.
        let mut state = 0x2545_F491_4F6C_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut covered = 0;
        const TRIALS: usize = 200;
        for _ in 0..TRIALS {
            let mut bm = BatchMeans::new(BatchMeansConfig {
                batches: 10,
                samples_per_batch: 50,
                confidence: 0.90,
            })
            .unwrap();
            for _ in 0..500 {
                bm.record(next());
            }
            if bm.estimate().unwrap().covers(0.5) {
                covered += 1;
            }
        }
        // Expected coverage ~90%; allow generous slack for 200 trials.
        assert!(covered >= 160, "coverage too low: {covered}/200");
    }

    #[test]
    fn estimate_accessors() {
        let est = Estimate {
            mean: 10.0,
            halfwidth: 2.0,
            confidence: 0.9,
        };
        assert_eq!(est.lo(), 8.0);
        assert_eq!(est.hi(), 12.0);
        assert!(est.covers(9.0));
        assert!(!est.covers(12.5));
        assert_eq!(est.relative_halfwidth(), 0.2);
        assert!(format!("{est}").contains("10.00"));
    }

    #[test]
    fn overall_summary_tracks_all_samples() {
        let mut bm = BatchMeans::new(BatchMeansConfig {
            batches: 2,
            samples_per_batch: 2,
            confidence: 0.9,
        })
        .unwrap();
        for x in [1.0, 2.0, 3.0, 4.0] {
            bm.record(x);
        }
        assert_eq!(bm.overall().count(), 4);
        assert_eq!(bm.overall().mean(), 2.5);
    }
}
