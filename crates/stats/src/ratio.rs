//! Per-batch tallies and ratio statistics.

use busarb_types::Error;

use crate::batch_means::Estimate;

/// Per-batch event tallies for a fixed set of series (typically one series
/// per agent), used to estimate **ratios of rates** with confidence
/// intervals.
///
/// Tables 4.1, 4.4 and 4.5 of the paper report ratios of per-agent
/// throughputs with 90% confidence intervals. Because both throughputs in a
/// ratio are measured over the same batch interval, the interval length
/// cancels and the per-batch ratio is simply the ratio of per-batch counts;
/// the confidence interval is then formed over the per-batch ratios exactly
/// as for any batch-means statistic.
///
/// # Examples
///
/// ```
/// use busarb_stats::BatchTally;
///
/// # fn main() -> Result<(), busarb_types::Error> {
/// let mut tally = BatchTally::new(2, 4)?;
/// for batch in 0..4 {
///     for _ in 0..10 { tally.record(0); }
///     for _ in 0..5 { tally.record(1); }
///     if batch < 3 { tally.close_batch(); }
/// }
/// let r = tally.ratio(0, 1, 0.90).expect("counts positive");
/// assert!((r.estimate.mean - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct BatchTally {
    series: usize,
    counts: Vec<Vec<u64>>, // [batch][series]
    current: usize,
}

/// A ratio estimate together with the raw totals it was derived from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RatioEstimate {
    /// Batch-means estimate of the per-batch ratio.
    pub estimate: Estimate,
    /// Total numerator count over all batches.
    pub numerator_total: u64,
    /// Total denominator count over all batches.
    pub denominator_total: u64,
}

impl BatchTally {
    /// Creates a tally for `series` event streams over `batches` batches.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidBatchConfig`] if `batches < 2` or
    /// `series == 0`.
    pub fn new(series: usize, batches: usize) -> Result<Self, Error> {
        if batches < 2 || series == 0 {
            return Err(Error::InvalidBatchConfig {
                batches,
                samples_per_batch: series,
            });
        }
        Ok(BatchTally {
            series,
            counts: vec![vec![0; series]; batches],
            current: 0,
        })
    }

    /// Number of series being tallied.
    #[must_use]
    pub fn series(&self) -> usize {
        self.series
    }

    /// Number of batches.
    #[must_use]
    pub fn batches(&self) -> usize {
        self.counts.len()
    }

    /// Index of the batch currently receiving events.
    #[must_use]
    pub fn current_batch(&self) -> usize {
        self.current.min(self.counts.len() - 1)
    }

    /// Records one event for `series` in the current batch. Events arriving
    /// after the final batch has been closed are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `series` is out of range.
    pub fn record(&mut self, series: usize) {
        assert!(series < self.series, "series index out of range");
        if self.current < self.counts.len() {
            self.counts[self.current][series] += 1;
        }
    }

    /// Closes the current batch; subsequent events go to the next one.
    pub fn close_batch(&mut self) {
        if self.current < self.counts.len() {
            self.current += 1;
        }
    }

    /// Returns `true` once every batch has been closed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.current >= self.counts.len()
    }

    /// Total events recorded for `series` across all batches.
    #[must_use]
    pub fn total(&self, series: usize) -> u64 {
        self.counts.iter().map(|b| b[series]).sum()
    }

    /// Per-batch counts for `series`.
    #[must_use]
    pub fn batch_counts(&self, series: usize) -> Vec<u64> {
        self.counts.iter().map(|b| b[series]).collect()
    }

    /// Estimates the ratio of the `numerator` series rate to the
    /// `denominator` series rate with a confidence interval over per-batch
    /// ratios.
    ///
    /// Returns `None` if any batch has a zero denominator count (the ratio
    /// is undefined for that batch).
    ///
    /// # Panics
    ///
    /// Panics if either series index is out of range.
    #[must_use]
    pub fn ratio(
        &self,
        numerator: usize,
        denominator: usize,
        confidence: f64,
    ) -> Option<RatioEstimate> {
        assert!(numerator < self.series && denominator < self.series);
        let mut per_batch = Vec::with_capacity(self.counts.len());
        for batch in &self.counts {
            if batch[denominator] == 0 {
                return None;
            }
            per_batch.push(batch[numerator] as f64 / batch[denominator] as f64);
        }
        Some(RatioEstimate {
            estimate: Estimate::from_batch_values(&per_batch, confidence),
            numerator_total: self.total(numerator),
            denominator_total: self.total(denominator),
        })
    }

    /// Grand total over all series and batches.
    #[must_use]
    pub fn grand_total(&self) -> u64 {
        (0..self.series).map(|s| self.total(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled_tally() -> BatchTally {
        let mut t = BatchTally::new(3, 5).unwrap();
        for b in 0..5 {
            for _ in 0..(10 + b) {
                t.record(0);
            }
            for _ in 0..(20 + 2 * b) {
                t.record(1);
            }
            t.record(2);
            t.close_batch();
        }
        t
    }

    #[test]
    fn construction_validation() {
        assert!(BatchTally::new(0, 10).is_err());
        assert!(BatchTally::new(3, 1).is_err());
        assert!(BatchTally::new(1, 2).is_ok());
    }

    #[test]
    fn totals_accumulate() {
        let t = filled_tally();
        assert_eq!(t.total(0), 10 + 11 + 12 + 13 + 14);
        assert_eq!(t.total(1), 20 + 22 + 24 + 26 + 28);
        assert_eq!(t.total(2), 5);
        assert_eq!(t.grand_total(), 60 + 120 + 5);
        assert!(t.is_complete());
    }

    #[test]
    fn ratio_of_proportional_series_is_exact() {
        let t = filled_tally();
        // Series 1 is exactly 2x series 0 in every batch.
        let r = t.ratio(1, 0, 0.90).unwrap();
        assert!((r.estimate.mean - 2.0).abs() < 1e-12);
        assert!(r.estimate.halfwidth < 1e-12);
        assert_eq!(r.numerator_total, 120);
        assert_eq!(r.denominator_total, 60);
    }

    #[test]
    fn ratio_with_zero_denominator_batch_is_none() {
        let mut t = BatchTally::new(2, 2).unwrap();
        t.record(0);
        t.close_batch(); // batch 0: series 1 count is zero
        t.record(0);
        t.record(1);
        t.close_batch();
        assert_eq!(t.ratio(0, 1, 0.9), None);
        assert!(t.ratio(1, 0, 0.9).is_some());
    }

    #[test]
    fn events_after_completion_are_ignored() {
        let mut t = BatchTally::new(1, 2).unwrap();
        t.record(0);
        t.close_batch();
        t.record(0);
        t.close_batch();
        t.record(0); // ignored
        t.close_batch(); // no-op
        assert_eq!(t.total(0), 2);
    }

    #[test]
    fn current_batch_advances() {
        let mut t = BatchTally::new(1, 3).unwrap();
        assert_eq!(t.current_batch(), 0);
        t.close_batch();
        assert_eq!(t.current_batch(), 1);
        t.close_batch();
        t.close_batch();
        assert!(t.is_complete());
        assert_eq!(t.current_batch(), 2); // clamped
    }

    #[test]
    fn batch_counts_view() {
        let t = filled_tally();
        assert_eq!(t.batch_counts(0), vec![10, 11, 12, 13, 14]);
    }

    #[test]
    #[should_panic(expected = "series index")]
    fn out_of_range_series_panics() {
        let mut t = BatchTally::new(1, 2).unwrap();
        t.record(1);
    }
}
